//! Quickstart: build the paper's §V system, run one slot under both
//! policies, and print the economics side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use palb::cluster::presets;
use palb::core::report::summary_table;
use palb::core::{run, BalancedPolicy, OptimizedPolicy};
use palb::workload::synthetic::constant_trace;

fn main() {
    // The §V "basic characteristics" setup: 3 request classes arriving at
    // 4 front-end servers, dispatched to 3 heterogeneous data centers of
    // 6 servers each, with constant-value TUFs and flat electricity prices.
    let system = presets::section_v();
    system.validate().expect("preset is valid");

    println!(
        "system: {} classes, {} front-ends, {} data centers, {} servers total\n",
        system.num_classes(),
        system.num_front_ends(),
        system.num_dcs(),
        system.total_servers()
    );

    for (label, rates) in [
        (
            "LOW arrival rates (Table II-a)",
            presets::section_v_low_arrivals(),
        ),
        (
            "HIGH arrival rates (Table II-b)",
            presets::section_v_high_arrivals(),
        ),
    ] {
        let trace = constant_trace(rates, 1);

        // The paper's profit-aware optimizer: one LP per slot here, since
        // §V uses one-level (constant) TUFs.
        let optimized = run(&mut OptimizedPolicy::exact(), &system, &trace, 0)
            .expect("optimizer solves the preset");
        // The static baseline: even shares, cheapest-electricity-first.
        let balanced =
            run(&mut BalancedPolicy, &system, &trace, 0).expect("baseline always succeeds");

        println!("=== {label} ===");
        println!("{}", summary_table(&optimized, &balanced));
        let gain = optimized.total_net_profit() / balanced.total_net_profit();
        println!("net-profit ratio Optimized/Balanced: {gain:.3}\n");
    }
}
