//! Quickstart: build the paper's §V system, run one slot under both
//! policies, and print the economics side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use palb::cluster::presets;
use palb::core::report::summary_table;
use palb::core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
use palb::workload::synthetic::constant_trace;

fn main() {
    // The §V "basic characteristics" setup: 3 request classes arriving at
    // 4 front-end servers, dispatched to 3 heterogeneous data centers of
    // 6 servers each, with constant-value TUFs and flat electricity prices.
    let system = presets::section_v();
    system.validate().expect("preset is valid");

    println!(
        "system: {} classes, {} front-ends, {} data centers, {} servers total\n",
        system.num_classes(),
        system.num_front_ends(),
        system.num_dcs(),
        system.total_servers()
    );

    for (label, rates) in [
        (
            "LOW arrival rates (Table II-a)",
            presets::section_v_low_arrivals(),
        ),
        (
            "HIGH arrival rates (Table II-b)",
            presets::section_v_high_arrivals(),
        ),
    ] {
        let trace = constant_trace(rates, 1);

        // The paper's profit-aware optimizer: one LP per slot here, since
        // §V uses one-level (constant) TUFs.
        let optimized = run_with(
            &mut OptimizedPolicy::exact(),
            &system,
            &trace,
            &RunOptions::at(0),
        )
        .expect("optimizer solves the preset")
        .result;
        // The static baseline: even shares, cheapest-electricity-first.
        let balanced = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
            .expect("baseline always succeeds")
            .result;

        println!("=== {label} ===");
        println!("{}", summary_table(&optimized, &balanced));
        let gain = optimized.total_net_profit() / balanced.total_net_profit();
        println!("net-profit ratio Optimized/Balanced: {gain:.3}\n");
    }
}
