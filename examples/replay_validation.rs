//! Validate the optimizer's promises with the discrete-event simulator:
//! take the §V decision, rebuild every active (class, server) VM as an
//! M/M/1 queue, replay it with Poisson arrivals and exponential service,
//! and compare predicted (Eq. 1) against simulated mean delays — then show
//! what a per-request payment rule would do to revenue, and how the
//! quantile-SLA extension recovers it.
//!
//! ```text
//! cargo run --release --example replay_validation
//! ```

use palb::cluster::presets;
use palb::core::{run_with, OptimizedPolicy, Policy, QuantileSlaPolicy, RunOptions};
use palb::queueing::des::{simulate_network, QueueSpec};
use palb::workload::synthetic::constant_trace;

fn replay(policy: &mut dyn Policy, label: &str) {
    let system = presets::section_v();
    let trace = constant_trace(presets::section_v_low_arrivals(), 1);
    let result = run_with(policy, &system, &trace, &RunOptions::at(0))
        .expect("policy solves")
        .result;
    let dispatch = &result.decisions[0];
    let dims = dispatch.dims().clone();

    // One M/M/1 queue per loaded VM.
    let mut specs = Vec::new();
    let mut meta = Vec::new();
    for (k, sv) in dims.class_server_pairs() {
        let lam = dispatch.server_class_rate(k, sv);
        if lam <= 1e-9 {
            continue;
        }
        let l = dims.dc_of_server(sv);
        let service = dispatch.phi_by_server(k, sv) * system.data_centers[l.0].full_rate(k);
        specs.push(QueueSpec {
            arrival_rate: lam,
            service_rate: service,
        });
        meta.push((k, lam, service));
    }
    let horizon = 3_000.0;
    let warmup = 300.0;
    let sims = simulate_network(&specs, horizon, warmup, 42);

    println!("=== {label}: {} active VMs ===", meta.len());
    println!("class  lambda   mu_eff   predicted  simulated  on-time");
    let mut worst_err = 0.0_f64;
    for ((k, lam, service), q) in meta.iter().zip(&sims) {
        let predicted = 1.0 / (service - lam);
        let simulated = q.sojourn.mean();
        worst_err = worst_err.max((simulated - predicted).abs() / predicted);
        let deadline = system.classes[k.0].tuf.final_deadline();
        let on_time = q
            .sojourn
            .samples()
            .iter()
            .filter(|&&r| r <= deadline)
            .count() as f64
            / q.sojourn.samples().len() as f64;
        println!(
            "{:>5}  {:>6.1}  {:>7.1}  {:>9.4}  {:>9.4}  {:>6.1}%",
            k.0,
            lam,
            service,
            predicted,
            simulated,
            100.0 * on_time
        );
    }
    println!("worst Eq.1 prediction error: {:.1}%\n", 100.0 * worst_err);
}

fn main() {
    replay(&mut OptimizedPolicy::exact(), "mean-delay SLA (the paper)");
    replay(
        &mut QuantileSlaPolicy::exact(0.9),
        "quantile SLA p = 0.9 (extension)",
    );
    println!(
        "reading: Eq. 1 predicts replayed mean delays within a few percent \
         in both cases, but the mean-delay policy parks VMs at their \
         deadline (on-time ≈ 63%) while the quantile policy buys real \
         per-request headroom (on-time ≥ 90%)."
    );
}
