//! What-if study: how the profit-aware dispatcher reacts as one region's
//! electricity market inflates. Uses the §VII system — the setting where
//! the paper shows electricity price differences driving the dispatch —
//! sweeps a price multiplier on the Houston data center, and reports where
//! request2 (the energy-hungriest class) lands under the optimizer.
//!
//! ```text
//! cargo run --release --example whatif_prices
//! ```

use palb::cluster::{presets, ClassId};
use palb::core::report::dispatch_share;
use palb::core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
use palb::workload::burst::{generate, BurstConfig};

fn main() {
    let trace = generate(&BurstConfig {
        mean_rate: 62_000.0,
        slots: presets::SECTION_VII_SLOTS,
        reversion: 0.25,
        burst_prob: 0.5,
        ..BurstConfig::default()
    });
    let start = presets::SECTION_VII_START_HOUR;

    println!("houston price x | opt profit $M | bal profit $M | req2 share at houston (opt)");
    println!("----------------+---------------+---------------+-----------------------------");
    for mult10 in [5u32, 10, 15, 20, 30] {
        let mult = f64::from(mult10) / 10.0;
        let mut system = presets::section_vii();
        system.data_centers[0].prices = system.data_centers[0].prices.scaled(mult);

        let opt = run_with(
            &mut OptimizedPolicy::exact(),
            &system,
            &trace,
            &RunOptions::at(start),
        )
        .expect("optimizer")
        .result;
        let bal = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(start))
            .expect("baseline")
            .result;
        let share = dispatch_share(&system, &opt, ClassId(1))[0].1;
        println!(
            "{mult:>15.1} | {:>13.2} | {:>13.2} | {:>27.1}%",
            opt.total_net_profit() / 1e6,
            bal.total_net_profit() / 1e6,
            100.0 * share
        );
    }
    println!(
        "\nreading: as Houston's market inflates, the optimizer drains the \
         energy-hungry request2 from it (paying Mountain View's transfer \
         premium instead), while the price-greedy baseline only reacts to \
         the hourly price *ordering*, not its magnitude."
    );
}
