//! Building a custom system from scratch with the public API — the
//! "adopt this library for your own fleet" path, without any preset.
//!
//! Models a two-region provider (Dublin / Frankfurt) running an API tier
//! and a batch-report tier, with a two-level SLA on the API class, and
//! compares the profit-aware dispatcher against the price-greedy baseline
//! over one synthetic day.
//!
//! ```text
//! cargo run --release --example custom_system
//! ```

use palb::cluster::{DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
use palb::core::report::summary_table;
use palb::core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
use palb::tuf::StepTuf;
use palb::workload::diurnal::{generate, DiurnalConfig};

fn main() {
    // Rates in requests/hour; money in dollars; energy in kWh/request.
    let system = System {
        classes: vec![
            RequestClass {
                name: "api".into(),
                // $0.012 per call within 2 s mean delay, $0.008 within 30 s.
                tuf: StepTuf::two_level(0.012, 2.0 / 3600.0, 0.008, 30.0 / 3600.0)
                    .expect("valid TUF"),
                transfer_cost_per_mile: 2.0e-9,
            },
            RequestClass {
                name: "report".into(),
                // Batch tier: flat $0.02 within a 5-minute mean delay.
                tuf: StepTuf::constant(0.02, 300.0 / 3600.0).expect("valid TUF"),
                transfer_cost_per_mile: 6.0e-9,
            },
        ],
        front_ends: vec![
            FrontEnd {
                name: "eu-west-edge".into(),
            },
            FrontEnd {
                name: "eu-central-edge".into(),
            },
        ],
        data_centers: vec![
            DataCenter {
                name: "dublin".into(),
                servers: 8,
                capacity: 1.0,
                service_rate: vec![90_000.0, 12_000.0],
                energy_per_request: vec![0.00020, 0.00150],
                pue: 1.25,
                prices: PriceSchedule::new(
                    (0..24)
                        .map(|h| 0.11 + 0.05 * ((h as f64 - 17.0) / 4.0).tanh().max(-0.6))
                        .collect(),
                ),
            },
            DataCenter {
                name: "frankfurt".into(),
                servers: 10,
                capacity: 1.0,
                service_rate: vec![80_000.0, 14_000.0],
                energy_per_request: vec![0.00022, 0.00140],
                pue: 1.15,
                prices: PriceSchedule::new(
                    (0..24)
                        .map(|h| 0.16 - 0.04 * ((h as f64 - 4.0) / 6.0).tanh())
                        .collect(),
                ),
            },
        ],
        distance: vec![vec![120.0, 680.0], vec![700.0, 90.0]],
        slot_length: 1.0,
    };
    system.validate().expect("consistent custom system");

    let trace = generate(&DiurnalConfig {
        front_ends: 2,
        classes: 2,
        slots: 24,
        peak_rate: 220_000.0,
        class_shift_hours: 3,
        seed: 7,
        ..DiurnalConfig::default()
    });

    let optimized = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .expect("optimizer")
    .result;
    let balanced = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
        .expect("baseline")
        .result;
    println!("{}", summary_table(&optimized, &balanced));
    println!(
        "profit-aware dispatch is worth {:+.1}% on this fleet",
        100.0 * (optimized.total_net_profit() / balanced.total_net_profit() - 1.0)
    );
}
