//! The §VI experiment in miniature: drive a World-Cup-like diurnal day
//! trace through the Houston / Mountain View / Atlanta system and watch
//! the hourly profit gap open and close.
//!
//! ```text
//! cargo run --release --example worldcup_day
//! ```

use palb::cluster::{presets, ClassId};
use palb::core::report::{dispatch_share, net_profit_csv};
use palb::core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
use palb::workload::diurnal::{generate, DiurnalConfig};

fn main() {
    let system = presets::section_vi();
    let trace = generate(&DiurnalConfig {
        peak_rate: 80_000.0,
        ..DiurnalConfig::default()
    });

    let optimized = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .expect("optimizer")
    .result;
    let balanced = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
        .expect("baseline")
        .result;

    println!("hourly net profit ($):");
    print!("{}", net_profit_csv(&optimized, &balanced));

    println!(
        "\ntotals: optimized ${:.0} vs balanced ${:.0} ({:.1}% more)",
        optimized.total_net_profit(),
        balanced.total_net_profit(),
        100.0 * (optimized.total_net_profit() / balanced.total_net_profit() - 1.0)
    );
    println!(
        "completion: optimized {:.2}% vs balanced {:.2}%",
        100.0 * optimized.completion_ratio(),
        100.0 * balanced.completion_ratio()
    );

    // The Fig. 7 story: Mountain View is 3-6x farther from every front-end,
    // so the optimizer starves it of request1 while Balanced chases its
    // afternoon price advantage across the country.
    println!("\nshare of request1 dispatched to each data center over the day:");
    for (policy, run_result) in [("optimized", &optimized), ("balanced", &balanced)] {
        let shares = dispatch_share(&system, run_result, ClassId(0));
        let line: Vec<String> = shares
            .iter()
            .map(|(name, v)| format!("{name} {:.1}%", v * 100.0))
            .collect();
        println!("  {policy}: {}", line.join(", "));
    }
}
