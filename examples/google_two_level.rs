//! The §VII experiment in miniature: a bursty Google-cluster-like 7-hour
//! trace, two request classes with **two-level** step TUFs, and two data
//! centers (Houston / Mountain View) during the 14:00–19:00 price
//! divergence window. The optimizer here is the exact branch-and-bound
//! over TUF levels — the discrete problem the paper handed to CPLEX.
//!
//! ```text
//! cargo run --release --example google_two_level
//! ```

use palb::cluster::presets::{self, SECTION_VII_SLOTS, SECTION_VII_START_HOUR};
use palb::cluster::ClassId;
use palb::core::report::{dispatch_csv, summary_table};
use palb::core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
use palb::workload::burst::{generate, BurstConfig};

fn main() {
    let system = presets::section_vii();
    let trace = generate(&BurstConfig {
        mean_rate: 62_000.0,
        slots: SECTION_VII_SLOTS,
        reversion: 0.25,
        burst_prob: 0.5,
        ..BurstConfig::default()
    });

    let optimized = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(SECTION_VII_START_HOUR),
    )
    .expect("optimizer")
    .result;
    let balanced = run_with(
        &mut BalancedPolicy,
        &system,
        &trace,
        &RunOptions::at(SECTION_VII_START_HOUR),
    )
    .expect("baseline")
    .result;

    println!("{}", summary_table(&optimized, &balanced));

    for k in 0..system.num_classes() {
        println!(
            "completion of {}: optimized {:.2}%, balanced {:.2}%",
            system.classes[k].name,
            100.0 * class_completion(&optimized, &trace, k),
            100.0 * class_completion(&balanced, &trace, k),
        );
    }

    let extra_cost = optimized.total_cost() / balanced.total_cost() - 1.0;
    println!(
        "\noptimized spends {:.2}% more on cost yet nets {:.2}% more profit",
        100.0 * extra_cost,
        100.0 * (optimized.total_net_profit() / balanced.total_net_profit() - 1.0)
    );

    println!("\nper-hour dispatch of request1 (requests/hour) under Optimized:");
    print!("{}", dispatch_csv(&system, &optimized, ClassId(0)));
    println!("\n... and under Balanced:");
    print!("{}", dispatch_csv(&system, &balanced, ClassId(0)));
}

/// Fraction of a class's offered requests that were dispatched and
/// completed (per-class view of the run).
fn class_completion(run: &palb::core::RunResult, trace: &palb::workload::Trace, k: usize) -> f64 {
    let mut offered = 0.0;
    let mut served = 0.0;
    for (t, slot) in run.slots.iter().enumerate() {
        offered += trace.offered_class_in_slot(t, k);
        served += slot.class_dc_rate[k].iter().sum::<f64>();
    }
    if offered > 0.0 {
        served / offered
    } else {
        1.0
    }
}
