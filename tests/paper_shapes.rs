//! End-to-end integration tests: the headline qualitative claims of the
//! paper, exercised through the public `palb` facade exactly as a
//! downstream user would.

use palb::cluster::presets;
use palb::core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
use palb::workload::burst::{generate as burst, BurstConfig};
use palb::workload::diurnal::{generate as diurnal, DiurnalConfig};
use palb::workload::synthetic::constant_trace;

#[test]
fn section_v_optimized_dominates_both_regimes() {
    let system = presets::section_v();
    for rates in [
        presets::section_v_low_arrivals(),
        presets::section_v_high_arrivals(),
    ] {
        let trace = constant_trace(rates, 1);
        let opt = run_with(
            &mut OptimizedPolicy::exact(),
            &system,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let bal = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert!(opt.total_net_profit() > bal.total_net_profit());
    }
}

#[test]
fn section_v_heavy_load_processes_more_requests() {
    // The paper's ~16% claim: the profit-aware dispatcher also completes
    // substantially more requests under overload.
    let system = presets::section_v();
    let trace = constant_trace(presets::section_v_high_arrivals(), 1);
    let opt = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .unwrap()
    .result;
    let bal = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
        .unwrap()
        .result;
    let gain = opt.total_completed() / bal.total_completed();
    assert!(
        (1.05..1.45).contains(&gain),
        "completion gain {gain} out of the paper's ballpark"
    );
}

#[test]
fn section_vi_gap_opens_midday_and_closes_at_night() {
    let system = presets::section_vi();
    let trace = diurnal(&DiurnalConfig {
        peak_rate: 80_000.0,
        ..DiurnalConfig::default()
    });
    let opt = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .unwrap()
    .result;
    let bal = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
        .unwrap()
        .result;

    let rel_gap =
        |i: usize| (opt.slots[i].net_profit - bal.slots[i].net_profit) / bal.slots[i].net_profit;
    // Largest mid-day gap dwarfs the end-of-trace gap (Fig. 6 convergence).
    let midday: f64 = (10..21).map(rel_gap).fold(0.0, f64::max);
    assert!(midday > 0.10, "midday gap {midday}");
    assert!(
        rel_gap(23) < 0.5 * midday,
        "no convergence: {} vs {midday}",
        rel_gap(23)
    );
}

#[test]
fn section_vii_optimizer_wins_with_two_level_tufs() {
    let system = presets::section_vii();
    let trace = burst(&BurstConfig {
        mean_rate: 62_000.0,
        slots: presets::SECTION_VII_SLOTS,
        reversion: 0.25,
        burst_prob: 0.5,
        ..BurstConfig::default()
    });
    let start = presets::SECTION_VII_START_HOUR;
    let opt = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(start),
    )
    .unwrap()
    .result;
    let bal = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(start))
        .unwrap()
        .result;
    assert!(opt.total_net_profit() > bal.total_net_profit());
    // Optimized completes more *and* spends more doing so (§VII-B2).
    assert!(opt.total_completed() > bal.total_completed());
    assert!(opt.total_cost() > bal.total_cost());
}

#[test]
fn uniform_solver_is_a_lower_bound_for_exact() {
    use palb::core::{solve_bb, solve_uniform_levels, SolverConfig};
    let system = presets::section_vii();
    let trace = burst(&BurstConfig {
        mean_rate: 62_000.0,
        slots: 3,
        reversion: 0.25,
        burst_prob: 0.5,
        ..BurstConfig::default()
    });
    for t in 0..trace.slots() {
        let slot = presets::SECTION_VII_START_HOUR + t;
        let exact = solve_bb(&system, trace.slot(t), slot, &SolverConfig::exact()).unwrap();
        let uni = solve_uniform_levels(&system, trace.slot(t), slot).unwrap();
        assert!(
            uni.solve.objective <= exact.solve.objective * (1.0 + 1e-9) + 1e-9,
            "slot {slot}: uniform {} beat exact {}",
            uni.solve.objective,
            exact.solve.objective
        );
        assert!(exact.proven_optimal);
    }
}

#[test]
fn every_decision_is_feasible_across_a_whole_day() {
    use palb::core::check_feasible;
    let system = presets::section_vi();
    let trace = diurnal(&DiurnalConfig {
        peak_rate: 80_000.0,
        ..DiurnalConfig::default()
    });
    for policy_is_opt in [true, false] {
        let result = if policy_is_opt {
            run_with(
                &mut OptimizedPolicy::exact(),
                &system,
                &trace,
                &RunOptions::at(0),
            )
            .unwrap()
            .result
        } else {
            run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
                .unwrap()
                .result
        };
        for (t, d) in result.decisions.iter().enumerate() {
            check_feasible(&system, trace.slot(t), d, true, 1e-5)
                .unwrap_or_else(|e| panic!("{} slot {t}: {e}", result.policy));
        }
    }
}
