//! Cross-solver integration tests on randomized systems: the exact
//! branch-and-bound, the exhaustive oracle, the uniform heuristic and the
//! paper-literal big-M path must relate correctly on arbitrary instances,
//! not just the paper presets.

use proptest::prelude::*;

use palb::cluster::{DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
use palb::core::{
    check_feasible, solve_bb, solve_bigm, solve_exhaustive, solve_uniform_levels, BigMOptions,
    SolverConfig,
};
use palb::tuf::StepTuf;

/// A small random two-level system: 1 class, 1 DC, `servers` machines.
fn small_system(servers: usize, mu: f64, u1: f64, u2_frac: f64, d1_margin: f64) -> System {
    let u2 = (u1 * u2_frac).max(0.01);
    let tuf = StepTuf::two_level(u1, 1.0 / d1_margin, u2, 1.0 / (d1_margin * 0.1)).unwrap();
    System {
        classes: vec![RequestClass {
            name: "r".into(),
            tuf,
            transfer_cost_per_mile: 0.0,
        }],
        front_ends: vec![FrontEnd { name: "fe".into() }],
        data_centers: vec![DataCenter {
            name: "dc".into(),
            servers,
            capacity: 1.0,
            service_rate: vec![mu],
            energy_per_request: vec![0.5],
            pue: 1.0,
            prices: PriceSchedule::flat(0.1, 24),
        }],
        distance: vec![vec![0.0]],
        slot_length: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On any tiny instance, branch-and-bound matches the exhaustive
    /// oracle and the uniform heuristic never beats either.
    #[test]
    fn bb_equals_oracle_and_bounds_uniform(
        servers in 1usize..3,
        mu in 60.0..150.0f64,
        u1 in 2.0..12.0f64,
        u2_frac in 0.3..0.95f64,
        margin_frac in 0.2..0.6f64,
        load_frac in 0.2..2.0f64,
    ) {
        let d1_margin = mu * margin_frac;
        let sys = small_system(servers, mu, u1, u2_frac, d1_margin);
        let offered = mu * servers as f64 * load_frac;
        let rates = vec![vec![offered]];

        let oracle = solve_exhaustive(&sys, &rates, 0).unwrap();
        let bb = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
        let uni = solve_uniform_levels(&sys, &rates, 0).unwrap();

        prop_assert!(bb.proven_optimal);
        let tol = 1e-5 * (1.0 + oracle.solve.objective.abs());
        prop_assert!((bb.solve.objective - oracle.solve.objective).abs() < tol,
            "bb {} vs oracle {}", bb.solve.objective, oracle.solve.objective);
        prop_assert!(uni.solve.objective <= oracle.solve.objective + tol);

        // Every solver's decision satisfies the paper's constraints.
        for d in [&oracle.solve.dispatch, &bb.solve.dispatch, &uni.solve.dispatch] {
            prop_assert!(check_feasible(&sys, &rates, d, false, 1e-5).is_ok());
        }
    }

    /// The big-M continuous path, after polish, lands within 12% of the
    /// true optimum and is always feasible.
    #[test]
    fn bigm_path_is_near_optimal(
        mu in 60.0..150.0f64,
        u1 in 2.0..12.0f64,
        u2_frac in 0.3..0.95f64,
        load_frac in 0.2..1.6f64,
    ) {
        let d1_margin = mu * 0.4;
        let sys = small_system(2, mu, u1, u2_frac, d1_margin);
        let offered = mu * 2.0 * load_frac;
        let rates = vec![vec![offered]];

        let oracle = solve_exhaustive(&sys, &rates, 0).unwrap();
        let mut opts = BigMOptions::default();
        opts.penalty.inner.max_iters = 250;
        let bigm = solve_bigm(&sys, &rates, 0, &opts).unwrap();

        prop_assert!(check_feasible(&sys, &rates, &bigm.polished.dispatch, false, 1e-5).is_ok());
        prop_assert!(
            bigm.polished.objective >= 0.88 * oracle.solve.objective - 1e-6,
            "bigm {} vs oracle {}", bigm.polished.objective, oracle.solve.objective
        );
    }
}

#[test]
fn symmetry_breaking_equals_plain_on_random_batch() {
    // Deterministic mini-batch (fast): symmetry breaking must never change
    // the optimum, only the node count.
    for (i, load) in [0.3, 0.8, 1.3, 1.9].iter().enumerate() {
        let sys = small_system(2, 100.0, 6.0, 0.7, 40.0);
        let rates = vec![vec![200.0 * load]];
        let plain = solve_bb(
            &sys,
            &rates,
            i,
            &SolverConfig::exact().symmetry_breaking(false),
        )
        .unwrap();
        let sym = solve_bb(&sys, &rates, i, &SolverConfig::exact()).unwrap();
        assert!(
            (plain.solve.objective - sym.solve.objective).abs()
                < 1e-6 * (1.0 + plain.solve.objective.abs())
        );
        assert!(sym.nodes <= plain.nodes);
    }
}
