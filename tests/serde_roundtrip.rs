//! Serialization integration tests: every preset system and every
//! generator's trace must round-trip through JSON unchanged, and malformed
//! documents must be *rejected at deserialization time* — the validating
//! `try_from` wrappers are what lets the CLI accept untrusted files.

use palb::cluster::{presets, System};
use palb::tuf::StepTuf;
use palb::workload::burst::{generate as burst, BurstConfig};
use palb::workload::diurnal::{generate as diurnal, DiurnalConfig};
use palb::workload::Trace;

#[test]
fn preset_systems_round_trip() {
    for system in [
        presets::section_v(),
        presets::section_vi(),
        presets::section_vii(),
    ] {
        let json = serde_json::to_string(&system).unwrap();
        let back: System = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_classes(), system.num_classes());
        assert_eq!(back.num_dcs(), system.num_dcs());
        assert_eq!(back.slot_length, system.slot_length);
        // TUFs survive exactly.
        for (a, b) in system.classes.iter().zip(&back.classes) {
            assert_eq!(a.tuf, b.tuf);
        }
        // Prices survive exactly.
        for (a, b) in system.data_centers.iter().zip(&back.data_centers) {
            assert_eq!(a.prices, b.prices);
        }
    }
}

#[test]
fn traces_round_trip() {
    for trace in [
        diurnal(&DiurnalConfig::default()),
        burst(&BurstConfig::default()),
    ] {
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}

#[test]
fn malformed_tuf_rejected_at_parse_time() {
    // Utilities must be strictly decreasing: 4 then 10 is invalid.
    let bad = r#"[
        {"deadline": 0.5, "utility": 4.0},
        {"deadline": 1.0, "utility": 10.0}
    ]"#;
    let err = serde_json::from_str::<StepTuf>(bad).unwrap_err();
    assert!(err.to_string().contains("decreasing"), "{err}");
    // And the valid ordering parses.
    let good = r#"[
        {"deadline": 0.5, "utility": 10.0},
        {"deadline": 1.0, "utility": 4.0}
    ]"#;
    let tuf: StepTuf = serde_json::from_str(good).unwrap();
    assert_eq!(tuf.num_levels(), 2);
}

#[test]
fn negative_price_rejected_at_parse_time() {
    let mut system = presets::section_v();
    let mut json = serde_json::to_value(&system).unwrap();
    json["data_centers"][0]["prices"][0] = serde_json::json!(-0.5);
    let err = serde_json::from_value::<System>(json).unwrap_err();
    assert!(err.to_string().contains("bad price"), "{err}");
    // Untouched value still parses.
    system.data_centers[0].pue = 1.5;
    let json = serde_json::to_string(&system).unwrap();
    assert!(serde_json::from_str::<System>(&json).is_ok());
}

#[test]
fn ragged_trace_rejected_at_parse_time() {
    let bad = r#"[ [[1.0, 2.0]], [[1.0]] ]"#;
    let err = serde_json::from_str::<Trace>(bad).unwrap_err();
    assert!(err.to_string().contains("class count"), "{err}");
}

#[test]
fn pue_defaults_to_one_when_missing() {
    // Older/hand-written system files may omit the PUE extension field.
    let system = presets::section_v();
    let mut json = serde_json::to_value(&system).unwrap();
    json["data_centers"][0]
        .as_object_mut()
        .unwrap()
        .remove("pue");
    let back: System = serde_json::from_value(json).unwrap();
    assert_eq!(back.data_centers[0].pue, 1.0);
}
