//! Property-based integration tests: on *randomized* systems and
//! workloads (not just the paper's presets), the profit-aware optimizer
//! must never lose to the Balanced baseline, and the shared evaluator
//! must account consistently.

use proptest::prelude::*;

use palb::cluster::{DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
use palb::core::{evaluate, run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
use palb::tuf::StepTuf;
use palb::workload::synthetic::constant_trace;

/// A random one-level system with `dcs` data centers and 2 classes.
#[allow(clippy::too_many_arguments)]
fn random_system(
    dcs: usize,
    servers: usize,
    mu_base: f64,
    mu_spread: f64,
    utility: (f64, f64),
    price_base: f64,
    energy: (f64, f64),
    transfer: f64,
) -> System {
    let classes = vec![
        RequestClass {
            name: "a".into(),
            tuf: StepTuf::constant(utility.0, 0.10).unwrap(),
            transfer_cost_per_mile: transfer,
        },
        RequestClass {
            name: "b".into(),
            tuf: StepTuf::constant(utility.1, 0.15).unwrap(),
            transfer_cost_per_mile: transfer * 1.5,
        },
    ];
    let data_centers = (0..dcs)
        .map(|l| DataCenter {
            name: format!("dc{l}"),
            servers,
            capacity: 1.0,
            service_rate: vec![
                mu_base + mu_spread * l as f64,
                mu_base * 0.8 + mu_spread * (dcs - l) as f64,
            ],
            energy_per_request: vec![
                energy.0 * (1.0 + 0.3 * l as f64),
                energy.1 * (1.0 + 0.2 * (dcs - l) as f64),
            ],
            pue: 1.0,
            prices: PriceSchedule::flat(price_base * (1.0 + 0.15 * l as f64), 24),
        })
        .collect();
    System {
        classes,
        front_ends: vec![FrontEnd { name: "fe".into() }],
        distance: vec![(0..dcs).map(|l| 100.0 * (l + 1) as f64).collect()],
        data_centers,
        slot_length: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The optimizer never nets less than the baseline on any random
    /// instance (when its LP is feasible), and both produce feasible,
    /// consistently-accounted decisions.
    #[test]
    fn optimizer_never_loses_to_balanced(
        dcs in 1usize..4,
        servers in 1usize..4,
        mu_base in 80.0..200.0f64,
        mu_spread in 0.0..40.0f64,
        u_a in 1.0..8.0f64,
        u_b in 1.0..8.0f64,
        price in 0.05..0.4f64,
        e_a in 0.1..2.0f64,
        e_b in 0.1..2.0f64,
        transfer in 0.0..0.002f64,
        load in 0.1..2.5f64,
    ) {
        let sys = random_system(
            dcs, servers, mu_base, mu_spread, (u_a, u_b), price, (e_a, e_b), transfer,
        );
        prop_assume!(sys.validate().is_ok());
        let per_class = mu_base * servers as f64 * dcs as f64 * load / 3.0;
        let trace = constant_trace(vec![vec![per_class, per_class * 0.8]], 1);

        let opt = run_with(&mut OptimizedPolicy::exact(), &sys, &trace, &RunOptions::at(0)).map(|p| p.result);
        let Ok(opt) = opt else {
            // Infeasible level reservations can legally occur; skip.
            return Ok(());
        };
        let bal = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0)).unwrap().result;
        prop_assert!(
            opt.total_net_profit() >= bal.total_net_profit() - 1e-6 * bal.total_net_profit().abs() - 1e-6,
            "optimizer {} lost to balanced {}",
            opt.total_net_profit(),
            bal.total_net_profit()
        );

        // Evaluator consistency: re-evaluating the stored decision gives
        // the stored outcome.
        let re = evaluate(&sys, trace.slot(0), 0, &opt.decisions[0]);
        prop_assert!((re.net_profit - opt.slots[0].net_profit).abs() < 1e-9);
        // No policy invents requests.
        prop_assert!(opt.slots[0].dispatched <= opt.slots[0].offered + 1e-6);
        prop_assert!(bal.slots[0].dispatched <= bal.slots[0].offered + 1e-6);
        // Completed never exceeds dispatched.
        prop_assert!(opt.slots[0].completed <= opt.slots[0].dispatched + 1e-6);
    }

    /// Scaling all prices and utilities by the same factor scales profit
    /// by that factor (the model is positively homogeneous in dollars).
    #[test]
    fn dollar_homogeneity(scale in 0.5..3.0f64) {
        let base = random_system(2, 2, 120.0, 20.0, (4.0, 6.0), 0.2, (0.8, 1.2), 0.0005);
        let mut scaled = base.clone();
        for class in &mut scaled.classes {
            let levels: Vec<palb::tuf::Level> = class
                .tuf
                .levels()
                .iter()
                .map(|l| palb::tuf::Level { deadline: l.deadline, utility: l.utility * scale })
                .collect();
            class.tuf = StepTuf::new(levels).unwrap();
            class.transfer_cost_per_mile *= scale;
        }
        for dc in &mut scaled.data_centers {
            dc.prices = dc.prices.scaled(scale);
        }
        let trace = constant_trace(vec![vec![120.0, 90.0]], 1);
        let a = run_with(&mut OptimizedPolicy::exact(), &base, &trace, &RunOptions::at(0)).unwrap().result;
        let b = run_with(&mut OptimizedPolicy::exact(), &scaled, &trace, &RunOptions::at(0)).unwrap().result;
        prop_assert!(
            (b.total_net_profit() - scale * a.total_net_profit()).abs()
                < 1e-5 * (1.0 + b.total_net_profit().abs()),
            "scaled {} vs {} x base {}",
            b.total_net_profit(), scale, a.total_net_profit()
        );
    }
}
