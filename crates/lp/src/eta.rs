//! Product-form eta file: an implicit factorization of the basis inverse.
//!
//! Every simplex pivot multiplies the basis inverse on the left by an
//! elementary (eta) matrix built from the entering column `w = B⁻¹ A_j`:
//!
//! ```text
//!   E = I + (η − e_r) e_rᵀ      η_r = 1/w_r,  η_i = −w_i / w_r  (i ≠ r)
//! ```
//!
//! Because the sparse engine starts every cold build from the identity
//! basis (slack/artificial columns), the product of the recorded etas *is*
//! `B⁻¹`. The file supports:
//!
//! * **FTRAN** — apply `B⁻¹` to a column (used when refactorizing),
//! * **BTRAN** — apply `B⁻ᵀ` to a vector, which is exactly the simplex
//!   multiplier solve `y = B⁻ᵀ c_B` that surfaces duals from warm solves,
//! * **refactorization** (see [`crate::basis`]) — the op list is rebuilt
//!   from the original columns on a cadence so it cannot grow without
//!   bound or accumulate drift.
//!
//! Ops are stored in flat parallel arrays (no per-pivot `Vec`), so the
//! pivot hot path records an eta with two amortized pushes per nonzero.

use palb_num::nonzero;

/// Kind of a recorded operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    /// Elementary pivot matrix; `rows/vals[start..end]` hold the pre-scale
    /// column values `w_i` at every row `i ≠ pivot_row`.
    Eta,
    /// Row permutation emitted by refactorization; `rows[start..end]` holds
    /// `perm` with the semantics `out[k] = v[perm[k]]` under FTRAN.
    Perm,
}

#[derive(Debug, Clone)]
struct OpMeta {
    kind: OpKind,
    /// Pivot row (Eta only).
    row: u32,
    /// `1 / w_row` (Eta only).
    inv: f64,
    start: usize,
    end: usize,
}

/// The eta file; see the module docs.
#[derive(Debug, Clone)]
pub(crate) struct EtaFile {
    meta: Vec<OpMeta>,
    rows: Vec<u32>,
    vals: Vec<f64>,
    scratch: Vec<f64>,
    /// `false` after a failed refactorization: the op list no longer
    /// represents `B⁻¹` and BTRAN-derived duals must degrade to zeros
    /// (mirroring the dense engine's singular-basis fallback).
    valid: bool,
}

impl EtaFile {
    pub(crate) fn new() -> Self {
        // Empty-Vec construction allocates nothing; the buffers grow only
        // during refactorization, which is amortized over the pivot loop.
        EtaFile {
            meta: Vec::new(), // palb:allow(trans-alloc): `Vec::new` is alloc-free; growth is amortized refactorization
            rows: Vec::new(), // palb:allow(trans-alloc): `Vec::new` is alloc-free; growth is amortized refactorization
            vals: Vec::new(), // palb:allow(trans-alloc): `Vec::new` is alloc-free; growth is amortized refactorization
            scratch: Vec::new(), // palb:allow(trans-alloc): `Vec::new` is alloc-free; growth is amortized refactorization
            valid: true,
        }
    }

    /// Number of recorded ops (cadence metric for refactorization).
    pub(crate) fn op_count(&self) -> usize {
        self.meta.len()
    }

    /// Whether the file currently represents `B⁻¹`.
    pub(crate) fn is_valid(&self) -> bool {
        self.valid
    }

    /// Drops every op and resets to the valid empty product (`B⁻¹ = I`).
    #[cfg(test)]
    pub(crate) fn clear(&mut self) {
        self.meta.clear();
        self.rows.clear();
        self.vals.clear();
        self.valid = true;
    }

    /// Marks the file as not representing `B⁻¹` (and drops the ops — they
    /// are garbage relative to an unknown base).
    pub(crate) fn invalidate(&mut self) {
        self.meta.clear();
        self.rows.clear();
        self.vals.clear();
        self.valid = false;
    }

    /// Ensures the permutation scratch can hold `m` entries. Call from cold
    /// paths so the hot FTRAN/BTRAN never allocates.
    pub(crate) fn ensure_scratch(&mut self, m: usize) {
        if self.scratch.len() < m {
            self.scratch.resize(m, 0.0);
        }
    }

    /// Starts recording an eta op for a pivot at `row` with `inv = 1/w_row`.
    pub(crate) fn begin_eta(&mut self, row: usize, inv: f64) {
        let at = self.rows.len();
        self.meta.push(OpMeta {
            kind: OpKind::Eta,
            row: row as u32,
            inv,
            start: at,
            end: at,
        });
    }

    /// Appends one off-pivot factor `w_r` to the op opened by
    /// [`EtaFile::begin_eta`].
    pub(crate) fn push_factor(&mut self, r: u32, w: f64) {
        self.rows.push(r);
        self.vals.push(w);
        if let Some(op) = self.meta.last_mut() {
            op.end += 1;
        }
    }

    /// Records a permutation op (`out[k] = v[perm[k]]` under FTRAN).
    pub(crate) fn push_perm(&mut self, perm: &[u32]) {
        let start = self.rows.len();
        self.rows.extend_from_slice(perm);
        // `rows` and `vals` stay parallel so an op's `start..end` range
        // indexes both; permutations carry no factors, so pad with zeros.
        self.vals.resize(self.rows.len(), 0.0);
        self.meta.push(OpMeta {
            kind: OpKind::Perm,
            row: 0,
            inv: 0.0,
            start,
            end: self.rows.len(),
        });
    }

    /// FTRAN: `v ← B⁻¹ v`, applying the recorded ops oldest-first.
    // palb:hot-path(no-alloc)
    pub(crate) fn ftran(&mut self, v: &mut [f64]) {
        debug_assert!(self.scratch.len() >= v.len(), "call ensure_scratch first");
        for op in &self.meta {
            match op.kind {
                OpKind::Eta => {
                    let row = op.row as usize;
                    v[row] *= op.inv;
                    let pv = v[row];
                    if nonzero(pv) {
                        for t in op.start..op.end {
                            v[self.rows[t] as usize] -= self.vals[t] * pv;
                        }
                    }
                }
                OpKind::Perm => {
                    let m = op.end - op.start;
                    for k in 0..m {
                        self.scratch[k] = v[self.rows[op.start + k] as usize];
                    }
                    v[..m].copy_from_slice(&self.scratch[..m]);
                }
            }
        }
    }

    /// BTRAN: `y ← B⁻ᵀ y`, applying transposed ops newest-first. This is
    /// the simplex-multiplier solve: seeded with `c_B` it returns the duals
    /// `y = B⁻ᵀ c_B` in standard-form row space.
    // palb:hot-path(no-alloc)
    pub(crate) fn btran(&mut self, y: &mut [f64]) {
        debug_assert!(self.scratch.len() >= y.len(), "call ensure_scratch first");
        for op in self.meta.iter().rev() {
            match op.kind {
                OpKind::Eta => {
                    let row = op.row as usize;
                    let mut acc = 0.0;
                    for t in op.start..op.end {
                        acc += self.vals[t] * y[self.rows[t] as usize];
                    }
                    y[row] = op.inv * (y[row] - acc);
                }
                OpKind::Perm => {
                    let m = op.end - op.start;
                    for k in 0..m {
                        self.scratch[self.rows[op.start + k] as usize] = y[k];
                    }
                    y[..m].copy_from_slice(&self.scratch[..m]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Record the pivot sequence for a 2x2 basis change and check that
    /// FTRAN/BTRAN agree with the explicit inverse.
    ///
    /// Pivot at row 0 on column w = [2, 4]: E = [[1/2, 0], [-2, 1]].
    #[test]
    fn single_eta_ftran_btran() {
        let mut eta = EtaFile::new();
        eta.ensure_scratch(2);
        eta.begin_eta(0, 0.5);
        eta.push_factor(1, 4.0);

        let mut v = [2.0, 4.0];
        eta.ftran(&mut v);
        // B⁻¹ w must be the unit vector of the pivot row.
        assert_eq!(v, [1.0, 0.0]);

        // Eᵀ = [[1/2, -2], [0, 1]].
        let mut y = [1.0, 1.0];
        eta.btran(&mut y);
        assert!((y[0] - 0.5 * (1.0 - 4.0)).abs() < 1e-15);
        assert!((y[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn perm_op_round_trips() {
        let mut eta = EtaFile::new();
        eta.ensure_scratch(3);
        eta.push_perm(&[2, 0, 1]);
        let mut v = [10.0, 20.0, 30.0];
        eta.ftran(&mut v);
        assert_eq!(v, [30.0, 10.0, 20.0]);
        // BTRAN applies the transpose: Pᵀ P = I.
        let mut y = [30.0, 10.0, 20.0];
        eta.btran(&mut y);
        assert_eq!(y, [10.0, 20.0, 30.0]);
    }

    #[test]
    fn invalidate_clears_ops() {
        let mut eta = EtaFile::new();
        eta.begin_eta(0, 1.0);
        eta.push_factor(1, 2.0);
        assert_eq!(eta.op_count(), 1);
        eta.invalidate();
        assert!(!eta.is_valid());
        assert_eq!(eta.op_count(), 0);
        eta.clear();
        assert!(eta.is_valid());
    }
}
