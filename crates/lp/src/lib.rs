// palb:lint-tier = lib
//! # palb-lp — two-phase simplex linear-programming solver
//!
//! Self-contained LP solver used throughout the `palb` workspace in place of
//! the commercial/external solvers (CPLEX, AIMMS, GLPK) that the paper
//! *Profit Aware Load Balancing for Distributed Cloud Data Centers* (Liu et
//! al., IPPS 2013) relied on.
//!
//! The solver targets the block-sparse dispatch LPs that the profit-aware
//! formulation produces (per-server blocks coupled by dispatch rows):
//!
//! * builder-style model API with variable bounds and `≤ / = / ≥` rows,
//! * standard-form conversion with bound shifting, free-variable splitting
//!   and row equilibration,
//! * two-phase primal simplex with Dantzig pricing and an automatic,
//!   permanent fallback to Bland's rule (termination guarantee),
//! * two interchangeable engines behind one API: a dense tableau and a
//!   sparse product-form engine ([`EngineKind`]) with eta-file BTRAN duals
//!   and optional block pricing ([`BlockStructure`]) — bitwise-equal
//!   results on every input, chosen by a size heuristic under
//!   [`EngineKind::Auto`],
//! * duals recovered from the final basis by an independent dense solve.
//!
//! ## Example
//!
//! ```
//! use palb_lp::{Problem, Rel};
//!
//! // max 3x + 5y  s.t.  x ≤ 4,  2y ≤ 12,  3x + 2y ≤ 18,  x,y ≥ 0
//! let mut p = Problem::maximize();
//! let x = p.add_nonneg("x", 3.0);
//! let y = p.add_nonneg("y", 5.0);
//! p.add_con("cap_x", &[(x, 1.0)], Rel::Le, 4.0);
//! p.add_con("cap_y", &[(y, 2.0)], Rel::Le, 12.0);
//! p.add_con("joint", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
//!
//! let sol = p.solve().unwrap();
//! assert!((sol.objective() - 36.0).abs() < 1e-6);
//! assert!((sol.value(x) - 2.0).abs() < 1e-6);
//! assert!((sol.value(y) - 6.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod basis;
pub mod dense;
mod error;
mod eta;
mod linalg;
mod presolve;
mod problem;
mod simplex;
mod solution;
pub mod sparse;
mod standard;
mod workspace;
mod writer;

pub use error::{LpError, SimplexPhase};
pub use problem::{ConId, Problem, Rel, Sense, VarId};
pub use simplex::{EngineKind, PivotRule, SolveOptions};
pub use solution::Solution;
pub use sparse::BlockStructure;
pub use workspace::{Basis, Workspace, WorkspaceStats};

pub use linalg::{solve as solve_linear_system, SingularMatrix};
