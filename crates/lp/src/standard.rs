//! Conversion of a user-facing [`Problem`] to simplex standard form:
//!
//! ```text
//!   minimize  cᵀx
//!   subject to A x {≤,=,≥} b,   b ≥ 0,   x ≥ 0
//! ```
//!
//! Handles variable shifts for finite lower bounds, plus/minus splits for
//! free variables, explicit rows for finite upper bounds, right-hand-side
//! sign normalization, and per-row equilibration scaling.

use crate::error::LpError;
use crate::problem::{Problem, Rel, Sense};

/// Sparse row-major (CSR) standard-form constraint matrix.
///
/// The standard form of a dispatch LP is overwhelmingly zero — a handful
/// of structural terms per row plus one identity column — so
/// materializing it densely costs `O(m·n)` allocation and memory traffic
/// before the first pivot, which on large instances dwarfs the sparse
/// engine's entire solve. Rows are stored in strictly ascending column
/// order and carry exactly the values the dense build stored, so
/// scattering a row into a zeroed dense buffer reproduces the dense
/// matrix bit for bit.
#[derive(Debug, Clone)]
pub(crate) struct CsrMatrix {
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    pub(crate) fn with_capacity(n_cols: usize, rows: usize, nnz: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        CsrMatrix {
            n_cols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Appends an entry to the row currently being assembled. Entries
    /// must arrive in strictly ascending column order within each row.
    pub(crate) fn push(&mut self, j: usize, v: f64) {
        debug_assert!(j < self.n_cols, "column {j} out of range");
        debug_assert!(
            {
                let start = self.row_ptr.last().copied().unwrap_or(0);
                self.col_idx[start..]
                    .last()
                    .is_none_or(|&last| (last as usize) < j)
            },
            "CSR entries must arrive in ascending column order"
        );
        self.col_idx.push(j as u32);
        self.vals.push(v);
    }

    /// Seals the row currently being assembled.
    pub(crate) fn finish_row(&mut self) {
        self.row_ptr.push(self.col_idx.len());
    }

    /// Number of rows.
    pub(crate) fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    pub(crate) fn cols(&self) -> usize {
        self.n_cols
    }

    /// Borrows row `r` as parallel (column, value) slices.
    pub(crate) fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Scatters row `r` into `dst` after zero-filling it; `dst` must be
    /// at least `cols()` long.
    pub(crate) fn scatter_row_into(&self, r: usize, dst: &mut [f64]) {
        dst.fill(0.0);
        let (cols, vals) = self.row(r);
        for (&j, &v) in cols.iter().zip(vals) {
            dst[j as usize] = v;
        }
    }

    /// Entry `(r, j)`, zero when absent.
    #[cfg(test)]
    pub(crate) fn get(&self, r: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(r);
        cols.binary_search(&(j as u32)).map_or(0.0, |t| vals[t])
    }
}

/// How a user variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VarMapping {
    /// `x = lower + column`
    Shifted { col: usize, lower: f64 },
    /// `x = pos − neg` (free variable split)
    Split { pos: usize, neg: usize },
}

/// Role of a standard-form column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColKind {
    /// Transformed user variable.
    Structural,
    /// Slack of row `r` (`≤` rows).
    Slack(usize),
    /// Surplus of row `r` (`≥` rows).
    Surplus(usize),
    /// Artificial of row `r` (`≥` and `=` rows).
    Artificial(usize),
}

/// Origin of a standard-form row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowOrigin {
    /// User constraint with the given index.
    Constraint(usize),
    /// Upper-bound row synthesized for the given user variable.
    UpperBound(usize),
}

/// The standard-form model handed to the simplex engine.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// Constraint matrix, `m x n_cols` (structural + slack/surplus/artificial),
    /// stored sparse row-major; engines scatter rows on demand.
    pub a: CsrMatrix,
    /// Right-hand side, all entries `≥ 0`.
    pub b: Vec<f64>,
    /// Phase-2 cost vector (internal minimize sense), length `n_cols`.
    pub c: Vec<f64>,
    /// Role of every column.
    pub col_kinds: Vec<ColKind>,
    /// Relation of every row after rhs normalization.
    #[allow(dead_code)] // retained for debugging / future presolve passes
    pub row_rels: Vec<Rel>,
    /// Where each row came from.
    pub row_origins: Vec<RowOrigin>,
    /// Per-row multiplier applied during scaling/normalization; the original
    /// user row satisfies `user_row = stored_row / row_scale` (sign included).
    pub row_scale: Vec<f64>,
    /// Per-row constant subtracted from the user rhs by lower-bound shifts
    /// *before* normalization: `stored_b = (user_rhs - row_shift) * row_scale`.
    /// Lets an incremental workspace re-map a patched user rhs without
    /// rebuilding the whole standard form.
    pub row_shift: Vec<f64>,
    /// Recovery recipe for each user variable.
    pub var_map: Vec<VarMapping>,
    /// Constant added to the user objective by variable shifts (consumed
    /// by `user_objective`, which production code replaces with a direct
    /// re-evaluation of `cᵀx` — kept for the conversion tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub obj_offset: f64,
    /// Whether the user problem was a maximization (internal sense is
    /// always minimize).
    pub maximize: bool,
}

impl StandardForm {
    /// Number of rows.
    pub fn m(&self) -> usize {
        self.b.len()
    }

    /// Number of columns.
    pub fn n(&self) -> usize {
        self.c.len()
    }

    /// Recovers the user-space variable vector from standard-form values.
    pub fn recover(&self, x_std: &[f64]) -> Vec<f64> {
        self.var_map
            .iter()
            .map(|m| match *m {
                VarMapping::Shifted { col, lower } => lower + x_std[col],
                VarMapping::Split { pos, neg } => x_std[pos] - x_std[neg],
            })
            .collect()
    }

    /// Converts an internal (minimize) objective value on the transformed
    /// variables back to the user objective value.
    #[cfg(test)]
    pub fn user_objective(&self, z_internal: f64) -> f64 {
        let structural = if self.maximize {
            -z_internal
        } else {
            z_internal
        };
        structural + self.obj_offset
    }
}

/// Builds the standard form for `p`.
pub(crate) fn build(p: &Problem) -> Result<StandardForm, LpError> {
    if p.num_vars() == 0 {
        return Err(LpError::BadModel("problem has no variables".into()));
    }

    // --- 1. Variable transformation -------------------------------------
    let mut var_map = Vec::with_capacity(p.num_vars());
    let mut n_structural = 0usize;
    let mut obj_offset = 0.0;
    // Upper-bound rows to synthesize: (structural terms, rhs, user var, shift).
    let mut ub_rows: Vec<(Vec<(usize, f64)>, f64, usize, f64)> = Vec::new();

    for (vi, v) in p.vars.iter().enumerate() {
        if v.lower.is_finite() {
            let col = n_structural;
            n_structural += 1;
            var_map.push(VarMapping::Shifted {
                col,
                lower: v.lower,
            });
            obj_offset += v.objective * v.lower;
            if v.upper.is_finite() {
                ub_rows.push((vec![(col, 1.0)], v.upper - v.lower, vi, v.lower));
            }
        } else {
            let pos = n_structural;
            let neg = n_structural + 1;
            n_structural += 2;
            var_map.push(VarMapping::Split { pos, neg });
            if v.upper.is_finite() {
                ub_rows.push((vec![(pos, 1.0), (neg, -1.0)], v.upper, vi, 0.0));
            }
        }
    }

    // --- 2. Assemble raw rows (structural part only) ---------------------
    struct RawRow {
        terms: Vec<(usize, f64)>,
        rel: Rel,
        rhs: f64,
        origin: RowOrigin,
        shift: f64,
    }
    let mut raw: Vec<RawRow> = Vec::with_capacity(p.num_cons() + ub_rows.len());

    for (ci, con) in p.cons.iter().enumerate() {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(con.terms.len() + 1);
        let mut rhs = con.rhs;
        let mut shift = 0.0;
        for &(uv, coef) in &con.terms {
            match var_map[uv] {
                VarMapping::Shifted { col, lower } => {
                    terms.push((col, coef));
                    rhs -= coef * lower;
                    shift += coef * lower;
                }
                VarMapping::Split { pos, neg } => {
                    terms.push((pos, coef));
                    terms.push((neg, -coef));
                }
            }
        }
        raw.push(RawRow {
            terms,
            rel: con.rel,
            rhs,
            origin: RowOrigin::Constraint(ci),
            shift,
        });
    }
    for (terms, rhs, vi, shift) in ub_rows {
        raw.push(RawRow {
            terms,
            rel: Rel::Le,
            rhs,
            origin: RowOrigin::UpperBound(vi),
            shift,
        });
    }

    // --- 3. Normalize: rhs ≥ 0, then equilibrate rows --------------------
    let m = raw.len();
    let mut row_scale = vec![1.0; m];
    for (r, row) in raw.iter_mut().enumerate() {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for t in &mut row.terms {
                t.1 = -t.1;
            }
            row.rel = match row.rel {
                Rel::Le => Rel::Ge,
                Rel::Ge => Rel::Le,
                Rel::Eq => Rel::Eq,
            };
            row_scale[r] = -1.0;
        }
        // Equilibration: divide by the max |coefficient| so pivot magnitudes
        // stay near 1 even when the model mixes per-second service rates
        // with sub-hour deadlines.
        let max_c = row
            .terms
            .iter()
            .map(|&(_, c)| c.abs())
            .fold(0.0_f64, f64::max);
        if max_c > 0.0 && (max_c > 1e3 || max_c < 1e-3) {
            let s = 1.0 / max_c;
            for t in &mut row.terms {
                t.1 *= s;
            }
            row.rhs *= s;
            row_scale[r] *= s;
        }
    }

    // --- 4. Count auxiliary columns and build the matrix -----------------
    let n_slack = raw.iter().filter(|r| r.rel == Rel::Le).count();
    let n_surplus = raw.iter().filter(|r| r.rel == Rel::Ge).count();
    let n_artificial = raw.iter().filter(|r| r.rel != Rel::Le).count();
    let n_cols = n_structural + n_slack + n_surplus + n_artificial;

    let nnz = raw.iter().map(|r| r.terms.len()).sum::<usize>() + n_slack + n_surplus + n_artificial;
    let mut a = CsrMatrix::with_capacity(n_cols, m, nnz);
    let mut b = vec![0.0; m];
    let mut col_kinds = vec![ColKind::Structural; n_structural];
    col_kinds.reserve(n_cols - n_structural);
    let mut row_rels = Vec::with_capacity(m);
    let mut row_origins = Vec::with_capacity(m);

    // Structural terms are already sorted ascending (constraint terms are
    // column-merged at the `Problem` layer, and column indices follow
    // variable order), slack/surplus columns come next, and artificial
    // columns occupy the final block — so each row can be emitted
    // left-to-right in one pass.
    let mut next_col = n_structural;
    let mut next_art = n_structural + n_slack + n_surplus;
    for (r, row) in raw.iter().enumerate() {
        for &(j, coef) in &row.terms {
            a.push(j, coef);
        }
        b[r] = row.rhs;
        row_rels.push(row.rel);
        row_origins.push(row.origin);
        match row.rel {
            Rel::Le => {
                a.push(next_col, 1.0);
                col_kinds.push(ColKind::Slack(r));
                next_col += 1;
            }
            Rel::Ge => {
                a.push(next_col, -1.0);
                col_kinds.push(ColKind::Surplus(r));
                next_col += 1;
                a.push(next_art, 1.0);
                next_art += 1;
            }
            Rel::Eq => {
                a.push(next_art, 1.0);
                next_art += 1;
            }
        }
        a.finish_row();
    }
    // Artificial columns go last so the engine can ban them cheaply.
    for (r, row) in raw.iter().enumerate() {
        if row.rel != Rel::Le {
            col_kinds.push(ColKind::Artificial(r));
        }
    }
    debug_assert_eq!(next_col, n_structural + n_slack + n_surplus);
    debug_assert_eq!(next_art, n_cols);
    debug_assert_eq!(col_kinds.len(), n_cols);

    // --- 5. Cost vector (internal minimize) ------------------------------
    let maximize = p.sense == Sense::Maximize;
    let mut c = vec![0.0; n_cols];
    for (vi, v) in p.vars.iter().enumerate() {
        let coef = if maximize { -v.objective } else { v.objective };
        match var_map[vi] {
            VarMapping::Shifted { col, .. } => c[col] += coef,
            VarMapping::Split { pos, neg } => {
                c[pos] += coef;
                c[neg] -= coef;
            }
        }
    }

    let row_shift = raw.iter().map(|r| r.shift).collect();
    Ok(StandardForm {
        a,
        b,
        c,
        col_kinds,
        row_rels,
        row_origins,
        row_scale,
        row_shift,
        var_map,
        obj_offset,
        maximize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Rel};

    #[test]
    fn nonneg_vars_map_identity() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        p.add_con("c", &[(x, 2.0)], Rel::Le, 4.0);
        let sf = build(&p).unwrap();
        assert_eq!(sf.var_map[0], VarMapping::Shifted { col: 0, lower: 0.0 });
        assert_eq!(sf.m(), 1);
        assert_eq!(sf.b, vec![4.0]);
        // maximize 3x -> internal minimize -3x
        assert_eq!(sf.c[0], -3.0);
        assert_eq!(sf.user_objective(-6.0), 6.0);
    }

    #[test]
    fn lower_bound_shifts_rhs_and_offset() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 2.0, f64::INFINITY, 5.0);
        p.add_con("c", &[(x, 1.0)], Rel::Le, 10.0);
        let sf = build(&p).unwrap();
        // x = 2 + x'; row becomes x' <= 8; objective offset 10.
        assert_eq!(sf.b, vec![8.0]);
        assert!((sf.obj_offset - 10.0).abs() < 1e-12);
        assert_eq!(sf.recover(&[3.0]), vec![5.0]);
    }

    #[test]
    fn free_var_splits() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_con("c", &[(x, 1.0)], Rel::Eq, -3.0);
        let sf = build(&p).unwrap();
        assert_eq!(sf.var_map[0], VarMapping::Split { pos: 0, neg: 1 });
        // rhs was negative: row flipped, scale -1 recorded.
        assert_eq!(sf.b, vec![3.0]);
        assert_eq!(sf.row_scale, vec![-1.0]);
        assert_eq!(sf.recover(&[0.0, 3.0]), vec![-3.0]);
    }

    #[test]
    fn upper_bounds_become_rows() {
        let mut p = Problem::maximize();
        p.add_var("x", 1.0, 4.0, 1.0);
        let sf = build(&p).unwrap();
        assert_eq!(sf.m(), 1);
        assert_eq!(sf.row_origins[0], RowOrigin::UpperBound(0));
        assert_eq!(sf.b, vec![3.0]); // 4 - 1
        assert_eq!(sf.row_rels[0], Rel::Le);
    }

    #[test]
    fn ge_rows_get_surplus_and_artificial() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 1.0);
        p.add_con("c", &[(x, 1.0)], Rel::Ge, 2.0);
        let sf = build(&p).unwrap();
        let kinds = &sf.col_kinds;
        assert!(kinds.contains(&ColKind::Surplus(0)));
        assert!(kinds.contains(&ColKind::Artificial(0)));
    }

    #[test]
    fn huge_coefficients_are_equilibrated() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 1.0);
        p.add_con("big", &[(x, 5.0e6)], Rel::Le, 1.0e7);
        let sf = build(&p).unwrap();
        assert!((sf.a.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((sf.b[0] - 2.0).abs() < 1e-12);
        assert!((sf.row_scale[0] - 1.0 / 5.0e6).abs() < 1e-18);
    }

    #[test]
    fn empty_problem_is_rejected() {
        let p = Problem::maximize();
        assert!(matches!(build(&p), Err(LpError::BadModel(_))));
    }
}
