//! Dense row-major matrix used by the simplex tableau and the basis solver.
//!
//! The solver operates on problems with at most a few thousand rows and
//! columns, where a contiguous dense layout beats any sparse structure both
//! in simplicity and in cache behaviour (see the Rust Performance Book's
//! guidance on flat `Vec` storage versus nested allocations).

use std::fmt;
use std::ops::{Index, IndexMut};

use palb_num::is_zero;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major slice of rows.
    ///
    /// # Panics
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to DenseMatrix::from_rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow two distinct rows, one of them mutably: `(row a, row b mut)`.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn row_pair_mut(&mut self, a: usize, b: usize) -> (&[f64], &mut [f64]) {
        assert_ne!(a, b, "row_pair_mut requires distinct rows");
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&lo[a * c..(a + 1) * c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            (&hi[..c], &mut lo[b * c..(b + 1) * c])
        }
    }

    /// Extract column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Extract column `j` into `out` without allocating. `out` must have
    /// exactly `rows` elements; callers keep one scratch buffer alive across
    /// many extractions (the simplex does this once per pivot).
    ///
    /// # Panics
    /// Panics if `out.len() != self.rows()`.
    pub fn col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "col_into scratch length mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.data[i * self.cols + j];
        }
    }

    /// Scales row `i` by `s`.
    pub fn scale_row(&mut self, i: usize, s: f64) {
        for v in self.row_mut(i) {
            *v *= s;
        }
    }

    /// Performs `row[dst] += s * row[src]` (a GEMV-free axpy across rows).
    pub fn axpy_rows(&mut self, dst: usize, src: usize, s: f64) {
        if is_zero(s) {
            return;
        }
        let (src_row, dst_row) = self.row_pair_mut(src, dst);
        for (d, &v) in dst_row.iter_mut().zip(src_row) {
            *d += s * v;
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        self.data
            .chunks_exact(self.cols)
            .map(|row| dot(row, x))
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ * y`.
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.rows,
            "dimension mismatch in mul_vec_transposed"
        );
        let mut out = vec![0.0; self.cols];
        for (row, &yi) in self.data.chunks_exact(self.cols).zip(y) {
            if is_zero(yi) {
                continue;
            }
            for (o, &v) in out.iter_mut().zip(row) {
                *o += yi * v;
            }
        }
        out
    }

    /// Returns the largest absolute entry (or 0.0 when empty).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = DenseMatrix::zeros(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert!(m.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_identity() {
        let m = DenseMatrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn col_into_matches_col() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut buf = vec![0.0; 2];
        for j in 0..3 {
            m.col_into(j, &mut buf);
            assert_eq!(buf, m.col(j));
        }
    }

    #[test]
    #[should_panic(expected = "scratch length mismatch")]
    fn col_into_rejects_wrong_length() {
        let m = DenseMatrix::identity(3);
        let mut buf = vec![0.0; 2];
        m.col_into(0, &mut buf);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn scale_and_axpy_rows() {
        let mut m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        m.scale_row(0, 2.0);
        assert_eq!(m.row(0), &[2.0, 4.0]);
        m.axpy_rows(1, 0, -1.0);
        assert_eq!(m.row(1), &[8.0, 16.0]);
    }

    #[test]
    fn row_pair_mut_both_orders() {
        let mut m = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        {
            let (a, b) = m.row_pair_mut(0, 2);
            assert_eq!(a[0], 1.0);
            b[0] = 30.0;
        }
        {
            let (a, b) = m.row_pair_mut(2, 0);
            assert_eq!(a[0], 30.0);
            b[0] = 10.0;
        }
        assert_eq!(m.row(0), &[10.0]);
        assert_eq!(m.row(2), &[30.0]);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.mul_vec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn max_abs_scans_all_entries() {
        let m = DenseMatrix::from_rows(&[vec![1.0, -7.0], vec![4.0, 5.0]]);
        assert_eq!(m.max_abs(), 7.0);
    }
}
