//! Persistent, incremental solve engine.
//!
//! A [`Workspace`] owns a [`Problem`] together with its standard form and
//! the evolving simplex tableau, so a *sequence* of closely related solves
//! can share one set of allocations and warm-start each other:
//!
//! * [`Workspace::set_objective`] / [`Workspace::set_rhs`] patch the model
//!   in place (the constraint matrix is immutable — only costs and
//!   right-hand sides may move).
//! * [`Workspace::solve`] re-optimizes from the previous optimal basis:
//!   patched right-hand sides are repaired by the dual simplex (the old
//!   basis stays dual-feasible when only `b` moved), then patched
//!   objectives are absorbed into the reduced-cost row and the primal
//!   phase-2 loop runs to optimality. Cold re-initialization is the
//!   universal fallback whenever the warm path is not applicable or runs
//!   into numerical trouble, so a warm solve always returns the same
//!   optimum a cold solve would (see DESIGN.md, "Solver architecture").
//! * [`Workspace::basis`] / [`Workspace::restore_basis`] snapshot and
//!   re-install a basis (with refactorization), for callers that want to
//!   return to an earlier point of a search tree.
//!
//! Workspace solves skip presolve, and surface real duals: warm solves
//! read `y = B⁻ᵀ c_B` straight from the engine (the dense tableau's
//! identity-column reduced costs in `O(m)`, or a BTRAN through the sparse
//! engine's eta file), while cold solves recover duals exactly as
//! [`Problem::solve`] does on the same engine (dense: the independent
//! `Bᵀ` factorization; sparse: the same eta BTRAN).
//!
//! The workspace runs on either simplex engine ([`EngineKind`] in the
//! construction options — [`EngineKind::Auto`] picks by size). The two
//! engines are bitwise-equal on every input — objective, values, pivot
//! sequence, status — so the choice never changes a decision; duals agree
//! mathematically but are produced by engine-specific arithmetic (see
//! [`crate::sparse`]).

use palb_num::{is_zero, nonzero};

use crate::error::LpError;
use crate::problem::{ConId, Problem, VarId};
use crate::simplex::{self, DualScratch, SolveOptions, Tableau};
use crate::solution::Solution;
use crate::sparse::SparseTableau;
use crate::standard::{self, ColKind, StandardForm, VarMapping};

/// Counters describing how a [`Workspace`] has been solving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Solves answered by the warm path (dual repair + primal re-entry).
    pub warm_solves: usize,
    /// Solves answered by a cold tableau rebuild (first solve, structural
    /// invalidation, or fallback).
    pub cold_solves: usize,
    /// Simplex pivots spent inside warm solves.
    pub warm_pivots: usize,
    /// Simplex pivots spent inside cold solves.
    pub cold_pivots: usize,
    /// Warm attempts that had to fall back to a cold solve.
    pub fallbacks: usize,
    /// FTRAN-equivalent column extractions performed by the sparse engine
    /// (zero when running dense).
    pub ftran_total: u64,
    /// Nonzeros touched by those extractions.
    pub ftran_nnz_total: u64,
    /// Sparse-basis refactorizations (eta-file compressions).
    pub refactor_total: u64,
}

/// An opaque snapshot of a simplex basis, produced by
/// [`Workspace::basis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    cols: Vec<usize>,
}

/// The tableau engine a workspace runs on. Both variants expose the same
/// warm-start surface and produce bitwise-identical results; the sparse
/// engine additionally meters FTRAN work and supports BTRAN duals.
enum Engine {
    Dense(Tableau),
    Sparse(SparseTableau),
}

impl Engine {
    fn build(sf: &StandardForm, opts: &SolveOptions) -> Self {
        if simplex::use_sparse(opts.engine, sf.m(), sf.n()) {
            Engine::Sparse(SparseTableau::new(sf, opts))
        } else {
            Engine::Dense(Tableau::new(sf, opts))
        }
    }

    fn set_call_options(&mut self, size: usize, opts: &SolveOptions) {
        let bland_after = opts.bland_after.unwrap_or(20 * size + 200);
        let max_iters = opts.max_iters.unwrap_or(200 * size + 1000);
        match self {
            Engine::Dense(t) => {
                t.tol = opts.tol;
                t.rule = opts.rule;
                t.bland_after = bland_after;
                t.max_iters = max_iters;
                t.pivots = 0;
            }
            Engine::Sparse(t) => {
                t.tol = opts.tol;
                t.rule = opts.rule;
                t.bland_after = bland_after;
                t.max_iters = max_iters;
                t.pivots = 0;
            }
        }
    }

    fn pivots(&self) -> usize {
        match self {
            Engine::Dense(t) => t.pivots,
            Engine::Sparse(t) => t.pivots,
        }
    }

    fn tol(&self) -> f64 {
        match self {
            Engine::Dense(t) => t.tol,
            Engine::Sparse(t) => t.tol,
        }
    }

    fn b_norm(&self) -> f64 {
        match self {
            Engine::Dense(t) => t.b_norm,
            Engine::Sparse(t) => t.b_norm,
        }
    }

    fn call_options_snapshot(&self) -> (f64, crate::simplex::PivotRule, usize, usize) {
        match self {
            Engine::Dense(t) => (t.tol, t.rule, t.bland_after, t.max_iters),
            Engine::Sparse(t) => (t.tol, t.rule, t.bland_after, t.max_iters),
        }
    }

    fn basis(&self) -> &[usize] {
        match self {
            Engine::Dense(t) => &t.basis,
            Engine::Sparse(t) => &t.basis,
        }
    }

    fn run_phase1(&mut self) -> Result<(), LpError> {
        match self {
            Engine::Dense(t) => t.run_phase1(),
            Engine::Sparse(t) => t.run_phase1(),
        }
    }

    fn run_phase2(&mut self) -> Result<(), LpError> {
        match self {
            Engine::Dense(t) => t.run_phase2(),
            Engine::Sparse(t) => t.run_phase2(),
        }
    }

    fn dual_simplex(&mut self) -> Result<(), LpError> {
        match self {
            Engine::Dense(t) => t.dual_simplex(),
            Engine::Sparse(t) => t.dual_simplex(),
        }
    }

    fn x_std(&self) -> Vec<f64> {
        match self {
            Engine::Dense(t) => t.x_std(),
            Engine::Sparse(t) => t.x_std(),
        }
    }

    fn bump_b_norm(&mut self, abs_rhs: f64) {
        match self {
            Engine::Dense(t) => t.bump_b_norm(abs_rhs),
            Engine::Sparse(t) => t.bump_b_norm(abs_rhs),
        }
    }

    fn fold_rhs(&mut self, jc: usize, delta: f64) {
        match self {
            Engine::Dense(t) => t.fold_rhs(jc, delta),
            Engine::Sparse(t) => t.fold_rhs(jc, delta),
        }
    }

    fn any_rhs_below(&self, feas_tol: f64) -> bool {
        match self {
            Engine::Dense(t) => t.any_rhs_below(feas_tol),
            Engine::Sparse(t) => t.any_rhs_below(feas_tol),
        }
    }

    fn dual_feasible(&self, slack_tol: f64) -> bool {
        match self {
            Engine::Dense(t) => t.dual_feasible(slack_tol),
            Engine::Sparse(t) => t.dual_feasible(slack_tol),
        }
    }

    fn apply_obj_delta(&mut self, col: usize, delta: f64, basic_row: Option<usize>) {
        match self {
            Engine::Dense(t) => t.apply_obj_delta(col, delta, basic_row),
            Engine::Sparse(t) => t.apply_obj_delta(col, delta, basic_row),
        }
    }

    fn restore_to_basis(&mut self, sf: &StandardForm, cols: &[usize]) -> Result<(), LpError> {
        match self {
            Engine::Dense(t) => t.restore_to_basis(sf, cols),
            Engine::Sparse(t) => t.restore_to_basis(sf, cols),
        }
    }

    /// Duals in standard-form row space, read in `O(m)` (dense) or via
    /// BTRAN (sparse); `None` when the sparse eta file cannot serve them.
    fn warm_duals_std(&mut self, sf: &StandardForm, ident_cols: &[usize]) -> Option<Vec<f64>> {
        match self {
            // Each identity column's reduced cost is `0 − y_r`: its
            // original cost is zero and its column is `±e_r` (the `+1`
            // arm is the one `ident_cols` tracks).
            Engine::Dense(t) => Some(ident_cols.iter().map(|&jc| -t.cost2[jc]).collect()),
            Engine::Sparse(t) => t.duals_std(sf),
        }
    }

    /// Drains the sparse engine's work counters (dense reports zeros).
    fn take_counters(&mut self) -> (u64, u64, u64) {
        match self {
            Engine::Dense(_) => (0, 0, 0),
            Engine::Sparse(t) => {
                let out = (t.ftran_ops, t.ftran_nnz, t.refactors);
                t.ftran_ops = 0;
                t.ftran_nnz = 0;
                t.refactors = 0;
                out
            }
        }
    }
}

/// A persistent solver workspace; see the module docs.
pub struct Workspace {
    problem: Problem,
    opts: SolveOptions,
    sf: StandardForm,
    engine: Engine,
    /// The engine holds an optimal basis for the *patched-in* `sf`.
    solved: bool,
    /// Identity column of each row (slack for `≤` rows, artificial
    /// otherwise): reading that tableau column yields the corresponding
    /// column of `B⁻¹`, which is what lets an RHS patch update the
    /// transformed right-hand side in `O(m)`.
    ident_cols: Vec<usize>,
    obj_dirty: Vec<bool>,
    dirty_objs: Vec<usize>,
    rhs_dirty: Vec<bool>,
    dirty_rhs: Vec<usize>,
    /// Largest |user rhs| seen; scales the post-warm feasibility guard.
    rhs_norm: f64,
    /// Reused buffers for cold-path dual recovery (`Bᵀ y = c_B`).
    dual_scratch: DualScratch,
    stats: WorkspaceStats,
}

impl Workspace {
    /// Builds a workspace around a snapshot of `p`. The standard form is
    /// converted once here; later solves only patch it. The engine choice
    /// (and any block-structure metadata in `opts`) is resolved now and
    /// kept for the workspace's lifetime.
    pub fn new(p: &Problem, opts: &SolveOptions) -> Result<Self, LpError> {
        let problem = p.clone();
        let sf = standard::build(&problem)?;
        let engine = Engine::build(&sf, opts);
        let ident_cols = identity_columns(&sf);
        let rhs_norm = problem
            .cons
            .iter()
            .fold(0.0_f64, |acc, c| acc.max(c.rhs.abs()));
        Ok(Workspace {
            obj_dirty: vec![false; problem.num_vars()],
            dirty_objs: Vec::new(),
            rhs_dirty: vec![false; problem.num_cons()],
            dirty_rhs: Vec::new(),
            rhs_norm,
            problem,
            opts: opts.clone(),
            sf,
            engine,
            solved: false,
            ident_cols,
            dual_scratch: DualScratch::new(),
            stats: WorkspaceStats::default(),
        })
    }

    /// The workspace's current (patched) model.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Solve statistics accumulated since creation (or the last
    /// [`Workspace::reset_stats`]).
    pub fn stats(&self) -> &WorkspaceStats {
        &self.stats
    }

    /// Zeroes the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }

    /// Patches a variable's objective coefficient. No-op if unchanged.
    pub fn set_objective(&mut self, v: VarId, objective: f64) {
        if self.problem.objective_coef(v) == objective {
            return;
        }
        self.problem.set_objective(v, objective);
        let vi = v.index();
        if !self.obj_dirty[vi] {
            self.obj_dirty[vi] = true;
            self.dirty_objs.push(vi);
        }
    }

    /// Patches a constraint's right-hand side. No-op if unchanged.
    pub fn set_rhs(&mut self, c: ConId, rhs: f64) {
        if self.problem.rhs(c) == rhs {
            return;
        }
        self.problem.set_rhs(c, rhs);
        self.rhs_norm = self.rhs_norm.max(rhs.abs());
        let ci = c.index();
        if !self.rhs_dirty[ci] {
            self.rhs_dirty[ci] = true;
            self.dirty_rhs.push(ci);
        }
    }

    /// Solves with the options given at construction.
    pub fn solve(&mut self) -> Result<Solution, LpError> {
        let opts = self.opts.clone();
        self.solve_with(&opts)
    }

    /// Solves the current (patched) model, warm-starting from the previous
    /// basis when one is available.
    pub fn solve_with(&mut self, opts: &SolveOptions) -> Result<Solution, LpError> {
        self.apply_call_options(opts);
        if self.solved {
            match self.try_warm() {
                Ok(sol) => {
                    self.stats.warm_solves += 1;
                    self.stats.warm_pivots += self.engine.pivots();
                    self.absorb_counters();
                    return Ok(sol);
                }
                Err(WarmOutcome::Infeasible) | Err(WarmOutcome::Trouble) => {
                    // Re-answer cold: a definitive verdict either way, and
                    // the verdict callers compare against.
                    self.stats.fallbacks += 1;
                }
            }
        }
        let result = self.solve_cold();
        self.stats.cold_solves += 1;
        self.stats.cold_pivots += self.engine.pivots();
        self.absorb_counters();
        result
    }

    /// Snapshots the current basis. Only meaningful after a successful
    /// solve.
    pub fn basis(&self) -> Basis {
        Basis {
            cols: self.engine.basis().to_vec(),
        }
    }

    /// Re-installs a snapshotted basis by refactorizing the tableau
    /// (`O(m²·n)`). The next [`Workspace::solve`] re-optimizes from it —
    /// after patches, the engine picks dual repair, primal re-entry, or a
    /// cold restart depending on which feasibility the basis retained.
    pub fn restore_basis(&mut self, basis: &Basis) -> Result<(), LpError> {
        self.apply_pending_patches_to_sf()?;
        // Validate *after* patches: a sign-flip rebuild can change the
        // column layout, invalidating older snapshots.
        let m = self.sf.m();
        let n = self.sf.n();
        if basis.cols.len() != m || basis.cols.iter().any(|&j| j >= n) {
            return Err(LpError::BadModel(
                "basis snapshot does not match this workspace".into(),
            ));
        }
        if let Err(e) = self.engine.restore_to_basis(&self.sf, &basis.cols) {
            self.solved = false;
            return Err(e);
        }
        self.solved = true;
        Ok(())
    }

    // --- internals -------------------------------------------------------

    fn apply_call_options(&mut self, opts: &SolveOptions) {
        let size = self.sf.m() + self.sf.n();
        self.engine.set_call_options(size, opts);
    }

    /// Folds the sparse engine's work counters into the stats. Must run
    /// before any engine rebuild (which would drop them) and at the end of
    /// every solve.
    fn absorb_counters(&mut self) {
        let (ftran, nnz, refactors) = self.engine.take_counters();
        self.stats.ftran_total += ftran;
        self.stats.ftran_nnz_total += nnz;
        self.stats.refactor_total += refactors;
    }

    /// Rebuilds the engine against the current `sf`, preserving the
    /// per-call options in effect plus the engine kind and block metadata
    /// chosen at construction.
    fn rebuild_engine(&mut self) {
        self.absorb_counters();
        let (tol, rule, bland_after, max_iters) = self.engine.call_options_snapshot();
        let call_opts = SolveOptions {
            tol,
            rule,
            bland_after: Some(bland_after),
            max_iters: Some(max_iters),
            ..self.opts.clone()
        };
        self.engine = match self.engine {
            Engine::Dense(_) => Engine::Dense(Tableau::new(&self.sf, &call_opts)),
            Engine::Sparse(_) => Engine::Sparse(SparseTableau::new(&self.sf, &call_opts)),
        };
    }

    /// Maps a user rhs into the stored (normalized) standard form. `None`
    /// when the patch would flip the row's sign — the stored orientation is
    /// then wrong and a full rebuild is required.
    fn std_rhs(&self, ci: usize) -> Option<f64> {
        let user = self.problem.cons[ci].rhs;
        let std = (user - self.sf.row_shift[ci]) * self.sf.row_scale[ci];
        if std < 0.0 {
            None
        } else {
            Some(std)
        }
    }

    /// Folds every pending patch into `sf.c` / `sf.b`, rebuilding the whole
    /// standard form only when a patched rhs flipped a row's sign.
    fn apply_pending_patches_to_sf(&mut self) -> Result<(), LpError> {
        let mut rebuild = false;
        for k in 0..self.dirty_rhs.len() {
            let ci = self.dirty_rhs[k];
            match self.std_rhs(ci) {
                Some(v) => self.sf.b[ci] = v,
                None => {
                    rebuild = true;
                    break;
                }
            }
        }
        if rebuild {
            self.sf = standard::build(&self.problem)?;
            self.rebuild_engine();
            // A flipped row changes the slack/surplus/artificial layout.
            self.ident_cols = identity_columns(&self.sf);
        } else {
            for k in 0..self.dirty_objs.len() {
                let vi = self.dirty_objs[k];
                let obj = self.problem.vars[vi].objective;
                let coef = if self.sf.maximize { -obj } else { obj };
                match self.sf.var_map[vi] {
                    VarMapping::Shifted { col, .. } => self.sf.c[col] = coef,
                    VarMapping::Split { pos, neg } => {
                        self.sf.c[pos] = coef;
                        self.sf.c[neg] = -coef;
                    }
                }
            }
        }
        self.clear_dirty();
        Ok(())
    }

    fn clear_dirty(&mut self) {
        for &vi in &self.dirty_objs {
            self.obj_dirty[vi] = false;
        }
        self.dirty_objs.clear();
        for &ci in &self.dirty_rhs {
            self.rhs_dirty[ci] = false;
        }
        self.dirty_rhs.clear();
    }

    /// Full two-phase solve on the patched standard form, reusing the
    /// workspace's buffers where possible.
    fn solve_cold(&mut self) -> Result<Solution, LpError> {
        self.solved = false;
        self.apply_pending_patches_to_sf()?;
        self.rebuild_engine();
        self.engine.run_phase1()?;
        self.engine.run_phase2()?;
        let sol = self.extract(false)?;
        self.solved = true;
        Ok(sol)
    }

    /// The warm path: patch RHS → dual repair → patch costs → primal
    /// re-entry → drift guard. Any trouble reports `Trouble` and the caller
    /// re-answers cold.
    fn try_warm(&mut self) -> Result<Solution, WarmOutcome> {
        let n = self.sf.n();

        // Stage 1: fold patched right-hand sides into the evolving tableau
        // through the identity columns (B⁻¹ is never formed explicitly).
        for k in 0..self.dirty_rhs.len() {
            let ci = self.dirty_rhs[k];
            let Some(new_std) = self.std_rhs(ci) else {
                // Sign flip: stored row orientation is invalid.
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            };
            let delta = new_std - self.sf.b[ci];
            if nonzero(delta) {
                self.sf.b[ci] = new_std;
                self.engine.bump_b_norm(new_std.abs());
                self.engine.fold_rhs(self.ident_cols[ci], delta);
            }
        }

        // The previous basis is dual-feasible for the *old* costs; repair
        // primal feasibility before touching the objective.
        let feas_tol = self.engine.tol() * self.engine.b_norm() * 10.0;
        if self.engine.any_rhs_below(feas_tol) {
            if !self.engine.dual_feasible(self.engine.tol() * 10.0) {
                // Neither feasibility survived (possible after a basis
                // restore followed by patches): no warm route.
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            }
            match self.engine.dual_simplex() {
                Ok(()) => {}
                Err(LpError::Infeasible) => {
                    self.solved = false;
                    return Err(WarmOutcome::Infeasible);
                }
                Err(_) => {
                    self.solved = false;
                    return Err(WarmOutcome::Trouble);
                }
            }
        }

        // Stage 2: absorb objective patches into the reduced-cost row.
        if !self.dirty_objs.is_empty() {
            let mut basis_row = vec![usize::MAX; n];
            for (r, &j) in self.engine.basis().iter().enumerate() {
                basis_row[j] = r;
            }
            for k in 0..self.dirty_objs.len() {
                let vi = self.dirty_objs[k];
                let obj = self.problem.vars[vi].objective;
                let coef = if self.sf.maximize { -obj } else { obj };
                let pairs = match self.sf.var_map[vi] {
                    VarMapping::Shifted { col, .. } => [(col, coef), (usize::MAX, 0.0)],
                    VarMapping::Split { pos, neg } => [(pos, coef), (neg, -coef)],
                };
                for (col, new_c) in pairs {
                    if col == usize::MAX {
                        continue;
                    }
                    let delta = new_c - self.sf.c[col];
                    if is_zero(delta) {
                        continue;
                    }
                    self.sf.c[col] = new_c;
                    let r = basis_row[col];
                    let basic_row = if r != usize::MAX { Some(r) } else { None };
                    self.engine.apply_obj_delta(col, delta, basic_row);
                }
            }
        }
        self.clear_dirty();

        // Primal phase-2 re-entry.
        match self.engine.run_phase2() {
            Ok(()) => {}
            Err(LpError::Unbounded) => {
                // Unboundedness is definitive even warm (a certificate ray
                // was found), but answer cold for a uniform error path.
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            }
            Err(_) => {
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            }
        }

        match self.extract(true) {
            Ok(sol) => {
                // Drift guard: a warm optimum must actually satisfy the
                // user model. Gross violation means accumulated tableau
                // error — re-answer cold.
                let guard = 1e-6 * (1.0 + self.rhs_norm);
                if self
                    .problem
                    .feasibility_violation(sol.values(), guard)
                    .is_some()
                {
                    self.solved = false;
                    return Err(WarmOutcome::Trouble);
                }
                Ok(sol)
            }
            Err(_) => {
                self.solved = false;
                Err(WarmOutcome::Trouble)
            }
        }
    }

    /// Duals of a warm solve, read from the engine in standard-form row
    /// space and mapped to user constraints. Engine-specific bit patterns
    /// of zero (`+0.0` vs `−0.0`) are normalized so emitted duals never
    /// leak which engine produced them; an engine that cannot serve duals
    /// (invalid sparse eta file) degrades to zeros, mirroring the dense
    /// singular-basis fallback.
    fn warm_duals(&mut self) -> Vec<f64> {
        let n_user = self.problem.num_cons();
        let Some(y) = self.engine.warm_duals_std(&self.sf, &self.ident_cols) else {
            return vec![0.0; n_user];
        };
        simplex::user_duals_from_std(&self.sf, &y)
    }

    /// Solution extraction (objective recomputed from first principles).
    /// Warm solves read duals from the engine (`O(m)` cost-row read on
    /// dense, eta BTRAN on sparse). Cold solves mirror `Problem::solve`'s
    /// engine-specific recovery: the dense engine factorizes `Bᵀ` through
    /// the shared `recover_duals` (reusing the workspace's scratch), the
    /// sparse engine BTRANs `c_B` through its eta file and only falls back
    /// to the dense solve when the file is invalid.
    fn extract(&mut self, warm: bool) -> Result<Solution, LpError> {
        let x_std = self.engine.x_std();
        let x_user = self.sf.recover(&x_std);
        if x_user.iter().any(|v| !v.is_finite()) {
            return Err(LpError::Numeric("non-finite solution component".into()));
        }
        let objective = self.problem.objective_value(&x_user);
        let duals = if warm {
            self.warm_duals()
        } else {
            let sparse_duals = match &mut self.engine {
                Engine::Sparse(t) => t.duals_std(&self.sf),
                Engine::Dense(_) => None,
            };
            match sparse_duals {
                Some(y) => simplex::user_duals_from_std(&self.sf, &y),
                None => {
                    simplex::recover_duals(&self.sf, self.engine.basis(), &mut self.dual_scratch)
                }
            }
        };
        Ok(Solution::new(
            objective,
            x_user,
            duals,
            self.engine.pivots(),
        ))
    }
}

/// Identity column of each row: slack for `≤` rows, artificial for `≥`/`=`
/// rows (mirrors the initial-basis derivation in the simplex engine).
fn identity_columns(sf: &StandardForm) -> Vec<usize> {
    let mut ident = vec![usize::MAX; sf.m()];
    for (j, kind) in sf.col_kinds.iter().enumerate() {
        match *kind {
            ColKind::Slack(r) => {
                if ident[r] == usize::MAX {
                    ident[r] = j;
                }
            }
            ColKind::Artificial(r) => ident[r] = j,
            _ => {}
        }
    }
    debug_assert!(ident.iter().all(|&j| j != usize::MAX));
    ident
}

enum WarmOutcome {
    /// The dual simplex proved the patched model infeasible; the caller
    /// re-answers cold so every infeasibility verdict comes from the same
    /// code path as a from-scratch solve.
    Infeasible,
    /// Numerical or structural trouble; fall back to a cold solve.
    Trouble,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Rel};
    use crate::simplex::EngineKind;
    use palb_num::bits_eq;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7 * (1.0 + b.abs())
    }

    /// The textbook LP used across the simplex tests.
    fn textbook() -> (Problem, VarId, VarId, ConId, ConId, ConId) {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_nonneg("y", 5.0);
        let c1 = p.add_con("c1", &[(x, 1.0)], Rel::Le, 4.0);
        let c2 = p.add_con("c2", &[(y, 2.0)], Rel::Le, 12.0);
        let c3 = p.add_con("c3", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        (p, x, y, c1, c2, c3)
    }

    #[test]
    fn first_solve_matches_direct() {
        let (p, x, y, ..) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        let s = ws.solve().unwrap();
        assert!(close(s.objective(), 36.0));
        assert!(close(s.value(x), 2.0));
        assert!(close(s.value(y), 6.0));
        assert_eq!(ws.stats().cold_solves, 1);
        assert_eq!(ws.stats().warm_solves, 0);
    }

    #[test]
    fn warm_objective_patch_matches_cold() {
        let (p, x, y, ..) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        // Make x much more valuable; re-solve warm and compare to a cold
        // from-scratch solve of the same patched model.
        ws.set_objective(x, 10.0);
        let warm = ws.solve().unwrap();
        let cold = ws.problem().clone().solve().unwrap();
        assert!(close(warm.objective(), cold.objective()));
        assert_eq!(warm.values(), cold.values());
        assert_eq!(ws.stats().warm_solves, 1);
        let _ = y;
    }

    #[test]
    fn warm_rhs_patch_uses_dual_simplex() {
        let (p, _, _, c1, c2, c3) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        // Tighten `x ≤ 4` to `x ≤ 1`: the optimal basis keeps x = 2, so its
        // slack goes negative and the warm path must run dual pivots — and
        // still match cold.
        ws.set_rhs(c1, 1.0);
        let warm = ws.solve().unwrap();
        let cold = ws.problem().clone().solve().unwrap();
        assert!(close(warm.objective(), cold.objective()));
        assert!(close(warm.objective(), 33.0));
        assert_eq!(ws.stats().warm_solves, 1);
        assert!(ws.stats().warm_pivots > 0, "expected dual pivots");
        let _ = (c2, c3);
    }

    #[test]
    fn warm_joint_patch_grid_matches_cold() {
        // Deterministic grid over (objective, rhs) patches: every warm
        // answer must equal a cold from-scratch solve of the same model.
        let (p, x, y, c1, c2, c3) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        for i in 0..6 {
            for k in 0..4 {
                let cx = 1.0 + 2.0 * i as f64;
                let b3 = 12.0 + 3.0 * k as f64;
                ws.set_objective(x, cx);
                ws.set_objective(y, 5.0 - 0.5 * k as f64);
                ws.set_rhs(c3, b3);
                ws.set_rhs(c2, 10.0 + i as f64);
                let warm = ws.solve().unwrap();
                let cold = ws.problem().clone().solve().unwrap();
                assert!(
                    close(warm.objective(), cold.objective()),
                    "i={i} k={k}: warm {} cold {}",
                    warm.objective(),
                    cold.objective()
                );
            }
        }
        assert_eq!(ws.stats().cold_solves, 1, "only the first solve is cold");
        let _ = c1;
    }

    #[test]
    fn warm_detects_infeasible_after_rhs_patch() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let lo = p.add_con("lo", &[(x, 1.0)], Rel::Ge, 1.0);
        let hi = p.add_con("hi", &[(x, 1.0)], Rel::Le, 3.0);
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        ws.set_rhs(lo, 5.0); // now 5 ≤ x ≤ 3: infeasible
        assert_eq!(ws.solve().unwrap_err(), LpError::Infeasible);
        // And recoverable: loosen it back.
        ws.set_rhs(lo, 2.0);
        let s = ws.solve().unwrap();
        assert!(close(s.objective(), 3.0));
        let _ = hi;
    }

    #[test]
    fn rhs_sign_flip_triggers_full_rebuild() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let c = p.add_con("c", &[(x, 1.0)], Rel::Ge, 2.0);
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        let s0 = ws.solve().unwrap();
        assert!(close(s0.objective(), 2.0));
        // Negative rhs flips the stored row's orientation — the workspace
        // must notice and rebuild rather than patch.
        ws.set_rhs(c, -4.0);
        let s1 = ws.solve().unwrap();
        assert!(close(s1.objective(), -4.0));
        let cold = ws.problem().clone().solve().unwrap();
        assert!(close(s1.objective(), cold.objective()));
    }

    #[test]
    fn basis_snapshot_restores_and_resolves() {
        let (p, x, _, _, _, c3) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        let saved = ws.basis();
        // Wander off: patch and solve a few times.
        ws.set_objective(x, 20.0);
        ws.set_rhs(c3, 30.0);
        ws.solve().unwrap();
        // Return to the saved point and re-solve the *original* model.
        ws.set_objective(x, 3.0);
        ws.set_rhs(c3, 18.0);
        ws.restore_basis(&saved).unwrap();
        let s = ws.solve().unwrap();
        assert!(close(s.objective(), 36.0), "obj = {}", s.objective());
    }

    #[test]
    fn unnamed_problems_solve_identically() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg_unnamed(3.0);
        let y = p.add_nonneg_unnamed(5.0);
        p.add_con_unnamed(&[(x, 1.0)], Rel::Le, 4.0);
        p.add_con_unnamed(&[(y, 2.0)], Rel::Le, 12.0);
        p.add_con_unnamed(&[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 36.0));
        assert_eq!(p.var_name(x), "x0");
        assert_eq!(p.con_name(ConId(2)), "c2");
    }

    #[test]
    fn workspace_solves_surface_real_duals() {
        let (p, x, _, c1, c2, c3) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        // Cold solve: duals from the shared `Bᵀ y = c_B` recovery.
        let s = ws.solve().unwrap();
        assert!(close(s.dual(c1), 0.0), "y1 = {}", s.dual(c1));
        assert!(close(s.dual(c2), 1.5), "y2 = {}", s.dual(c2));
        assert!(close(s.dual(c3), 1.0), "y3 = {}", s.dual(c3));
        // Warm solve: duals read from the engine in O(m); must agree with
        // a cold from-scratch solve of the patched model.
        ws.set_objective(x, 4.0);
        let warm = ws.solve().unwrap();
        assert_eq!(ws.stats().warm_solves, 1);
        let cold = ws.problem().clone().solve().unwrap();
        for (i, (a, b)) in warm.duals().iter().zip(cold.duals()).enumerate() {
            assert!(close(*a, *b), "dual {i}: warm {a} vs cold {b}");
        }
        // Strong duality on the warm answer.
        let dual_obj = 4.0 * warm.dual(c1) + 12.0 * warm.dual(c2) + 18.0 * warm.dual(c3);
        assert!(close(dual_obj, warm.objective()));
    }

    #[test]
    fn sparse_workspace_matches_dense_bitwise_across_patches() {
        let (p, x, y, c1, _, c3) = textbook();
        let mk = |engine| {
            Workspace::new(
                &p,
                &SolveOptions {
                    engine,
                    ..SolveOptions::default()
                },
            )
            .unwrap()
        };
        let mut dense = mk(EngineKind::Dense);
        let mut sparse = mk(EngineKind::Sparse);
        let mut saved = None;
        for step in 0..8 {
            let cx = 3.0 + step as f64;
            let b3 = 18.0 - (step % 3) as f64;
            for ws in [&mut dense, &mut sparse] {
                ws.set_objective(x, cx);
                ws.set_objective(y, 5.0 - 0.25 * step as f64);
                ws.set_rhs(c3, b3);
                ws.set_rhs(c1, 4.0 + (step % 2) as f64);
            }
            if step == 4 {
                // Exercise the basis snapshot/restore path on both.
                let (bd, bs) = saved.take().expect("saved at step 2");
                dense.restore_basis(&bd).unwrap();
                sparse.restore_basis(&bs).unwrap();
            }
            let sd = dense.solve().unwrap();
            let ss = sparse.solve().unwrap();
            assert!(
                bits_eq(sd.objective(), ss.objective()),
                "step {step}: dense {} sparse {}",
                sd.objective(),
                ss.objective()
            );
            for (a, b) in sd.values().iter().zip(ss.values()) {
                assert!(bits_eq(*a, *b), "step {step}: value {a} vs {b}");
            }
            assert_eq!(sd.iterations(), ss.iterations(), "step {step}");
            assert_eq!(dense.basis(), sparse.basis(), "step {step}");
            if step == 2 {
                saved = Some((dense.basis(), sparse.basis()));
            }
        }
        // Warm/cold accounting must agree too — both engines took the
        // same warm/cold routes.
        assert_eq!(dense.stats().warm_solves, sparse.stats().warm_solves);
        assert_eq!(dense.stats().cold_solves, sparse.stats().cold_solves);
        // And the sparse engine actually metered work.
        assert!(sparse.stats().ftran_total > 0);
        assert_eq!(dense.stats().ftran_total, 0);
    }

    #[test]
    fn workspace_types_are_send() {
        // Parallel branch-and-bound moves per-worker workspaces into scoped
        // threads; this audit fails to compile if any field regresses to a
        // non-Send type (e.g. Rc or a raw pointer).
        fn assert_send<T: Send>() {}
        assert_send::<Workspace>();
        assert_send::<WorkspaceStats>();
        assert_send::<Basis>();
        assert_send::<SolveOptions>();
    }
}
