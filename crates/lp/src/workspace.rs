//! Persistent, incremental solve engine.
//!
//! A [`Workspace`] owns a [`Problem`] together with its standard form and
//! the evolving simplex tableau, so a *sequence* of closely related solves
//! can share one set of allocations and warm-start each other:
//!
//! * [`Workspace::set_objective`] / [`Workspace::set_rhs`] patch the model
//!   in place (the constraint matrix is immutable — only costs and
//!   right-hand sides may move).
//! * [`Workspace::solve`] re-optimizes from the previous optimal basis:
//!   patched right-hand sides are repaired by the dual simplex (the old
//!   basis stays dual-feasible when only `b` moved), then patched
//!   objectives are absorbed into the reduced-cost row and the primal
//!   phase-2 loop runs to optimality. Cold re-initialization is the
//!   universal fallback whenever the warm path is not applicable or runs
//!   into numerical trouble, so a warm solve always returns the same
//!   optimum a cold solve would (see DESIGN.md, "Solver architecture").
//! * [`Workspace::basis`] / [`Workspace::restore_basis`] snapshot and
//!   re-install a basis (with refactorization), for callers that want to
//!   return to an earlier point of a search tree.
//!
//! Workspace solves skip presolve and dual recovery: they return primal
//! values and the objective only (`duals()` are zeros). Callers that need
//! shadow prices should use [`Problem::solve`].

use palb_num::{is_zero, nonzero};

use crate::error::LpError;
use crate::problem::{ConId, Problem, VarId};
use crate::simplex::{SolveOptions, Tableau};
use crate::solution::Solution;
use crate::standard::{self, ColKind, StandardForm, VarMapping};

/// Counters describing how a [`Workspace`] has been solving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Solves answered by the warm path (dual repair + primal re-entry).
    pub warm_solves: usize,
    /// Solves answered by a cold tableau rebuild (first solve, structural
    /// invalidation, or fallback).
    pub cold_solves: usize,
    /// Simplex pivots spent inside warm solves.
    pub warm_pivots: usize,
    /// Simplex pivots spent inside cold solves.
    pub cold_pivots: usize,
    /// Warm attempts that had to fall back to a cold solve.
    pub fallbacks: usize,
}

/// An opaque snapshot of a simplex basis, produced by
/// [`Workspace::basis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    cols: Vec<usize>,
}

/// A persistent solver workspace; see the module docs.
pub struct Workspace {
    problem: Problem,
    opts: SolveOptions,
    sf: StandardForm,
    tab: Tableau,
    /// The tableau holds an optimal basis for the *patched-in* `sf`.
    solved: bool,
    /// Identity column of each row (slack for `≤` rows, artificial
    /// otherwise): reading that tableau column yields the corresponding
    /// column of `B⁻¹`, which is what lets an RHS patch update the
    /// transformed right-hand side in `O(m)`.
    ident_cols: Vec<usize>,
    obj_dirty: Vec<bool>,
    dirty_objs: Vec<usize>,
    rhs_dirty: Vec<bool>,
    dirty_rhs: Vec<usize>,
    /// Largest |user rhs| seen; scales the post-warm feasibility guard.
    rhs_norm: f64,
    stats: WorkspaceStats,
}

impl Workspace {
    /// Builds a workspace around a snapshot of `p`. The standard form is
    /// converted once here; later solves only patch it.
    pub fn new(p: &Problem, opts: &SolveOptions) -> Result<Self, LpError> {
        let problem = p.clone();
        let sf = standard::build(&problem)?;
        let tab = Tableau::new(&sf, opts);
        let ident_cols = identity_columns(&sf);
        let rhs_norm = problem
            .cons
            .iter()
            .fold(0.0_f64, |acc, c| acc.max(c.rhs.abs()));
        Ok(Workspace {
            obj_dirty: vec![false; problem.num_vars()],
            dirty_objs: Vec::new(),
            rhs_dirty: vec![false; problem.num_cons()],
            dirty_rhs: Vec::new(),
            rhs_norm,
            problem,
            opts: opts.clone(),
            sf,
            tab,
            solved: false,
            ident_cols,
            stats: WorkspaceStats::default(),
        })
    }

    /// The workspace's current (patched) model.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Solve statistics accumulated since creation (or the last
    /// [`Workspace::reset_stats`]).
    pub fn stats(&self) -> &WorkspaceStats {
        &self.stats
    }

    /// Zeroes the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }

    /// Patches a variable's objective coefficient. No-op if unchanged.
    pub fn set_objective(&mut self, v: VarId, objective: f64) {
        if self.problem.objective_coef(v) == objective {
            return;
        }
        self.problem.set_objective(v, objective);
        let vi = v.index();
        if !self.obj_dirty[vi] {
            self.obj_dirty[vi] = true;
            self.dirty_objs.push(vi);
        }
    }

    /// Patches a constraint's right-hand side. No-op if unchanged.
    pub fn set_rhs(&mut self, c: ConId, rhs: f64) {
        if self.problem.rhs(c) == rhs {
            return;
        }
        self.problem.set_rhs(c, rhs);
        self.rhs_norm = self.rhs_norm.max(rhs.abs());
        let ci = c.index();
        if !self.rhs_dirty[ci] {
            self.rhs_dirty[ci] = true;
            self.dirty_rhs.push(ci);
        }
    }

    /// Solves with the options given at construction.
    pub fn solve(&mut self) -> Result<Solution, LpError> {
        let opts = self.opts.clone();
        self.solve_with(&opts)
    }

    /// Solves the current (patched) model, warm-starting from the previous
    /// basis when one is available.
    pub fn solve_with(&mut self, opts: &SolveOptions) -> Result<Solution, LpError> {
        self.apply_call_options(opts);
        if self.solved {
            match self.try_warm() {
                Ok(sol) => {
                    self.stats.warm_solves += 1;
                    self.stats.warm_pivots += self.tab.pivots;
                    return Ok(sol);
                }
                Err(WarmOutcome::Infeasible) | Err(WarmOutcome::Trouble) => {
                    // Re-answer cold: a definitive verdict either way, and
                    // the verdict callers compare against.
                    self.stats.fallbacks += 1;
                }
            }
        }
        let result = self.solve_cold(opts);
        self.stats.cold_solves += 1;
        self.stats.cold_pivots += self.tab.pivots;
        result
    }

    /// Snapshots the current basis. Only meaningful after a successful
    /// solve.
    pub fn basis(&self) -> Basis {
        Basis {
            cols: self.tab.basis.clone(),
        }
    }

    /// Re-installs a snapshotted basis by refactorizing the tableau
    /// (`O(m²·n)`). The next [`Workspace::solve`] re-optimizes from it —
    /// after patches, the engine picks dual repair, primal re-entry, or a
    /// cold restart depending on which feasibility the basis retained.
    pub fn restore_basis(&mut self, basis: &Basis) -> Result<(), LpError> {
        self.apply_pending_patches_to_sf()?;
        // Validate *after* patches: a sign-flip rebuild can change the
        // column layout, invalidating older snapshots.
        let m = self.sf.m();
        let n = self.sf.n();
        if basis.cols.len() != m || basis.cols.iter().any(|&j| j >= n) {
            return Err(LpError::BadModel(
                "basis snapshot does not match this workspace".into(),
            ));
        }
        // Reset rows to the original [A | b].
        for r in 0..m {
            self.tab.rows.row_mut(r)[..n].copy_from_slice(self.sf.a.row(r));
            self.tab.rows[(r, n)] = self.sf.b[r];
        }
        // Jordan elimination into the requested basis, with row swaps for
        // pivot quality.
        for (k, &j) in basis.cols.iter().enumerate() {
            let mut best = k;
            for r in k..m {
                if self.tab.rows[(r, j)].abs() > self.tab.rows[(best, j)].abs() {
                    best = r;
                }
            }
            if self.tab.rows[(best, j)].abs() <= self.tab.tol * 100.0 {
                self.solved = false;
                return Err(LpError::Numeric("singular basis snapshot".into()));
            }
            if best != k {
                for col in 0..=n {
                    let tmp = self.tab.rows[(k, col)];
                    self.tab.rows[(k, col)] = self.tab.rows[(best, col)];
                    self.tab.rows[(best, col)] = tmp;
                }
            }
            let pivot = self.tab.rows[(k, j)];
            // Same scratch-column elimination as `Tableau::pivot`.
            let mut factors = std::mem::take(&mut self.tab.col_buf);
            self.tab.rows.col_into(j, &mut factors);
            self.tab.rows.scale_row(k, 1.0 / pivot);
            self.tab.rows[(k, j)] = 1.0;
            for (r, &f) in factors.iter().enumerate() {
                if r != k && nonzero(f) {
                    self.tab.rows.axpy_rows(r, k, -f);
                    self.tab.rows[(r, j)] = 0.0;
                }
            }
            self.tab.col_buf = factors;
            self.tab.basis[k] = j;
        }
        // Recompute the phase-2 reduced costs against the restored basis;
        // phase 1 is behind us, so ban artificials and zero its cost row.
        self.tab.cost2[..n].copy_from_slice(&self.sf.c);
        self.tab.cost2[n] = 0.0;
        for k in 0..m {
            let d = self.tab.cost2[self.tab.basis[k]];
            if nonzero(d) {
                let src = self.tab.rows.row(k);
                for (cv, rv) in self.tab.cost2.iter_mut().zip(src) {
                    *cv -= d * rv;
                }
                self.tab.cost2[self.tab.basis[k]] = 0.0;
            }
        }
        for (j, kind) in self.tab.col_kinds.iter().enumerate() {
            if matches!(kind, ColKind::Artificial(_)) {
                self.tab.banned[j] = true;
            }
        }
        self.tab.cost1.iter_mut().for_each(|v| *v = 0.0);
        self.solved = true;
        Ok(())
    }

    // --- internals -------------------------------------------------------

    fn apply_call_options(&mut self, opts: &SolveOptions) {
        let size = self.sf.m() + self.sf.n();
        self.tab.tol = opts.tol;
        self.tab.rule = opts.rule;
        self.tab.bland_after = opts.bland_after.unwrap_or(20 * size + 200);
        self.tab.max_iters = opts.max_iters.unwrap_or(200 * size + 1000);
        self.tab.pivots = 0;
    }

    /// Maps a user rhs into the stored (normalized) standard form. `None`
    /// when the patch would flip the row's sign — the stored orientation is
    /// then wrong and a full rebuild is required.
    fn std_rhs(&self, ci: usize) -> Option<f64> {
        let user = self.problem.cons[ci].rhs;
        let std = (user - self.sf.row_shift[ci]) * self.sf.row_scale[ci];
        if std < 0.0 {
            None
        } else {
            Some(std)
        }
    }

    /// Folds every pending patch into `sf.c` / `sf.b`, rebuilding the whole
    /// standard form only when a patched rhs flipped a row's sign.
    fn apply_pending_patches_to_sf(&mut self) -> Result<(), LpError> {
        let mut rebuild = false;
        for k in 0..self.dirty_rhs.len() {
            let ci = self.dirty_rhs[k];
            match self.std_rhs(ci) {
                Some(v) => self.sf.b[ci] = v,
                None => {
                    rebuild = true;
                    break;
                }
            }
        }
        if rebuild {
            self.sf = standard::build(&self.problem)?;
            let opts = SolveOptions {
                tol: self.tab.tol,
                rule: self.tab.rule,
                bland_after: Some(self.tab.bland_after),
                max_iters: Some(self.tab.max_iters),
                ..self.opts.clone()
            };
            self.tab = Tableau::new(&self.sf, &opts);
            // A flipped row changes the slack/surplus/artificial layout.
            self.ident_cols = identity_columns(&self.sf);
        } else {
            for k in 0..self.dirty_objs.len() {
                let vi = self.dirty_objs[k];
                let obj = self.problem.vars[vi].objective;
                let coef = if self.sf.maximize { -obj } else { obj };
                match self.sf.var_map[vi] {
                    VarMapping::Shifted { col, .. } => self.sf.c[col] = coef,
                    VarMapping::Split { pos, neg } => {
                        self.sf.c[pos] = coef;
                        self.sf.c[neg] = -coef;
                    }
                }
            }
        }
        self.clear_dirty();
        Ok(())
    }

    fn clear_dirty(&mut self) {
        for &vi in &self.dirty_objs {
            self.obj_dirty[vi] = false;
        }
        self.dirty_objs.clear();
        for &ci in &self.dirty_rhs {
            self.rhs_dirty[ci] = false;
        }
        self.dirty_rhs.clear();
    }

    /// Full two-phase solve on the patched standard form, reusing the
    /// workspace's buffers where possible.
    fn solve_cold(&mut self, opts: &SolveOptions) -> Result<Solution, LpError> {
        self.solved = false;
        self.apply_pending_patches_to_sf()?;
        let call_opts = SolveOptions {
            tol: self.tab.tol,
            rule: self.tab.rule,
            bland_after: Some(self.tab.bland_after),
            max_iters: Some(self.tab.max_iters),
            ..opts.clone()
        };
        self.tab = Tableau::new(&self.sf, &call_opts);
        self.tab.run_phase1()?;
        self.tab.run_phase2()?;
        let sol = self.extract()?;
        self.solved = true;
        Ok(sol)
    }

    /// The warm path: patch RHS → dual repair → patch costs → primal
    /// re-entry → drift guard. Any trouble reports `Trouble` and the caller
    /// re-answers cold.
    fn try_warm(&mut self) -> Result<Solution, WarmOutcome> {
        let m = self.sf.m();
        let n = self.sf.n();

        // Stage 1: fold patched right-hand sides into the evolving tableau
        // through the identity columns (B⁻¹ is never formed explicitly).
        for k in 0..self.dirty_rhs.len() {
            let ci = self.dirty_rhs[k];
            let Some(new_std) = self.std_rhs(ci) else {
                // Sign flip: stored row orientation is invalid.
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            };
            let delta = new_std - self.sf.b[ci];
            if nonzero(delta) {
                self.sf.b[ci] = new_std;
                self.tab.b_norm = self.tab.b_norm.max(1.0 + new_std.abs());
                let jc = self.ident_cols[ci];
                // Snapshot the B⁻¹ column through the tableau's reused
                // scratch — no per-patch allocation, one contiguous read.
                let mut binv_col = std::mem::take(&mut self.tab.col_buf);
                self.tab.rows.col_into(jc, &mut binv_col);
                for (r, &f) in binv_col.iter().enumerate() {
                    if nonzero(f) {
                        self.tab.rows[(r, n)] += delta * f;
                    }
                }
                self.tab.col_buf = binv_col;
                self.tab.cost2[n] += delta * self.tab.cost2[jc];
            }
        }

        // The previous basis is dual-feasible for the *old* costs; repair
        // primal feasibility before touching the objective.
        let feas_tol = self.tab.tol * self.tab.b_norm * 10.0;
        let primal_violated = (0..m).any(|r| self.tab.rows[(r, n)] < -feas_tol);
        if primal_violated {
            let dual_ok =
                (0..n).all(|j| self.tab.banned[j] || self.tab.cost2[j] >= -self.tab.tol * 10.0);
            if !dual_ok {
                // Neither feasibility survived (possible after a basis
                // restore followed by patches): no warm route.
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            }
            match self.tab.dual_simplex() {
                Ok(()) => {}
                Err(LpError::Infeasible) => {
                    self.solved = false;
                    return Err(WarmOutcome::Infeasible);
                }
                Err(_) => {
                    self.solved = false;
                    return Err(WarmOutcome::Trouble);
                }
            }
        }

        // Stage 2: absorb objective patches into the reduced-cost row.
        if !self.dirty_objs.is_empty() {
            let mut basis_row = vec![usize::MAX; n];
            for (r, &j) in self.tab.basis.iter().enumerate() {
                basis_row[j] = r;
            }
            for k in 0..self.dirty_objs.len() {
                let vi = self.dirty_objs[k];
                let obj = self.problem.vars[vi].objective;
                let coef = if self.sf.maximize { -obj } else { obj };
                let pairs = match self.sf.var_map[vi] {
                    VarMapping::Shifted { col, .. } => [(col, coef), (usize::MAX, 0.0)],
                    VarMapping::Split { pos, neg } => [(pos, coef), (neg, -coef)],
                };
                for (col, new_c) in pairs {
                    if col == usize::MAX {
                        continue;
                    }
                    let delta = new_c - self.sf.c[col];
                    if is_zero(delta) {
                        continue;
                    }
                    self.sf.c[col] = new_c;
                    self.tab.cost2[col] += delta;
                    let r = basis_row[col];
                    if r != usize::MAX {
                        // A basic column's cost change sweeps through every
                        // reduced cost (c_B moved): c̃ -= Δc · (B⁻¹A)_r.
                        let src = self.tab.rows.row(r);
                        for (cv, rv) in self.tab.cost2.iter_mut().zip(src) {
                            *cv -= delta * rv;
                        }
                    }
                }
            }
        }
        self.clear_dirty();

        // Primal phase-2 re-entry.
        match self.tab.run_phase2() {
            Ok(()) => {}
            Err(LpError::Unbounded) => {
                // Unboundedness is definitive even warm (a certificate ray
                // was found), but answer cold for a uniform error path.
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            }
            Err(_) => {
                self.solved = false;
                return Err(WarmOutcome::Trouble);
            }
        }

        match self.extract() {
            Ok(sol) => {
                // Drift guard: a warm optimum must actually satisfy the
                // user model. Gross violation means accumulated tableau
                // error — re-answer cold.
                let guard = 1e-6 * (1.0 + self.rhs_norm);
                if self
                    .problem
                    .feasibility_violation(sol.values(), guard)
                    .is_some()
                {
                    self.solved = false;
                    return Err(WarmOutcome::Trouble);
                }
                Ok(sol)
            }
            Err(_) => {
                self.solved = false;
                Err(WarmOutcome::Trouble)
            }
        }
    }

    /// Primal-only extraction (objective recomputed from first principles;
    /// duals intentionally zero — see module docs).
    fn extract(&self) -> Result<Solution, LpError> {
        let x_std = self.tab.x_std();
        let x_user = self.sf.recover(&x_std);
        if x_user.iter().any(|v| !v.is_finite()) {
            return Err(LpError::Numeric("non-finite solution component".into()));
        }
        let objective = self.problem.objective_value(&x_user);
        Ok(Solution::new(
            objective,
            x_user,
            vec![0.0; self.problem.num_cons()],
            self.tab.pivots,
        ))
    }
}

/// Identity column of each row: slack for `≤` rows, artificial for `≥`/`=`
/// rows (mirrors the initial-basis derivation in the simplex engine).
fn identity_columns(sf: &StandardForm) -> Vec<usize> {
    let mut ident = vec![usize::MAX; sf.m()];
    for (j, kind) in sf.col_kinds.iter().enumerate() {
        match *kind {
            ColKind::Slack(r) => {
                if ident[r] == usize::MAX {
                    ident[r] = j;
                }
            }
            ColKind::Artificial(r) => ident[r] = j,
            _ => {}
        }
    }
    debug_assert!(ident.iter().all(|&j| j != usize::MAX));
    ident
}

enum WarmOutcome {
    /// The dual simplex proved the patched model infeasible; the caller
    /// re-answers cold so every infeasibility verdict comes from the same
    /// code path as a from-scratch solve.
    Infeasible,
    /// Numerical or structural trouble; fall back to a cold solve.
    Trouble,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Rel};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7 * (1.0 + b.abs())
    }

    /// The textbook LP used across the simplex tests.
    fn textbook() -> (Problem, VarId, VarId, ConId, ConId, ConId) {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_nonneg("y", 5.0);
        let c1 = p.add_con("c1", &[(x, 1.0)], Rel::Le, 4.0);
        let c2 = p.add_con("c2", &[(y, 2.0)], Rel::Le, 12.0);
        let c3 = p.add_con("c3", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        (p, x, y, c1, c2, c3)
    }

    #[test]
    fn first_solve_matches_direct() {
        let (p, x, y, ..) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        let s = ws.solve().unwrap();
        assert!(close(s.objective(), 36.0));
        assert!(close(s.value(x), 2.0));
        assert!(close(s.value(y), 6.0));
        assert_eq!(ws.stats().cold_solves, 1);
        assert_eq!(ws.stats().warm_solves, 0);
    }

    #[test]
    fn warm_objective_patch_matches_cold() {
        let (p, x, y, ..) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        // Make x much more valuable; re-solve warm and compare to a cold
        // from-scratch solve of the same patched model.
        ws.set_objective(x, 10.0);
        let warm = ws.solve().unwrap();
        let cold = ws.problem().clone().solve().unwrap();
        assert!(close(warm.objective(), cold.objective()));
        assert_eq!(warm.values(), cold.values());
        assert_eq!(ws.stats().warm_solves, 1);
        let _ = y;
    }

    #[test]
    fn warm_rhs_patch_uses_dual_simplex() {
        let (p, _, _, c1, c2, c3) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        // Tighten `x ≤ 4` to `x ≤ 1`: the optimal basis keeps x = 2, so its
        // slack goes negative and the warm path must run dual pivots — and
        // still match cold.
        ws.set_rhs(c1, 1.0);
        let warm = ws.solve().unwrap();
        let cold = ws.problem().clone().solve().unwrap();
        assert!(close(warm.objective(), cold.objective()));
        assert!(close(warm.objective(), 33.0));
        assert_eq!(ws.stats().warm_solves, 1);
        assert!(ws.stats().warm_pivots > 0, "expected dual pivots");
        let _ = (c2, c3);
    }

    #[test]
    fn warm_joint_patch_grid_matches_cold() {
        // Deterministic grid over (objective, rhs) patches: every warm
        // answer must equal a cold from-scratch solve of the same model.
        let (p, x, y, c1, c2, c3) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        for i in 0..6 {
            for k in 0..4 {
                let cx = 1.0 + 2.0 * i as f64;
                let b3 = 12.0 + 3.0 * k as f64;
                ws.set_objective(x, cx);
                ws.set_objective(y, 5.0 - 0.5 * k as f64);
                ws.set_rhs(c3, b3);
                ws.set_rhs(c2, 10.0 + i as f64);
                let warm = ws.solve().unwrap();
                let cold = ws.problem().clone().solve().unwrap();
                assert!(
                    close(warm.objective(), cold.objective()),
                    "i={i} k={k}: warm {} cold {}",
                    warm.objective(),
                    cold.objective()
                );
            }
        }
        assert_eq!(ws.stats().cold_solves, 1, "only the first solve is cold");
        let _ = c1;
    }

    #[test]
    fn warm_detects_infeasible_after_rhs_patch() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let lo = p.add_con("lo", &[(x, 1.0)], Rel::Ge, 1.0);
        let hi = p.add_con("hi", &[(x, 1.0)], Rel::Le, 3.0);
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        ws.set_rhs(lo, 5.0); // now 5 ≤ x ≤ 3: infeasible
        assert_eq!(ws.solve().unwrap_err(), LpError::Infeasible);
        // And recoverable: loosen it back.
        ws.set_rhs(lo, 2.0);
        let s = ws.solve().unwrap();
        assert!(close(s.objective(), 3.0));
        let _ = hi;
    }

    #[test]
    fn rhs_sign_flip_triggers_full_rebuild() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let c = p.add_con("c", &[(x, 1.0)], Rel::Ge, 2.0);
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        let s0 = ws.solve().unwrap();
        assert!(close(s0.objective(), 2.0));
        // Negative rhs flips the stored row's orientation — the workspace
        // must notice and rebuild rather than patch.
        ws.set_rhs(c, -4.0);
        let s1 = ws.solve().unwrap();
        assert!(close(s1.objective(), -4.0));
        let cold = ws.problem().clone().solve().unwrap();
        assert!(close(s1.objective(), cold.objective()));
    }

    #[test]
    fn basis_snapshot_restores_and_resolves() {
        let (p, x, _, _, _, c3) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        ws.solve().unwrap();
        let saved = ws.basis();
        // Wander off: patch and solve a few times.
        ws.set_objective(x, 20.0);
        ws.set_rhs(c3, 30.0);
        ws.solve().unwrap();
        // Return to the saved point and re-solve the *original* model.
        ws.set_objective(x, 3.0);
        ws.set_rhs(c3, 18.0);
        ws.restore_basis(&saved).unwrap();
        let s = ws.solve().unwrap();
        assert!(close(s.objective(), 36.0), "obj = {}", s.objective());
    }

    #[test]
    fn unnamed_problems_solve_identically() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg_unnamed(3.0);
        let y = p.add_nonneg_unnamed(5.0);
        p.add_con_unnamed(&[(x, 1.0)], Rel::Le, 4.0);
        p.add_con_unnamed(&[(y, 2.0)], Rel::Le, 12.0);
        p.add_con_unnamed(&[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 36.0));
        assert_eq!(p.var_name(x), "x0");
        assert_eq!(p.con_name(ConId(2)), "c2");
    }

    #[test]
    fn workspace_solves_skip_duals() {
        let (p, ..) = textbook();
        let mut ws = Workspace::new(&p, &SolveOptions::default()).unwrap();
        let s = ws.solve().unwrap();
        assert!(s.duals().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn workspace_types_are_send() {
        // Parallel branch-and-bound moves per-worker workspaces into scoped
        // threads; this audit fails to compile if any field regresses to a
        // non-Send type (e.g. Rc or a raw pointer).
        fn assert_send<T: Send>() {}
        assert_send::<Workspace>();
        assert_send::<WorkspaceStats>();
        assert_send::<Basis>();
        assert_send::<SolveOptions>();
    }
}
