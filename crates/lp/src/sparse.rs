//! Sparse revised-simplex engine.
//!
//! The dispatch LPs this workspace produces are overwhelmingly sparse:
//! per-server `Σφ ≤ 1` blocks coupled only by per-`(class, front-end)`
//! dispatch-conservation rows, so a dense tableau burns `rows × cols`
//! work per pivot on entries that are structurally zero. This engine keeps
//! the *same* two-phase primal simplex (and dual-simplex repair) as the
//! dense [`crate::simplex::Tableau`], but stores the evolving tableau as
//! sorted sparse rows and updates only stored nonzeros.
//!
//! ## Bitwise contract with the dense engine
//!
//! The defining gate of this engine is **bitwise-equal results with the
//! dense tableau on every input**. A classical revised simplex (solving
//! `B⁻¹` systems per pricing step) cannot meet that bar: ulp-level
//! differences in reduced costs flip degenerate Dantzig ties and send the
//! two engines down different pivot paths. Instead, this engine maintains
//! the *same product-form tableau* the dense engine does, with identical
//! operations in identical order — it merely skips arithmetic whose
//! operands are exactly zero, which cannot change any value:
//!
//! * a sparse row stores an entry exactly where the dense row holds a
//!   nonzero, with the identical bit pattern (entries that cancel to
//!   exact `0.0` are dropped; the dense engine stores the same zero);
//! * the right-hand side and both reduced-cost rows are kept as dense
//!   vectors and receive the exact same update sequence;
//! * every decision (pricing, ratio test, tie-breaks, feasibility and
//!   ban checks) reads values through comparisons against `±tol` that
//!   cannot distinguish `+0.0` from `−0.0`, the only bit-level freedom
//!   the two representations have.
//!
//! The per-pivot [`EtaFile`] (see [`crate::eta`]) additionally records an
//! implicit `B⁻¹` so both cold and warm solves surface duals via BTRAN
//! (`y = B⁻ᵀ c_B`) without a dense `O(m³)` solve, with a Markowitz-ordered
//! refactorization cadence (see [`crate::basis`]) bounding its growth.
//! Duals are the one surface outside the bitwise contract: each engine
//! recovers them by its own arithmetic (dense: an independent `Bᵀ`
//! factorization; sparse: the eta BTRAN), so they agree to tolerance
//! while objectives, values, pivot counts and statuses agree to the bit.
//!
//! ## Block pricing
//!
//! When the caller supplies a [`BlockStructure`] (per-server variable /
//! constraint blocks plus coupling rows — `palb-core`'s `formulate`
//! emits one), Dantzig pricing keeps a per-block lower bound on the
//! block's minimum reduced cost and skips blocks that provably contain no
//! candidate. This is a Dantzig–Wolfe-flavoured shortcut: it prices
//! within per-DC blocks first and touches the coupling block like any
//! other, while provably selecting the *same* column as the dense
//! engine's full scan (the bound is exact after every full block scan and
//! only lowered in between, and cross-block ties resolve to the smallest
//! column index, which is the dense scan's tie-break).

use std::sync::Arc;

use palb_num::{f64_eq, nonzero};

use crate::error::{LpError, SimplexPhase};
use crate::eta::EtaFile;
use crate::simplex::{PivotRule, SolveOptions};
use crate::standard::{ColKind, CsrMatrix, RowOrigin, StandardForm, VarMapping};

/// Block-structure metadata for an LP, in *user* index space.
///
/// Block ids `0..n_blocks` are per-server (per-DC) blocks; the reserved id
/// `n_blocks` marks coupling variables/rows that tie blocks together.
/// The sparse engine maps this onto standard-form columns (slack, surplus
/// and artificial columns inherit the block of the row they belong to) to
/// drive block pricing; the metadata is advisory — any inconsistency with
/// the problem simply disables the shortcut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockStructure {
    /// Block id per user variable (`n_blocks` = coupling).
    pub var_blocks: Vec<u32>,
    /// Block id per user constraint (`n_blocks` = coupling).
    pub con_blocks: Vec<u32>,
    /// Number of regular (non-coupling) blocks.
    pub n_blocks: u32,
}

impl BlockStructure {
    /// The id marking coupling variables/constraints.
    pub fn coupling_id(&self) -> u32 {
        self.n_blocks
    }

    /// Remaps the structure onto a sub-problem keeping only the listed
    /// variables/constraints (used after presolve reductions).
    pub(crate) fn remap(&self, kept_vars: &[usize], kept_cons: &[usize]) -> Option<BlockStructure> {
        let mut var_blocks = Vec::with_capacity(kept_vars.len());
        for &v in kept_vars {
            var_blocks.push(*self.var_blocks.get(v)?);
        }
        let mut con_blocks = Vec::with_capacity(kept_cons.len());
        for &c in kept_cons {
            con_blocks.push(*self.con_blocks.get(c)?);
        }
        Some(BlockStructure {
            var_blocks,
            con_blocks,
            n_blocks: self.n_blocks,
        })
    }
}

// ---------------------------------------------------------------------------
// Sparse row / CSC storage
// ---------------------------------------------------------------------------

/// One tableau row: sorted `(column, value)` pairs over columns `0..n`.
/// The right-hand side lives in a separate dense vector.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseRow {
    idx: Vec<u32>,
    val: Vec<f64>,
}

impl SparseRow {
    #[inline]
    fn len(&self) -> usize {
        self.idx.len()
    }

    /// Value at column `j` (`0.0` when no entry is stored).
    #[inline]
    fn get(&self, j: u32) -> f64 {
        match self.idx.binary_search(&j) {
            Ok(t) => self.val[t],
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn push(&mut self, j: u32, v: f64) {
        self.idx.push(j);
        self.val.push(v);
    }

    fn clear(&mut self) {
        self.idx.clear();
        self.val.clear();
    }
}

/// `dst ← dst + s · pivot`, skipping column `skip` (the dense engine
/// writes a literal `0.0` there) and dropping entries that cancel to
/// exact zero (the dense engine stores the same zero). The merged row is
/// built in `out`, then swapped into `dst` so buffers are reused.
fn merge_axpy(dst: &mut SparseRow, s: f64, pivot: &SparseRow, skip: u32, out: &mut SparseRow) {
    out.clear();
    let (di, dv) = (&dst.idx, &dst.val);
    let (pi, pv) = (&pivot.idx, &pivot.val);
    let (mut a, mut b) = (0usize, 0usize);
    while a < di.len() || b < pi.len() {
        let ai = if a < di.len() { di[a] } else { u32::MAX };
        let bi = if b < pi.len() { pi[b] } else { u32::MAX };
        if ai < bi {
            // No pivot-row entry here: the dense update adds `s · 0.0`,
            // which leaves a nonzero unchanged.
            if ai != skip {
                out.push(ai, dv[a]);
            }
            a += 1;
        } else if bi < ai {
            if bi != skip {
                let v = s * pv[b];
                if nonzero(v) {
                    out.push(bi, v);
                }
            }
            b += 1;
        } else {
            if ai != skip {
                let v = dv[a] + s * pv[b];
                if nonzero(v) {
                    out.push(ai, v);
                }
            }
            a += 1;
            b += 1;
        }
    }
    std::mem::swap(dst, out);
}

/// Compressed-sparse-column copy of the original constraint matrix `A`,
/// used by the refactorization to rebuild `B⁻¹` from pristine columns.
#[derive(Debug, Clone)]
pub(crate) struct CscMatrix {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CscMatrix {
    /// Transposes the standard form's CSR rows into column-major order in
    /// two counting passes — `O(nnz)`, never touching a dense layout. Row
    /// indices within each column come out ascending (rows are scanned in
    /// order), exactly as a dense column scan would produce.
    pub(crate) fn from_csr(a: &CsrMatrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        let mut col_ptr = vec![0usize; n + 1];
        for r in 0..m {
            let (cols, vals) = a.row(r);
            for (&j, &v) in cols.iter().zip(vals) {
                if nonzero(v) {
                    col_ptr[j as usize + 1] += 1;
                }
            }
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = col_ptr[n];
        let mut next = col_ptr.clone();
        let mut row_idx = vec![0u32; nnz];
        let mut vals_out = vec![0.0; nnz];
        for r in 0..m {
            let (cols, vals) = a.row(r);
            for (&j, &v) in cols.iter().zip(vals) {
                if nonzero(v) {
                    let t = next[j as usize];
                    row_idx[t] = r as u32;
                    vals_out[t] = v;
                    next[j as usize] += 1;
                }
            }
        }
        CscMatrix {
            m,
            col_ptr,
            row_idx,
            vals: vals_out,
        }
    }

    pub(crate) fn rows(&self) -> usize {
        self.m
    }

    pub(crate) fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Total stored nonzeros.
    #[cfg(test)]
    pub(crate) fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Scatters column `j` into the (pre-zeroed) dense vector `w`.
    pub(crate) fn scatter_col(&self, j: usize, w: &mut [f64]) {
        for t in self.col_ptr[j]..self.col_ptr[j + 1] {
            w[self.row_idx[t] as usize] = self.vals[t];
        }
    }
}

// ---------------------------------------------------------------------------
// Block pricing
// ---------------------------------------------------------------------------

/// Per-block pricing state: column groups plus a certified lower bound on
/// each block's minimum phase-2 reduced cost.
#[derive(Debug)]
struct BlockPricing {
    /// Columns of each group, ascending; the last group is the coupling
    /// block.
    groups: Vec<Vec<u32>>,
    /// Lower bound on `min cost2[j]` over the group's non-banned columns.
    /// Lowered on every cost write below it, reset exactly by a full scan;
    /// a group with `floor ≥ −tol` provably holds no pricing candidate.
    floors: Vec<f64>,
    /// Group of every standard-form column.
    block_of: Vec<u32>,
}

impl BlockPricing {
    fn build(bs: &BlockStructure, sf: &StandardForm) -> Option<BlockPricing> {
        let n = sf.n();
        if bs.var_blocks.len() != sf.var_map.len() {
            return None;
        }
        let n_groups = bs.n_blocks as usize + 1;
        let mut block_of = vec![u32::MAX; n];
        let mut assign = |col: usize, b: u32| -> bool {
            if b as usize >= n_groups {
                return false;
            }
            block_of[col] = b;
            true
        };
        for (vi, vm) in sf.var_map.iter().enumerate() {
            let b = bs.var_blocks[vi];
            let ok = match *vm {
                VarMapping::Shifted { col, .. } => assign(col, b),
                VarMapping::Split { pos, neg } => assign(pos, b) && assign(neg, b),
            };
            if !ok {
                return None;
            }
        }
        for (j, kind) in sf.col_kinds.iter().enumerate() {
            let r = match *kind {
                ColKind::Structural => continue,
                ColKind::Slack(r) | ColKind::Surplus(r) | ColKind::Artificial(r) => r,
            };
            let b = match *sf.row_origins.get(r)? {
                RowOrigin::Constraint(ci) => *bs.con_blocks.get(ci)?,
                RowOrigin::UpperBound(vi) => *bs.var_blocks.get(vi)?,
            };
            if !assign(j, b) {
                return None;
            }
        }
        if block_of.iter().any(|&b| b == u32::MAX) {
            return None;
        }
        let mut groups = vec![Vec::new(); n_groups];
        for (j, &b) in block_of.iter().enumerate() {
            groups[b as usize].push(j as u32);
        }
        Some(BlockPricing {
            groups,
            floors: vec![f64::NEG_INFINITY; n_groups],
            block_of,
        })
    }

    /// Records a write of `v` into `cost2[j]`, keeping the floor a valid
    /// lower bound.
    #[inline]
    fn note(&mut self, j: usize, v: f64) {
        let b = self.block_of[j] as usize;
        if v < self.floors[b] {
            self.floors[b] = v;
        }
    }

    /// Invalidates every floor (after a cost-row rebuild).
    fn reset(&mut self) {
        for f in &mut self.floors {
            *f = f64::NEG_INFINITY;
        }
    }
}

// ---------------------------------------------------------------------------
// The sparse tableau
// ---------------------------------------------------------------------------

/// Sparse mirror of [`crate::simplex::Tableau`]; see the module docs for
/// the bitwise contract. Field names and semantics match the dense
/// engine's so the [`crate::Workspace`] warm paths read identically.
pub(crate) struct SparseTableau {
    pub(crate) col_kinds: Vec<ColKind>,
    pub(crate) b_norm: f64,
    /// `m` sparse rows over columns `0..n` (no RHS column).
    rows: Vec<SparseRow>,
    /// Dense right-hand side (the dense engine's column `n`).
    rhs: Vec<f64>,
    /// Phase-2 reduced costs; entry `n` is `−z`.
    pub(crate) cost2: Vec<f64>,
    /// Phase-1 reduced costs; entry `n` is `−z₁`.
    pub(crate) cost1: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    pub(crate) banned: Vec<bool>,
    pub(crate) tol: f64,
    pub(crate) rule: PivotRule,
    pub(crate) bland_after: usize,
    pub(crate) max_iters: usize,
    pub(crate) pivots: usize,
    /// Pristine CSC copy of `A` for refactorization.
    csc: CscMatrix,
    /// Scratch: extracted column (row indices / values).
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
    /// Column currently held in the extraction scratch (`usize::MAX`
    /// when stale); invalidated whenever any tableau row changes.
    col_cached: usize,
    /// Scratch row for merge output.
    merge_row: SparseRow,
    /// Implicit `B⁻¹` for BTRAN dual recovery.
    eta: EtaFile,
    /// Op count that triggers a refactorization attempt.
    refactor_threshold: usize,
    blocks: Option<BlockPricing>,
    /// FTRAN-equivalent column extractions performed.
    pub(crate) ftran_ops: u64,
    /// Nonzeros touched by those extractions.
    pub(crate) ftran_nnz: u64,
    /// Successful basis refactorizations.
    pub(crate) refactors: u64,
}

impl SparseTableau {
    pub(crate) fn new(sf: &StandardForm, opts: &SolveOptions) -> Self {
        let m = sf.m();
        let n = sf.n();
        let mut rows = Vec::with_capacity(m);
        for r in 0..m {
            let (cols, vals) = sf.a.row(r);
            let mut row = SparseRow::default();
            for (&j, &v) in cols.iter().zip(vals) {
                if nonzero(v) {
                    row.push(j, v);
                }
            }
            rows.push(row);
        }
        let rhs = sf.b.clone();

        // Initial basis: identical derivation to the dense engine.
        let mut basis = vec![usize::MAX; m];
        for (j, kind) in sf.col_kinds.iter().enumerate() {
            match *kind {
                ColKind::Slack(r) | ColKind::Artificial(r) => {
                    if basis[r] == usize::MAX {
                        basis[r] = j;
                    } else if matches!(kind, ColKind::Artificial(_)) {
                        basis[r] = j;
                    }
                }
                _ => {}
            }
        }
        for (j, kind) in sf.col_kinds.iter().enumerate() {
            if let ColKind::Artificial(r) = *kind {
                basis[r] = j;
            }
        }
        debug_assert!(basis.iter().all(|&j| j != usize::MAX || m == 0));

        // Phase-1 costs, reduced row by row exactly like the dense engine
        // (whose sweep over stored zeros never changes a value).
        let mut cost1 = vec![0.0; n + 1];
        for (j, kind) in sf.col_kinds.iter().enumerate() {
            if matches!(kind, ColKind::Artificial(_)) {
                cost1[j] = 1.0;
            }
        }
        for (r, row) in rows.iter().enumerate() {
            let coef = cost1[basis[r]];
            if nonzero(coef) {
                for t in 0..row.len() {
                    cost1[row.idx[t] as usize] -= coef * row.val[t];
                }
                cost1[n] -= coef * rhs[r];
            }
        }

        let mut cost2 = vec![0.0; n + 1];
        cost2[..n].copy_from_slice(&sf.c);

        let size = m + n;
        let mut eta = EtaFile::new();
        eta.ensure_scratch(m);
        let blocks = opts
            .blocks
            .as_deref()
            .and_then(|bs| BlockPricing::build(bs, sf));
        SparseTableau {
            col_kinds: sf.col_kinds.clone(),
            b_norm: 1.0 + sf.b.iter().fold(0.0_f64, |acc, v| acc.max(v.abs())),
            rows,
            rhs,
            cost2,
            cost1,
            basis,
            banned: vec![false; n],
            tol: opts.tol,
            rule: opts.rule,
            bland_after: opts.bland_after.unwrap_or(20 * size + 200),
            max_iters: opts.max_iters.unwrap_or(200 * size + 1000),
            pivots: 0,
            csc: CscMatrix::from_csr(&sf.a),
            col_rows: Vec::new(),
            col_vals: Vec::new(),
            col_cached: usize::MAX,
            merge_row: SparseRow::default(),
            eta,
            refactor_threshold: refactor_cadence(m),
            blocks,
            ftran_ops: 0,
            ftran_nnz: 0,
            refactors: 0,
        }
    }

    pub(crate) fn n(&self) -> usize {
        self.banned.len()
    }

    pub(crate) fn m(&self) -> usize {
        self.basis.len()
    }

    fn effective_rule(&self) -> PivotRule {
        if self.pivots >= self.bland_after {
            PivotRule::Bland
        } else {
            self.rule
        }
    }

    /// Extracts the stored nonzeros of tableau column `j` into the
    /// `col_rows`/`col_vals` scratch (ascending rows). This is the
    /// engine's FTRAN equivalent — the materialized rows *are* `B⁻¹A` —
    /// and is metered as such.
    fn extract_col(&mut self, j: usize) {
        // The ratio test and the pivot that follows extract the same
        // column with no row mutation in between; reusing the buffers is
        // a pure read-path shortcut (no arithmetic, so no drift).
        if self.col_cached == j {
            return;
        }
        self.col_rows.clear();
        self.col_vals.clear();
        let jj = j as u32;
        for (r, row) in self.rows.iter().enumerate() {
            let v = row.get(jj);
            if nonzero(v) {
                self.col_rows.push(r as u32);
                self.col_vals.push(v);
            }
        }
        self.col_cached = j;
        self.ftran_ops += 1;
        self.ftran_nnz += self.col_rows.len() as u64;
    }

    /// Full-scan pricing, identical to the dense engine's.
    fn price_scan(&self, phase1: bool, rule: PivotRule) -> Option<usize> {
        let n = self.n();
        let cost = if phase1 { &self.cost1 } else { &self.cost2 };
        match rule {
            PivotRule::Bland => (0..n).find(|&j| !self.banned[j] && cost[j] < -self.tol),
            PivotRule::Dantzig => {
                let mut best: Option<(usize, f64)> = None;
                for j in 0..n {
                    if self.banned[j] {
                        continue;
                    }
                    let r = cost[j];
                    if r < -self.tol && best.map_or(true, |(_, b)| r < b) {
                        best = Some((j, r));
                    }
                }
                best.map(|(j, _)| j)
            }
        }
    }

    /// Block-aware Dantzig pricing over `cost2`. Selects the same column
    /// as [`SparseTableau::price_scan`] would (smallest index attaining
    /// the global minimum reduced cost), but skips blocks whose floor
    /// proves they hold no candidate.
    fn price_blocks(&mut self) -> Option<usize> {
        let Some(mut bp) = self.blocks.take() else {
            return self.price_scan(false, PivotRule::Dantzig);
        };
        let mut best: Option<(usize, f64)> = None;
        for b in 0..bp.groups.len() {
            if bp.floors[b] >= -self.tol {
                continue;
            }
            let mut exact_min = f64::INFINITY;
            for &j32 in &bp.groups[b] {
                let j = j32 as usize;
                if self.banned[j] {
                    continue;
                }
                let v = self.cost2[j];
                if v < exact_min {
                    exact_min = v;
                }
                if v < -self.tol {
                    let better = match best {
                        None => true,
                        // Candidates are ordinary negatives, so value
                        // equality is well-defined; the index tie-break
                        // reproduces the dense ascending scan.
                        Some((bj, bv)) => v < bv || (f64_eq(v, bv) && j < bj),
                    };
                    if better {
                        best = Some((j, v));
                    }
                }
            }
            bp.floors[b] = exact_min;
        }
        self.blocks = Some(bp);
        best.map(|(j, _)| j)
    }

    fn price(&mut self, phase1: bool) -> Option<usize> {
        let rule = self.effective_rule();
        if !phase1 && rule == PivotRule::Dantzig && self.blocks.is_some() {
            self.price_blocks()
        } else {
            self.price_scan(phase1, rule)
        }
    }

    /// Ratio test over the stored nonzeros of the entering column; the
    /// candidate set and tie-breaks are identical to the dense engine's
    /// (absent entries are zeros and can never pass `a > tol`).
    // palb:hot-path(no-alloc)
    pub(crate) fn ratio_test(&mut self, j: usize) -> Option<usize> {
        self.extract_col(j);
        let mut best: Option<(usize, f64)> = None;
        for t in 0..self.col_rows.len() {
            let r = self.col_rows[t] as usize;
            let a = self.col_vals[t];
            if a > self.tol {
                let ratio = self.rhs[r] / a;
                let better = match best {
                    None => true,
                    Some((br, bratio)) => {
                        if (ratio - bratio).abs() <= self.tol * (1.0 + bratio.abs()) {
                            let cand_art =
                                matches!(self.col_kinds[self.basis[r]], ColKind::Artificial(_));
                            let best_art =
                                matches!(self.col_kinds[self.basis[br]], ColKind::Artificial(_));
                            match (cand_art, best_art) {
                                (true, false) => true,
                                (false, true) => false,
                                _ => self.basis[r] < self.basis[br],
                            }
                        } else {
                            ratio < bratio
                        }
                    }
                };
                if better {
                    best = Some((r, ratio));
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Pivots on `(row, col)`: the sparse mirror of the dense pivot, in
    /// the same operation order — snapshot the pre-scale column, scale the
    /// pivot row (and RHS), eliminate every other row with a nonzero
    /// factor, clamp cancellation dust on the RHS, then sweep both cost
    /// rows with the scaled pivot row. Also records the eta op for BTRAN.
    // palb:hot-path(no-alloc)
    pub(crate) fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n();
        let jj = col as u32;
        self.extract_col(col);
        let crows = std::mem::take(&mut self.col_rows);
        let cvals = std::mem::take(&mut self.col_vals);
        let pivot = self.rows[row].get(jj);
        debug_assert!(pivot.abs() > self.tol, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;

        // Record the eta op from the pre-scale column values.
        self.eta.begin_eta(row, inv);
        for t in 0..crows.len() {
            if crows[t] as usize != row {
                self.eta.push_factor(crows[t], cvals[t]);
            }
        }

        // Scale the pivot row; entries that underflow to exact zero are
        // dropped (the dense engine stores the same zero).
        {
            let prow = &mut self.rows[row];
            let mut w = 0usize;
            for t in 0..prow.len() {
                let v = prow.val[t] * inv;
                if nonzero(v) {
                    prow.idx[w] = prow.idx[t];
                    prow.val[w] = v;
                    w += 1;
                }
            }
            prow.idx.truncate(w);
            prow.val.truncate(w);
            // Clamp the pivot position to exactly 1.0, as the dense
            // engine does. The entry exists: pivot · inv cannot be zero.
            if let Ok(t) = prow.idx.binary_search(&jj) {
                prow.val[t] = 1.0;
            }
        }
        self.rhs[row] *= inv;
        let rhs_row = self.rhs[row];

        // Eliminate the other rows (ascending, like the dense factor
        // scan). The pivot row is temporarily taken to satisfy borrows.
        let prow = std::mem::take(&mut self.rows[row]);
        let mut out = std::mem::take(&mut self.merge_row);
        for t in 0..crows.len() {
            let r = crows[t] as usize;
            if r == row {
                continue;
            }
            let s = -cvals[t];
            merge_axpy(&mut self.rows[r], s, &prow, jj, &mut out);
            self.rhs[r] += s * rhs_row;
            if self.rhs[r] < 0.0 && self.rhs[r] > -self.tol {
                self.rhs[r] = 0.0;
            }
        }

        // Cost sweeps over the scaled pivot row's stored entries (the
        // dense sweep over its zeros never changes a value). `cost[n]`
        // pairs with the dense RHS column.
        let f1 = self.cost1[col];
        if nonzero(f1) {
            for t in 0..prow.len() {
                self.cost1[prow.idx[t] as usize] -= f1 * prow.val[t];
            }
            self.cost1[n] -= f1 * rhs_row;
            self.cost1[col] = 0.0;
        }
        let f2 = self.cost2[col];
        if nonzero(f2) {
            for t in 0..prow.len() {
                let c = prow.idx[t] as usize;
                self.cost2[c] -= f2 * prow.val[t];
                if let Some(bp) = self.blocks.as_mut() {
                    bp.note(c, self.cost2[c]);
                }
            }
            self.cost2[n] -= f2 * rhs_row;
            self.cost2[col] = 0.0;
            if let Some(bp) = self.blocks.as_mut() {
                bp.note(col, 0.0);
            }
        }
        self.rows[row] = prow;
        self.merge_row = out;
        self.col_rows = crows;
        self.col_vals = cvals;
        self.col_cached = usize::MAX;

        let leaving = self.basis[row];
        if matches!(self.col_kinds[leaving], ColKind::Artificial(_)) {
            self.banned[leaving] = true;
        }
        self.basis[row] = col;
        self.pivots += 1;

        if self.eta.op_count() > self.refactor_threshold {
            self.try_refactorize();
        }
    }

    /// Attempts to compress the eta file by refactorizing from the
    /// pristine columns. On failure the current (exact, per-pivot) op
    /// list is kept and the threshold backs off.
    fn try_refactorize(&mut self) {
        match crate::basis::factorize(&mut self.eta, &self.csc, &self.basis) {
            Ok(()) => {
                self.refactors += 1;
                self.refactor_threshold = refactor_cadence(self.m());
            }
            Err(()) => {
                // Keep whatever the file held (an invalid file stays
                // invalid, a valid one stays exact) and back off.
                self.refactor_threshold = self.refactor_threshold.saturating_mul(2);
            }
        }
    }

    pub(crate) fn optimize(&mut self, phase1: bool) -> Result<(), LpError> {
        loop {
            if self.pivots >= self.max_iters {
                return Err(LpError::IterationLimit {
                    iterations: self.pivots,
                    phase: if phase1 {
                        SimplexPhase::Phase1
                    } else {
                        SimplexPhase::Phase2
                    },
                });
            }
            let Some(j) = self.price(phase1) else {
                return Ok(());
            };
            let Some(r) = self.ratio_test(j) else {
                return if phase1 {
                    Err(LpError::Numeric(
                        "unbounded phase-1 column (inconsistent tableau)".into(),
                    ))
                } else {
                    Err(LpError::Unbounded)
                };
            };
            self.pivot(r, j);
        }
    }

    pub(crate) fn run_phase1(&mut self) -> Result<(), LpError> {
        let has_artificials = self
            .col_kinds
            .iter()
            .any(|k| matches!(k, ColKind::Artificial(_)));
        if !has_artificials {
            return Ok(());
        }
        self.optimize(true)?;
        let z1 = -self.cost1[self.n()];
        let scale = self.b_norm;
        if z1 > self.tol * scale * 10.0 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out; the stored entries of a
        // row ascending are exactly the dense scan's nonzero candidates.
        for r in 0..self.m() {
            let jb = self.basis[r];
            if matches!(self.col_kinds[jb], ColKind::Artificial(_)) {
                let mut replacement = None;
                for t in 0..self.rows[r].len() {
                    let j = self.rows[r].idx[t] as usize;
                    if !matches!(self.col_kinds[j], ColKind::Artificial(_))
                        && self.rows[r].val[t].abs() > self.tol * 100.0
                    {
                        replacement = Some(j);
                        break;
                    }
                }
                if let Some(j) = replacement {
                    self.pivot(r, j);
                }
            }
        }
        for (j, kind) in self.col_kinds.iter().enumerate() {
            if matches!(kind, ColKind::Artificial(_)) {
                self.banned[j] = true;
            }
        }
        Ok(())
    }

    pub(crate) fn run_phase2(&mut self) -> Result<(), LpError> {
        self.optimize(false)
    }

    /// Dual simplex, mirroring the dense engine (leave = most negative
    /// RHS; enter = min ratio over the leaving row's stored negatives,
    /// ties to the smaller column).
    pub(crate) fn dual_simplex(&mut self) -> Result<(), LpError> {
        let feas_tol = self.tol * self.b_norm * 10.0;
        loop {
            if self.pivots >= self.max_iters {
                return Err(LpError::IterationLimit {
                    iterations: self.pivots,
                    phase: SimplexPhase::Phase2,
                });
            }
            let mut leave: Option<(usize, f64)> = None;
            for (r, &v) in self.rhs.iter().enumerate() {
                if v < -feas_tol && leave.map_or(true, |(_, b)| v < b) {
                    leave = Some((r, v));
                }
            }
            let Some((r, _)) = leave else {
                for v in &mut self.rhs {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                return Ok(());
            };
            let mut enter: Option<(usize, f64)> = None;
            for t in 0..self.rows[r].len() {
                let j = self.rows[r].idx[t] as usize;
                if self.banned[j] {
                    continue;
                }
                let a = self.rows[r].val[t];
                if a < -self.tol {
                    let ratio = self.cost2[j] / -a;
                    let better = match enter {
                        None => true,
                        Some((bj, bratio)) => {
                            if (ratio - bratio).abs() <= self.tol * (1.0 + bratio.abs()) {
                                j < bj
                            } else {
                                ratio < bratio
                            }
                        }
                    };
                    if better {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((j, _)) = enter else {
                return Err(LpError::Infeasible);
            };
            self.pivot(r, j);
        }
    }

    /// Standard-form primal values at the current basis.
    pub(crate) fn x_std(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n()];
        for (r, &v) in self.rhs.iter().enumerate() {
            x[self.basis[r]] = if v.abs() < self.tol { 0.0 } else { v };
        }
        x
    }

    // --- workspace warm-path hooks --------------------------------------

    /// Folds an RHS delta through identity column `jc` (the dense
    /// engine's `B⁻¹` column read), updating the stored RHS and the
    /// running objective cell.
    pub(crate) fn fold_rhs(&mut self, jc: usize, delta: f64) {
        let n = self.n();
        self.extract_col(jc);
        for t in 0..self.col_rows.len() {
            let r = self.col_rows[t] as usize;
            self.rhs[r] += delta * self.col_vals[t];
        }
        self.cost2[n] += delta * self.cost2[jc];
    }

    /// Raises `b_norm` for a patched RHS magnitude.
    pub(crate) fn bump_b_norm(&mut self, abs_rhs: f64) {
        self.b_norm = self.b_norm.max(1.0 + abs_rhs);
    }

    /// Whether any stored RHS entry is below `-feas_tol`.
    pub(crate) fn any_rhs_below(&self, feas_tol: f64) -> bool {
        self.rhs.iter().any(|&v| v < -feas_tol)
    }

    /// Whether the phase-2 cost row is dual-feasible within `slack_tol`.
    pub(crate) fn dual_feasible(&self, slack_tol: f64) -> bool {
        (0..self.n()).all(|j| self.banned[j] || self.cost2[j] >= -slack_tol)
    }

    /// Applies an objective-coefficient delta to column `col`; when the
    /// column is basic in row `r`, sweeps the reduced costs with that row
    /// exactly like the dense engine.
    pub(crate) fn apply_obj_delta(&mut self, col: usize, delta: f64, basic_row: Option<usize>) {
        let n = self.n();
        self.cost2[col] += delta;
        if let Some(bp) = self.blocks.as_mut() {
            bp.note(col, self.cost2[col]);
        }
        if let Some(r) = basic_row {
            let prow = std::mem::take(&mut self.rows[r]);
            for t in 0..prow.len() {
                let c = prow.idx[t] as usize;
                self.cost2[c] -= delta * prow.val[t];
                if let Some(bp) = self.blocks.as_mut() {
                    bp.note(c, self.cost2[c]);
                }
            }
            self.cost2[n] -= delta * self.rhs[r];
            self.rows[r] = prow;
        }
    }

    /// Re-installs a snapshotted basis: Jordan elimination with row swaps
    /// for pivot quality, mirroring the dense restore bit for bit, then a
    /// cost-row rebuild and an eta refactorization for dual recovery.
    pub(crate) fn restore_to_basis(
        &mut self,
        sf: &StandardForm,
        cols: &[usize],
    ) -> Result<(), LpError> {
        let m = self.m();
        let n = self.n();
        // Reset rows to the original [A | b].
        for (r, row) in self.rows.iter_mut().enumerate() {
            row.clear();
            let (cols, vals) = sf.a.row(r);
            for (&j, &v) in cols.iter().zip(vals) {
                if nonzero(v) {
                    row.push(j, v);
                }
            }
            self.rhs[r] = sf.b[r];
        }
        for (k, &j) in cols.iter().enumerate() {
            let jj = j as u32;
            let mut best = k;
            let mut best_abs = self.rows[k].get(jj).abs();
            for r in (k + 1)..m {
                let a = self.rows[r].get(jj).abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
            if best_abs <= self.tol * 100.0 {
                return Err(LpError::Numeric("singular basis snapshot".into()));
            }
            if best != k {
                self.rows.swap(k, best);
                self.rhs.swap(k, best);
            }
            let pivot = self.rows[k].get(jj);
            // Rows were reset/swapped since any previous extraction.
            self.col_cached = usize::MAX;
            self.extract_col(j);
            let crows = std::mem::take(&mut self.col_rows);
            let cvals = std::mem::take(&mut self.col_vals);
            let inv = 1.0 / pivot;
            {
                let prow = &mut self.rows[k];
                let mut w = 0usize;
                for t in 0..prow.len() {
                    let v = prow.val[t] * inv;
                    if nonzero(v) {
                        prow.idx[w] = prow.idx[t];
                        prow.val[w] = v;
                        w += 1;
                    }
                }
                prow.idx.truncate(w);
                prow.val.truncate(w);
                if let Ok(t) = prow.idx.binary_search(&jj) {
                    prow.val[t] = 1.0;
                }
            }
            self.rhs[k] *= inv;
            let rhs_k = self.rhs[k];
            let prow = std::mem::take(&mut self.rows[k]);
            let mut out = std::mem::take(&mut self.merge_row);
            for t in 0..crows.len() {
                let r = crows[t] as usize;
                if r == k {
                    continue;
                }
                let s = -cvals[t];
                merge_axpy(&mut self.rows[r], s, &prow, jj, &mut out);
                // The dense restore has no RHS clamp here.
                self.rhs[r] += s * rhs_k;
            }
            self.rows[k] = prow;
            self.merge_row = out;
            self.col_rows = crows;
            self.col_vals = cvals;
            self.basis[k] = j;
        }
        // Rebuild phase-2 reduced costs against the restored basis.
        self.cost2[..n].copy_from_slice(&sf.c);
        self.cost2[n] = 0.0;
        for k in 0..m {
            let d = self.cost2[self.basis[k]];
            if nonzero(d) {
                let prow = std::mem::take(&mut self.rows[k]);
                for t in 0..prow.len() {
                    self.cost2[prow.idx[t] as usize] -= d * prow.val[t];
                }
                self.cost2[n] -= d * self.rhs[k];
                self.rows[k] = prow;
                self.cost2[self.basis[k]] = 0.0;
            }
        }
        if let Some(bp) = self.blocks.as_mut() {
            bp.reset();
        }
        for (j, kind) in self.col_kinds.iter().enumerate() {
            if matches!(kind, ColKind::Artificial(_)) {
                self.banned[j] = true;
            }
        }
        self.cost1.iter_mut().for_each(|v| *v = 0.0);
        // The eta product no longer matches the restored basis; rebuild
        // it from pristine columns (failure degrades duals to zeros).
        match crate::basis::factorize(&mut self.eta, &self.csc, &self.basis) {
            Ok(()) => self.refactors += 1,
            Err(()) => self.eta.invalidate(),
        }
        Ok(())
    }

    /// Duals in standard-form row space via BTRAN (`y = B⁻ᵀ c_B`), or
    /// `None` when the eta file is invalid (degrades like the dense
    /// engine's singular-basis fallback).
    pub(crate) fn duals_std(&mut self, sf: &StandardForm) -> Option<Vec<f64>> {
        if !self.eta.is_valid() {
            return None;
        }
        let mut y = vec![0.0; self.m()];
        for (k, &j) in self.basis.iter().enumerate() {
            y[k] = sf.c[j];
        }
        self.eta.btran(&mut y);
        if y.iter().any(|v| !v.is_finite()) {
            return None;
        }
        Some(y)
    }

    /// Stored tableau nonzeros (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn row_nnz(&self) -> usize {
        self.rows.iter().map(SparseRow::len).sum()
    }
}

/// Refactorization cadence: ops beyond `max(64, 4m)` trigger a compress.
fn refactor_cadence(m: usize) -> usize {
    64usize.max(4 * m)
}

/// Size heuristic for [`crate::simplex::EngineKind::Auto`]: standard forms
/// with at least this many tableau cells route to the sparse engine.
pub(crate) const SPARSE_AUTO_CELLS: usize = 100_000;

/// Resolves an engine choice against the standard-form dimensions.
pub(crate) fn auto_prefers_sparse(m: usize, n: usize) -> bool {
    m.saturating_mul(n) >= SPARSE_AUTO_CELLS
}

/// Builds a [`BlockStructure`] helper for tests and generators: one block
/// per server with `vars_per_block`/`cons_per_block` entries, followed by
/// `coupling_vars`/`coupling_cons` coupling entries, matching a problem
/// built block-major.
pub fn block_layout(
    n_blocks: u32,
    vars_per_block: usize,
    cons_per_block: usize,
    coupling_vars: usize,
    coupling_cons: usize,
) -> BlockStructure {
    let mut var_blocks = Vec::with_capacity(n_blocks as usize * vars_per_block + coupling_vars);
    let mut con_blocks = Vec::with_capacity(n_blocks as usize * cons_per_block + coupling_cons);
    for b in 0..n_blocks {
        var_blocks.extend(std::iter::repeat(b).take(vars_per_block));
        con_blocks.extend(std::iter::repeat(b).take(cons_per_block));
    }
    var_blocks.extend(std::iter::repeat(n_blocks).take(coupling_vars));
    con_blocks.extend(std::iter::repeat(n_blocks).take(coupling_cons));
    BlockStructure {
        var_blocks,
        con_blocks,
        n_blocks,
    }
}

/// Convenience: wraps a [`BlockStructure`] for [`SolveOptions::blocks`].
pub fn blocks_option(bs: BlockStructure) -> Option<Arc<BlockStructure>> {
    Some(Arc::new(bs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Rel};
    use crate::simplex::EngineKind;
    use palb_num::bits_eq;

    fn opts(engine: EngineKind) -> SolveOptions {
        SolveOptions {
            engine,
            ..SolveOptions::default()
        }
    }

    fn assert_engines_bitwise_equal(p: &Problem) {
        let dense = p.solve_with(&opts(EngineKind::Dense));
        let sparse = p.solve_with(&opts(EngineKind::Sparse));
        match (dense, sparse) {
            (Ok(d), Ok(s)) => {
                assert!(
                    bits_eq(d.objective(), s.objective()),
                    "objective drift: dense {} sparse {}",
                    d.objective(),
                    s.objective()
                );
                assert_eq!(d.values().len(), s.values().len());
                for (a, b) in d.values().iter().zip(s.values()) {
                    assert!(bits_eq(*a, *b), "value drift: {a} vs {b}");
                }
                // Duals are recovered by engine-specific arithmetic (dense:
                // Bᵀ factorization; sparse: eta BTRAN) — mathematically the
                // same system, so they agree to tolerance, not bitwise.
                for (a, b) in d.duals().iter().zip(s.duals()) {
                    assert!(
                        (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                        "dual drift: {a} vs {b}"
                    );
                }
                assert_eq!(d.iterations(), s.iterations(), "pivot count drift");
            }
            (Err(de), Err(se)) => assert_eq!(de, se, "status drift"),
            (d, s) => panic!("status drift: dense {d:?} vs sparse {s:?}"),
        }
    }

    #[test]
    fn textbook_max_le_matches_dense_bitwise() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_nonneg("y", 5.0);
        p.add_con("c1", &[(x, 1.0)], Rel::Le, 4.0);
        p.add_con("c2", &[(y, 2.0)], Rel::Le, 12.0);
        p.add_con("c3", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        assert_engines_bitwise_equal(&p);
        let s = p.solve_with(&opts(EngineKind::Sparse)).unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-6);
    }

    #[test]
    fn phase1_ge_and_eq_rows_match_dense_bitwise() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 2.0);
        let y = p.add_nonneg("y", 3.0);
        p.add_con("c1", &[(x, 1.0), (y, 1.0)], Rel::Ge, 4.0);
        p.add_con("c2", &[(x, 1.0)], Rel::Ge, 1.0);
        p.add_con("c3", &[(x, 1.0), (y, 2.0)], Rel::Eq, 6.0);
        assert_engines_bitwise_equal(&p);
    }

    #[test]
    fn infeasible_and_unbounded_classification_matches() {
        let mut inf = Problem::maximize();
        let x = inf.add_nonneg("x", 1.0);
        inf.add_con("lo", &[(x, 1.0)], Rel::Ge, 5.0);
        inf.add_con("hi", &[(x, 1.0)], Rel::Le, 3.0);
        assert_engines_bitwise_equal(&inf);

        let mut unb = Problem::maximize();
        let y = unb.add_nonneg("y", 1.0);
        unb.add_con("c", &[(y, -1.0)], Rel::Le, 1.0);
        assert_engines_bitwise_equal(&unb);
    }

    #[test]
    fn degenerate_beale_matches_dense_bitwise() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 0.75);
        let y = p.add_nonneg("y", -150.0);
        let z = p.add_nonneg("z", 0.02);
        let w = p.add_nonneg("w", -6.0);
        p.add_con(
            "r1",
            &[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Rel::Le,
            0.0,
        );
        p.add_con(
            "r2",
            &[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Rel::Le,
            0.0,
        );
        p.add_con("r3", &[(z, 1.0)], Rel::Le, 1.0);
        assert_engines_bitwise_equal(&p);
    }

    #[test]
    fn free_vars_and_upper_bounds_match_dense_bitwise() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", -10.0, 10.0, 0.0);
        let y = p.add_var("y", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_con("a", &[(y, 1.0), (x, -1.0)], Rel::Ge, -2.0);
        p.add_con("b", &[(y, 1.0), (x, 1.0)], Rel::Ge, 0.0);
        assert_engines_bitwise_equal(&p);
    }

    /// A block-structured LP in the slot-dispatch shape: per-server blocks
    /// with local rows plus coupling supply rows. Block pricing must pick
    /// identical pivots (asserted transitively through bitwise equality).
    fn block_problem(servers: usize) -> (Problem, BlockStructure) {
        let mut p = Problem::maximize();
        let mut vars = Vec::new();
        for s in 0..servers {
            let phi = p.add_var_unnamed(0.0, 1.0, 0.0);
            let lam = p.add_var_unnamed(0.0, f64::INFINITY, 1.0 + 0.1 * s as f64);
            vars.push((phi, lam));
        }
        let mut var_blocks = Vec::new();
        let mut con_blocks = Vec::new();
        for (s, &(phi, lam)) in vars.iter().enumerate() {
            var_blocks.extend([s as u32, s as u32]);
            // Local capacity: lam ≤ 5·phi  (lam − 5·phi ≤ 0).
            p.add_con_unnamed(&[(lam, 1.0), (phi, -5.0)], Rel::Le, 0.0);
            // Local share: phi ≤ 1 handled by the bound; add a ≥ row to
            // exercise phase 1 inside blocks.
            p.add_con_unnamed(&[(phi, 1.0), (lam, 0.5)], Rel::Ge, 0.1);
            con_blocks.extend([s as u32, s as u32]);
        }
        // Coupling: total dispatched work is limited.
        let terms: Vec<_> = vars.iter().map(|&(_, lam)| (lam, 1.0)).collect();
        p.add_con_unnamed(&terms, Rel::Le, 2.5 * servers as f64);
        con_blocks.push(servers as u32);
        (
            p,
            BlockStructure {
                var_blocks,
                con_blocks,
                n_blocks: servers as u32,
            },
        )
    }

    #[test]
    fn block_pricing_matches_plain_scan_bitwise() {
        let (p, bs) = block_problem(7);
        let plain = p.solve_with(&opts(EngineKind::Sparse)).unwrap();
        let blocked = p
            .solve_with(&SolveOptions {
                engine: EngineKind::Sparse,
                blocks: blocks_option(bs),
                ..SolveOptions::default()
            })
            .unwrap();
        assert!(bits_eq(plain.objective(), blocked.objective()));
        for (a, b) in plain.values().iter().zip(blocked.values()) {
            assert!(bits_eq(*a, *b));
        }
        assert_eq!(plain.iterations(), blocked.iterations());
        // And both match dense.
        assert_engines_bitwise_equal(&p);
    }

    #[test]
    fn malformed_block_metadata_is_ignored() {
        let (p, _) = block_problem(3);
        let bogus = BlockStructure {
            var_blocks: vec![0; 1], // wrong length
            con_blocks: vec![0; 1],
            n_blocks: 1,
        };
        let s = p
            .solve_with(&SolveOptions {
                engine: EngineKind::Sparse,
                blocks: blocks_option(bogus),
                ..SolveOptions::default()
            })
            .unwrap();
        let plain = p.solve_with(&opts(EngineKind::Sparse)).unwrap();
        assert!(bits_eq(s.objective(), plain.objective()));
    }

    #[test]
    fn bland_rule_matches_dense_bitwise() {
        let (p, _) = block_problem(5);
        let dense = p
            .solve_with(&SolveOptions {
                rule: PivotRule::Bland,
                engine: EngineKind::Dense,
                ..SolveOptions::default()
            })
            .unwrap();
        let sparse = p
            .solve_with(&SolveOptions {
                rule: PivotRule::Bland,
                engine: EngineKind::Sparse,
                ..SolveOptions::default()
            })
            .unwrap();
        assert!(bits_eq(dense.objective(), sparse.objective()));
        assert_eq!(dense.iterations(), sparse.iterations());
    }

    #[test]
    fn sparse_tableau_stays_sparse_on_block_problem() {
        let (p, _) = block_problem(40);
        let sf = crate::standard::build(&p).unwrap();
        let mut tab = SparseTableau::new(&sf, &SolveOptions::default());
        tab.run_phase1().unwrap();
        tab.run_phase2().unwrap();
        let cells = sf.m() * sf.n();
        let nnz = tab.row_nnz();
        assert!(
            nnz * 4 < cells,
            "tableau lost sparsity: {nnz} nnz of {cells} cells"
        );
        assert!(tab.ftran_ops > 0, "ftran counter never moved");
    }

    #[test]
    fn csc_round_trips_columns() {
        // [1 0 2; 0 3 0] assembled row-major, transposed to columns.
        let mut a = CsrMatrix::with_capacity(3, 2, 3);
        a.push(0, 1.0);
        a.push(2, 2.0);
        a.finish_row();
        a.push(1, 3.0);
        a.finish_row();
        let csc = CscMatrix::from_csr(&a);
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csc.col_nnz(0), 1);
        assert_eq!(csc.col_nnz(1), 1);
        let mut w = vec![0.0; 2];
        csc.scatter_col(2, &mut w);
        assert_eq!(w, vec![2.0, 0.0]);
    }

    #[test]
    fn auto_heuristic_routes_large_problems_to_sparse() {
        assert!(!auto_prefers_sparse(10, 100));
        assert!(auto_prefers_sparse(400, 300));
    }
}
