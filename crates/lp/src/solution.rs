//! Optimal solution container returned by the simplex engine.

use crate::problem::{ConId, VarId};

/// An optimal solution to a linear program.
///
/// Returned only on success; infeasible/unbounded models surface as
/// [`crate::LpError`] variants instead.
#[derive(Debug, Clone)]
pub struct Solution {
    objective: f64,
    x: Vec<f64>,
    duals: Vec<f64>,
    iterations: usize,
}

impl Solution {
    pub(crate) fn new(objective: f64, x: Vec<f64>, duals: Vec<f64>, iterations: usize) -> Self {
        Solution {
            objective,
            x,
            duals,
            iterations,
        }
    }

    /// Optimal objective value in the user's optimization sense.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a single variable at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Shadow price of a constraint: the rate of change of the optimal
    /// user-sense objective per unit increase of the constraint's
    /// right-hand side (zero for non-binding rows).
    pub fn dual(&self, c: ConId) -> f64 {
        self.duals[c.index()]
    }

    /// All constraint duals, indexed by [`ConId::index`].
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Total simplex pivots performed across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let s = Solution::new(42.0, vec![1.0, 2.0], vec![0.5], 7);
        assert_eq!(s.objective(), 42.0);
        assert_eq!(s.value(VarId(1)), 2.0);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.dual(ConId(0)), 0.5);
        assert_eq!(s.iterations(), 7);
    }
}
