//! Two-phase dense primal simplex.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible point; phase 2 optimizes the real objective. Dantzig pricing is
//! used by default with an automatic, permanent switch to Bland's rule once
//! the pivot count suggests stalling, which guarantees termination.

use std::sync::Arc;

use palb_num::nonzero;

use crate::dense::DenseMatrix;
use crate::error::{LpError, SimplexPhase};
use crate::problem::Problem;
use crate::solution::Solution;
use crate::sparse::{BlockStructure, SparseTableau};
use crate::standard::{self, ColKind, RowOrigin, StandardForm};

/// Which simplex engine executes a solve.
///
/// Both engines are bitwise-equal on every input (see [`crate::sparse`]),
/// so the choice is purely a performance knob: the sparse engine wins by
/// an order of magnitude on large block-structured LPs and loses a
/// constant factor on tiny dense ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Pick by problem size: standard forms whose tableau would hold at
    /// least `SPARSE_AUTO_CELLS` cells route to the sparse engine.
    #[default]
    Auto,
    /// Always the dense tableau.
    Dense,
    /// Always the sparse tableau.
    Sparse,
}

/// Entering-variable selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotRule {
    /// Most-negative reduced cost (fast in practice; can cycle).
    Dantzig,
    /// Smallest-index rule (slow but provably cycle-free).
    Bland,
}

/// Tunable solver options.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Initial pivot rule. The engine force-switches to Bland after
    /// `bland_after` pivots regardless of this setting.
    pub rule: PivotRule,
    /// Feasibility / pricing tolerance.
    pub tol: f64,
    /// Hard cap on pivots per phase; `None` picks `200·(m + n) + 1000`.
    pub max_iters: Option<usize>,
    /// Pivot count after which Bland's rule is enforced; `None` picks
    /// `20·(m + n) + 200`.
    pub bland_after: Option<usize>,
    /// Run the presolve reductions (fixed variables, empty/singleton rows)
    /// before the simplex. On by default.
    pub presolve: bool,
    /// Which engine executes the solve; [`EngineKind::Auto`] picks by
    /// problem size.
    pub engine: EngineKind,
    /// Optional block-structure metadata (per-server blocks plus coupling
    /// rows) enabling the sparse engine's block pricing. The dense engine
    /// ignores it; inconsistent metadata is detected and ignored.
    pub blocks: Option<Arc<BlockStructure>>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            rule: PivotRule::Dantzig,
            tol: 1e-9,
            max_iters: None,
            bland_after: None,
            presolve: true,
            engine: EngineKind::Auto,
            blocks: None,
        }
    }
}

/// Solves `p`, producing an optimal [`Solution`] or a classification error.
pub(crate) fn solve(p: &Problem, opts: &SolveOptions) -> Result<Solution, LpError> {
    if !opts.presolve {
        return solve_direct(p, opts);
    }
    let red = crate::presolve::presolve(p)?;
    if red.problem.num_vars() == 0 {
        // Everything fixed; presolve already verified every row.
        let x = red.expand_x(&[]);
        let objective = p.objective_value(&x);
        return Ok(Solution::new(objective, x, vec![0.0; p.num_cons()], 0));
    }
    // Block metadata is indexed in the original variable/constraint
    // spaces; remap it onto the reduced problem (or drop it if the mapping
    // cannot be established — the shortcut is optional).
    let inner_opts = if opts.blocks.is_some()
        && (red.kept_vars.len() != p.num_vars() || red.kept_cons.len() != p.num_cons())
    {
        let remapped = opts
            .blocks
            .as_deref()
            .and_then(|bs| bs.remap(&red.kept_vars, &red.kept_cons))
            .map(Arc::new);
        SolveOptions {
            blocks: remapped,
            ..opts.clone()
        }
    } else {
        opts.clone()
    };
    let inner = solve_direct(&red.problem, &inner_opts)?;
    let x = red.expand_x(inner.values());
    let mut duals = red.expand_duals(inner.duals());
    postsolve_duals(p, &red, &x, &mut duals, opts.tol);
    let objective = p.objective_value(&x);
    Ok(Solution::new(objective, x, duals, inner.iterations()))
}

/// Postsolve dual recovery: a singleton row folded into a variable bound
/// can still be the binding constraint of the *original* problem, in which
/// case its dual must carry the variable's leftover reduced cost.
///
/// For each original variable `j`, the reduced cost under the expanded
/// duals is `r_j = c_j − Σᵢ yᵢ·a_{ij}`. If `x_j` sits on a
/// presolve-created bound whose source row had coefficient `a`, setting
/// that row's dual to `r_j / a` restores dual feasibility: the chain rule
/// through `x_j = b/a` gives `∂obj/∂b = r_j / a`, matching our
/// shadow-price convention in either optimization sense.
fn postsolve_duals(
    p: &Problem,
    red: &crate::presolve::Reduction,
    x: &[f64],
    duals: &mut [f64],
    tol: f64,
) {
    // Reduced costs under the kept-row duals.
    let mut reduced: Vec<f64> = p.vars.iter().map(|v| v.objective).collect();
    for (i, con) in p.cons.iter().enumerate() {
        let y = duals[i];
        if nonzero(y) {
            for &(j, a) in &con.terms {
                reduced[j] -= y * a;
            }
        }
    }
    for (j, &r_j) in reduced.iter().enumerate() {
        if r_j.abs() <= tol * 1e3 {
            continue;
        }
        let src = red.bound_sources[j];
        let at_upper = red.final_hi[j].is_finite()
            && (x[j] - red.final_hi[j]).abs() <= 1e-7 * (1.0 + red.final_hi[j].abs());
        let at_lower = red.final_lo[j].is_finite()
            && (x[j] - red.final_lo[j]).abs() <= 1e-7 * (1.0 + red.final_lo[j].abs());
        // Prefer the bound that the optimization direction pushes against.
        let maximizing = p.sense == crate::problem::Sense::Maximize;
        let wants_upper = (maximizing && r_j > 0.0) || (!maximizing && r_j < 0.0);
        let chosen = if wants_upper && at_upper {
            src.upper
        } else if !wants_upper && at_lower {
            src.lower
        } else if at_upper {
            src.upper.or(src.lower)
        } else if at_lower {
            src.lower.or(src.upper)
        } else {
            None
        };
        if let Some((row, a)) = chosen {
            duals[row] += r_j / a;
        }
    }
}

/// The raw two-phase solve without presolve.
fn solve_direct(p: &Problem, opts: &SolveOptions) -> Result<Solution, LpError> {
    let sf = standard::build(p)?;
    if use_sparse(opts.engine, sf.m(), sf.n()) {
        let mut tab = SparseTableau::new(&sf, opts);
        tab.run_phase1()?;
        tab.run_phase2()?;
        extract_sparse(p, &sf, &mut tab)
    } else {
        let mut tab = Tableau::new(&sf, opts);
        tab.run_phase1()?;
        tab.run_phase2()?;
        extract(p, &sf, &tab)
    }
}

/// Resolves an [`EngineKind`] against standard-form dimensions.
pub(crate) fn use_sparse(engine: EngineKind, m: usize, n: usize) -> bool {
    match engine {
        EngineKind::Dense => false,
        EngineKind::Sparse => true,
        EngineKind::Auto => crate::sparse::auto_prefers_sparse(m, n),
    }
}

/// The evolving simplex tableau. Owns copies of the small metadata it
/// needs (`col_kinds`, norms) so it carries no lifetime — this is what lets
/// [`crate::Workspace`] keep one alive across many patched solves.
pub(crate) struct Tableau {
    /// Copy of the standard form's column roles.
    pub(crate) col_kinds: Vec<ColKind>,
    /// `1 + max|b|` at build time; scales the phase-1 infeasibility test.
    pub(crate) b_norm: f64,
    /// `m x (n+1)` working rows; the last column is the RHS.
    pub(crate) rows: DenseMatrix,
    /// Phase-2 reduced-cost row; last entry is `-z`.
    pub(crate) cost2: Vec<f64>,
    /// Phase-1 reduced-cost row; last entry is `-z₁`.
    pub(crate) cost1: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    /// Columns that may never (re-)enter the basis.
    pub(crate) banned: Vec<bool>,
    pub(crate) tol: f64,
    pub(crate) rule: PivotRule,
    pub(crate) bland_after: usize,
    pub(crate) max_iters: usize,
    pub(crate) pivots: usize,
    /// Length-`m` scratch for the entering/pivot column, reused across
    /// pivots so the hot loop never allocates. Shared by the ratio test,
    /// the elimination pass, and the workspace's warm-path column folds.
    pub(crate) col_buf: Vec<f64>,
}

impl Tableau {
    pub(crate) fn new(sf: &StandardForm, opts: &SolveOptions) -> Self {
        let m = sf.m();
        let n = sf.n();
        let mut rows = DenseMatrix::zeros(m, n + 1);
        for r in 0..m {
            sf.a.scatter_row_into(r, &mut rows.row_mut(r)[..n]);
            rows[(r, n)] = sf.b[r];
        }

        // Initial basis: the identity column of each row (slack for ≤,
        // artificial otherwise). Columns were laid out to guarantee this.
        let mut basis = vec![usize::MAX; m];
        for (j, kind) in sf.col_kinds.iter().enumerate() {
            match *kind {
                ColKind::Slack(r) | ColKind::Artificial(r) => {
                    if basis[r] == usize::MAX {
                        basis[r] = j;
                    } else if matches!(kind, ColKind::Artificial(_)) {
                        // A ≥-row has both surplus (-1) and artificial (+1);
                        // the artificial is the identity column.
                        basis[r] = j;
                    }
                }
                _ => {}
            }
        }
        // For ≥ rows the slack arm never exists, so re-scan to make sure
        // each basis entry is the +1 identity column.
        for (j, kind) in sf.col_kinds.iter().enumerate() {
            if let ColKind::Artificial(r) = *kind {
                basis[r] = j;
            }
        }
        debug_assert!(basis.iter().all(|&j| j != usize::MAX || m == 0));

        // Phase-1 costs: 1 on artificials. Reduce against the basis.
        let mut cost1 = vec![0.0; n + 1];
        for (j, kind) in sf.col_kinds.iter().enumerate() {
            if matches!(kind, ColKind::Artificial(_)) {
                cost1[j] = 1.0;
            }
        }
        for r in 0..m {
            let jb = basis[r];
            if nonzero(cost1[jb]) {
                let coef = cost1[jb];
                for (cv, rv) in cost1.iter_mut().zip(rows.row(r)) {
                    *cv -= coef * rv;
                }
            }
        }

        // Phase-2 costs: the real (internal minimize) costs. Slack and
        // artificial columns cost zero, so no initial reduction is needed.
        let mut cost2 = vec![0.0; n + 1];
        cost2[..n].copy_from_slice(&sf.c);

        let size = m + n;
        Tableau {
            col_kinds: sf.col_kinds.clone(),
            b_norm: 1.0 + sf.b.iter().fold(0.0_f64, |acc, v| acc.max(v.abs())),
            rows,
            cost2,
            cost1,
            basis,
            banned: vec![false; n],
            tol: opts.tol,
            rule: opts.rule,
            bland_after: opts.bland_after.unwrap_or(20 * size + 200),
            max_iters: opts.max_iters.unwrap_or(200 * size + 1000),
            pivots: 0,
            col_buf: vec![0.0; m],
        }
    }

    pub(crate) fn n(&self) -> usize {
        self.banned.len()
    }

    pub(crate) fn m(&self) -> usize {
        self.basis.len()
    }

    fn effective_rule(&self) -> PivotRule {
        if self.pivots >= self.bland_after {
            PivotRule::Bland
        } else {
            self.rule
        }
    }

    /// Selects an entering column against the given cost row.
    pub(crate) fn price(&self, cost: &[f64]) -> Option<usize> {
        let n = self.n();
        match self.effective_rule() {
            PivotRule::Bland => (0..n).find(|&j| !self.banned[j] && cost[j] < -self.tol),
            PivotRule::Dantzig => {
                let mut best: Option<(usize, f64)> = None;
                for j in 0..n {
                    if self.banned[j] {
                        continue;
                    }
                    let r = cost[j];
                    if r < -self.tol && best.map_or(true, |(_, b)| r < b) {
                        best = Some((j, r));
                    }
                }
                best.map(|(j, _)| j)
            }
        }
    }

    /// Ratio test: picks the leaving row for entering column `j`.
    /// Returns `None` when the column is unbounded below.
    ///
    /// The entering column is snapshotted into the reusable scratch buffer
    /// — one contiguous pass instead of a strided matrix read per candidate
    /// row — so the hot loop performs no per-pivot allocation.
    // palb:hot-path(no-alloc)
    // palb:decision-path
    pub(crate) fn ratio_test(&mut self, j: usize) -> Option<usize> {
        let n = self.n();
        let mut col = std::mem::take(&mut self.col_buf);
        self.rows.col_into(j, &mut col);
        let mut best: Option<(usize, f64)> = None;
        for (r, &a) in col.iter().enumerate() {
            if a > self.tol {
                let ratio = self.rows[(r, n)] / a;
                let better = match best {
                    None => true,
                    Some((br, bratio)) => {
                        if (ratio - bratio).abs() <= self.tol * (1.0 + bratio.abs()) {
                            // Tie: prefer kicking out artificials, then the
                            // smaller basis index (Bland-compatible).
                            let cand_art =
                                matches!(self.col_kinds[self.basis[r]], ColKind::Artificial(_));
                            let best_art =
                                matches!(self.col_kinds[self.basis[br]], ColKind::Artificial(_));
                            match (cand_art, best_art) {
                                (true, false) => true,
                                (false, true) => false,
                                _ => self.basis[r] < self.basis[br],
                            }
                        } else {
                            ratio < bratio
                        }
                    }
                };
                if better {
                    best = Some((r, ratio));
                }
            }
        }
        self.col_buf = col;
        best.map(|(r, _)| r)
    }

    /// Pivots on `(row, col)`, updating both cost rows and the basis.
    // palb:hot-path(no-alloc)
    // palb:decision-path
    pub(crate) fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n();
        let pivot = self.rows[(row, col)];
        debug_assert!(pivot.abs() > self.tol, "pivot too small: {pivot}");
        // Snapshot the pivot column into the reused scratch buffer before
        // touching any row: the elimination factors then come from one
        // contiguous pass instead of strided reads interleaved with the row
        // updates. Scaling the pivot row first is safe either way (it never
        // feeds its own factor), so results are identical bit for bit.
        let mut factors = std::mem::take(&mut self.col_buf);
        self.rows.col_into(col, &mut factors);
        self.rows.scale_row(row, 1.0 / pivot);
        self.rows[(row, col)] = 1.0; // clamp round-off

        for (r, &f) in factors.iter().enumerate() {
            if r != row && nonzero(f) {
                self.rows.axpy_rows(r, row, -f);
                self.rows[(r, col)] = 0.0;
                // Clamp tiny negative RHS caused by cancellation.
                if self.rows[(r, n)] < 0.0 && self.rows[(r, n)] > -self.tol {
                    self.rows[(r, n)] = 0.0;
                }
            }
        }
        self.col_buf = factors;
        let prow = row;
        for cost in [&mut self.cost1, &mut self.cost2] {
            let f = cost[col];
            if nonzero(f) {
                let src = self.rows.row(prow);
                for (cv, rv) in cost.iter_mut().zip(src) {
                    *cv -= f * rv;
                }
                cost[col] = 0.0;
            }
        }

        // If an artificial leaves the basis, it must never come back.
        let leaving = self.basis[row];
        if matches!(self.col_kinds[leaving], ColKind::Artificial(_)) {
            self.banned[leaving] = true;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    pub(crate) fn optimize(&mut self, phase1: bool) -> Result<(), LpError> {
        loop {
            if self.pivots >= self.max_iters {
                return Err(LpError::IterationLimit {
                    iterations: self.pivots,
                    phase: if phase1 {
                        SimplexPhase::Phase1
                    } else {
                        SimplexPhase::Phase2
                    },
                });
            }
            let cost = if phase1 { &self.cost1 } else { &self.cost2 };
            let Some(j) = self.price(cost) else {
                return Ok(()); // optimal for this phase
            };
            let Some(r) = self.ratio_test(j) else {
                return if phase1 {
                    // Phase 1 is bounded below by 0; this is numerical noise.
                    Err(LpError::Numeric(
                        "unbounded phase-1 column (inconsistent tableau)".into(),
                    ))
                } else {
                    Err(LpError::Unbounded)
                };
            };
            self.pivot(r, j);
        }
    }

    pub(crate) fn run_phase1(&mut self) -> Result<(), LpError> {
        let n = self.n();
        let has_artificials = self
            .col_kinds
            .iter()
            .any(|k| matches!(k, ColKind::Artificial(_)));
        if !has_artificials {
            return Ok(());
        }
        self.optimize(true)?;
        let z1 = -self.cost1[n];
        // Scale the infeasibility test with the problem magnitude.
        let scale = self.b_norm;
        if z1 > self.tol * scale * 10.0 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out (degenerate pivots), then
        // ban every artificial from entering in phase 2.
        for r in 0..self.m() {
            let jb = self.basis[r];
            if matches!(self.col_kinds[jb], ColKind::Artificial(_)) {
                let replacement = (0..n).find(|&j| {
                    !matches!(self.col_kinds[j], ColKind::Artificial(_))
                        && self.rows[(r, j)].abs() > self.tol * 100.0
                });
                if let Some(j) = replacement {
                    self.pivot(r, j);
                }
                // If no replacement exists the row is redundant; the
                // artificial stays basic at value zero and — because every
                // enterable column has a zero coefficient in this row —
                // can never grow.
            }
        }
        for (j, kind) in self.col_kinds.iter().enumerate() {
            if matches!(kind, ColKind::Artificial(_)) {
                self.banned[j] = true;
            }
        }
        Ok(())
    }

    pub(crate) fn run_phase2(&mut self) -> Result<(), LpError> {
        self.optimize(false)
    }

    /// Dual simplex on the phase-2 costs: restores primal feasibility
    /// (`rhs ≥ 0`) while preserving dual feasibility. The precondition is a
    /// dual-feasible cost row — e.g. any previously optimal basis whose RHS
    /// was just patched. Returns `Infeasible` when a negative row has no
    /// eligible entering column (primal infeasible), and counts its pivots
    /// against `max_iters` like the primal loop.
    pub(crate) fn dual_simplex(&mut self) -> Result<(), LpError> {
        let n = self.n();
        let feas_tol = self.tol * self.b_norm * 10.0;
        loop {
            if self.pivots >= self.max_iters {
                return Err(LpError::IterationLimit {
                    iterations: self.pivots,
                    phase: SimplexPhase::Phase2,
                });
            }
            // Leaving row: most negative RHS.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m() {
                let v = self.rows[(r, n)];
                if v < -feas_tol && leave.map_or(true, |(_, b)| v < b) {
                    leave = Some((r, v));
                }
            }
            let Some((r, _)) = leave else {
                // Primal feasible again; clamp residual negative dust.
                for r in 0..self.m() {
                    if self.rows[(r, n)] < 0.0 {
                        self.rows[(r, n)] = 0.0;
                    }
                }
                return Ok(());
            };
            // Entering column: among negative coefficients of the leaving
            // row, the one that keeps the cost row non-negative — the
            // classical min |c̃_j / a_rj| ratio. Ties break toward the
            // smaller column index (Bland-compatible).
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..n {
                if self.banned[j] {
                    continue;
                }
                // Basic columns are exact identity columns (pivot clamps
                // them), so they can never price in here.
                let a = self.rows[(r, j)];
                if a < -self.tol {
                    let ratio = self.cost2[j] / -a;
                    let better = match enter {
                        None => true,
                        Some((bj, bratio)) => {
                            if (ratio - bratio).abs() <= self.tol * (1.0 + bratio.abs()) {
                                j < bj
                            } else {
                                ratio < bratio
                            }
                        }
                    };
                    if better {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((j, _)) = enter else {
                // Row r reads Σ a_rj x_j = rhs < 0 with every admissible
                // coefficient ≥ 0: no non-negative x satisfies it.
                return Err(LpError::Infeasible);
            };
            self.pivot(r, j);
        }
    }

    /// Standard-form primal values at the current basis.
    pub(crate) fn x_std(&self) -> Vec<f64> {
        let n = self.n();
        let mut x = vec![0.0; n];
        for r in 0..self.m() {
            let v = self.rows[(r, n)];
            x[self.basis[r]] = if v.abs() < self.tol { 0.0 } else { v };
        }
        x
    }

    // --- workspace warm-path hooks --------------------------------------

    /// Folds an RHS delta through identity column `jc` of the evolving
    /// tableau (that column *is* the corresponding column of `B⁻¹`),
    /// updating the transformed right-hand side and the running objective
    /// cell in `O(m)`. The column is snapshotted through the reused
    /// scratch — no per-patch allocation, one contiguous read.
    pub(crate) fn fold_rhs(&mut self, jc: usize, delta: f64) {
        let n = self.n();
        let mut binv_col = std::mem::take(&mut self.col_buf);
        self.rows.col_into(jc, &mut binv_col);
        for (r, &f) in binv_col.iter().enumerate() {
            if nonzero(f) {
                self.rows[(r, n)] += delta * f;
            }
        }
        self.col_buf = binv_col;
        self.cost2[n] += delta * self.cost2[jc];
    }

    /// Raises `b_norm` for a patched RHS magnitude.
    pub(crate) fn bump_b_norm(&mut self, abs_rhs: f64) {
        self.b_norm = self.b_norm.max(1.0 + abs_rhs);
    }

    /// Whether any transformed RHS entry is below `-feas_tol`.
    pub(crate) fn any_rhs_below(&self, feas_tol: f64) -> bool {
        let n = self.n();
        (0..self.m()).any(|r| self.rows[(r, n)] < -feas_tol)
    }

    /// Whether the phase-2 cost row is dual-feasible within `slack_tol`.
    pub(crate) fn dual_feasible(&self, slack_tol: f64) -> bool {
        (0..self.n()).all(|j| self.banned[j] || self.cost2[j] >= -slack_tol)
    }

    /// Applies an objective-coefficient delta to column `col`; when the
    /// column is basic in row `r`, its cost change sweeps through every
    /// reduced cost (`c_B` moved): `c̃ -= Δc · (B⁻¹A)_r`.
    pub(crate) fn apply_obj_delta(&mut self, col: usize, delta: f64, basic_row: Option<usize>) {
        self.cost2[col] += delta;
        if let Some(r) = basic_row {
            let src = self.rows.row(r);
            for (cv, rv) in self.cost2.iter_mut().zip(src) {
                *cv -= delta * rv;
            }
        }
    }

    /// Re-installs a snapshotted basis: resets the rows to the original
    /// `[A | b]`, then runs a Jordan elimination into the requested basis
    /// with row swaps for pivot quality (same scratch-column elimination
    /// as [`Tableau::pivot`]), and finally recomputes the phase-2 reduced
    /// costs. Phase 1 is behind us, so artificials are banned and its cost
    /// row zeroed.
    pub(crate) fn restore_to_basis(
        &mut self,
        sf: &StandardForm,
        cols: &[usize],
    ) -> Result<(), LpError> {
        let m = self.m();
        let n = self.n();
        for r in 0..m {
            sf.a.scatter_row_into(r, &mut self.rows.row_mut(r)[..n]);
            self.rows[(r, n)] = sf.b[r];
        }
        for (k, &j) in cols.iter().enumerate() {
            let mut best = k;
            for r in k..m {
                if self.rows[(r, j)].abs() > self.rows[(best, j)].abs() {
                    best = r;
                }
            }
            if self.rows[(best, j)].abs() <= self.tol * 100.0 {
                return Err(LpError::Numeric("singular basis snapshot".into()));
            }
            if best != k {
                for col in 0..=n {
                    let tmp = self.rows[(k, col)];
                    self.rows[(k, col)] = self.rows[(best, col)];
                    self.rows[(best, col)] = tmp;
                }
            }
            let pivot = self.rows[(k, j)];
            let mut factors = std::mem::take(&mut self.col_buf);
            self.rows.col_into(j, &mut factors);
            self.rows.scale_row(k, 1.0 / pivot);
            self.rows[(k, j)] = 1.0;
            for (r, &f) in factors.iter().enumerate() {
                if r != k && nonzero(f) {
                    self.rows.axpy_rows(r, k, -f);
                    self.rows[(r, j)] = 0.0;
                }
            }
            self.col_buf = factors;
            self.basis[k] = j;
        }
        self.cost2[..n].copy_from_slice(&sf.c);
        self.cost2[n] = 0.0;
        for k in 0..m {
            let d = self.cost2[self.basis[k]];
            if nonzero(d) {
                let src = self.rows.row(k);
                for (cv, rv) in self.cost2.iter_mut().zip(src) {
                    *cv -= d * rv;
                }
                self.cost2[self.basis[k]] = 0.0;
            }
        }
        for (j, kind) in self.col_kinds.iter().enumerate() {
            if matches!(kind, ColKind::Artificial(_)) {
                self.banned[j] = true;
            }
        }
        self.cost1.iter_mut().for_each(|v| *v = 0.0);
        Ok(())
    }
}

pub(crate) fn extract(p: &Problem, sf: &StandardForm, tab: &Tableau) -> Result<Solution, LpError> {
    let mut scratch = DualScratch::new();
    let duals = recover_duals(sf, &tab.basis, &mut scratch);
    extract_parts(p, sf, tab.x_std(), tab.pivots, duals)
}

/// Sparse-engine extraction: duals come from a BTRAN through the eta file
/// (`y = B⁻ᵀ c_B`, cost proportional to the recorded pivot work) instead
/// of the dense engine's `O(m³)` factorization of `Bᵀ` — on the large
/// sparse models this engine exists for, that factorization would dwarf
/// the entire pivot sequence. Objective and primal values stay bitwise
/// dense-identical; duals agree mathematically (same system, different
/// arithmetic). An invalid eta file falls back to the shared dense solve.
pub(crate) fn extract_sparse(
    p: &Problem,
    sf: &StandardForm,
    tab: &mut SparseTableau,
) -> Result<Solution, LpError> {
    let duals = match tab.duals_std(sf) {
        Some(y) => user_duals_from_std(sf, &y),
        None => {
            let mut scratch = DualScratch::new();
            recover_duals(sf, &tab.basis, &mut scratch)
        }
    };
    let (x_std, pivots) = (tab.x_std(), tab.pivots);
    extract_parts(p, sf, x_std, pivots, duals)
}

/// Engine-independent solution extraction from standard-form primal
/// values plus already-recovered duals. Both engines route through here,
/// so cold-path objectives and values are bitwise-identical by
/// construction (they depend only on `sf` and `x_std`).
pub(crate) fn extract_parts(
    p: &Problem,
    sf: &StandardForm,
    x_std: Vec<f64>,
    pivots: usize,
    duals: Vec<f64>,
) -> Result<Solution, LpError> {
    let x_user = sf.recover(&x_std);
    // Recompute the objective from first principles rather than trusting the
    // accumulated cost row — cheap and immune to drift.
    let objective = p.objective_value(&x_user);

    if x_user.iter().any(|v| !v.is_finite()) {
        return Err(LpError::Numeric("non-finite solution component".into()));
    }
    Ok(Solution::new(objective, x_user, duals, pivots))
}

/// Maps standard-form row duals (`y = B⁻ᵀ c_B`) to user-constraint shadow
/// prices with the same sign and row-scale handling as [`recover_duals`].
/// Exact zeros are normalized so `−0.0` never leaks which arithmetic
/// produced them.
pub(crate) fn user_duals_from_std(sf: &StandardForm, y: &[f64]) -> Vec<f64> {
    let n_user_cons = sf
        .row_origins
        .iter()
        .filter(|o| matches!(o, RowOrigin::Constraint(_)))
        .count();
    let sign = if sf.maximize { -1.0 } else { 1.0 };
    let mut duals = vec![0.0; n_user_cons];
    for (r, origin) in sf.row_origins.iter().enumerate() {
        if let RowOrigin::Constraint(ci) = *origin {
            let v = sign * y[r] * sf.row_scale[r];
            duals[ci] = if palb_num::is_zero(v) { 0.0 } else { v };
        }
    }
    duals
}

/// Reusable buffers for [`recover_duals`]: the `Bᵀ` build and the dense
/// elimination each allocated `O(m²)` per call, which showed up on every
/// basis restore in the solver-perf profile. A [`crate::Workspace`] owns
/// one of these across its lifetime.
#[derive(Debug, Clone)]
pub(crate) struct DualScratch {
    bt: DenseMatrix,
    c_b: Vec<f64>,
    y: Vec<f64>,
    /// Basis position of each standard-form column (`u32::MAX` when
    /// nonbasic); lets the `Bᵀ` build scatter the sparse rows in one pass.
    pos: Vec<u32>,
    solve: crate::linalg::SolveScratch,
}

impl DualScratch {
    pub(crate) fn new() -> Self {
        DualScratch {
            bt: DenseMatrix::zeros(0, 0),
            c_b: Vec::new(),
            y: Vec::new(),
            pos: Vec::new(),
            solve: crate::linalg::SolveScratch::new(),
        }
    }

    fn ensure(&mut self, m: usize, n: usize) {
        if self.bt.rows() != m {
            self.bt = DenseMatrix::zeros(m, m);
        }
        if self.c_b.len() != m {
            self.c_b.resize(m, 0.0);
        }
        self.pos.clear();
        self.pos.resize(n, u32::MAX);
    }
}

/// Recovers user-constraint shadow prices `∂(user objective)/∂rhs` from a
/// basis by solving `Bᵀ y = c_B` against the *original* standard-form
/// columns (no tableau drift). Engine-independent: depends only on `sf`
/// and the basis column set.
pub(crate) fn recover_duals(
    sf: &StandardForm,
    basis: &[usize],
    scratch: &mut DualScratch,
) -> Vec<f64> {
    let m = sf.m();
    let n_user_cons = sf
        .row_origins
        .iter()
        .filter(|o| matches!(o, RowOrigin::Constraint(_)))
        .count();
    if m == 0 {
        return vec![0.0; n_user_cons];
    }
    scratch.ensure(m, sf.n());
    // Build Bᵀ directly: row `k` of `bt` is the original column of the
    // k-th basic variable, assembled in one pass over the sparse rows
    // (so the explicit transpose copy `solve_transposed` would make is
    // skipped, and the nonbasic columns are never touched).
    for (k, &j) in basis.iter().enumerate() {
        scratch.bt.row_mut(k).fill(0.0);
        scratch.c_b[k] = sf.c[j];
        scratch.pos[j] = k as u32;
    }
    for r in 0..m {
        let (cols, vals) = sf.a.row(r);
        for (&j, &v) in cols.iter().zip(vals) {
            let k = scratch.pos[j as usize];
            if k != u32::MAX {
                scratch.bt[(k as usize, r)] = v;
            }
        }
    }
    // A singular basis degrades gracefully to zero duals instead of
    // failing the solve.
    if crate::linalg::solve_into(
        &scratch.bt,
        &scratch.c_b,
        &mut scratch.solve,
        &mut scratch.y,
    )
    .is_err()
    {
        return vec![0.0; n_user_cons];
    }
    let sign = if sf.maximize { -1.0 } else { 1.0 };
    let mut duals = vec![0.0; n_user_cons];
    for (r, origin) in sf.row_origins.iter().enumerate() {
        if let RowOrigin::Constraint(ci) = *origin {
            duals[ci] = sign * scratch.y[r] * sf.row_scale[r];
        }
    }
    duals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Rel};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + b.abs())
    }

    #[test]
    fn textbook_max_le() {
        // max 3x + 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18  => z = 36 at (2,6)
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_nonneg("y", 5.0);
        p.add_con("c1", &[(x, 1.0)], Rel::Le, 4.0);
        p.add_con("c2", &[(y, 2.0)], Rel::Le, 12.0);
        p.add_con("c3", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 36.0), "obj = {}", s.objective());
        assert!(close(s.value(x), 2.0));
        assert!(close(s.value(y), 6.0));
    }

    #[test]
    fn minimize_with_ge_rows_needs_phase1() {
        // min 2x + 3y ; x + y >= 4 ; x >= 1  => z = 8.. at (4,0): 8; (1,3): 11.
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 2.0);
        let y = p.add_nonneg("y", 3.0);
        p.add_con("c1", &[(x, 1.0), (y, 1.0)], Rel::Ge, 4.0);
        p.add_con("c2", &[(x, 1.0)], Rel::Ge, 1.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 8.0));
        assert!(close(s.value(x), 4.0));
        assert!(close(s.value(y), 0.0));
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y ; x + y = 3 ; x - y = 1  => x=2, y=1, z=4
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let y = p.add_nonneg("y", 2.0);
        p.add_con("e1", &[(x, 1.0), (y, 1.0)], Rel::Eq, 3.0);
        p.add_con("e2", &[(x, 1.0), (y, -1.0)], Rel::Eq, 1.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 4.0));
        assert!(close(s.value(x), 2.0));
        assert!(close(s.value(y), 1.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        p.add_con("lo", &[(x, 1.0)], Rel::Ge, 5.0);
        p.add_con("hi", &[(x, 1.0)], Rel::Le, 3.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        p.add_con("c", &[(x, -1.0)], Rel::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn handles_upper_bounds() {
        // max x + y with x in [0,2], y in [0,3], x + y <= 4  => z = 4
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 2.0, 1.0);
        let y = p.add_var("y", 0.0, 3.0, 1.0);
        p.add_con("c", &[(x, 1.0), (y, 1.0)], Rel::Le, 4.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 4.0));
        assert!(s.value(x) <= 2.0 + 1e-9 && s.value(y) <= 3.0 + 1e-9);
    }

    #[test]
    fn free_variable() {
        // min |structure|: min y s.t. y >= x - 2, y >= -x, x free in [-10,10]
        // -> optimum where x - 2 = -x => x = 1, y = -1... but y >= -x = -1,
        // y >= x-2 = -1 => y = -1.
        let mut p = Problem::minimize();
        let x = p.add_var("x", -10.0, 10.0, 0.0);
        let y = p.add_var("y", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_con("a", &[(y, 1.0), (x, -1.0)], Rel::Ge, -2.0);
        p.add_con("b", &[(y, 1.0), (x, 1.0)], Rel::Ge, 0.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), -1.0), "obj={}", s.objective());
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple redundant constraints through origin.
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 0.75);
        let y = p.add_nonneg("y", -150.0);
        let z = p.add_nonneg("z", 0.02);
        let w = p.add_nonneg("w", -6.0);
        // Beale's cycling example (classic anti-cycling stress test).
        p.add_con(
            "r1",
            &[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Rel::Le,
            0.0,
        );
        p.add_con(
            "r2",
            &[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Rel::Le,
            0.0,
        );
        p.add_con("r3", &[(z, 1.0)], Rel::Le, 1.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 0.05), "obj = {}", s.objective());
    }

    #[test]
    fn duals_satisfy_strong_duality_on_le_problem() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_nonneg("y", 5.0);
        let c1 = p.add_con("c1", &[(x, 1.0)], Rel::Le, 4.0);
        let c2 = p.add_con("c2", &[(y, 2.0)], Rel::Le, 12.0);
        let c3 = p.add_con("c3", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        let s = p.solve().unwrap();
        // Known duals: y1 = 0, y2 = 3/2, y3 = 1; bᵀy = 36 = primal.
        assert!(close(s.dual(c1), 0.0));
        assert!(close(s.dual(c2), 1.5));
        assert!(close(s.dual(c3), 1.0));
        let dual_obj = 4.0 * s.dual(c1) + 12.0 * s.dual(c2) + 18.0 * s.dual(c3);
        assert!(close(dual_obj, s.objective()));
    }

    #[test]
    fn bland_rule_solves_same_problem() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_nonneg("y", 5.0);
        p.add_con("c1", &[(x, 1.0)], Rel::Le, 4.0);
        p.add_con("c2", &[(y, 2.0)], Rel::Le, 12.0);
        p.add_con("c3", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        let s = p
            .solve_with(&SolveOptions {
                rule: PivotRule::Bland,
                ..SolveOptions::default()
            })
            .unwrap();
        assert!(close(s.objective(), 36.0));
    }

    #[test]
    fn no_constraints_bounded_by_var_bounds() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 7.0, 2.0);
        let s = p.solve().unwrap();
        assert!(close(s.objective(), 14.0));
        assert!(close(s.value(x), 7.0));
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut p = Problem::maximize();
        p.add_nonneg("x", 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 0.0);
        p.add_con("c", &[(x, 1.0)], Rel::Ge, 2.0);
        let s = p.solve().unwrap();
        assert!(s.value(x) >= 2.0 - 1e-9);
        assert!(close(s.objective(), 0.0));
    }
}
