//! Presolve: problem reductions applied before the simplex runs.
//!
//! The dispatch LPs built by `palb-core` routinely contain fixed variables
//! (disabled VMs), singleton rows (per-VM delay bounds with a single free
//! term) and empty rows. Presolve removes them, shrinking the tableau and
//! catching trivial infeasibility before any pivoting:
//!
//! * **fixed variables** (`lo == hi`) are substituted into rows and
//!   objective,
//! * **empty rows** are checked for consistency and dropped,
//! * **singleton rows** (`a·x REL b`) become bound updates and are
//!   dropped; equality singletons fix the variable,
//! * the loop runs to a fixpoint, since fixing a variable can create new
//!   singletons.
//!
//! The reduction remembers enough to expand a reduced solution back to the
//! original variable/constraint spaces (dropped rows get dual 0 — their
//! effect moved into bounds).

use palb_num::nonzero;

use crate::error::LpError;
use crate::problem::{Problem, Rel};

/// Which dropped singleton rows created a variable's final bounds —
/// needed by postsolve to place duals on rows that were folded away.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BoundSource {
    /// `(row, coefficient)` of the dropped row that set the lower bound.
    pub lower: Option<(usize, f64)>,
    /// `(row, coefficient)` of the dropped row that set the upper bound.
    pub upper: Option<(usize, f64)>,
}

/// Outcome of presolving a [`Problem`].
#[derive(Debug, Clone)]
pub(crate) struct Reduction {
    /// The reduced problem (may have zero variables if everything fixed).
    pub problem: Problem,
    /// For each reduced variable, its index in the original problem.
    pub kept_vars: Vec<usize>,
    /// `(original index, value)` of variables eliminated by fixing.
    pub fixed: Vec<(usize, f64)>,
    /// For each reduced constraint, its index in the original problem.
    pub kept_cons: Vec<usize>,
    /// Number of original variables.
    pub orig_vars: usize,
    /// Number of original constraints.
    pub orig_cons: usize,
    /// Per original variable: which dropped rows own its final bounds.
    pub bound_sources: Vec<BoundSource>,
    /// Final (post-tightening) lower bounds of every original variable.
    pub final_lo: Vec<f64>,
    /// Final (post-tightening) upper bounds of every original variable.
    pub final_hi: Vec<f64>,
}

impl Reduction {
    /// Expands a reduced primal vector to original variable order.
    pub fn expand_x(&self, x_reduced: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.orig_vars];
        for (&orig, &v) in self.kept_vars.iter().zip(x_reduced) {
            x[orig] = v;
        }
        for &(orig, v) in &self.fixed {
            x[orig] = v;
        }
        x
    }

    /// Expands reduced duals to original constraint order (dropped rows
    /// get 0).
    pub fn expand_duals(&self, duals_reduced: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.orig_cons];
        for (&orig, &v) in self.kept_cons.iter().zip(duals_reduced) {
            y[orig] = v;
        }
        y
    }
}

const FIX_TOL: f64 = 1e-12;

/// Mutable presolve working state, shared by the named passes below. The
/// passes are engine-agnostic: both the dense and sparse engines enter
/// through [`presolve`] (called once from `solve`, ahead of the engine
/// dispatch), so reductions never diverge between them.
struct PresolveState {
    lo: Vec<f64>,
    hi: Vec<f64>,
    fixed_value: Vec<Option<f64>>,
    bound_sources: Vec<BoundSource>,
    row_alive: Vec<bool>,
    /// Working copy of row terms; `rhs` tracks substitutions.
    terms: Vec<Vec<(usize, f64)>>,
    rhs: Vec<f64>,
}

impl PresolveState {
    fn new(p: &Problem) -> Self {
        let n = p.num_vars();
        let mut st = PresolveState {
            lo: p.vars.iter().map(|v| v.lower).collect(),
            hi: p.vars.iter().map(|v| v.upper).collect(),
            fixed_value: vec![None; n],
            bound_sources: vec![BoundSource::default(); n],
            row_alive: vec![true; p.num_cons()],
            terms: p.cons.iter().map(|c| c.terms.clone()).collect(),
            rhs: p.cons.iter().map(|c| c.rhs).collect(),
        };
        // Anything already degenerate?
        for j in 0..n {
            st.maybe_fix(j);
        }
        st
    }

    /// Marks `j` fixed when its bounds have collapsed.
    fn maybe_fix(&mut self, j: usize) {
        if self.fixed_value[j].is_none()
            && (self.hi[j] - self.lo[j]).abs() <= FIX_TOL * (1.0 + self.lo[j].abs())
            && self.lo[j].is_finite()
        {
            self.fixed_value[j] = Some(self.lo[j]);
        }
    }
}

/// Pass: substitutes fixed variables out of every live row, folding their
/// contribution into the RHS. Returns whether anything changed — a row
/// can *become* empty or singleton here, which the row pass then handles.
fn substitute_fixed_pass(st: &mut PresolveState) -> bool {
    let mut changed = false;
    for r in 0..st.terms.len() {
        if !st.row_alive[r] {
            continue;
        }
        let mut k = 0;
        while k < st.terms[r].len() {
            let (j, c) = st.terms[r][k];
            if let Some(v) = st.fixed_value[j] {
                st.rhs[r] -= c * v;
                st.terms[r].swap_remove(k);
                changed = true;
            } else {
                k += 1;
            }
        }
    }
    changed
}

/// Pass: drops empty rows (after a consistency check) and folds singleton
/// rows into variable bounds, fixing variables whose bounds collapse.
fn reduce_rows_pass(p: &Problem, st: &mut PresolveState) -> Result<bool, LpError> {
    let mut changed = false;
    for r in 0..st.terms.len() {
        if !st.row_alive[r] {
            continue;
        }
        match st.terms[r].len() {
            0 => {
                // Empty row: consistency check, then drop.
                let ok = match p.cons[r].rel {
                    Rel::Le => st.rhs[r] >= -1e-9,
                    Rel::Ge => st.rhs[r] <= 1e-9,
                    Rel::Eq => st.rhs[r].abs() <= 1e-9,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
                st.row_alive[r] = false;
                changed = true;
            }
            1 => {
                // Singleton row: fold into bounds.
                let (j, a) = st.terms[r][0];
                debug_assert!(nonzero(a));
                let bound = st.rhs[r] / a;
                let rel = p.cons[r].rel;
                // a < 0 flips the inequality direction.
                let effective = match (rel, a > 0.0) {
                    (Rel::Eq, _) => Rel::Eq,
                    (Rel::Le, true) | (Rel::Ge, false) => Rel::Le,
                    (Rel::Ge, true) | (Rel::Le, false) => Rel::Ge,
                };
                match effective {
                    Rel::Le => {
                        if bound < st.hi[j] {
                            st.hi[j] = bound;
                            st.bound_sources[j].upper = Some((r, a));
                        }
                    }
                    Rel::Ge => {
                        if bound > st.lo[j] {
                            st.lo[j] = bound;
                            st.bound_sources[j].lower = Some((r, a));
                        }
                    }
                    Rel::Eq => {
                        st.lo[j] = bound;
                        st.hi[j] = bound;
                        st.bound_sources[j].lower = Some((r, a));
                        st.bound_sources[j].upper = Some((r, a));
                    }
                }
                if st.lo[j] > st.hi[j] + 1e-9 * (1.0 + st.lo[j].abs()) {
                    return Err(LpError::Infeasible);
                }
                st.maybe_fix(j);
                st.row_alive[r] = false;
                changed = true;
            }
            _ => {}
        }
    }
    Ok(changed)
}

/// Runs the reduction loop. Returns `Err(LpError::Infeasible)` when a
/// trivial inconsistency is proven.
pub(crate) fn presolve(p: &Problem) -> Result<Reduction, LpError> {
    let n = p.num_vars();
    let m = p.num_cons();
    let mut st = PresolveState::new(p);

    let mut changed = true;
    let mut guard = 0;
    while changed {
        guard += 1;
        if guard > n + m + 8 {
            break; // fixpoint guard; reductions are monotone so this is ample
        }
        changed = substitute_fixed_pass(&mut st);
        changed |= reduce_rows_pass(p, &mut st)?;
    }
    let PresolveState {
        lo,
        hi,
        fixed_value,
        bound_sources,
        row_alive,
        terms,
        rhs,
    } = st;

    // Build the reduced problem.
    let mut reduced = Problem::new(p.sense);
    let mut new_index = vec![usize::MAX; n];
    let mut kept_vars = Vec::new();
    for j in 0..n {
        if fixed_value[j].is_none() {
            new_index[j] = kept_vars.len();
            kept_vars.push(j);
            reduced.push_var(p.vars[j].name.clone(), lo[j], hi[j], p.vars[j].objective);
        }
    }
    let mut kept_cons = Vec::new();
    for r in 0..m {
        if !row_alive[r] {
            continue;
        }
        let reduced_terms: Vec<(crate::problem::VarId, f64)> = terms[r]
            .iter()
            .map(|&(j, c)| (crate::problem::VarId(new_index[j]), c))
            .collect();
        reduced.push_con(
            p.cons[r].name.clone(),
            &reduced_terms,
            p.cons[r].rel,
            rhs[r],
        );
        kept_cons.push(r);
    }

    let fixed: Vec<(usize, f64)> = fixed_value
        .iter()
        .enumerate()
        .filter_map(|(j, v)| v.map(|value| (j, value)))
        .collect();

    Ok(Reduction {
        problem: reduced,
        kept_vars,
        fixed,
        kept_cons,
        orig_vars: n,
        orig_cons: m,
        bound_sources,
        final_lo: lo,
        final_hi: hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn fixed_variables_are_substituted() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0, 3.0, 1.0); // fixed at 3
        let y = p.add_nonneg("y", 2.0);
        p.add_con("c", &[(x, 2.0), (y, 1.0)], Rel::Le, 10.0);
        let r = presolve(&p).unwrap();
        assert_eq!(r.problem.num_vars(), 1);
        assert_eq!(r.fixed, vec![(0, 3.0)]);
        // Row became y <= 4... which is itself a singleton and got folded.
        assert_eq!(r.problem.num_cons(), 0);
        let x_full = r.expand_x(&[4.0]);
        assert_eq!(x_full, vec![3.0, 4.0]);
    }

    #[test]
    fn singleton_le_tightens_upper_bound() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let y = p.add_nonneg("y", 1.0);
        p.add_con("s", &[(x, 2.0)], Rel::Le, 8.0); // x <= 4
        p.add_con("joint", &[(x, 1.0), (y, 1.0)], Rel::Le, 10.0);
        let r = presolve(&p).unwrap();
        assert_eq!(r.problem.num_cons(), 1);
        assert_eq!(r.problem.num_vars(), 2);
        assert_eq!(r.problem.vars[0].upper, 4.0);
    }

    #[test]
    fn singleton_with_negative_coefficient_flips() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_con("s", &[(x, -2.0)], Rel::Le, -6.0); // -2x <= -6 -> x >= 3
        let r = presolve(&p).unwrap();
        assert_eq!(r.problem.vars[0].lower, 3.0);
    }

    #[test]
    fn equality_singleton_fixes_and_cascades() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let y = p.add_nonneg("y", 1.0);
        p.add_con("fix", &[(x, 2.0)], Rel::Eq, 6.0); // x = 3
        p.add_con("link", &[(x, 1.0), (y, 1.0)], Rel::Eq, 5.0); // then y = 2
        let r = presolve(&p).unwrap();
        assert_eq!(r.problem.num_vars(), 0);
        assert_eq!(r.problem.num_cons(), 0);
        let x_full = r.expand_x(&[]);
        assert_eq!(x_full, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_conflicting_singletons() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        p.add_con("a", &[(x, 1.0)], Rel::Ge, 5.0);
        p.add_con("b", &[(x, 1.0)], Rel::Le, 3.0);
        assert_eq!(presolve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn consistent_row_that_empties_after_fixing_is_dropped() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 2.0, 2.0, 1.0); // fixed at 2
        let y = p.add_nonneg("y", 1.0);
        let z = p.add_nonneg("z", 1.0);
        // Becomes `0 <= 4` once x is substituted: consistent, dropped.
        p.add_con("empties", &[(x, 3.0)], Rel::Le, 10.0);
        // Stays a two-term row so it must survive the reduction.
        p.add_con("joint", &[(y, 1.0), (z, 1.0)], Rel::Le, 5.0);
        let r = presolve(&p).unwrap();
        assert_eq!(r.fixed, vec![(0, 2.0)]);
        assert_eq!(r.kept_cons, vec![1], "emptied row must be dropped");
        assert_eq!(r.problem.num_cons(), 1);
        // Dropped row's dual expands to zero.
        assert_eq!(r.expand_duals(&[0.25]), vec![0.0, 0.25]);
    }

    #[test]
    fn detects_inconsistent_empty_row() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 2.0, 2.0, 1.0);
        p.add_con("bad", &[(x, 1.0)], Rel::Ge, 5.0); // 2 >= 5 after fixing
        assert_eq!(presolve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn expand_duals_zeroes_dropped_rows() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let y = p.add_nonneg("y", 1.0);
        p.add_con("single", &[(x, 1.0)], Rel::Le, 4.0); // dropped
        p.add_con("joint", &[(x, 1.0), (y, 1.0)], Rel::Le, 6.0); // kept
        let r = presolve(&p).unwrap();
        assert_eq!(r.kept_cons, vec![1]);
        assert_eq!(r.expand_duals(&[0.7]), vec![0.0, 0.7]);
    }

    #[test]
    fn untouched_problem_round_trips() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_nonneg("y", 5.0);
        p.add_con("c1", &[(x, 1.0), (y, 2.0)], Rel::Le, 12.0);
        p.add_con("c2", &[(x, 3.0), (y, 2.0)], Rel::Le, 18.0);
        let r = presolve(&p).unwrap();
        assert_eq!(r.problem.num_vars(), 2);
        assert_eq!(r.problem.num_cons(), 2);
        assert!(r.fixed.is_empty());
    }
}
