//! CPLEX-LP-format export for debugging and interoperability.
//!
//! `Problem::to_lp_format` renders the model in the textual LP format that
//! CPLEX, Gurobi, GLPK and most other solvers read — handy both for
//! eyeballing a mis-built dispatch model and for cross-checking this
//! crate's optima against an external solver when one is available.

use std::fmt::Write as _;

use palb_num::nonzero;

use crate::problem::{Problem, Rel, Sense};

/// Sanitizes a name for LP format (alphanumerics and `_` only, must not
/// start with a digit or `e`/`E` which the format reserves for exponents).
fn sanitize(name: &str, fallback: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out = fallback.to_string();
    }
    // palb:allow(unwrap): out was just made non-empty via the fallback
    let first = out.chars().next().unwrap();
    if first.is_ascii_digit() || first == 'e' || first == 'E' {
        out.insert(0, '_');
    }
    out
}

fn write_expr(buf: &mut String, terms: &[(usize, f64)], names: &[String]) {
    if terms.is_empty() {
        buf.push('0');
        return;
    }
    for (i, &(j, c)) in terms.iter().enumerate() {
        if i == 0 {
            if c < 0.0 {
                buf.push_str("- ");
            }
        } else if c < 0.0 {
            buf.push_str(" - ");
        } else {
            buf.push_str(" + ");
        }
        let a = c.abs();
        if (a - 1.0).abs() < 1e-15 {
            buf.push_str(&names[j]);
        } else {
            let _ = write!(buf, "{a} {}", names[j]);
        }
    }
}

impl Problem {
    /// Renders the model in CPLEX LP format.
    pub fn to_lp_format(&self) -> String {
        let names: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .map(|(j, v)| sanitize(v.name.as_deref().unwrap_or(""), &format!("x{j}")))
            .collect();

        let mut out = String::new();
        out.push_str(match self.sense {
            Sense::Maximize => "Maximize\n obj: ",
            Sense::Minimize => "Minimize\n obj: ",
        });
        let obj_terms: Vec<(usize, f64)> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| nonzero(v.objective))
            .map(|(j, v)| (j, v.objective))
            .collect();
        write_expr(&mut out, &obj_terms, &names);
        out.push_str("\nSubject To\n");
        for (i, con) in self.cons.iter().enumerate() {
            let cname = sanitize(con.name.as_deref().unwrap_or(""), &format!("c{i}"));
            let _ = write!(out, " {cname}: ");
            write_expr(&mut out, &con.terms, &names);
            let rel = match con.rel {
                Rel::Le => "<=",
                Rel::Ge => ">=",
                Rel::Eq => "=",
            };
            let _ = writeln!(out, " {rel} {}", con.rhs);
        }
        out.push_str("Bounds\n");
        for (j, v) in self.vars.iter().enumerate() {
            let name = &names[j];
            match (v.lower.is_finite(), v.upper.is_finite()) {
                (true, true) => {
                    let _ = writeln!(out, " {} <= {name} <= {}", v.lower, v.upper);
                }
                (true, false) => {
                    if nonzero(v.lower) {
                        let _ = writeln!(out, " {name} >= {}", v.lower);
                    }
                    // default 0 <= x < +inf needs no line
                }
                (false, true) => {
                    let _ = writeln!(out, " -inf <= {name} <= {}", v.upper);
                }
                (false, false) => {
                    let _ = writeln!(out, " {name} free");
                }
            }
        }
        out.push_str("End\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_textbook_problem() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 3.0);
        let y = p.add_var("y", 0.0, 6.0, 5.0);
        p.add_con("cap", &[(x, 1.0), (y, 2.0)], Rel::Le, 12.0);
        p.add_con("floor", &[(x, 1.0), (y, -1.0)], Rel::Ge, -2.0);
        let text = p.to_lp_format();
        assert!(text.starts_with("Maximize\n obj: 3 x + 5 y\n"));
        assert!(text.contains(" cap: x + 2 y <= 12\n"));
        assert!(text.contains(" floor: x - y >= -2\n"));
        assert!(text.contains(" 0 <= y <= 6\n"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn sanitizes_awkward_names() {
        let mut p = Problem::minimize();
        let v = p.add_nonneg("λ[k=1,s=2]", 1.0);
        p.add_con("99 bottles", &[(v, 1.0)], Rel::Eq, 1.0);
        let text = p.to_lp_format();
        assert!(!text.contains('['));
        assert!(!text.contains("99 bottles"));
        assert!(text.contains("_99_bottles"));
    }

    #[test]
    fn free_and_unbounded_variables() {
        let mut p = Problem::minimize();
        p.add_var("f", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_var("u", f64::NEG_INFINITY, 4.0, 1.0);
        let text = p.to_lp_format();
        assert!(text.contains(" f free\n"));
        assert!(text.contains(" -inf <= u <= 4\n"));
    }

    #[test]
    fn empty_objective_renders_zero() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 0.0);
        p.add_con("c", &[(x, 1.0)], Rel::Ge, 1.0);
        let text = p.to_lp_format();
        assert!(text.contains("obj: 0\n"));
    }
}
