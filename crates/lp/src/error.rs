//! Error type shared by the LP solver entry points.

use std::fmt;

/// Which simplex phase a failure occurred in, for diagnosing whether the
/// trouble was finding feasibility (phase 1) or optimizing (phase 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplexPhase {
    /// Feasibility phase (minimizing artificial variables).
    Phase1,
    /// Optimization phase (the real objective).
    Phase2,
}

impl fmt::Display for SimplexPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplexPhase::Phase1 => write!(f, "phase 1"),
            SimplexPhase::Phase2 => write!(f, "phase 2"),
        }
    }
}

/// Errors returned by [`crate::Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The pivot loop exceeded its iteration budget (numerical trouble).
    IterationLimit {
        /// Iterations performed before giving up.
        iterations: usize,
        /// The phase whose pivot loop gave up.
        phase: SimplexPhase,
    },
    /// The model is structurally unusable (e.g. no variables).
    BadModel(String),
    /// Numerical failure outside the pivot loop (singular basis, NaN).
    Numeric(String),
}

impl LpError {
    /// Whether a retry with a different pivot rule or a perturbed model
    /// could plausibly succeed (the degradation ladder's retry predicate):
    /// iteration-budget exhaustion and numerical failures are transient,
    /// infeasibility/unboundedness/bad models are structural.
    pub fn is_transient(&self) -> bool {
        matches!(self, LpError::IterationLimit { .. } | LpError::Numeric(_))
    }
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations, phase } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} pivots in {phase}"
                )
            }
            LpError::BadModel(msg) => write!(f, "malformed model: {msg}"),
            LpError::Numeric(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        let limit = LpError::IterationLimit {
            iterations: 7,
            phase: SimplexPhase::Phase2,
        };
        assert!(limit.to_string().contains('7'));
        assert!(limit.to_string().contains("phase 2"));
        assert!(LpError::BadModel("x".into()).to_string().contains('x'));
    }

    #[test]
    fn transience_partitions_the_variants() {
        assert!(LpError::IterationLimit {
            iterations: 1,
            phase: SimplexPhase::Phase1,
        }
        .is_transient());
        assert!(LpError::Numeric("nan".into()).is_transient());
        assert!(!LpError::Infeasible.is_transient());
        assert!(!LpError::Unbounded.is_transient());
        assert!(!LpError::BadModel("empty".into()).is_transient());
    }
}
