//! Error type shared by the LP solver entry points.

use std::fmt;

/// Errors returned by [`crate::Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The pivot loop exceeded its iteration budget (numerical trouble).
    IterationLimit {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The model is structurally unusable (e.g. no variables).
    BadModel(String),
    /// Numerical failure outside the pivot loop (singular basis, NaN).
    Numeric(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex iteration limit reached after {iterations} pivots")
            }
            LpError::BadModel(msg) => write!(f, "malformed model: {msg}"),
            LpError::Numeric(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::IterationLimit { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(LpError::BadModel("x".into()).to_string().contains('x'));
    }
}
