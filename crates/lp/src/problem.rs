//! Linear-program builder API.
//!
//! A [`Problem`] collects variables (with bounds and objective coefficients)
//! and linear constraints, then hands the model to the two-phase simplex
//! engine via [`Problem::solve`].

use crate::error::LpError;
use crate::simplex::{self, SolveOptions};
use crate::solution::Solution;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// Opaque handle to a variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Positional index of the variable (also its index in solution vectors).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a constraint in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConId(pub(crate) usize);

impl ConId {
    /// Positional index of the constraint.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) name: String,
    /// Sorted, deduplicated `(column, coefficient)` pairs.
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) rel: Rel,
    pub(crate) rhs: f64,
}

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Shorthand for `Problem::new(Sense::Maximize)`.
    pub fn maximize() -> Self {
        Self::new(Sense::Maximize)
    }

    /// Shorthand for `Problem::new(Sense::Minimize)`.
    pub fn minimize() -> Self {
        Self::new(Sense::Minimize)
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints added so far.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Adds a variable with bounds `[lower, upper]` and the given objective
    /// coefficient. Use `f64::INFINITY` for an unbounded-above variable and
    /// `f64::NEG_INFINITY` for a free (unbounded-below) variable.
    ///
    /// # Panics
    /// Panics if `lower > upper`, or if either bound is NaN.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: f64, objective: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        assert!(!objective.is_nan(), "NaN objective coefficient");
        assert!(
            lower <= upper,
            "variable {name}: lower bound {lower} exceeds upper bound {upper}"
        );
        assert!(
            lower < f64::INFINITY && upper > f64::NEG_INFINITY,
            "variable {name}: bounds leave an empty domain"
        );
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.to_owned(),
            lower,
            upper,
            objective,
        });
        id
    }

    /// Adds a non-negative variable (`[0, +inf)`).
    pub fn add_nonneg(&mut self, name: &str, objective: f64) -> VarId {
        self.add_var(name, 0.0, f64::INFINITY, objective)
    }

    /// Adds the constraint `Σ coeff·var REL rhs`.
    ///
    /// Terms referencing the same variable are summed. Zero coefficients are
    /// dropped.
    ///
    /// # Panics
    /// Panics if any referenced variable does not belong to this problem or
    /// if any value is NaN.
    pub fn add_con(&mut self, name: &str, terms: &[(VarId, f64)], rel: Rel, rhs: f64) -> ConId {
        assert!(!rhs.is_nan(), "NaN constraint rhs");
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(
                v.0 < self.vars.len(),
                "constraint {name}: variable id out of range"
            );
            assert!(!c.is_nan(), "NaN coefficient in constraint {name}");
            merged.push((v.0, c));
        }
        merged.sort_unstable_by_key(|&(j, _)| j);
        let mut compact: Vec<(usize, f64)> = Vec::with_capacity(merged.len());
        for (j, c) in merged {
            match compact.last_mut() {
                Some((lj, lc)) if *lj == j => *lc += c,
                _ => compact.push((j, c)),
            }
        }
        compact.retain(|&(_, c)| c != 0.0);
        let id = ConId(self.cons.len());
        self.cons.push(Constraint {
            name: name.to_owned(),
            terms: compact,
            rel,
            rhs,
        });
        id
    }

    /// Returns the name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Returns the name of a constraint.
    pub fn con_name(&self, c: ConId) -> &str {
        &self.cons[c.0].name
    }

    /// Evaluates the objective at a point (ignoring feasibility).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars
            .iter()
            .zip(x)
            .map(|(v, &xi)| v.objective * xi)
            .sum()
    }

    /// Checks primal feasibility of a point within tolerance `tol` and
    /// returns the first violated item's description, or `None` if feasible.
    pub fn feasibility_violation(&self, x: &[f64], tol: f64) -> Option<String> {
        assert_eq!(x.len(), self.vars.len());
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return Some(format!(
                    "variable {} = {xi} outside [{}, {}]",
                    v.name, v.lower, v.upper
                ));
            }
        }
        for con in &self.cons {
            let lhs: f64 = con.terms.iter().map(|&(j, c)| c * x[j]).sum();
            let ok = match con.rel {
                Rel::Le => lhs <= con.rhs + tol,
                Rel::Ge => lhs >= con.rhs - tol,
                Rel::Eq => (lhs - con.rhs).abs() <= tol,
            };
            if !ok {
                return Some(format!(
                    "constraint {}: lhs {lhs} violates {:?} {}",
                    con.name, con.rel, con.rhs
                ));
            }
        }
        None
    }

    /// Solves the problem with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves the problem with explicit solver options.
    pub fn solve_with(&self, opts: &SolveOptions) -> Result<Solution, LpError> {
        simplex::solve(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_assigns_sequential_ids() {
        let mut p = Problem::maximize();
        let a = p.add_nonneg("a", 1.0);
        let b = p.add_nonneg("b", 2.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.var_name(b), "b");
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn rejects_inverted_bounds() {
        let mut p = Problem::maximize();
        p.add_var("x", 2.0, 1.0, 0.0);
    }

    #[test]
    fn add_con_merges_duplicate_terms() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let y = p.add_nonneg("y", 1.0);
        let c = p.add_con("c", &[(x, 1.0), (y, 2.0), (x, 3.0), (y, -2.0)], Rel::Le, 5.0);
        assert_eq!(p.cons[c.index()].terms, vec![(0, 4.0)]);
    }

    #[test]
    fn objective_value_is_linear() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 3.0);
        let _ = x;
        p.add_nonneg("y", -1.0);
        assert_eq!(p.objective_value(&[2.0, 4.0]), 2.0);
    }

    #[test]
    fn feasibility_checks_bounds_and_rows() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 2.0, 1.0);
        p.add_con("cap", &[(x, 1.0)], Rel::Le, 1.5, );
        assert!(p.feasibility_violation(&[1.0], 1e-9).is_none());
        assert!(p.feasibility_violation(&[1.8], 1e-9).is_some()); // row violated
        assert!(p.feasibility_violation(&[-0.1], 1e-9).is_some()); // bound violated
    }
}
