//! Linear-program builder API.
//!
//! A [`Problem`] collects variables (with bounds and objective coefficients)
//! and linear constraints, then hands the model to the two-phase simplex
//! engine via [`Problem::solve`].

use palb_num::nonzero;

use crate::error::LpError;
use crate::simplex::{self, SolveOptions};
use crate::solution::Solution;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// Opaque handle to a variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Positional index of the variable (also its index in solution vectors).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a constraint in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConId(pub(crate) usize);

impl ConId {
    /// Positional index of the constraint.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    /// `None` for hot-path variables that never needed a name; display
    /// helpers fall back to `x{index}`.
    pub(crate) name: Option<String>,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// `None` for hot-path constraints; display helpers fall back to
    /// `c{index}`.
    pub(crate) name: Option<String>,
    /// Sorted, deduplicated `(column, coefficient)` pairs.
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) rel: Rel,
    pub(crate) rhs: f64,
}

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Shorthand for `Problem::new(Sense::Maximize)`.
    pub fn maximize() -> Self {
        Self::new(Sense::Maximize)
    }

    /// Shorthand for `Problem::new(Sense::Minimize)`.
    pub fn minimize() -> Self {
        Self::new(Sense::Minimize)
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints added so far.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Total stored constraint-matrix nonzeros (zero coefficients are
    /// compacted away at `add_con` time). Used by benches to certify that
    /// a config reaches a target sparsity scale.
    pub fn num_nonzeros(&self) -> usize {
        self.cons.iter().map(|c| c.terms.len()).sum()
    }

    /// Adds a variable with bounds `[lower, upper]` and the given objective
    /// coefficient. Use `f64::INFINITY` for an unbounded-above variable and
    /// `f64::NEG_INFINITY` for a free (unbounded-below) variable.
    ///
    /// # Panics
    /// Panics if `lower > upper`, or if either bound is NaN.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: f64, objective: f64) -> VarId {
        self.push_var(Some(name.to_owned()), lower, upper, objective)
    }

    /// Adds an *unnamed* variable — the hot-path variant that skips name
    /// allocation entirely. Display helpers render it as `x{index}`.
    pub fn add_var_unnamed(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        self.push_var(None, lower, upper, objective)
    }

    pub(crate) fn push_var(
        &mut self,
        name: Option<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        assert!(!objective.is_nan(), "NaN objective coefficient");
        let id = VarId(self.vars.len());
        assert!(
            lower <= upper,
            "variable {}: lower bound {lower} exceeds upper bound {upper}",
            name.as_deref().unwrap_or("(unnamed)")
        );
        assert!(
            lower < f64::INFINITY && upper > f64::NEG_INFINITY,
            "variable {}: bounds leave an empty domain",
            name.as_deref().unwrap_or("(unnamed)")
        );
        self.vars.push(Variable {
            name,
            lower,
            upper,
            objective,
        });
        id
    }

    /// Adds a non-negative variable (`[0, +inf)`).
    pub fn add_nonneg(&mut self, name: &str, objective: f64) -> VarId {
        self.add_var(name, 0.0, f64::INFINITY, objective)
    }

    /// Adds an unnamed non-negative variable (`[0, +inf)`).
    pub fn add_nonneg_unnamed(&mut self, objective: f64) -> VarId {
        self.add_var_unnamed(0.0, f64::INFINITY, objective)
    }

    /// Adds the constraint `Σ coeff·var REL rhs`.
    ///
    /// Terms referencing the same variable are summed. Zero coefficients are
    /// dropped.
    ///
    /// # Panics
    /// Panics if any referenced variable does not belong to this problem or
    /// if any value is NaN.
    pub fn add_con(&mut self, name: &str, terms: &[(VarId, f64)], rel: Rel, rhs: f64) -> ConId {
        self.push_con(Some(name.to_owned()), terms, rel, rhs)
    }

    /// Adds an *unnamed* constraint — the hot-path variant that skips name
    /// allocation. Display helpers render it as `c{index}`.
    pub fn add_con_unnamed(&mut self, terms: &[(VarId, f64)], rel: Rel, rhs: f64) -> ConId {
        self.push_con(None, terms, rel, rhs)
    }

    pub(crate) fn push_con(
        &mut self,
        name: Option<String>,
        terms: &[(VarId, f64)],
        rel: Rel,
        rhs: f64,
    ) -> ConId {
        assert!(!rhs.is_nan(), "NaN constraint rhs");
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(
                v.0 < self.vars.len(),
                "constraint {}: variable id out of range",
                name.as_deref().unwrap_or("(unnamed)")
            );
            assert!(
                !c.is_nan(),
                "NaN coefficient in constraint {}",
                name.as_deref().unwrap_or("(unnamed)")
            );
            merged.push((v.0, c));
        }
        merged.sort_unstable_by_key(|&(j, _)| j);
        let mut compact: Vec<(usize, f64)> = Vec::with_capacity(merged.len());
        for (j, c) in merged {
            match compact.last_mut() {
                Some((lj, lc)) if *lj == j => *lc += c,
                _ => compact.push((j, c)),
            }
        }
        compact.retain(|&(_, c)| nonzero(c));
        let id = ConId(self.cons.len());
        self.cons.push(Constraint {
            name,
            terms: compact,
            rel,
            rhs,
        });
        id
    }

    /// Replaces a variable's objective coefficient in place. The model's
    /// structure (bounds, constraint matrix) is untouched, which is what
    /// makes the incremental [`crate::Workspace`] patch path possible.
    ///
    /// # Panics
    /// Panics if the coefficient is NaN.
    pub fn set_objective(&mut self, v: VarId, objective: f64) {
        assert!(!objective.is_nan(), "NaN objective coefficient");
        self.vars[v.0].objective = objective;
    }

    /// Returns a variable's current objective coefficient.
    pub fn objective_coef(&self, v: VarId) -> f64 {
        self.vars[v.0].objective
    }

    /// Replaces a constraint's right-hand side in place.
    ///
    /// # Panics
    /// Panics if the rhs is NaN.
    pub fn set_rhs(&mut self, c: ConId, rhs: f64) {
        assert!(!rhs.is_nan(), "NaN constraint rhs");
        self.cons[c.0].rhs = rhs;
    }

    /// Returns a constraint's current right-hand side.
    pub fn rhs(&self, c: ConId) -> f64 {
        self.cons[c.0].rhs
    }

    /// Returns the name of a variable (`x{index}` if it was added unnamed).
    pub fn var_name(&self, v: VarId) -> String {
        match &self.vars[v.0].name {
            Some(n) => n.clone(),
            None => format!("x{}", v.0),
        }
    }

    /// Returns the name of a constraint (`c{index}` if it was added
    /// unnamed).
    pub fn con_name(&self, c: ConId) -> String {
        match &self.cons[c.0].name {
            Some(n) => n.clone(),
            None => format!("c{}", c.0),
        }
    }

    /// Evaluates the objective at a point (ignoring feasibility).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars
            .iter()
            .zip(x)
            .map(|(v, &xi)| v.objective * xi)
            .sum()
    }

    /// Checks primal feasibility of a point within tolerance `tol` and
    /// returns the first violated item's description, or `None` if feasible.
    pub fn feasibility_violation(&self, x: &[f64], tol: f64) -> Option<String> {
        assert_eq!(x.len(), self.vars.len());
        for (j, (v, &xi)) in self.vars.iter().zip(x).enumerate() {
            if xi < v.lower - tol || xi > v.upper + tol {
                return Some(format!(
                    "variable {} = {xi} outside [{}, {}]",
                    self.var_name(VarId(j)),
                    v.lower,
                    v.upper
                ));
            }
        }
        for (i, con) in self.cons.iter().enumerate() {
            let lhs: f64 = con.terms.iter().map(|&(j, c)| c * x[j]).sum();
            let ok = match con.rel {
                Rel::Le => lhs <= con.rhs + tol,
                Rel::Ge => lhs >= con.rhs - tol,
                Rel::Eq => (lhs - con.rhs).abs() <= tol,
            };
            if !ok {
                return Some(format!(
                    "constraint {}: lhs {lhs} violates {:?} {}",
                    self.con_name(ConId(i)),
                    con.rel,
                    con.rhs
                ));
            }
        }
        None
    }

    /// Solves the problem with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves the problem with explicit solver options.
    pub fn solve_with(&self, opts: &SolveOptions) -> Result<Solution, LpError> {
        simplex::solve(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_assigns_sequential_ids() {
        let mut p = Problem::maximize();
        let a = p.add_nonneg("a", 1.0);
        let b = p.add_nonneg("b", 2.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.var_name(b), "b");
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn rejects_inverted_bounds() {
        let mut p = Problem::maximize();
        p.add_var("x", 2.0, 1.0, 0.0);
    }

    #[test]
    fn add_con_merges_duplicate_terms() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg("x", 1.0);
        let y = p.add_nonneg("y", 1.0);
        let c = p.add_con(
            "c",
            &[(x, 1.0), (y, 2.0), (x, 3.0), (y, -2.0)],
            Rel::Le,
            5.0,
        );
        assert_eq!(p.cons[c.index()].terms, vec![(0, 4.0)]);
    }

    #[test]
    fn objective_value_is_linear() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg("x", 3.0);
        let _ = x;
        p.add_nonneg("y", -1.0);
        assert_eq!(p.objective_value(&[2.0, 4.0]), 2.0);
    }

    #[test]
    fn feasibility_checks_bounds_and_rows() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 2.0, 1.0);
        p.add_con("cap", &[(x, 1.0)], Rel::Le, 1.5);
        assert!(p.feasibility_violation(&[1.0], 1e-9).is_none());
        assert!(p.feasibility_violation(&[1.8], 1e-9).is_some()); // row violated
        assert!(p.feasibility_violation(&[-0.1], 1e-9).is_some()); // bound violated
    }
}
