//! Small dense Gaussian-elimination routines used to recover dual values
//! and to cross-check simplex optimality from the final basis.

use palb_num::nonzero;

use crate::dense::DenseMatrix;

/// Error raised when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Reusable buffers for [`solve_into`]: the `n × (n+1)` augmented system
/// is the dominant per-call allocation of the O(n³) helper and is reused
/// across calls of the same order (the common case — every basis restore
/// solves at the same `m`).
#[derive(Debug, Clone)]
pub struct SolveScratch {
    aug: DenseMatrix,
}

impl SolveScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        SolveScratch {
            aug: DenseMatrix::zeros(0, 1),
        }
    }
}

impl Default for SolveScratch {
    fn default() -> Self {
        SolveScratch::new()
    }
}

/// Solves `A x = b` for square `A` using Gaussian elimination with partial
/// pivoting. `A` and `b` are consumed as copies; the inputs are untouched.
///
/// Allocating convenience wrapper over [`solve_into`].
pub fn solve(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrix> {
    let mut scratch = SolveScratch::new();
    let mut x = Vec::new();
    solve_into(a, b, &mut scratch, &mut x)?;
    Ok(x)
}

/// [`solve`] with caller-provided buffers: the augmented system lives in
/// `scratch` and the result is written into `x` (resized as needed). The
/// arithmetic is identical to [`solve`] — every cell of the augmented
/// system is overwritten before use, so buffer reuse cannot leak state.
pub fn solve_into(
    a: &DenseMatrix,
    b: &[f64],
    scratch: &mut SolveScratch,
    x: &mut Vec<f64>,
) -> Result<(), SingularMatrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length must match matrix order");

    // Augmented system [A | b] worked in place.
    if scratch.aug.rows() != n {
        scratch.aug = DenseMatrix::zeros(n, n + 1);
    }
    let m = &mut scratch.aug;
    for i in 0..n {
        m.row_mut(i)[..n].copy_from_slice(a.row(i));
        m[(i, n)] = b[i];
    }

    for k in 0..n {
        // Partial pivot: largest |entry| in column k at/below row k.
        let (piv_row, piv_val) = (k..n)
            .map(|i| (i, m[(i, k)].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            // palb:allow(unwrap): k..n is non-empty at every elimination step
            .expect("non-empty pivot candidates");
        if piv_val < 1e-12 {
            return Err(SingularMatrix);
        }
        if piv_row != k {
            swap_rows(m, piv_row, k);
        }
        let pivot = m[(k, k)];
        for i in (k + 1)..n {
            let factor = m[(i, k)] / pivot;
            if nonzero(factor) {
                m.axpy_rows(i, k, -factor);
                m[(i, k)] = 0.0; // clamp round-off
            }
        }
    }

    // Back substitution.
    x.clear();
    x.resize(n, 0.0);
    for k in (0..n).rev() {
        let mut acc = m[(k, n)];
        for j in (k + 1)..n {
            acc -= m[(k, j)] * x[j];
        }
        x[k] = acc / m[(k, k)];
    }
    Ok(())
}

fn swap_rows(m: &mut DenseMatrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    for j in 0..cols {
        let t = m[(a, j)];
        m[(a, j)] = m[(b, j)];
        m[(b, j)] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn solves_identity() {
        let a = DenseMatrix::identity(3);
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn solves_small_system() {
        // 2x + y = 5 ; x + 3y = 10  => x = 1, y = 3
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-10);
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 7.0]).unwrap();
        assert_close(&x, &[7.0, 2.0], 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SingularMatrix));
    }

    #[test]
    fn solve_into_reuses_scratch_across_orders() {
        let mut scratch = SolveScratch::new();
        let mut x = Vec::new();
        let a2 = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        solve_into(&a2, &[5.0, 10.0], &mut scratch, &mut x).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-10);
        let a3 = DenseMatrix::identity(3);
        solve_into(&a3, &[1.0, 2.0, 3.0], &mut scratch, &mut x).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-12);
        // Back to order 2: stale buffer contents must not leak.
        solve_into(&a2, &[5.0, 10.0], &mut scratch, &mut x).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-10);
    }

    #[test]
    fn random_round_trip() {
        // Deterministic pseudo-random fill; verify A * solve(A, b) == b.
        let n = 8;
        let mut seed = 0x9e3779b97f4a7c15_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 4.0 - 2.0
        };
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonal dominance keeps it well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b).unwrap();
        let back = a.mul_vec(&x);
        assert_close(&back, &b, 1e-8);
    }
}
