//! Basis refactorization for the sparse engine.
//!
//! The per-pivot eta file (see [`crate::eta`]) grows by one op per pivot
//! and, over a long warm-started session, would accumulate both length and
//! round-off. On a cadence the [`crate::sparse::SparseTableau`] calls
//! [`factorize`] to rebuild a *compact* product-form inverse directly from
//! the pristine CSC columns of the current basis: one eta per basic
//! column plus a single closing row permutation.
//!
//! Column order is Markowitz-flavoured: ascending original-column nonzero
//! count (ties by basis position), which keeps fill-in in the recorded
//! etas low for the block-structured LPs this crate targets. Each step
//! scatters the column, FTRANs it through the ops recorded so far, picks
//! the largest-magnitude entry in a not-yet-pivoted row (partial
//! pivoting), and records a full Gauss–Jordan eta — full elimination
//! (not just below the diagonal) keeps every previously processed column
//! a unit vector, so no second triangular sweep is needed. The closing
//! permutation maps pivot rows back to basis positions so the product is
//! exactly `B⁻¹` in tableau row order.
//!
//! The rebuild happens in a fresh file that replaces the old one only on
//! success; a failure (numerically singular basis) leaves the caller's
//! file untouched so an exact per-pivot op list keeps serving BTRAN.

use palb_num::nonzero;

use crate::eta::EtaFile;
use crate::sparse::CscMatrix;

/// Pivot magnitudes at or below this are treated as singular.
const PIVOT_TOL: f64 = 1e-11;

/// Rebuilds `eta` as a compact factorization of the basis given by
/// `basis[k]` = column of `a` at basis position `k`. On `Err` the existing
/// file is left untouched.
pub(crate) fn factorize(eta: &mut EtaFile, csc: &CscMatrix, basis: &[usize]) -> Result<(), ()> {
    let m = basis.len();
    debug_assert_eq!(csc.rows(), m);
    let mut fresh = EtaFile::new();
    fresh.ensure_scratch(m);

    // The allocations below are the amortized cost of a *refactorization*:
    // `pivot` only lands here every REFACTOR_INTERVAL pivots (or on an
    // accuracy trip), so the steady-state pivot loop stays allocation-free.
    let mut order: Vec<usize> = (0..m).collect(); // palb:allow(trans-alloc): amortized refactorization setup
    order.sort_by_key(|&k| (csc.col_nnz(basis[k]), k));

    let mut pivot_of = vec![u32::MAX; m]; // palb:allow(trans-alloc): amortized refactorization setup
    let mut pivoted = vec![false; m]; // palb:allow(trans-alloc): amortized refactorization setup
    let mut w = vec![0.0; m]; // palb:allow(trans-alloc): amortized refactorization setup
    for &k in &order {
        for v in &mut w {
            *v = 0.0;
        }
        csc.scatter_col(basis[k], &mut w);
        fresh.ftran(&mut w);

        let mut best = usize::MAX;
        let mut best_abs = PIVOT_TOL;
        for (r, &wr) in w.iter().enumerate() {
            if !pivoted[r] {
                let a = wr.abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
        }
        if best == usize::MAX {
            return Err(());
        }
        fresh.begin_eta(best, 1.0 / w[best]);
        for (r, &wr) in w.iter().enumerate() {
            if r != best && nonzero(wr) {
                fresh.push_factor(r as u32, wr);
            }
        }
        pivoted[best] = true;
        pivot_of[k] = best as u32;
    }
    // After the etas, basic column k maps to e_{pivot_of[k]}; the closing
    // permutation (out[k] = v[pivot_of[k]] under FTRAN) re-aligns it with
    // basis position k.
    fresh.push_perm(&pivot_of);
    *eta = fresh;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::standard::CsrMatrix;

    fn csc(rows: &[Vec<f64>]) -> CscMatrix {
        let n = rows.first().map_or(0, Vec::len);
        let mut a = CsrMatrix::with_capacity(n, rows.len(), 0);
        for row in rows {
            for (j, &v) in row.iter().enumerate() {
                if nonzero(v) {
                    a.push(j, v);
                }
            }
            a.finish_row();
        }
        CscMatrix::from_csr(&a)
    }

    /// FTRAN of each basic column through the factorization must yield the
    /// corresponding unit vector.
    #[test]
    fn factorization_inverts_basis_columns() {
        let a = csc(&[
            vec![2.0, 1.0, 0.0, 1.0],
            vec![0.0, 3.0, 1.0, 0.0],
            vec![4.0, 0.0, 0.0, 1.0],
        ]);
        let basis = [0usize, 1, 3];
        let mut eta = EtaFile::new();
        factorize(&mut eta, &a, &basis).unwrap();
        assert!(eta.is_valid());
        for (k, &j) in basis.iter().enumerate() {
            let mut w = vec![0.0; 3];
            a.scatter_col(j, &mut w);
            eta.ftran(&mut w);
            for (r, &v) in w.iter().enumerate() {
                let want = if r == k { 1.0 } else { 0.0 };
                assert!(
                    (v - want).abs() < 1e-12,
                    "col {j} row {r}: got {v}, want {want}"
                );
            }
        }
    }

    /// BTRAN duals from the factorization must agree with a dense solve of
    /// `Bᵀ y = c_B`.
    #[test]
    fn btran_matches_dense_dual_solve() {
        let rows = [
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ];
        let a = csc(&rows);
        let basis = [0usize, 1, 2];
        let mut eta = EtaFile::new();
        factorize(&mut eta, &a, &basis).unwrap();

        let c_b = [1.0, -2.0, 0.5];
        let mut y = c_b;
        eta.btran(&mut y);

        // Dense reference: solve Bᵀ y = c_B.
        let mut bt = DenseMatrix::zeros(3, 3);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                bt[(j, i)] = v;
            }
        }
        let want = crate::linalg::solve(&bt, &c_b).unwrap();
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-10, "dual {got} vs {want}");
        }
    }

    #[test]
    fn singular_basis_is_rejected_and_file_untouched() {
        let a = csc(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let basis = [0usize, 1];
        let mut eta = EtaFile::new();
        eta.begin_eta(0, 1.0);
        let before = eta.op_count();
        assert!(factorize(&mut eta, &a, &basis).is_err());
        assert_eq!(eta.op_count(), before, "failed rebuild must not clobber");
    }
}
