//! Property-based equivalence tests between the dense tableau engine and
//! the sparse product-form engine.
//!
//! The sparse engine's contract is not "close to" dense — it is *bitwise
//! identical* on every input (see `crates/lp/src/sparse.rs`): the same
//! pivot sequence, the same floating-point operations in the same order,
//! with only exact no-ops on stored zeros elided. These tests hammer that
//! contract with random block-structured LPs of the shape the profit-aware
//! formulation produces (per-server blocks coupled by dispatch rows),
//! including infeasible and unbounded instances, block-pricing metadata,
//! and workspace warm-start / basis-restore round-trips.

use std::sync::Arc;

use palb_lp::sparse::block_layout;
use palb_lp::{EngineKind, LpError, Problem, Rel, SolveOptions, Workspace};
use proptest::prelude::*;

fn opts(engine: EngineKind) -> SolveOptions {
    SolveOptions {
        engine,
        ..SolveOptions::default()
    }
}

fn bits(v: f64) -> u64 {
    v.to_bits()
}

/// Asserts the two engines produce bitwise-identical answers (including
/// identical error classification) on `p`, optionally with block metadata
/// attached to the sparse side only — metadata must never change results.
fn assert_engines_agree(
    p: &Problem,
    blocks: Option<Arc<palb_lp::BlockStructure>>,
) -> Result<(), TestCaseError> {
    let dense = p.solve_with(&opts(EngineKind::Dense));
    let sparse = p.solve_with(&SolveOptions {
        blocks,
        ..opts(EngineKind::Sparse)
    });
    match (&dense, &sparse) {
        (Ok(d), Ok(s)) => {
            prop_assert_eq!(
                bits(d.objective()),
                bits(s.objective()),
                "objective bits: dense {} vs sparse {}",
                d.objective(),
                s.objective()
            );
            for (j, (a, b)) in d.values().iter().zip(s.values()).enumerate() {
                prop_assert_eq!(bits(*a), bits(*b), "value {} differs: {} vs {}", j, a, b);
            }
            // Duals are recovered by engine-specific arithmetic (dense:
            // independent Bᵀ factorization; sparse: eta-file BTRAN) — the
            // same linear system, so they agree to tolerance, not bitwise.
            for (i, (a, b)) in d.duals().iter().zip(s.duals()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                    "dual {} drift: {} vs {}",
                    i,
                    a,
                    b
                );
            }
            prop_assert_eq!(d.iterations(), s.iterations(), "pivot counts differ");
        }
        (Err(de), Err(se)) => {
            // Identical status classification (Infeasible vs Unbounded vs
            // iteration trouble) — not just "both failed".
            prop_assert_eq!(
                std::mem::discriminant(de),
                std::mem::discriminant(se),
                "dense {:?} vs sparse {:?}",
                de,
                se
            );
        }
        _ => {
            return Err(TestCaseError::fail(format!(
                "engines disagree on status: dense {dense:?} vs sparse {sparse:?}"
            )));
        }
    }
    Ok(())
}

/// A random block-structured LP: `servers` blocks of `bvars` variables
/// with `bcons` local `≤` rows each, plus one coupling row per block pair
/// tying neighbouring blocks together, and a global coupling row over all
/// variables. `b ≥ 0` keeps the origin feasible; finite bounds keep it
/// bounded. Coefficients are quantized to quarters to provoke exact
/// cancellations and degenerate ties — the cases where a pivot-order
/// mismatch between the engines would show up instantly.
#[derive(Debug, Clone)]
struct BlockLp {
    servers: usize,
    bvars: usize,
    bcons: usize,
    obj: Vec<f64>,
    coefs: Vec<f64>,
    rhs: Vec<f64>,
}

fn quarter() -> impl Strategy<Value = f64> {
    (-12i32..=12).prop_map(|q| f64::from(q) / 4.0)
}

fn block_lp() -> impl Strategy<Value = BlockLp> {
    (2usize..=4, 1usize..=3, 1usize..=2).prop_flat_map(|(servers, bvars, bcons)| {
        let nv = servers * bvars;
        let ncoef = servers * bcons * bvars + nv;
        let nrhs = servers * bcons + 1;
        (
            Just(servers),
            Just(bvars),
            Just(bcons),
            proptest::collection::vec(quarter(), nv),
            proptest::collection::vec(quarter(), ncoef),
            proptest::collection::vec((0i32..=40).prop_map(|q| f64::from(q) / 4.0), nrhs),
        )
            .prop_map(|(servers, bvars, bcons, obj, coefs, rhs)| BlockLp {
                servers,
                bvars,
                bcons,
                obj,
                coefs,
                rhs,
            })
    })
}

/// Materializes the LP block-major (block vars then block rows, coupling
/// row last) so `block_layout` describes it exactly. Also returns the id
/// handles so patch scripts can address variables and rows.
fn build_block_lp(
    lp: &BlockLp,
) -> (
    Problem,
    palb_lp::BlockStructure,
    Vec<palb_lp::VarId>,
    Vec<palb_lp::ConId>,
) {
    let mut p = Problem::maximize();
    let mut vars = Vec::new();
    let mut cons = Vec::new();
    for s in 0..lp.servers {
        for v in 0..lp.bvars {
            let j = s * lp.bvars + v;
            vars.push(p.add_var(&format!("x{s}_{v}"), 0.0, 25.0, lp.obj[j]));
        }
    }
    let mut ci = 0;
    for s in 0..lp.servers {
        for c in 0..lp.bcons {
            let base = (s * lp.bcons + c) * lp.bvars;
            let terms: Vec<_> = (0..lp.bvars)
                .map(|v| (vars[s * lp.bvars + v], lp.coefs[base + v]))
                .collect();
            cons.push(p.add_con(&format!("r{s}_{c}"), &terms, Rel::Le, lp.rhs[ci]));
            ci += 1;
        }
    }
    let tail = lp.servers * lp.bcons * lp.bvars;
    let coupling: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(j, &v)| (v, lp.coefs[tail + j]))
        .collect();
    cons.push(p.add_con("coupling", &coupling, Rel::Le, lp.rhs[ci]));
    let bs = block_layout(lp.servers as u32, lp.bvars, lp.bcons, 0, 1);
    (p, bs, vars, cons)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Feasible-and-bounded block LPs: identical objective bits, values,
    /// and pivot counts (duals to tolerance) — with and without
    /// block-pricing metadata.
    #[test]
    fn engines_bitwise_equal_on_block_lps(lp in block_lp()) {
        let (p, bs, _, _) = build_block_lp(&lp);
        assert_engines_agree(&p, None)?;
        assert_engines_agree(&p, Some(Arc::new(bs)))?;
    }

    /// Mixed-relation LPs (≥ / = rows force a real phase 1, and the rhs
    /// offsets can make them infeasible): the engines must agree on the
    /// *classification*, not just on optima.
    #[test]
    fn engines_agree_on_status_classification(
        n in 2usize..5,
        coefs in proptest::collection::vec((-8i32..=8).prop_map(|q| f64::from(q) / 2.0), 20),
        rhs in proptest::collection::vec((-10i32..=20).prop_map(|q| f64::from(q) / 2.0), 4),
        rels in proptest::collection::vec(0u8..3, 4),
        unbounded in proptest::prelude::any::<bool>(),
    ) {
        let mut p = Problem::maximize();
        let hi = if unbounded { f64::INFINITY } else { 30.0 };
        let vars: Vec<_> = (0..n).map(|j| p.add_var(&format!("x{j}"), 0.0, hi, coefs[j])).collect();
        for (i, (&b, &rel)) in rhs.iter().zip(&rels).enumerate() {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(j, &v)| (v, coefs[(i * n + j) % coefs.len()]))
                .collect();
            let rel = match rel % 3 {
                0 => Rel::Le,
                1 => Rel::Ge,
                _ => Rel::Eq,
            };
            p.add_con(&format!("r{i}"), &terms, rel, b);
        }
        assert_engines_agree(&p, None)?;
    }

    /// Workspace warm-start round-trips: the same patch script replayed on
    /// a dense and a sparse workspace must stay bitwise-locked at every
    /// step, through a basis snapshot/restore in the middle.
    #[test]
    fn workspace_patch_scripts_stay_bitwise_locked(
        lp in block_lp(),
        obj_patches in proptest::collection::vec((0usize..8, (-10i32..=10).prop_map(|q| f64::from(q) / 2.0)), 1..5),
        rhs_patches in proptest::collection::vec((0usize..8, (0i32..=36).prop_map(|q| f64::from(q) / 4.0)), 1..5),
    ) {
        let (p, bs, vars, cons) = build_block_lp(&lp);
        let mk = |engine| {
            let o = SolveOptions {
                blocks: Some(Arc::new(bs.clone())),
                ..opts(engine)
            };
            Workspace::new(&p, &o).expect("workspace build")
        };
        let mut dense = mk(EngineKind::Dense);
        let mut sparse = mk(EngineKind::Sparse);

        let solve_both = |d: &mut Workspace, s: &mut Workspace| -> Result<(), TestCaseError> {
            let rd = d.solve();
            let rs = s.solve();
            match (&rd, &rs) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(bits(a.objective()), bits(b.objective()),
                        "warm objective bits: {} vs {}", a.objective(), b.objective());
                    for (x, y) in a.values().iter().zip(b.values()) {
                        prop_assert_eq!(bits(*x), bits(*y), "warm value {} vs {}", x, y);
                    }
                    // Warm duals are read by engine-specific arithmetic
                    // (dense: O(m) cost-row read; sparse: eta BTRAN), so
                    // they agree mathematically, not bitwise.
                    for (x, y) in a.duals().iter().zip(b.duals()) {
                        prop_assert!((x - y).abs() <= 1e-6 * (1.0 + y.abs()),
                            "warm dual {} vs {}", x, y);
                    }
                }
                (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                _ => return Err(TestCaseError::fail(format!(
                    "warm status mismatch: dense {rd:?} vs sparse {rs:?}"
                ))),
            }
            prop_assert_eq!(d.stats().warm_solves, s.stats().warm_solves);
            prop_assert_eq!(d.stats().cold_solves, s.stats().cold_solves);
            Ok(())
        };

        solve_both(&mut dense, &mut sparse)?;
        let saved = (dense.basis(), sparse.basis());
        for (k, &(vi, c)) in obj_patches.iter().enumerate() {
            let v = vars[vi % vars.len()];
            dense.set_objective(v, c);
            sparse.set_objective(v, c);
            if let Some(&(ci, b)) = rhs_patches.get(k) {
                let cid = cons[ci % cons.len()];
                dense.set_rhs(cid, b);
                sparse.set_rhs(cid, b);
            }
            solve_both(&mut dense, &mut sparse)?;
        }
        // Rewind both to the snapshot and confirm they stay locked.
        if dense.restore_basis(&saved.0).is_ok() {
            prop_assert!(sparse.restore_basis(&saved.1).is_ok(),
                "sparse restore failed where dense succeeded");
            solve_both(&mut dense, &mut sparse)?;
        }
    }
}
