//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random LPs whose structure guarantees a known property
//! (feasibility, boundedness, or a planted optimum) and check that the
//! solver's answer satisfies the mathematical certificates — primal
//! feasibility, weak duality, and complementary slackness — rather than
//! comparing against a second solver we do not have.

use palb_lp::{PivotRule, Problem, Rel, SolveOptions};
use proptest::prelude::*;

/// Random bounded-feasible maximization problem:
/// `max cᵀx  s.t.  A x ≤ b,  0 ≤ x ≤ u` with `b ≥ 0` so that `x = 0` is
/// always feasible, and finite upper bounds so the LP is always bounded.
fn bounded_lp() -> impl Strategy<Value = (usize, usize, Vec<f64>, Vec<Vec<f64>>, Vec<f64>, Vec<f64>)>
{
    (2usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        let c = proptest::collection::vec(-5.0..5.0f64, n);
        let a = proptest::collection::vec(proptest::collection::vec(-3.0..3.0f64, n), m);
        let b = proptest::collection::vec(0.0..10.0f64, m);
        let u = proptest::collection::vec(0.1..20.0f64, n);
        (Just(n), Just(m), c, a, b, u)
    })
}

fn build(
    n: usize,
    c: &[f64],
    a: &[Vec<f64>],
    b: &[f64],
    u: &[f64],
) -> (Problem, Vec<palb_lp::VarId>, Vec<palb_lp::ConId>) {
    let mut p = Problem::maximize();
    let xs: Vec<_> = (0..n)
        .map(|j| p.add_var(&format!("x{j}"), 0.0, u[j], c[j]))
        .collect();
    let cs: Vec<_> = a
        .iter()
        .zip(b)
        .enumerate()
        .map(|(i, (row, &bi))| {
            let terms: Vec<_> = xs.iter().copied().zip(row.iter().copied()).collect();
            p.add_con(&format!("r{i}"), &terms, Rel::Le, bi)
        })
        .collect();
    (p, xs, cs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated LP is feasible (x = 0) and bounded (box), so the
    /// solver must return an optimum, and the optimum must be primal
    /// feasible with objective at least 0 (the value at the origin).
    #[test]
    fn solver_returns_feasible_optimum((n, _m, c, a, b, u) in bounded_lp()) {
        let (p, _, _) = build(n, &c, &a, &b, &u);
        let sol = p.solve().expect("feasible bounded LP must solve");
        prop_assert!(p.feasibility_violation(sol.values(), 1e-6).is_none(),
            "solution infeasible: {:?}", p.feasibility_violation(sol.values(), 1e-6));
        prop_assert!(sol.objective() >= -1e-7,
            "origin is feasible with objective 0 but solver returned {}", sol.objective());
        // Objective must equal c·x recomputed independently.
        let recomputed = p.objective_value(sol.values());
        prop_assert!((recomputed - sol.objective()).abs() < 1e-6);
    }

    /// Dantzig and Bland pricing must agree on the optimal objective value
    /// (the optimal vertex may differ under degeneracy).
    #[test]
    fn pivot_rules_agree((n, _m, c, a, b, u) in bounded_lp()) {
        let (p, _, _) = build(n, &c, &a, &b, &u);
        let dantzig = p.solve().unwrap();
        let bland = p
            .solve_with(&SolveOptions { rule: PivotRule::Bland, ..SolveOptions::default() })
            .unwrap();
        prop_assert!((dantzig.objective() - bland.objective()).abs()
            < 1e-6 * (1.0 + dantzig.objective().abs()),
            "dantzig {} vs bland {}", dantzig.objective(), bland.objective());
    }

    /// Weak duality: for `max cᵀx, Ax ≤ b` the recovered duals must satisfy
    /// `y ≥ 0` and `bᵀy ≥ cᵀx*` (within tolerance). With upper bounds the
    /// residual `Σ u_j · max(0, c_j − (Aᵀy)_j)` closes the gap.
    #[test]
    fn weak_duality_holds((n, _m, c, a, b, u) in bounded_lp()) {
        let (p, _xs, cons) = build(n, &c, &a, &b, &u);
        let sol = p.solve().unwrap();
        let y: Vec<f64> = cons.iter().map(|&ci| sol.dual(ci)).collect();
        for (i, &yi) in y.iter().enumerate() {
            prop_assert!(yi >= -1e-6, "dual {i} negative: {yi}");
        }
        // Reduced profit of each variable that remains after paying duals.
        let mut dual_bound: f64 = b.iter().zip(&y).map(|(&bi, &yi)| bi * yi).sum();
        for j in 0..n {
            let aty: f64 = a.iter().zip(&y).map(|(row, &yi)| row[j] * yi).sum();
            let reduced = c[j] - aty;
            if reduced > 0.0 {
                dual_bound += u[j] * reduced; // bound constraint absorbs it
            }
        }
        prop_assert!(dual_bound >= sol.objective() - 1e-5 * (1.0 + sol.objective().abs()),
            "weak duality violated: bound {dual_bound} < primal {}", sol.objective());
    }

    /// Scaling invariance: multiplying the objective by a positive constant
    /// scales the optimum by the same constant.
    #[test]
    fn objective_scaling_invariance((n, _m, c, a, b, u) in bounded_lp(), k in 0.5..4.0f64) {
        let (p1, _, _) = build(n, &c, &a, &b, &u);
        let scaled: Vec<f64> = c.iter().map(|&v| v * k).collect();
        let (p2, _, _) = build(n, &scaled, &a, &b, &u);
        let s1 = p1.solve().unwrap();
        let s2 = p2.solve().unwrap();
        prop_assert!((s2.objective() - k * s1.objective()).abs()
            < 1e-5 * (1.0 + s2.objective().abs()),
            "scaling broke: {} vs {}", s2.objective(), k * s1.objective());
    }

    /// Adding a redundant constraint (a copy of an existing row with larger
    /// rhs) never changes the optimum.
    #[test]
    fn redundant_rows_are_harmless((n, m, c, a, b, u) in bounded_lp()) {
        let (p1, _, _) = build(n, &c, &a, &b, &u);
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.push(a[m - 1].clone());
        b2.push(b[m - 1] + 1.0);
        let (p2, _, _) = build(n, &c, &a2, &b2, &u);
        let s1 = p1.solve().unwrap();
        let s2 = p2.solve().unwrap();
        prop_assert!((s1.objective() - s2.objective()).abs()
            < 1e-6 * (1.0 + s1.objective().abs()));
    }

    /// Planted-optimum equality systems: choose x*, build A x = A x*, then
    /// minimize 1ᵀx. The solver must find objective ≤ 1ᵀx* (and feasible).
    #[test]
    fn planted_equality_feasible(
        n in 2usize..5,
        seed_rows in proptest::collection::vec(proptest::collection::vec(-2.0..2.0f64, 4), 1..3),
        xstar in proptest::collection::vec(0.0..5.0f64, 4),
    ) {
        let mut p = Problem::minimize();
        let xs: Vec<_> = (0..n).map(|j| p.add_nonneg(&format!("x{j}"), 1.0)).collect();
        for (i, row) in seed_rows.iter().enumerate() {
            let rhs: f64 = row.iter().take(n).zip(&xstar).map(|(a, x)| a * x).sum();
            let terms: Vec<_> = xs.iter().copied().zip(row.iter().copied()).collect();
            p.add_con(&format!("e{i}"), &terms, Rel::Eq, rhs);
        }
        let sol = p.solve().expect("planted system must be feasible");
        prop_assert!(p.feasibility_violation(sol.values(), 1e-5).is_none());
        let planted_obj: f64 = xstar.iter().take(n).sum();
        prop_assert!(sol.objective() <= planted_obj + 1e-5 * (1.0 + planted_obj));
    }
}

/// Raw data for LPs with a mix of singleton and general ≤ rows —
/// exercising the presolve reductions specifically.
#[allow(clippy::type_complexity)]
fn singleton_heavy_data() -> impl Strategy<
    Value = (
        usize,
        Vec<f64>,
        Vec<(usize, f64, f64)>,
        Vec<(Vec<f64>, f64)>,
    ),
> {
    (2usize..6, 1usize..4, 1usize..5).prop_flat_map(|(n, m_single, m_general)| {
        let c = proptest::collection::vec(-4.0..4.0f64, n);
        let singles = proptest::collection::vec((0usize..n, 0.5..3.0f64, 0.5..8.0f64), m_single);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(-2.0..2.0f64, n), 1.0..10.0f64),
            m_general,
        );
        (Just(n), c, singles, rows)
    })
}

fn build_singleton_heavy(
    n: usize,
    c: &[f64],
    singles: &[(usize, f64, f64)],
    rows: &[(Vec<f64>, f64)],
) -> (Problem, Vec<palb_lp::VarId>, Vec<palb_lp::ConId>) {
    let mut p = Problem::maximize();
    let vars: Vec<_> = (0..n)
        .map(|j| p.add_var(&format!("x{j}"), 0.0, 12.0, c[j]))
        .collect();
    let mut cons = Vec::new();
    for (i, &(j, a, b)) in singles.iter().enumerate() {
        cons.push(p.add_con(&format!("s{i}"), &[(vars[j], a)], Rel::Le, b));
    }
    for (i, (coefs, b)) in rows.iter().enumerate() {
        let terms: Vec<_> = vars.iter().copied().zip(coefs.iter().copied()).collect();
        cons.push(p.add_con(&format!("g{i}"), &terms, Rel::Le, *b));
    }
    (p, vars, cons)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Presolve must never change the optimal objective, the expanded
    /// solution must be feasible for the ORIGINAL problem, and the
    /// postsolved duals must still certify the optimum by weak duality —
    /// including duals on rows that presolve folded into bounds.
    #[test]
    fn presolve_preserves_objective_and_duals(
        (n, c, singles, rows) in singleton_heavy_data()
    ) {
        let (p, _vars, cons) = build_singleton_heavy(n, &c, &singles, &rows);
        let with = p
            .solve_with(&SolveOptions { presolve: true, ..SolveOptions::default() })
            .expect("bounded feasible");
        let without = p
            .solve_with(&SolveOptions { presolve: false, ..SolveOptions::default() })
            .expect("bounded feasible");
        prop_assert!(
            (with.objective() - without.objective()).abs()
                < 1e-6 * (1.0 + without.objective().abs()),
            "presolved {} vs direct {}", with.objective(), without.objective());
        prop_assert!(p.feasibility_violation(with.values(), 1e-6).is_none());

        // Weak duality with the postsolved duals. All rows are ≤ with the
        // rhs values we generated; the u = 12 box absorbs leftovers.
        let y: Vec<f64> = cons.iter().map(|&ci| with.dual(ci)).collect();
        for (i, &yi) in y.iter().enumerate() {
            prop_assert!(yi >= -1e-6, "dual {i} negative: {yi}");
        }
        let mut bound = 0.0;
        for (i, &(_, _, b)) in singles.iter().enumerate() {
            bound += y[i] * b;
        }
        for (i, (_, b)) in rows.iter().enumerate() {
            bound += y[singles.len() + i] * b;
        }
        for j in 0..n {
            let mut reduced = c[j];
            for (i, &(sj, a, _)) in singles.iter().enumerate() {
                if sj == j {
                    reduced -= y[i] * a;
                }
            }
            for (i, (coefs, _)) in rows.iter().enumerate() {
                reduced -= y[singles.len() + i] * coefs[j];
            }
            if reduced > 0.0 {
                bound += 12.0 * reduced;
            }
        }
        prop_assert!(
            bound >= with.objective() - 1e-5 * (1.0 + with.objective().abs()),
            "weak duality with postsolved duals failed: {} < {}",
            bound, with.objective());
    }
}
