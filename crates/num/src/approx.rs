//! The allowlisted home of raw `f64` comparison (see the crate docs).
//!
//! Everything here is `#[inline(always)]` and monomorphizes to the same
//! machine code as the operator it wraps, so routing a simplex pivot
//! loop's sparsity checks through this module costs nothing.

/// Exact equality of two `f64`s, by value (`-0.0 == 0.0`, NaN unequal to
/// everything including itself). Use when two *computed* values are
/// expected to coincide exactly — e.g. a warm solve reproducing a cold
/// solve — not for closeness (that is [`approx_eq`]).
#[inline(always)]
pub fn f64_eq(a: f64, b: f64) -> bool {
    a == b
}

/// Exact inequality by value; the negation of [`f64_eq`].
#[inline(always)]
pub fn f64_ne(a: f64, b: f64) -> bool {
    a != b
}

/// Exact test against zero (`-0.0` counts as zero). The sparsity check of
/// pivot loops and coefficient patches: skipping an *exactly* zero factor
/// changes nothing bit-for-bit, so no epsilon belongs here.
#[inline(always)]
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Exact test against non-zero; the negation of [`is_zero`].
#[inline(always)]
pub fn nonzero(x: f64) -> bool {
    x != 0.0
}

/// Bitwise identity: distinguishes `-0.0` from `0.0` and compares NaN
/// payloads. This is the determinism-contract comparison — two runs that
/// agree under `bits_eq` agree in every observable way.
#[inline(always)]
pub fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Absolute-tolerance closeness: `|a - b| <= tol`. `tol` must be
/// non-negative; NaN on either side is never close.
#[inline(always)]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    debug_assert!(tol >= 0.0, "approx_eq tolerance must be non-negative");
    (a - b).abs() <= tol
}

/// Mixed relative/absolute closeness: `|a - b| <= tol * (1 + max(|a|,
/// |b|))` — the scale-aware form the solvers use for objective and
/// dispatch comparisons (absolute near zero, relative for large values).
#[inline(always)]
pub fn approx_eq_rel(a: f64, b: f64, tol: f64) -> bool {
    debug_assert!(tol >= 0.0, "approx_eq_rel tolerance must be non-negative");
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality_follows_ieee_value_semantics() {
        assert!(f64_eq(1.5, 1.5));
        assert!(f64_eq(0.0, -0.0));
        assert!(!f64_eq(f64::NAN, f64::NAN));
        assert!(f64_ne(1.0, 1.0 + f64::EPSILON));
        assert!(f64_ne(f64::NAN, f64::NAN));
    }

    #[test]
    fn zero_tests_accept_both_signed_zeros() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(f64::MIN_POSITIVE));
        assert!(!is_zero(f64::NAN));
        assert!(nonzero(1e-300));
        assert!(!nonzero(-0.0));
    }

    #[test]
    fn bits_eq_is_strictly_finer_than_value_equality() {
        assert!(bits_eq(1.5, 1.5));
        assert!(!bits_eq(0.0, -0.0)); // value-equal, bit-distinct
        assert!(bits_eq(f64::NAN, f64::NAN)); // same payload
        assert!(!bits_eq(1.0, 2.0));
    }

    #[test]
    fn approx_eq_is_an_absolute_band() {
        assert!(approx_eq(1.0, 1.0 + 1e-9, 1e-8));
        assert!(!approx_eq(1.0, 1.0 + 1e-7, 1e-8));
        assert!(approx_eq(0.0, 0.0, 0.0));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
    }

    #[test]
    fn approx_eq_rel_scales_with_magnitude() {
        // 1e6 apart is far at unit scale but close at 1e15 scale.
        assert!(!approx_eq_rel(0.0, 1e6, 1e-6));
        assert!(approx_eq_rel(1e15, 1e15 + 1e6, 1e-6));
        // Near zero the +1 term gives an absolute floor.
        assert!(approx_eq_rel(0.0, 1e-9, 1e-8));
    }
}
