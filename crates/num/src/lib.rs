//! # palb-num — the workspace's floating-point comparison discipline
//!
//! Raw `f64` `==`/`!=` is banned across the palb workspace by
//! `cargo xtask analyze` (the `float-cmp` lint): a literal comparison
//! cannot say whether it means *bit-exact determinism*, *exact sparsity*
//! or *numerical closeness*, and silent drift between those three is
//! exactly how a reproduction stops reproducing. Every comparison goes
//! through [`approx`] instead, which names the intent:
//!
//! * [`approx::is_zero`] / [`approx::nonzero`] — exact sparsity tests
//!   (simplex pivots, coefficient patches). Compiled to the same single
//!   compare instruction as the raw operator.
//! * [`approx::f64_eq`] / [`approx::f64_ne`] — deliberate exact equality
//!   of two computed values (determinism contracts, odometer guards).
//! * [`approx::bits_eq`] — bitwise identity, distinguishing `-0.0` from
//!   `0.0` and honoring NaN payloads; the strongest determinism check.
//! * [`approx::approx_eq`] / [`approx::approx_eq_rel`] — tolerance-based
//!   closeness for genuinely inexact quantities.
//!
//! This module is the *only* place the lint allows the raw operators.

// palb:lint-tier = lib
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx;

pub use approx::{approx_eq, approx_eq_rel, bits_eq, f64_eq, f64_ne, is_zero, nonzero};
