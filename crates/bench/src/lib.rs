// palb:lint-tier = bin
//! # palb-bench — benchmark harness and paper-figure regeneration
//!
//! Everything needed to regenerate the evaluation of *Profit Aware Load
//! Balancing for Distributed Cloud Data Centers* (IPPS 2013):
//!
//! * [`configs`] — the canonical workload parameters per experiment,
//! * [`parallel`] — a rayon-parallel slot runner (slots are independent),
//! * [`experiments`] — one module per paper section; each figure/table has
//!   a function returning the printable report,
//! * the `repro` binary — `cargo run --release -p palb-bench --bin repro
//!   -- all` regenerates every figure and table,
//! * Criterion benches under `benches/` for the solver microbenchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod configs;
pub mod experiments;
pub mod json;
pub mod parallel;
