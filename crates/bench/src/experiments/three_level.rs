//! Three-level TUF study.
//!
//! §IV-3 of the paper derives the constraint series for TUFs with three or
//! more steps (Eqs. 18–22) but the evaluation stops at two levels. This
//! experiment closes that gap: a §VII-style system whose classes carry
//! **three-level** step TUFs, solved by the exact branch-and-bound, the
//! uniform-level heuristic and the paper-literal big-M path (whose n=3
//! series is exactly Eqs. 18–22).

use palb_cluster::{presets, DataCenter, FrontEnd, RequestClass, System};
use palb_core::{
    run_with, solve_bb, solve_bigm, solve_uniform_levels, BalancedPolicy, BigMOptions,
    OptimizedPolicy, RunOptions, SolverConfig,
};
use palb_tuf::{Level, StepTuf};
use palb_workload::burst::{generate, BurstConfig};

/// The §VII system with 4 servers per data center and three-level TUFs.
/// (Four servers keep the 3^(K·M·L) level tree tractable for the exact
/// solver while preserving the two-market structure.)
pub fn three_level_system() -> System {
    let mk = |u: [f64; 3], margins: [f64; 3]| {
        StepTuf::new(vec![
            Level {
                deadline: 1.0 / margins[0],
                utility: u[0],
            },
            Level {
                deadline: 1.0 / margins[1],
                utility: u[1],
            },
            Level {
                deadline: 1.0 / margins[2],
                utility: u[2],
            },
        ])
        .unwrap()
    };
    let base = presets::section_vii();
    System {
        classes: vec![
            RequestClass {
                name: "request1".into(),
                tuf: mk([20.0, 16.0, 11.0], [10_000.0, 4_000.0, 1_200.0]),
                transfer_cost_per_mile: 0.0002,
            },
            RequestClass {
                name: "request2".into(),
                tuf: mk([30.0, 24.0, 16.0], [12_000.0, 5_000.0, 1_500.0]),
                transfer_cost_per_mile: 0.0003,
            },
        ],
        front_ends: vec![FrontEnd {
            name: "frontend1".into(),
        }],
        data_centers: base
            .data_centers
            .iter()
            .map(|d| DataCenter {
                servers: 4,
                ..d.clone()
            })
            .collect(),
        distance: base.distance.clone(),
        slot_length: 1.0,
    }
}

/// The workload for the study (scaled to the smaller 4-server DCs).
pub fn three_level_trace() -> palb_workload::Trace {
    generate(&BurstConfig {
        mean_rate: 42_000.0,
        slots: presets::SECTION_VII_SLOTS,
        reversion: 0.25,
        burst_prob: 0.5,
        ..BurstConfig::default()
    })
}

/// The printable report.
pub fn report() -> String {
    let system = three_level_system();
    let trace = three_level_trace();
    let start = presets::SECTION_VII_START_HOUR;

    let optimized = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(start),
    )
    .expect("exact solver handles 3 levels")
    .result;
    let balanced = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(start))
        .expect("baseline")
        .result;

    let mut out =
        String::from("# Three-level TUFs (the paper's Eq. 18-22 case, beyond its evaluation)\n");
    out.push_str(&palb_core::report::summary_table(&optimized, &balanced));

    // Per-slot solver agreement on one busy slot.
    let rates = trace.slot(2);
    let slot = start + 2;
    let bb = solve_bb(&system, rates, slot, &SolverConfig::exact()).expect("bb");
    let uni = solve_uniform_levels(&system, rates, slot).expect("uniform");
    let bigm = solve_bigm(&system, rates, slot, &BigMOptions::default()).expect("bigm");
    out.push_str(&format!(
        "\nslot {slot} solver agreement: exact {:.0} (proven={}, {} nodes), \
         uniform {:.0} ({:+.2}%), big-M polished {:.0} ({:+.2}%)\n",
        bb.solve.objective,
        bb.proven_optimal,
        bb.nodes,
        uni.solve.objective,
        100.0 * (uni.solve.objective / bb.solve.objective - 1.0),
        bigm.polished.objective,
        100.0 * (bigm.polished.objective / bb.solve.objective - 1.0),
    ));

    // How many VMs land on each level in the exact solution?
    let mut level_counts = [0usize; 3];
    let dims = bb.solve.dispatch.dims().clone();
    for (k, sv) in dims.class_server_pairs() {
        if bb.solve.dispatch.server_class_rate(k, sv) > 1e-9 {
            let q = bb.assignment.get(k, sv).unwrap();
            level_counts[q - 1] += 1;
        }
    }
    out.push_str(&format!(
        "active VMs by chosen level: L1={} L2={} L3={}\n",
        level_counts[0], level_counts[1], level_counts[2]
    ));
    out.push_str(
        "\nreading: with three levels the optimizer grades service — premium \
         level-1 capacity where margins fit, mid levels for the bulk — and \
         the same dominance over Balanced persists.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_solver_handles_three_levels() {
        let system = three_level_system();
        let trace = three_level_trace();
        let slot = presets::SECTION_VII_START_HOUR;
        let bb = solve_bb(&system, trace.slot(0), slot, &SolverConfig::exact()).unwrap();
        assert!(bb.proven_optimal, "nodes: {}", bb.nodes);
        let uni = solve_uniform_levels(&system, trace.slot(0), slot).unwrap();
        assert!(uni.solve.objective <= bb.solve.objective * (1.0 + 1e-9));
        // Uniform enumerates 3^(K·L) = 81 level combinations.
        assert_eq!(uni.nodes, 81);
    }

    #[test]
    fn optimized_still_dominates_balanced() {
        let system = three_level_system();
        // Two slots keep the exact solver affordable in debug test runs;
        // the full 7-slot comparison lives in `repro three-level`.
        let full = three_level_trace();
        let trace = palb_workload::Trace::new(vec![full.slot(0).clone(), full.slot(3).clone()]);
        let start = presets::SECTION_VII_START_HOUR;
        let opt = run_with(
            &mut OptimizedPolicy::exact(),
            &system,
            &trace,
            &RunOptions::at(start),
        )
        .unwrap()
        .result;
        let bal = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(start))
            .unwrap()
            .result;
        assert!(opt.total_net_profit() > bal.total_net_profit());
    }
}
