//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! 1. per-server branch-and-bound vs symmetry-reduced vs uniform-level
//!    solvers (quality and time),
//! 2. exact branch-and-bound vs the paper-literal big-M continuous path,
//! 3. the paper's unconditional Eq. 6 (every class holds a CPU sliver on
//!    every server) vs a load-conditional variant that frees unused VMs,
//! 4. LP pivot rules on the dispatch LPs,
//! 5. class-partitioned M/M/1 VMs vs pooled M/M/c capacity (why the
//!    paper's VM model under-uses servers).

use std::time::Instant;

use palb_cluster::presets;
use palb_core::{
    solve_bb, solve_bigm, solve_fixed_levels, solve_uniform_levels, BigMOptions, CoreError, Dims,
    LevelAssignment, SolverConfig,
};
use palb_lp::{PivotRule, Problem, Rel, SolveOptions};
use palb_queueing::{Mm1, Mmc};

use crate::configs::section_vii_trace;

/// Ablation 1 + 2: solver quality and runtime on one busy §VII slot.
pub fn solver_comparison() -> String {
    let sys = presets::section_vii();
    let trace = section_vii_trace();
    let rates = trace.slot(2);
    let slot = presets::SECTION_VII_START_HOUR + 2;

    let mut out = String::from(
        "# Ablation: multilevel solvers on one SVII slot\n\
         solver,objective,time_ms,notes\n",
    );

    let t0 = Instant::now();
    let exact = solve_bb(&sys, rates, slot, &SolverConfig::exact()).expect("bb");
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
    out.push_str(&format!(
        "bb_symmetry,{:.2},{:.2},{} nodes proven={}\n",
        exact.solve.objective, exact_ms, exact.nodes, exact.proven_optimal
    ));

    let t1 = Instant::now();
    let plain = solve_bb(
        &sys,
        rates,
        slot,
        &SolverConfig::exact().symmetry_breaking(false),
    )
    .expect("bb plain");
    let plain_ms = t1.elapsed().as_secs_f64() * 1e3;
    out.push_str(&format!(
        "bb_plain,{:.2},{:.2},{} nodes proven={} (node budget caps the\
         un-reduced tree; the incumbent may be sub-optimal)\n",
        plain.solve.objective, plain_ms, plain.nodes, plain.proven_optimal
    ));

    let t2 = Instant::now();
    let uni = solve_uniform_levels(&sys, rates, slot).expect("uniform");
    let uni_ms = t2.elapsed().as_secs_f64() * 1e3;
    out.push_str(&format!(
        "uniform,{:.2},{:.2},{} LPs gap={:.3}%\n",
        uni.solve.objective,
        uni_ms,
        uni.nodes,
        100.0 * (1.0 - uni.solve.objective / exact.solve.objective)
    ));

    let t3 = Instant::now();
    let bigm = solve_bigm(&sys, rates, slot, &BigMOptions::default()).expect("bigm");
    let bigm_ms = t3.elapsed().as_secs_f64() * 1e3;
    out.push_str(&format!(
        "bigm_penalty,{:.2},{:.2},paper-literal path gap={:.3}%\n",
        bigm.polished.objective,
        bigm_ms,
        100.0 * (1.0 - bigm.polished.objective / exact.solve.objective)
    ));
    out
}

/// Ablation 3: unconditional vs load-conditional Eq. 6.
///
/// The paper's constraint forces every class to hold a CPU reservation on
/// every server whether or not it receives traffic. The conditional
/// variant re-solves with zero-traffic VMs disabled, freeing their
/// reservations for loaded classes.
pub fn conditional_eq6() -> Result<String, CoreError> {
    let sys = presets::section_vii();
    let trace = section_vii_trace();
    let dims = Dims::of(&sys);
    let mut out = String::from(
        "# Ablation: unconditional Eq.6 (paper) vs load-conditional variant\n\
         slot,paper_objective,conditional_objective,gain_pct\n",
    );
    for t in 0..trace.slots() {
        let slot = presets::SECTION_VII_START_HOUR + t;
        let rates = trace.slot(t);
        let exact = solve_bb(&sys, rates, slot, &SolverConfig::exact())?;

        // Disable the VMs the paper's solution leaves idle, then re-solve
        // with the same levels elsewhere.
        let mut conditional = exact.assignment.clone();
        for (k, sv) in dims.class_server_pairs() {
            if exact.solve.dispatch.server_class_rate(k, sv) <= 1e-9 {
                conditional.set(k, sv, None);
            }
        }
        let improved = solve_fixed_levels(&sys, rates, slot, &conditional)?;
        let best = improved.objective.max(exact.solve.objective);
        out.push_str(&format!(
            "{slot},{:.2},{:.2},{:.3}\n",
            exact.solve.objective,
            best,
            100.0 * (best / exact.solve.objective - 1.0)
        ));
    }
    out.push_str(
        "\nreading: the freed reservations are worth a small but consistent \
         margin whenever the slot is loaded — the cost of the paper's \
         always-reserve formulation.\n",
    );
    Ok(out)
}

/// Ablation 4: Dantzig vs Bland pricing on the one-level dispatch LP.
pub fn pivot_rules() -> String {
    let sys = presets::section_v();
    let rates = presets::section_v_high_arrivals();
    let dims = Dims::of(&sys);
    let assignment = LevelAssignment::uniform(&dims, 1);
    let _ = &assignment;

    // Time the raw LP under both rules by rebuilding it through the public
    // builder (the formulation layer does not expose options, so measure a
    // structurally identical LP).
    let build = || -> Problem {
        let mut p = Problem::maximize();
        let mut vars = Vec::new();
        for k in 0..3 {
            for s in 0..4 {
                for sv in 0..18 {
                    vars.push(p.add_nonneg(&format!("l{k}_{s}_{sv}"), 1.0 + k as f64));
                }
            }
        }
        for (i, chunk) in vars.chunks(18).enumerate() {
            let terms: Vec<_> = chunk.iter().map(|&v| (v, 1.0)).collect();
            p.add_con(&format!("cap{i}"), &terms, Rel::Le, 50.0 + i as f64);
        }
        for s in 0..4 {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| (i / 18) % 4 == s)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            p.add_con(&format!("sup{s}"), &terms, Rel::Le, 400.0);
        }
        p
    };
    let mut out = String::from(
        "# Ablation: LP pivot rules on a dispatch-shaped LP\nrule,objective,pivots,time_us\n",
    );
    for (name, rule) in [("dantzig", PivotRule::Dantzig), ("bland", PivotRule::Bland)] {
        let p = build();
        let t = Instant::now();
        let sol = p
            .solve_with(&SolveOptions {
                rule,
                ..SolveOptions::default()
            })
            .expect("solvable");
        out.push_str(&format!(
            "{name},{:.3},{},{:.0}\n",
            sol.objective(),
            sol.iterations(),
            t.elapsed().as_secs_f64() * 1e6
        ));
    }
    let _ = rates;
    out
}

/// Ablation 5: partitioned per-class M/M/1 VMs vs pooled M/M/c capacity.
pub fn pooling() -> String {
    let mut out = String::from(
        "# Ablation: per-class M/M/1 partitions (paper) vs pooled M/M/c\n\
         load,partitioned_delay,pooled_delay,penalty_x\n",
    );
    // A server of rate 100 split into two φ=0.5 VMs, vs an M/M/2 of rate
    // 50 per head fed the combined stream.
    for rho in [0.3, 0.6, 0.8, 0.9, 0.95] {
        let lambda_total = 100.0 * rho;
        let part = Mm1::new(lambda_total / 2.0, 50.0).mean_sojourn();
        let pool = Mmc::new(lambda_total, 50.0, 2).mean_sojourn();
        out.push_str(&format!("{rho},{part:.4},{pool:.4},{:.2}\n", part / pool));
    }
    out.push_str(
        "\nreading: the paper's per-class VM partitioning pays up to ~2x in \
         mean delay at high load versus pooling the same capacity — the \
         price of class isolation.\n",
    );
    out
}

/// All ablations concatenated.
pub fn all() -> String {
    let mut out = solver_comparison();
    out.push('\n');
    out.push_str(&conditional_eq6().expect("conditional ablation"));
    out.push('\n');
    out.push_str(&pivot_rules());
    out.push('\n');
    out.push_str(&pooling());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_comparison_orders_solvers() {
        let report = solver_comparison();
        assert!(report.contains("bb_symmetry"));
        assert!(report.contains("bigm_penalty"));
    }

    #[test]
    fn conditional_eq6_never_loses() {
        let report = conditional_eq6().unwrap();
        for line in report.lines().skip(2) {
            let Some(gain) = line.split(',').nth(3) else {
                continue;
            };
            if let Ok(g) = gain.parse::<f64>() {
                assert!(g >= -1e-6, "conditional variant lost profit: {line}");
            }
        }
    }

    #[test]
    fn pooling_penalty_grows_with_load() {
        let report = pooling();
        let penalties: Vec<f64> = report
            .lines()
            .filter(|l| l.starts_with("0."))
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(penalties.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(*penalties.last().unwrap() > 1.5);
    }

    #[test]
    fn pivot_rules_agree_on_objective() {
        let report = pivot_rules();
        let objs: Vec<f64> = report
            .lines()
            .skip(2)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(objs.len(), 2);
        assert!((objs[0] - objs[1]).abs() < 1e-6 * (1.0 + objs[0].abs()));
    }
}
