//! One module per paper section, each regenerating its tables and figures.

pub mod ablations;
pub mod fault_tolerance;
pub mod forecasting;
pub mod foundations;
pub mod portfolio_bench;
pub mod quantile;
pub mod robustness;
pub mod scenario_matrix;
pub mod section_v;
pub mod section_vi;
pub mod section_vii;
pub mod serve_bench;
pub mod solver_perf;
pub mod sparse_lp;
pub mod three_level;
pub mod validate;
