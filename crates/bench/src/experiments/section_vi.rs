//! §VI — real-trace study with one-level TUFs (Figs. 5, 6, 7).

use palb_cluster::{presets, ClassId, System};
use palb_core::report::{dispatch_csv, dispatch_share, net_profit_csv, summary_table};
use palb_core::{BalancedPolicy, OptimizedPolicy, RunResult};
use palb_workload::Trace;

use crate::configs::section_vi_trace;
use crate::parallel::run_parallel;

/// The full §VI experiment state shared by Figs. 6 and 7.
pub struct SectionVi {
    /// The Houston / Mountain View / Atlanta system.
    pub system: System,
    /// The diurnal trace.
    pub trace: Trace,
    /// Optimized run.
    pub optimized: RunResult,
    /// Balanced run.
    pub balanced: RunResult,
}

/// Runs §VI once (both policies, all 24 slots, in parallel).
pub fn run_section_vi() -> SectionVi {
    let system = presets::section_vi();
    let trace = section_vi_trace();
    let optimized =
        run_parallel(OptimizedPolicy::exact, &system, &trace, 0).expect("optimizer solves SVI");
    let balanced = run_parallel(|| BalancedPolicy, &system, &trace, 0).expect("baseline");
    SectionVi {
        system,
        trace,
        optimized,
        balanced,
    }
}

/// Fig. 5: the request traces at the four front-ends.
pub fn fig5() -> String {
    let trace = section_vi_trace();
    let mut out = String::from(
        "# Fig 5: request rates at each front-end (req/h, class totals)\n\
         hour,frontend1,frontend2,frontend3,frontend4\n",
    );
    for t in 0..trace.slots() {
        out.push_str(&format!("{t}"));
        for s in 0..trace.front_ends() {
            let total: f64 = (0..trace.classes()).map(|k| trace.rate(t, s, k)).sum();
            out.push_str(&format!(",{total:.0}"));
        }
        out.push('\n');
    }
    out
}

/// Fig. 6: hourly net profits of the two approaches.
pub fn fig6(state: &SectionVi) -> String {
    let mut out = String::from("# Fig 6: SVI hourly net profit ($)\n");
    out.push_str(&net_profit_csv(&state.optimized, &state.balanced));
    out.push_str(&format!(
        "\n{}",
        summary_table(&state.optimized, &state.balanced)
    ));
    out.push_str(
        "\npaper shape: Optimized leads through the day; the curves converge \
         at the end of the trace when the workload collapses.\n",
    );
    out
}

/// Fig. 7: request1's hourly dispatch to each data center under both
/// policies.
pub fn fig7(state: &SectionVi) -> String {
    let mut out = String::from("# Fig 7: request1 dispatched to each data center (req/h)\n");
    out.push_str("-- Optimized --\n");
    out.push_str(&dispatch_csv(&state.system, &state.optimized, ClassId(0)));
    out.push_str("-- Balanced --\n");
    out.push_str(&dispatch_csv(&state.system, &state.balanced, ClassId(0)));
    for (name, run) in [
        ("Optimized", &state.optimized),
        ("Balanced", &state.balanced),
    ] {
        let shares = dispatch_share(&state.system, run, ClassId(0));
        let pretty: Vec<String> = shares
            .iter()
            .map(|(dc, v)| format!("{dc} {:.1}%", v * 100.0))
            .collect();
        out.push_str(&format!("{name} day shares: {}\n", pretty.join(", ")));
    }
    out.push_str(
        "\npaper shape: under Optimized, the distant datacenter2 \
         (mountain_view) receives far less request1 than datacenter1/3.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::DcId;
    use palb_core::report::dc_share;

    #[test]
    fn section_vi_preserves_paper_shapes() {
        let state = run_section_vi();

        // Optimized dominates in total.
        let opt = state.optimized.total_net_profit();
        let bal = state.balanced.total_net_profit();
        assert!(opt > 1.1 * bal, "optimized {opt} vs balanced {bal}");

        // Optimized leads (or ties) in every single hour.
        for (a, b) in state.optimized.slots.iter().zip(&state.balanced.slots) {
            assert!(
                a.net_profit >= b.net_profit - 1e-6 * b.net_profit.abs(),
                "hour {}: optimized {} below balanced {}",
                a.slot,
                a.net_profit,
                b.net_profit
            );
        }

        // Fig 6 convergence: the relative gap in the last slot is far
        // smaller than the worst mid-day gap.
        let gap = |i: usize| {
            let a = state.optimized.slots[i].net_profit;
            let b = state.balanced.slots[i].net_profit;
            (a - b) / b.abs().max(1.0)
        };
        let max_gap = (0..24).map(gap).fold(0.0_f64, f64::max);
        assert!(
            gap(23) < 0.4 * max_gap,
            "end gap {} vs max {}",
            gap(23),
            max_gap
        );

        // Fig 7: Optimized starves the distant mountain_view of request1.
        let mv_opt = dc_share(&state.system, &state.optimized, ClassId(0), DcId(1));
        let mv_bal = dc_share(&state.system, &state.balanced, ClassId(0), DcId(1));
        assert!(mv_opt < 0.25, "optimized sends {mv_opt} of request1 to MV");
        assert!(
            mv_opt < 0.7 * mv_bal,
            "optimized {mv_opt} vs balanced {mv_bal}"
        );
    }

    #[test]
    fn fig5_renders_24_hours() {
        let csv = fig5();
        assert_eq!(csv.lines().count(), 26);
    }
}
