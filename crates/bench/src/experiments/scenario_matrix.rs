//! Scenario stress matrix: the policy ladder × the built-in adversarial
//! scenario library, scored by **profit retention**.
//!
//! Every cell replays the noiseless §VI day (see
//! [`configs::scenario_base_trace`]) through one scenario's perturbation
//! stack — rates, prices, per-slot system parameters (DC outages,
//! transfer-cost spikes) and solver availability — and one policy, in
//! best-effort mode so a hard-aborting policy forfeits only the slots it
//! actually failed. The score is
//!
//! ```text
//! retention = (profit − κ·ramp) / (clean_profit − κ·clean_ramp)
//! ```
//!
//! where `ramp` is the grid-coupling surcharge
//! ([`palb_core::grid_ramp_surcharge`]) at the scenario's `grid_kappa` and
//! `clean_profit` is the *same policy's* profit on the unperturbed day —
//! retention isolates robustness from a policy's absolute profitability.
//!
//! Everything is counter-hashed off one seed: the same `(seed, scenario)`
//! pair reproduces the same corrupted world bit-for-bit at any solver
//! thread count (regression-tested below), which is what lets CI gate on
//! a committed scorecard baseline.

use std::sync::Arc;

use palb_cluster::PriceSchedule;
use palb_core::obs::{names, Recorder, Registry, Snapshot};
use palb_core::report::text_table;
use palb_core::{
    grid_ramp_surcharge, run_with, BalancedPolicy, ChaosPolicy, DampingOptions, OptimizedPolicy,
    PartialRun, ResilientOptions, ResilientPolicy, RunOptions, SlotSystems, SolverConfig, Tier,
};
use palb_lp::EngineKind;
use palb_workload::fault::{RateFaultConfig, SolverFaultSchedule};
use palb_workload::scenario::{self, RateFaults, Scenario};
use palb_workload::Trace;

use crate::configs;

/// The scorecard's policy ladder, column order. `OptimizedPolicy` reports
/// "Optimized" for both its solver modes, so the matrix carries its own
/// labels.
pub const POLICIES: [&str; 5] = [
    "Optimized",
    "UniformLevels",
    "Balanced",
    "Resilient",
    "Resilient+damping",
];

/// One (scenario × policy) outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scenario name (row).
    pub scenario: String,
    /// Policy label (column), from [`POLICIES`].
    pub policy: String,
    /// Net profit under the scenario, $ (before the grid surcharge).
    pub profit: f64,
    /// Grid-coupling ramp surcharge at the scenario's kappa, $.
    pub surcharge: f64,
    /// Same policy's profit on the clean day, $ (before surcharge).
    pub clean_profit: f64,
    /// Clean-day surcharge at the scenario's kappa, $.
    pub clean_surcharge: f64,
    /// `(profit − surcharge) / (clean_profit − clean_surcharge)`.
    pub retention: f64,
    /// Slots the policy decided (failures forfeit their slot).
    pub completed_slots: usize,
    /// Slots in the trace.
    pub total_slots: usize,
    /// Slots whose decision failed outright.
    pub failed_slots: usize,
    /// Slots decided degraded (fallback tier or repaired input).
    pub degraded_slots: usize,
    /// Slots decided past the exact tier (health-carrying policies only).
    pub tier_escalations: usize,
}

/// The full stress matrix plus its metrics snapshot.
#[derive(Debug)]
pub struct ScenarioMatrix {
    /// Perturbation seed the whole matrix derives from.
    pub seed: u64,
    /// Solver threads used by the exact tiers.
    pub threads: usize,
    /// LP engine the solver tiers ran on. A performance knob only: the
    /// engines are bitwise-identical on every input, so forcing one never
    /// moves a cell (regression-tested below).
    pub engine: EngineKind,
    /// Scenario names, row order.
    pub scenarios: Vec<String>,
    /// Policy labels, column order.
    pub policies: Vec<String>,
    /// Row-major `scenarios.len() × policies.len()` cells.
    pub cells: Vec<Cell>,
    /// Scenario-tagged counters plus the runs' economics/health families.
    pub obs: Snapshot,
}

impl ScenarioMatrix {
    /// The cell at (scenario, policy), if both exist.
    pub fn cell(&self, scenario: &str, policy: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy)
    }

    /// Worst retention across both resilient variants and every scenario —
    /// the CI gate (ISSUE floor: 0.8).
    pub fn resilient_floor(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.policy.starts_with("Resilient"))
            .map(|c| c.retention)
            .fold(f64::INFINITY, f64::min)
    }

    /// Retention edge of the damping variant over plain Resilient on the
    /// price-oscillation scenario (must be strictly positive: damping is
    /// *for* price-correlated churn).
    pub fn damping_gain_on_oscillation(&self) -> f64 {
        let damped = self.cell("price_oscillation", "Resilient+damping");
        let plain = self.cell("price_oscillation", "Resilient");
        match (damped, plain) {
            (Some(d), Some(p)) => d.retention - p.retention,
            _ => f64::NAN,
        }
    }

    /// The retention scorecard as an aligned text table (percent cells).
    pub fn table(&self) -> String {
        let mut header = vec!["scenario".to_string()];
        header.extend(self.policies.iter().cloned());
        let rows: Vec<Vec<String>> = self
            .scenarios
            .iter()
            .map(|s| {
                let mut row = vec![s.clone()];
                for p in &self.policies {
                    row.push(match self.cell(s, p) {
                        Some(c) => format!("{:.1}%", 100.0 * c.retention),
                        None => "-".to_string(),
                    });
                }
                row
            })
            .collect();
        text_table(&header, &rows)
    }
}

/// One scenario's corrupted world, materialized from the clean §VI day.
struct World {
    source: SlotSystems,
    trace: Trace,
    schedule: Option<SolverFaultSchedule>,
    kappa: f64,
}

fn materialize(scenario: &Scenario, seed: u64) -> World {
    let mut system = configs::scenario_base_system();
    let num_dcs = system.num_dcs();
    for l in 0..num_dcs {
        let mut feed = system.data_centers[l].prices.as_slice().to_vec();
        scenario.perturb_price_feed(l, num_dcs, &mut feed, seed);
        // The control plane's price-feed repair runs before dispatch, the
        // same boundary the fault-tolerance study exercises.
        let (clean, _incidents) = PriceSchedule::new_unchecked(feed).sanitized();
        system.data_centers[l].prices = clean;
    }
    let trace = scenario.perturb_trace(&configs::scenario_base_trace(), seed);
    let slots = trace.slots();
    let effects = scenario.system_effects(slots, num_dcs);
    let source = SlotSystems::from_effects(system, &effects, slots)
        .expect("built-in scenarios emit valid effects");
    let schedule = scenario
        .has_solver_faults(slots)
        .then(|| SolverFaultSchedule::per_slot(scenario.solver_fault_probs(slots), seed));
    World {
        source,
        trace,
        schedule,
        kappa: scenario.grid_kappa(),
    }
}

/// Runs one labelled policy over a (possibly perturbed) world in
/// best-effort mode. Solver-fault schedules veto Optimized/UniformLevels
/// decisions outright (via [`ChaosPolicy`]) and individual ladder attempts
/// inside the resilient variants; Balanced is price-table arithmetic with
/// no solver to fail. `engine` forces every LP onto one simplex engine
/// (`--lp-engine`); policies without an LP ignore it.
fn run_policy(
    label: &str,
    threads: usize,
    engine: EngineKind,
    source: &SlotSystems,
    trace: &Trace,
    schedule: Option<&SolverFaultSchedule>,
    obs: Recorder,
) -> PartialRun {
    let opts = RunOptions::best_effort(0).with_obs(obs);
    let run = match label {
        "Optimized" => {
            let inner = OptimizedPolicy::exact_threads(threads).with_lp_engine(engine);
            match schedule {
                Some(s) => run_with(
                    &mut ChaosPolicy::new(inner, s.clone()),
                    source,
                    trace,
                    &opts,
                ),
                None => run_with(&mut { inner }, source, trace, &opts),
            }
        }
        "UniformLevels" => {
            let inner = OptimizedPolicy::uniform();
            match schedule {
                Some(s) => run_with(
                    &mut ChaosPolicy::new(inner, s.clone()),
                    source,
                    trace,
                    &opts,
                ),
                None => run_with(&mut { inner }, source, trace, &opts),
            }
        }
        "Balanced" => run_with(&mut BalancedPolicy, source, trace, &opts),
        "Resilient" | "Resilient+damping" => {
            let mut ladder = ResilientOptions {
                solver: SolverConfig::exact().threads(threads),
                damping: (label == "Resilient+damping").then(DampingOptions::default),
                ..ResilientOptions::default()
            };
            // Both solver tiers honour the override; the Bland-retry
            // tier keeps its pivot-rule settings.
            ladder.solver.lp.engine = engine;
            ladder.retry_lp.engine = engine;
            let mut policy = ResilientPolicy::new(ladder);
            if let Some(s) = schedule {
                policy = policy.with_chaos(s.clone());
            }
            run_with(&mut policy, source, trace, &opts)
        }
        other => panic!("unknown policy label {other}"),
    };
    run.expect("best-effort scenario runs never abort")
}

fn degraded_slots(run: &PartialRun) -> usize {
    run.result
        .slots
        .iter()
        .filter(|s| s.health.as_ref().is_some_and(|h| h.degraded))
        .count()
}

fn tier_escalations(run: &PartialRun) -> usize {
    run.result
        .slots
        .iter()
        .filter(|s| {
            s.health
                .as_ref()
                .and_then(|h| h.tier_used)
                .is_some_and(|t| t != Tier::Exact)
        })
        .count()
}

/// Seed behind the committed `BENCH_scenarios.json` baseline; `repro
/// scenarios` and `palb stress` default to it so CI diffs stay meaningful.
pub const DEFAULT_SEED: u64 = 0xA11CE;

/// Runs the full built-in scenario library. See [`matrix_for`].
pub fn matrix(seed: u64, threads: usize) -> ScenarioMatrix {
    matrix_for(seed, threads, &scenario::builtin())
}

/// Lowercase display name of an LP engine choice, the same spelling the
/// `--lp-engine` flag accepts.
pub fn engine_name(engine: EngineKind) -> &'static str {
    match engine {
        EngineKind::Auto => "auto",
        EngineKind::Dense => "dense",
        EngineKind::Sparse => "sparse",
    }
}

/// Builds a stress run's scenario list: the full built-in library, or one
/// scenario by name, optionally overlaid with an extra rate-telemetry
/// fault stage. The overlay goes through [`RateFaultConfig::validate`] —
/// the same boundary check library callers hit — so `palb stress` rejects
/// exactly what the library rejects, with the structured field name in
/// the message.
pub fn select(
    name: Option<&str>,
    overlay: Option<RateFaultConfig>,
) -> Result<Vec<Scenario>, String> {
    let mut picked = match name {
        None => scenario::builtin(),
        Some(n) => {
            let sc = scenario::by_name(n).ok_or_else(|| {
                let all = scenario::builtin();
                let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
                format!("unknown scenario `{n}` (one of: {})", names.join(", "))
            })?;
            vec![sc]
        }
    };
    if let Some(cfg) = overlay {
        cfg.validate().map_err(|e| e.to_string())?;
        picked = picked
            .into_iter()
            .map(|s| s.push(Box::new(RateFaults(cfg.clone()))))
            .collect();
    }
    Ok(picked)
}

/// Compares a run against a committed scorecard baseline (the parsed
/// `BENCH_scenarios.json` of a previous blessed run), cell by cell. The
/// matrix is deterministic for a given build; the relative tolerance only
/// absorbs cross-platform floating-point differences. Subset runs check
/// just the rows they produced; `origin` names the baseline in messages.
pub fn check_baseline(
    m: &ScenarioMatrix,
    base: &serde_json::Value,
    origin: &str,
) -> Result<(), String> {
    let cells = base["cells"]
        .as_array()
        .ok_or_else(|| format!("{origin}: no `cells` array"))?;
    let mut matched = 0usize;
    for c in cells {
        let (Some(sc), Some(pol), Some(want)) = (
            c["scenario"].as_str(),
            c["policy"].as_str(),
            c["retention"].as_f64(),
        ) else {
            return Err(format!("{origin}: malformed cell entry"));
        };
        let Some(cell) = m.cell(sc, pol) else {
            continue;
        };
        let tol = 1e-6 * want.abs().max(1.0);
        if (cell.retention - want).abs() > tol {
            return Err(format!(
                "scorecard drift vs {origin}: {sc} x {pol} retention {:.6} != baseline {:.6}",
                cell.retention, want
            ));
        }
        matched += 1;
    }
    if matched == 0 {
        return Err(format!("{origin}: no baseline cell matches this run"));
    }
    Ok(())
}

/// Runs `scenarios × POLICIES`, normalizing each cell against the same
/// policy's clean-day run (computed once per policy and shared across
/// rows; the surcharge is linear in kappa, so the clean ramp is priced
/// once at κ = 1). LPs solve on the [`EngineKind::Auto`] engine; `palb
/// stress --lp-engine` goes through [`matrix_for_engine`] to force one.
pub fn matrix_for(seed: u64, threads: usize, scenarios: &[Scenario]) -> ScenarioMatrix {
    matrix_for_engine(seed, threads, scenarios, EngineKind::Auto)
}

/// [`matrix_for`] with every solver tier's LPs forced onto `engine`. The
/// engines are bitwise-identical on every input, so this is a
/// performance/diagnostic knob — the scorecard it produces is the same
/// bit for bit (regression-tested below).
pub fn matrix_for_engine(
    seed: u64,
    threads: usize,
    scenarios: &[Scenario],
    engine: EngineKind,
) -> ScenarioMatrix {
    let registry = Arc::new(Registry::new());
    let rec = Recorder::attached(Arc::clone(&registry));
    let clean_system = configs::scenario_base_system();
    let clean_trace = configs::scenario_base_trace();
    let horizon = clean_trace.slots();
    let clean_source = SlotSystems::constant(clean_system);

    // One clean run per policy: (profit, ramp at kappa = 1).
    let clean: Vec<(f64, f64)> = POLICIES
        .iter()
        .map(|label| {
            let run = run_policy(
                label,
                threads,
                engine,
                &clean_source,
                &clean_trace,
                None,
                Recorder::noop(),
            );
            assert!(
                run.failures.is_empty(),
                "{label} must decide every clean slot"
            );
            let ramp = grid_ramp_surcharge(&clean_source, 0, horizon, &run.result, 1.0);
            (run.result.total_net_profit(), ramp)
        })
        .collect();

    let mut cells = Vec::new();
    for sc in scenarios {
        sc.validate().expect("built-in scenarios validate");
        for p in sc.perturbations() {
            rec.counter_add(
                names::SCENARIO_PERTURBATIONS_TOTAL,
                &[("scenario", sc.name()), ("kind", p.name())],
                1,
            );
        }
        let world = materialize(sc, seed);
        if world.source.patched_slots() > 0 {
            rec.counter_add(
                names::SCENARIO_SLOTS_PATCHED_TOTAL,
                &[("scenario", sc.name())],
                world.source.patched_slots() as u64,
            );
        }
        for (label, &(clean_profit, clean_ramp)) in POLICIES.iter().zip(&clean) {
            let run = run_policy(
                label,
                threads,
                engine,
                &world.source,
                &world.trace,
                world.schedule.as_ref(),
                rec.clone(),
            );
            let escalations = tier_escalations(&run);
            if escalations > 0 {
                rec.counter_add(
                    names::SCENARIO_TIER_ESCALATIONS_TOTAL,
                    &[("scenario", sc.name()), ("policy", label)],
                    escalations as u64,
                );
            }
            let surcharge =
                grid_ramp_surcharge(&world.source, 0, horizon, &run.result, world.kappa);
            let clean_surcharge = world.kappa * clean_ramp;
            let denom = clean_profit - clean_surcharge;
            cells.push(Cell {
                scenario: sc.name().to_string(),
                policy: label.to_string(),
                profit: run.result.total_net_profit(),
                surcharge,
                clean_profit,
                clean_surcharge,
                retention: (run.result.total_net_profit() - surcharge) / denom,
                completed_slots: run.result.slots.len(),
                total_slots: world.trace.slots(),
                failed_slots: run.failures.len(),
                degraded_slots: degraded_slots(&run),
                tier_escalations: escalations,
            });
        }
    }
    ScenarioMatrix {
        seed,
        threads,
        engine,
        scenarios: scenarios.iter().map(|s| s.name().to_string()).collect(),
        policies: POLICIES.iter().map(|s| s.to_string()).collect(),
        cells,
        obs: registry.snapshot(),
    }
}

/// The printable scorecard: the retention table plus the gate values and
/// per-scenario descriptions.
pub fn report(seed: u64, threads: usize) -> String {
    render(&matrix(seed, threads))
}

/// Renders an already-computed matrix (so gate checks can reuse the run).
pub fn render(m: &ScenarioMatrix) -> String {
    let scenarios = scenario::builtin();
    let mut out = format!(
        "# Scenario stress matrix: noiseless SVI day (seed {}, {} solver thread{}, {} LP engine)\n\
         profit retention = (profit - grid surcharge) / same-policy clean profit\n\n",
        m.seed,
        m.threads,
        if m.threads == 1 { "" } else { "s" },
        engine_name(m.engine),
    );
    out.push_str(&m.table());
    out.push_str(&format!(
        "\nresilient floor (min over both variants, all scenarios): {:.1}%\n\
         damping edge on price_oscillation: {:+.2} pp\n\n",
        100.0 * m.resilient_floor(),
        100.0 * m.damping_gain_on_oscillation(),
    ));
    out.push_str("scenarios:\n");
    for sc in scenarios
        .iter()
        .filter(|s| m.scenarios.iter().any(|n| n == s.name()))
    {
        out.push_str(&format!("  {:<16} {}\n", sc.name(), sc.description()));
    }
    out.push_str(
        "\nreading: the ladder's retention floor holds across every \
         adversarial world, and on the price-correlated oscillation the \
         damping variant keeps its plan still while prices gyrate, beating \
         plain Resilient once grid-stability churn is priced.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = DEFAULT_SEED;

    fn key_bits(m: &ScenarioMatrix) -> Vec<(String, String, u64, u64)> {
        m.cells
            .iter()
            .map(|c| {
                (
                    c.scenario.clone(),
                    c.policy.clone(),
                    c.profit.to_bits(),
                    c.retention.to_bits(),
                )
            })
            .collect()
    }

    /// The ISSUE acceptance criteria in one pass: at least 6 scenarios by
    /// at least 4 policies, both resilient variants hold the 80% retention
    /// floor everywhere, and damping strictly beats plain Resilient on the
    /// price-oscillation scenario.
    #[test]
    fn full_matrix_meets_the_acceptance_gates() {
        let m = matrix(SEED, 1);
        assert!(m.scenarios.len() >= 6, "{} scenarios", m.scenarios.len());
        assert!(m.policies.len() >= 4);
        assert_eq!(m.cells.len(), m.scenarios.len() * m.policies.len());
        for c in &m.cells {
            assert!(
                c.retention.is_finite(),
                "{}/{} retention not finite",
                c.scenario,
                c.policy
            );
            assert!(c.completed_slots + c.failed_slots == c.total_slots);
        }
        assert!(
            m.resilient_floor() >= 0.8,
            "resilient floor {:.3} under 80%",
            m.resilient_floor()
        );
        assert!(
            m.damping_gain_on_oscillation() > 0.0,
            "damping gain {:.4} not strictly positive",
            m.damping_gain_on_oscillation()
        );
        // Both resilient variants decide every slot of every scenario.
        for c in m.cells.iter().filter(|c| c.policy.starts_with("Resilient")) {
            assert_eq!(c.failed_slots, 0, "{}/{}", c.scenario, c.policy);
        }
        // Scenario-tagged counters landed on the registry.
        assert!(
            m.obs
                .family_counter_total(names::SCENARIO_PERTURBATIONS_TOTAL)
                >= m.scenarios.len() as u64
        );
        assert!(
            m.obs
                .family_counter_total(names::SCENARIO_SLOTS_PATCHED_TOTAL)
                > 0
        );
    }

    /// Same seed, same cells, bit for bit, at 1/2/4 solver threads — the
    /// scorecard is a pure function of the seed.
    #[test]
    fn matrix_is_bitwise_identical_across_thread_counts() {
        let picks: Vec<Scenario> = scenario::builtin()
            .into_iter()
            .filter(|s| matches!(s.name(), "price_oscillation" | "dc_outage" | "black_swan"))
            .collect();
        let t1 = key_bits(&matrix_for(SEED, 1, &picks));
        let t2 = key_bits(&matrix_for(SEED, 2, &picks));
        let t4 = key_bits(&matrix_for(SEED, 4, &picks));
        assert_eq!(t1, t2);
        assert_eq!(t1, t4);
    }

    /// Forcing either LP engine reproduces the `Auto` scorecard bit for
    /// bit — `--lp-engine` is a performance knob, never a results knob.
    #[test]
    fn forced_engines_never_move_a_cell() {
        let picks: Vec<Scenario> = scenario::builtin()
            .into_iter()
            .filter(|s| s.name() == "price_shock")
            .collect();
        let auto = key_bits(&matrix_for_engine(SEED, 1, &picks, EngineKind::Auto));
        let dense = key_bits(&matrix_for_engine(SEED, 1, &picks, EngineKind::Dense));
        let sparse = key_bits(&matrix_for_engine(SEED, 1, &picks, EngineKind::Sparse));
        assert_eq!(auto, dense);
        assert_eq!(auto, sparse);
        // And the plain entry point is the Auto run.
        assert_eq!(auto, key_bits(&matrix_for(SEED, 1, &picks)));
    }

    /// The un-hardened optimizer forfeits slots wherever a scenario can
    /// fail its solver; the ladder never does.
    #[test]
    fn solver_outages_cost_the_bare_optimizer_slots() {
        let picks: Vec<Scenario> = scenario::builtin()
            .into_iter()
            .filter(|s| s.name() == "telemetry_chaos")
            .collect();
        let m = matrix_for(SEED, 1, &picks);
        let bare = m.cell("telemetry_chaos", "Optimized").unwrap();
        let res = m.cell("telemetry_chaos", "Resilient").unwrap();
        assert!(bare.failed_slots > 0, "chaos schedule never fired");
        assert_eq!(res.failed_slots, 0);
        assert!(res.retention > bare.retention);
        assert!(res.tier_escalations > 0);
    }

    #[test]
    fn report_renders_table_and_gates() {
        let r = report(SEED, 1);
        assert!(r.contains("scenario"));
        assert!(r.contains("price_oscillation"));
        assert!(r.contains("resilient floor"));
    }

    #[test]
    fn select_picks_scenarios_and_validates_the_overlay() {
        assert!(select(None, None).unwrap().len() >= 6);
        let one = select(Some("price_shock"), None).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name(), "price_shock");
        let err = select(Some("nope"), None).unwrap_err();
        assert!(err.contains("one of:"), "{err}");
        // The overlay is rejected by the same boundary check library
        // callers hit, with the structured field name in the message.
        let bad = RateFaultConfig {
            nan_burst_prob: 1.5,
            ..RateFaultConfig::default()
        };
        let err = select(None, Some(bad)).unwrap_err();
        assert!(err.contains("nan_burst_prob"), "{err}");
        let with = select(
            Some("dc_outage"),
            Some(RateFaultConfig {
                nan_burst_prob: 0.05,
                negative_prob: 0.0,
                spike_prob: 0.0,
                ..RateFaultConfig::default()
            }),
        )
        .unwrap();
        let stack = with[0].perturbations();
        assert_eq!(stack.last().unwrap().name(), "rate_faults");
    }

    #[test]
    fn baseline_check_accepts_own_cells_and_flags_drift() {
        let picks: Vec<Scenario> = scenario::builtin()
            .into_iter()
            .filter(|s| s.name() == "price_shock")
            .collect();
        let m = matrix_for(SEED, 1, &picks);
        let own = crate::json::scenario_matrix_to_json(&m);
        check_baseline(&m, &own, "self").unwrap();
        // A retention nudge beyond tolerance fails the gate.
        let got = m.cell("price_shock", "Balanced").unwrap().retention;
        let drifted = serde_json::json!({
            "cells": [{
                "scenario": "price_shock",
                "policy": "Balanced",
                "retention": got + 0.01,
            }]
        });
        let err = check_baseline(&m, &drifted, "drifted").unwrap_err();
        assert!(err.contains("drift"), "{err}");
        // No overlapping cells at all is itself an error.
        let disjoint = serde_json::json!({ "cells": [] });
        let err = check_baseline(&m, &disjoint, "empty").unwrap_err();
        assert!(err.contains("no baseline cell"), "{err}");
        let malformed = serde_json::json!({});
        assert!(check_baseline(&m, &malformed, "bad").is_err());
    }
}
