//! Sparse-engine study: the sparse revised-simplex LP core against the
//! dense tableau it mirrors.
//!
//! The sparse engine's contract (see `crates/lp/src/sparse.rs`) is
//! *bitwise equality* — same pivot sequence, same floating-point
//! operations in the same order, only exact no-ops on structural zeros
//! elided — so this study gates on two things at once:
//!
//! 1. **Parity everywhere.** Every existing solver-perf configuration
//!    (the Fig. 11 branch-and-bound sweep) and the scenario-matrix base
//!    config under `ChaosPolicy`-style solver faults at 1/2/4/8 worker
//!    threads must produce bit-identical incumbents, dispatches and
//!    per-slot profits whichever engine solves the LPs.
//! 2. **An order-of-magnitude win where sparsity pays.** On the
//!    `large-sparse` config — the Fig. 11 instance scaled to
//!    [`crate::configs::LARGE_SPARSE_SERVERS`] servers per data center,
//!    at least 20x the nonzeros of the largest Fig. 11 point — the
//!    sparse engine must solve the identical model at least 10x faster
//!    than the dense tableau, to the same objective bits.

use std::sync::Arc;
use std::time::Instant;

use palb_core::{
    dispatch_problem, run_with, solve_bb, Dims, LevelAssignment, ResilientOptions, ResilientPolicy,
    RunOptions, RunResult, SolverConfig,
};
use palb_lp::{EngineKind, Problem, SolveOptions};
use palb_workload::fault::SolverFaultSchedule;
use palb_workload::Trace;

use crate::configs::{scenario_base_system, scenario_base_trace, LARGE_SPARSE_SERVERS};
use crate::experiments::solver_perf::{fig11_instance, incumbents_match};

/// One Fig. 11 branch-and-bound point solved under both engines.
pub struct BbParityPoint {
    /// Servers per data center.
    pub servers: usize,
    /// Incumbent profit, dispatch and level assignment agree to the bit.
    pub bitwise_equal: bool,
}

/// One scenario-matrix run under solver faults, dense vs sparse, at a
/// fixed worker-thread count.
pub struct ChaosParityPoint {
    /// Branch-and-bound worker threads.
    pub threads: usize,
    /// Per-slot net profit, revenue and dispatch agree to the bit across
    /// the whole run.
    pub bitwise_equal: bool,
}

/// The `large-sparse` head-to-head: one big dispatch LP, both engines.
pub struct LargeSparsePoint {
    /// Servers per data center of the scaled instance.
    pub servers: usize,
    /// Constraint rows of the assembled LP.
    pub rows: usize,
    /// Structural variables of the assembled LP.
    pub cols: usize,
    /// Nonzero coefficients of the assembled LP.
    pub nonzeros: usize,
    /// Nonzeros of the largest existing Fig. 11 point, for the >= 20x
    /// size gate.
    pub fig11_nonzeros: usize,
    /// Dense wall-clock, best of `reps`, ms.
    pub dense_ms: f64,
    /// Sparse wall-clock, best of `reps`, ms.
    pub sparse_ms: f64,
    /// `dense_ms / sparse_ms`.
    pub speedup: f64,
    /// Objective and every variable value agree to the bit, and the
    /// engines spent identical pivot counts.
    pub bitwise_equal: bool,
}

impl LargeSparsePoint {
    /// The ISSUE size gate: the scaled LP must carry at least 20x the
    /// nonzeros of the Fig. 11 reference.
    pub fn meets_size_floor(&self) -> bool {
        self.nonzeros >= 20 * self.fig11_nonzeros
    }
}

/// The full study.
pub struct SparseStudy {
    /// Fig. 11 branch-and-bound parity, one point per server count.
    pub bb_parity: Vec<BbParityPoint>,
    /// Scenario-under-faults parity, one point per thread count.
    pub chaos_parity: Vec<ChaosParityPoint>,
    /// The large-sparse timing head-to-head.
    pub large: LargeSparsePoint,
    /// Timing repetitions per engine on the large instance.
    pub reps: usize,
}

impl SparseStudy {
    /// Whether every parity point and the large instance matched
    /// bit-for-bit — the hard repro gate.
    pub fn all_bitwise_equal(&self) -> bool {
        self.bb_parity.iter().all(|p| p.bitwise_equal)
            && self.chaos_parity.iter().all(|p| p.bitwise_equal)
            && self.large.bitwise_equal
    }
}

fn engine_lp(engine: EngineKind) -> SolveOptions {
    SolveOptions {
        engine,
        ..SolveOptions::default()
    }
}

/// Solves every Fig. 11 point (`2..=max_servers` servers per data center)
/// through the full branch-and-bound with each engine forced, comparing
/// incumbents bit-for-bit.
pub fn bb_parity(max_servers: usize) -> Vec<BbParityPoint> {
    (2..=max_servers.max(2))
        .map(|m| {
            let (sys, scaled, slot) = fig11_instance(m);
            let solve = |engine| {
                let opts = SolverConfig::exact().lp(engine_lp(engine));
                solve_bb(&sys, &scaled, slot, &opts).expect("fig11 bb")
            };
            let dense = solve(EngineKind::Dense);
            let sparse = solve(EngineKind::Sparse);
            BbParityPoint {
                servers: m,
                bitwise_equal: incumbents_match(&dense, &sparse)
                    && dense.proven_optimal == sparse.proven_optimal
                    && dense.nodes == sparse.nodes,
            }
        })
        .collect()
}

fn runs_bitwise_equal(a: &RunResult, b: &RunResult) -> bool {
    a.slots.len() == b.slots.len()
        && a.decisions == b.decisions
        && a.slots.iter().zip(&b.slots).all(|(x, y)| {
            x.net_profit.to_bits() == y.net_profit.to_bits()
                && x.revenue.to_bits() == y.revenue.to_bits()
        })
}

/// Runs the scenario-matrix base config under a deterministic solver-fault
/// schedule with the full Resilient degradation ladder, dense vs sparse,
/// at each thread count. Faults knock individual solve attempts over so
/// the run exercises every tier (exact, Bland retry, replay, balanced) —
/// the per-slot outcomes must still agree to the bit across engines.
pub fn chaos_parity(threads: &[usize], slots: usize) -> Vec<ChaosParityPoint> {
    let sys = scenario_base_system();
    let base = scenario_base_trace();
    let trace = Trace::new(
        (0..slots.min(base.slots()))
            .map(|t| base.slot(t).clone())
            .collect(),
    );
    threads
        .iter()
        .map(|&t| {
            let run_engine = |engine| {
                let mut opts = ResilientOptions::default();
                opts.solver.threads = t;
                opts.solver.lp = engine_lp(engine);
                opts.retry_lp.engine = engine;
                let mut policy =
                    ResilientPolicy::new(opts).with_chaos(SolverFaultSchedule::new(0.4, 1105));
                run_with(&mut policy, &sys, &trace, &RunOptions::at(0))
                    .expect("chaos run")
                    .result
            };
            let dense = run_engine(EngineKind::Dense);
            let sparse = run_engine(EngineKind::Sparse);
            ChaosParityPoint {
                threads: t,
                bitwise_equal: runs_bitwise_equal(&dense, &sparse),
            }
        })
        .collect()
}

/// Assembles the `large-sparse` dispatch LP: the Fig. 11 instance at
/// `servers` per data center, one-level assignment (the §IV-1 direct-LP
/// shape, which is also what every branch-and-bound node solves).
pub fn large_sparse_problem(servers: usize) -> Problem {
    let (sys, scaled, slot) = fig11_instance(servers);
    let dims = Dims::of(&sys);
    let (problem, _) = dispatch_problem(&sys, &scaled, slot, &LevelAssignment::uniform(&dims, 1))
        .expect("large-sparse LP builds");
    problem
}

fn best_of_ms(reps: usize, mut f: impl FnMut() -> palb_lp::Solution) -> (f64, palb_lp::Solution) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let s = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(s);
    }
    (best, last.expect("reps >= 1"))
}

/// Times both engines on the identical large-sparse model (block-pricing
/// metadata attached on the sparse side, exactly as the production path
/// passes it) and checks the answers bit-for-bit.
pub fn large_sparse(servers: usize, reps: usize) -> LargeSparsePoint {
    let (sys, scaled, slot) = fig11_instance(servers);
    let dims = Dims::of(&sys);
    let assignment = LevelAssignment::uniform(&dims, 1);
    let (problem, blocks) =
        dispatch_problem(&sys, &scaled, slot, &assignment).expect("large-sparse LP builds");
    let fig11_nonzeros = large_sparse_problem(5).num_nonzeros();

    let (dense_ms, dense) = best_of_ms(reps, || {
        problem
            .solve_with(&engine_lp(EngineKind::Dense))
            .expect("dense solve")
    });
    let blocks = Arc::new(blocks);
    let (sparse_ms, sparse) = best_of_ms(reps, || {
        problem
            .solve_with(&SolveOptions {
                blocks: Some(Arc::clone(&blocks)),
                ..engine_lp(EngineKind::Sparse)
            })
            .expect("sparse solve")
    });

    let bitwise_equal = dense.objective().to_bits() == sparse.objective().to_bits()
        && dense.iterations() == sparse.iterations()
        && dense
            .values()
            .iter()
            .zip(sparse.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    LargeSparsePoint {
        servers,
        rows: problem.num_cons(),
        cols: problem.num_vars(),
        nonzeros: problem.num_nonzeros(),
        fig11_nonzeros,
        dense_ms,
        sparse_ms,
        speedup: if sparse_ms > 0.0 {
            dense_ms / sparse_ms
        } else {
            f64::INFINITY
        },
        bitwise_equal,
    }
}

/// Runs the full study at the default sizes the repro target gates on.
pub fn study(reps: usize) -> SparseStudy {
    SparseStudy {
        bb_parity: bb_parity(5),
        chaos_parity: chaos_parity(&[1, 2, 4, 8], 6),
        large: large_sparse(LARGE_SPARSE_SERVERS, reps),
        reps,
    }
}

/// Renders an already-run study as a report.
pub fn render(s: &SparseStudy) -> String {
    let mut out = String::from(
        "# Sparse LP engine: bitwise parity + large-sparse speedup\n\
         ## Fig 11 branch-and-bound parity (forced dense vs forced sparse)\n\
         servers,bitwise_equal\n",
    );
    for p in &s.bb_parity {
        out.push_str(&format!("{},{}\n", p.servers, p.bitwise_equal));
    }
    out.push_str(
        "\n## Scenario-matrix base config under solver faults (Resilient ladder)\n\
         threads,bitwise_equal\n",
    );
    for p in &s.chaos_parity {
        out.push_str(&format!("{},{}\n", p.threads, p.bitwise_equal));
    }
    let l = &s.large;
    out.push_str(&format!(
        "\n## large-sparse head-to-head ({} servers/dc, best of {} reps)\n\
         rows: {}  cols: {}  nonzeros: {} ({:.1}x the Fig 11 reference's {})\n\
         dense: {:.2} ms  sparse: {:.2} ms  speedup: {:.1}x  bitwise_equal: {}\n",
        l.servers,
        s.reps,
        l.rows,
        l.cols,
        l.nonzeros,
        l.nonzeros as f64 / l.fig11_nonzeros as f64,
        l.fig11_nonzeros,
        l.dense_ms,
        l.sparse_ms,
        l.speedup,
        l.bitwise_equal,
    ));
    out.push_str(
        "\nreading: the sparse engine is a product-form revised simplex \
         (CSC matrix, eta-file basis, FTRAN/BTRAN pricing) that mirrors the \
         dense tableau operation for operation, so every answer above must \
         agree to the bit — the engines differ only in skipping arithmetic \
         on structural zeros, which is where the large-sparse speedup \
         comes from.\n",
    );
    out
}

/// Runs and renders the study.
pub fn report() -> String {
    render(&study(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every Fig. 11 branch-and-bound point must return bit-identical
    /// incumbents whichever engine solves the node LPs.
    #[test]
    fn fig11_bb_parity_is_bitwise() {
        for p in bb_parity(4) {
            assert!(p.bitwise_equal, "engines drifted at {} servers", p.servers);
        }
    }

    /// The Resilient ladder under solver faults must stay bit-identical
    /// across engines at every thread count (debug-profile smoke: two
    /// thread counts, a short run).
    #[test]
    fn chaos_runs_are_bitwise_across_engines() {
        for p in chaos_parity(&[1, 2], 3) {
            assert!(p.bitwise_equal, "engines drifted at {} threads", p.threads);
        }
    }

    /// The large-sparse config honours the >= 20x nonzero floor and the
    /// engines agree to the bit on it. (The >= 10x wall-clock gate runs on
    /// the release-built repro target, not the debug test profile; here a
    /// scaled-down instance keeps the suite fast while still checking the
    /// sparse engine wins at all.)
    #[test]
    fn large_sparse_meets_size_floor_and_stays_bitwise() {
        let full = large_sparse_problem(LARGE_SPARSE_SERVERS);
        let fig11 = large_sparse_problem(5);
        assert!(
            full.num_nonzeros() >= 20 * fig11.num_nonzeros(),
            "large-sparse config too small: {} nonzeros vs Fig 11's {}",
            full.num_nonzeros(),
            fig11.num_nonzeros()
        );
        let p = large_sparse(40, 1);
        assert!(p.bitwise_equal, "engines drifted on the scaled instance");
        assert!(
            p.speedup > 1.0,
            "sparse should already win at 40 servers/dc, got {:.2}x",
            p.speedup
        );
    }
}
