//! §V — basic characteristics on synthetic workloads (Fig. 4).

use palb_cluster::presets;
use palb_core::report::summary_table;
use palb_core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions, RunResult};
use palb_workload::synthetic::constant_trace;

/// Outcome of one §V regime (low or high arrivals).
pub struct Fig4Regime {
    /// Which regime ("low" / "high").
    pub label: &'static str,
    /// The Optimized run.
    pub optimized: RunResult,
    /// The Balanced run.
    pub balanced: RunResult,
}

impl Fig4Regime {
    /// Net-profit ratio Optimized / Balanced.
    pub fn profit_ratio(&self) -> f64 {
        self.optimized.total_net_profit() / self.balanced.total_net_profit()
    }

    /// Completed-request ratio Optimized / Balanced (the paper's "~16%
    /// more requests" claim under heavy load).
    pub fn completion_gain(&self) -> f64 {
        self.optimized.total_completed() / self.balanced.total_completed()
    }
}

/// Runs one regime of Fig. 4.
pub fn fig4_regime(label: &'static str, rates: Vec<Vec<f64>>) -> Fig4Regime {
    let system = presets::section_v();
    let trace = constant_trace(rates, 1);
    let optimized = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .expect("optimizer solves SV")
    .result;
    let balanced = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(0))
        .expect("baseline")
        .result;
    Fig4Regime {
        label,
        optimized,
        balanced,
    }
}

/// Both regimes of Fig. 4.
pub fn fig4() -> (Fig4Regime, Fig4Regime) {
    (
        fig4_regime("low", presets::section_v_low_arrivals()),
        fig4_regime("high", presets::section_v_high_arrivals()),
    )
}

/// Renders Fig. 4 as the harness prints it.
pub fn fig4_report() -> String {
    let (low, high) = fig4();
    let mut out = String::from("# Fig 4: SV net profit, Optimized vs Balanced\n");
    for regime in [&low, &high] {
        out.push_str(&format!(
            "\n-- Fig 4({}) {} arrival rates --\n",
            if regime.label == "low" { 'a' } else { 'b' },
            regime.label
        ));
        out.push_str(&summary_table(&regime.optimized, &regime.balanced));
        out.push_str(&format!(
            "net-profit ratio {:.3}; completed-request ratio {:.3}\n",
            regime.profit_ratio(),
            regime.completion_gain()
        ));
    }
    out.push_str(
        "\npaper shape: Optimized wins both regimes; under heavy load it also \
         processes ~16% more requests while covering the extra energy cost.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_preserves_paper_shape() {
        let (low, high) = fig4();
        // Optimized strictly dominates in both regimes.
        assert!(low.profit_ratio() > 1.0, "low ratio {}", low.profit_ratio());
        assert!(
            high.profit_ratio() > 1.0,
            "high ratio {}",
            high.profit_ratio()
        );
        // Heavy load: Optimized completes noticeably more requests
        // (paper: ~16%).
        assert!(
            high.completion_gain() > 1.05,
            "completion gain {}",
            high.completion_gain()
        );
        // Under light load both complete everything.
        assert!((low.completion_gain() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn report_renders() {
        let r = fig4_report();
        assert!(r.contains("Fig 4(a)"));
        assert!(r.contains("Fig 4(b)"));
    }
}
