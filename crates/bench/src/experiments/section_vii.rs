//! §VII — real-trace study with two-level TUFs (Figs. 8, 9, 10, 11).

use std::time::Instant;

use palb_cluster::{presets, ClassId, System};
use palb_core::report::{dispatch_csv, net_profit_csv, summary_table};
use palb_core::{
    run_with, solve_bb, solve_uniform_levels, BalancedPolicy, OptimizedPolicy, RunOptions,
    RunResult, SolverConfig,
};
use palb_workload::Trace;

use crate::configs::{
    section_vii_high_workload_trace, section_vii_low_workload_system, section_vii_trace,
};

/// A §VII comparison run (used by Figs. 8, 9 and both panels of Fig. 10).
pub struct SectionVii {
    /// The two-DC Houston / Mountain View system.
    pub system: System,
    /// The bursty trace.
    pub trace: Trace,
    /// Optimized run (exact branch-and-bound per slot).
    pub optimized: RunResult,
    /// Balanced run.
    pub balanced: RunResult,
}

/// Per-class completion ratio of a run against its trace.
pub fn class_completion(run: &RunResult, trace: &Trace, k: usize) -> f64 {
    let mut offered = 0.0;
    let mut served = 0.0;
    for (t, slot) in run.slots.iter().enumerate() {
        offered += trace.offered_class_in_slot(t, k);
        served += slot.class_dc_rate[k].iter().sum::<f64>();
    }
    if offered > 0.0 {
        served / offered
    } else {
        1.0
    }
}

/// Runs the §VII comparison on an arbitrary (system, trace) pair.
pub fn run_section_vii_with(system: System, trace: Trace) -> SectionVii {
    let start = presets::SECTION_VII_START_HOUR;
    let optimized = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(start),
    )
    .expect("optimizer solves SVII")
    .result;
    let balanced = run_with(&mut BalancedPolicy, &system, &trace, &RunOptions::at(start))
        .expect("baseline")
        .result;
    SectionVii {
        system,
        trace,
        optimized,
        balanced,
    }
}

/// The canonical §VII run.
pub fn run_section_vii() -> SectionVii {
    run_section_vii_with(presets::section_vii(), section_vii_trace())
}

/// Fig. 8: hourly net profit with two-level TUFs.
pub fn fig8(state: &SectionVii) -> String {
    let mut out = String::from("# Fig 8: SVII hourly net profit ($), two-level TUFs\n");
    out.push_str(&net_profit_csv(&state.optimized, &state.balanced));
    out.push_str(&format!(
        "\n{}",
        summary_table(&state.optimized, &state.balanced)
    ));
    for k in 0..state.system.num_classes() {
        out.push_str(&format!(
            "completion of {}: optimized {:.2}%, balanced {:.2}%\n",
            state.system.classes[k].name,
            100.0 * class_completion(&state.optimized, &state.trace, k),
            100.0 * class_completion(&state.balanced, &state.trace, k),
        ));
    }
    let extra = state.optimized.total_cost() / state.balanced.total_cost() - 1.0;
    out.push_str(&format!(
        "optimized spends {:+.2}% cost vs balanced (paper: +7.74%)\n",
        100.0 * extra
    ));
    out
}

/// Fig. 9: per-class hourly allocation to each data center under both
/// policies (four panels in the paper).
pub fn fig9(state: &SectionVii) -> String {
    let mut out = String::from("# Fig 9: SVII request allocation (req/h)\n");
    for k in 0..state.system.num_classes() {
        for (policy, run) in [
            ("balanced", &state.balanced),
            ("optimized", &state.optimized),
        ] {
            out.push_str(&format!(
                "-- {} allocation, {} --\n",
                state.system.classes[k].name, policy
            ));
            out.push_str(&dispatch_csv(&state.system, run, ClassId(k)));
        }
    }
    out
}

/// Fig. 10: the low- and high-workload what-ifs.
pub fn fig10() -> String {
    let mut out = String::from("# Fig 10: SVII workload effect\n");
    let low = run_section_vii_with(section_vii_low_workload_system(), section_vii_trace());
    out.push_str("\n-- Fig 10(a): relatively low workload (capacity doubled) --\n");
    out.push_str(&summary_table(&low.optimized, &low.balanced));
    out.push_str(&format!(
        "both complete everything: optimized {:.2}%, balanced {:.2}%\n",
        100.0 * low.optimized.completion_ratio(),
        100.0 * low.balanced.completion_ratio()
    ));

    let high = run_section_vii_with(presets::section_vii(), section_vii_high_workload_trace());
    out.push_str("\n-- Fig 10(b): relatively high workload (arrivals x1.8) --\n");
    out.push_str(&summary_table(&high.optimized, &high.balanced));
    out.push_str(&format!(
        "nobody completes everything: optimized {:.2}%, balanced {:.2}%\n",
        100.0 * high.optimized.completion_ratio(),
        100.0 * high.balanced.completion_ratio()
    ));
    out.push_str("\npaper shape: Optimized is superior regardless of workload.\n");
    out
}

/// One Fig. 11 measurement point.
pub struct Fig11Point {
    /// Servers per data center.
    pub servers: usize,
    /// Exact per-server branch-and-bound (no symmetry breaking) — the
    /// paper-like exponential curve.
    pub bb_plain_ms: f64,
    /// Nodes explored by the plain tree.
    pub bb_plain_nodes: usize,
    /// Branch-and-bound with lexicographic symmetry breaking.
    pub bb_sym_ms: f64,
    /// The polynomial uniform-level solver.
    pub uniform_ms: f64,
}

/// Fig. 11: computation time versus servers per data center.
///
/// The §VII system is rebuilt with `m` servers per data center and a
/// single representative slot is solved by three solvers. The plain
/// per-server tree reproduces the paper's exponential growth; the
/// symmetry-reduced and uniform solvers are our ablation.
pub fn fig11(max_servers: usize) -> Vec<Fig11Point> {
    let trace = section_vii_trace();
    let rates = trace.slot(2); // a representative busy slot
    let mut points = Vec::new();
    for m in 1..=max_servers {
        let mut sys = presets::section_vii();
        for dc in &mut sys.data_centers {
            dc.servers = m;
        }
        // Scale the demand with capacity so every size is comparably loaded.
        let scale = m as f64 / 6.0;
        let scaled: Vec<Vec<f64>> = rates
            .iter()
            .map(|row| row.iter().map(|r| r * scale).collect())
            .collect();
        let slot = presets::SECTION_VII_START_HOUR + 2;

        let t0 = Instant::now();
        let plain = solve_bb(
            &sys,
            &scaled,
            slot,
            &SolverConfig::exact().symmetry_breaking(false),
        )
        .expect("plain bb");
        let bb_plain_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let _sym = solve_bb(&sys, &scaled, slot, &SolverConfig::exact()).expect("sym bb");
        let bb_sym_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let _uni = solve_uniform_levels(&sys, &scaled, slot).expect("uniform");
        let uniform_ms = t2.elapsed().as_secs_f64() * 1e3;

        points.push(Fig11Point {
            servers: m,
            bb_plain_ms,
            bb_plain_nodes: plain.nodes,
            bb_sym_ms,
            uniform_ms,
        });
    }
    points
}

/// Renders Fig. 11.
pub fn fig11_report(max_servers: usize) -> String {
    let pts = fig11(max_servers);
    let mut out = String::from(
        "# Fig 11: computation time vs servers per data center\n\
         servers,bb_plain_ms,bb_plain_nodes,bb_symmetry_ms,uniform_ms\n",
    );
    for p in &pts {
        out.push_str(&format!(
            "{},{:.2},{},{:.2},{:.2}\n",
            p.servers, p.bb_plain_ms, p.bb_plain_nodes, p.bb_sym_ms, p.uniform_ms
        ));
    }
    out.push_str(
        "\npaper shape: the exact per-server search grows exponentially with \
         the server count (the paper's CPLEX runs did too); the symmetry-\
         reduced and uniform solvers are the ablation showing the growth is \
         an artifact of per-server branching, not of the problem.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_vii_preserves_paper_shapes() {
        let s = run_section_vii();
        // Optimized nets more profit.
        assert!(s.optimized.total_net_profit() > 1.05 * s.balanced.total_net_profit());
        // Optimized completes at least as much of every class, and strictly
        // more of request2 (the class Balanced drops).
        let o2 = class_completion(&s.optimized, &s.trace, 1);
        let b2 = class_completion(&s.balanced, &s.trace, 1);
        assert!(o2 > b2 + 0.02, "optimized {o2} vs balanced {b2}");
        let o1 = class_completion(&s.optimized, &s.trace, 0);
        assert!(o1 > 0.995, "optimized request1 completion {o1}");
        // Optimized spends more in total (it serves more requests) — the
        // paper's +7.74% observation.
        assert!(
            s.optimized.total_cost() > s.balanced.total_cost(),
            "optimized cost {} vs balanced {}",
            s.optimized.total_cost(),
            s.balanced.total_cost()
        );
    }

    #[test]
    fn fig10_low_workload_completes_everything() {
        let low = run_section_vii_with(section_vii_low_workload_system(), section_vii_trace());
        assert!(low.optimized.completion_ratio() > 0.999);
        assert!(low.balanced.completion_ratio() > 0.999);
        assert!(low.optimized.total_net_profit() > low.balanced.total_net_profit());
    }

    #[test]
    fn fig10_high_workload_nobody_completes() {
        let high = run_section_vii_with(presets::section_vii(), section_vii_high_workload_trace());
        assert!(high.optimized.completion_ratio() < 0.999);
        assert!(high.balanced.completion_ratio() < 0.999);
        assert!(high.optimized.total_net_profit() > high.balanced.total_net_profit());
    }

    #[test]
    fn fig11_plain_tree_grows_much_faster_than_uniform() {
        let pts = fig11(3);
        // Node counts of the plain tree grow super-linearly.
        assert!(pts[2].bb_plain_nodes > 2 * pts[0].bb_plain_nodes);
        // Symmetry breaking explores no more nodes than plain.
        for p in &pts {
            assert!(p.bb_plain_nodes >= 1);
        }
    }
}
