//! Solver-perf study: warm-started incremental branch-and-bound against
//! the cold-rebuild baseline on the Fig. 11 reference configuration.
//!
//! The §VII system is rebuilt with `m` servers per data center (demand
//! scaled with capacity, exactly as Fig. 11 does) and one representative
//! slot is solved twice by `solve_bb`:
//!
//! 1. **cold** — `BbOptions { incremental: false }`: every node rebuilds
//!    its LP from scratch and solves it with the full cold pipeline.
//! 2. **incremental** — the default: one persistent [`palb_core`]
//!    `SpecWorkspace` is patched per node and interior bounds warm-start
//!    from the parent basis (DFS order makes consecutive nodes one-VM
//!    deltas).
//!
//! The incumbent must be **bit-identical** either way — incremental mode
//! only changes how interior *bounds* are computed, and every accepted
//! leaf re-solves through the cold-equivalent path. Each point records
//! wall-clock for both modes (best of `reps` repetitions to shed timer
//! noise) plus the warm-start telemetry the incremental tree gathered.

use std::time::Instant;

use palb_cluster::{presets, System};
use palb_core::{solve_bb, BbOptions, MultilevelResult, SolverStats};

use crate::configs::section_vii_trace;

/// One measurement point of the cold vs incremental comparison.
pub struct SolverPerfPoint {
    /// Servers per data center.
    pub servers: usize,
    /// Cold-rebuild wall-clock, best of `reps`, ms.
    pub cold_ms: f64,
    /// Incremental wall-clock, best of `reps`, ms.
    pub incremental_ms: f64,
    /// `cold_ms / incremental_ms`.
    pub speedup: f64,
    /// Nodes explored (identical in both modes by construction).
    pub nodes: usize,
    /// Telemetry of the incremental tree.
    pub stats: SolverStats,
    /// Incumbent profit and dispatch agree to the bit across modes.
    pub bitwise_equal: bool,
}

/// The full study.
pub struct SolverPerf {
    /// One point per server count, ascending.
    pub points: Vec<SolverPerfPoint>,
    /// Timing repetitions per mode per point.
    pub reps: usize,
}

impl SolverPerf {
    /// Aggregate speedup: total cold time over total incremental time.
    pub fn overall_speedup(&self) -> f64 {
        let cold: f64 = self.points.iter().map(|p| p.cold_ms).sum();
        let inc: f64 = self.points.iter().map(|p| p.incremental_ms).sum();
        if inc > 0.0 {
            cold / inc
        } else {
            f64::INFINITY
        }
    }

    /// Whether every point's incumbent matched bit-for-bit.
    pub fn all_bitwise_equal(&self) -> bool {
        self.points.iter().all(|p| p.bitwise_equal)
    }
}

/// The Fig. 11 reference instance at `m` servers per data center.
pub fn fig11_instance(m: usize) -> (System, Vec<Vec<f64>>, usize) {
    let trace = section_vii_trace();
    let rates = trace.slot(2); // the representative busy slot Fig. 11 uses
    let mut sys = presets::section_vii();
    for dc in &mut sys.data_centers {
        dc.servers = m;
    }
    // Scale the demand with capacity so every size is comparably loaded.
    let scale = m as f64 / 6.0;
    let scaled: Vec<Vec<f64>> = rates
        .iter()
        .map(|row| row.iter().map(|r| r * scale).collect())
        .collect();
    (sys, scaled, presets::SECTION_VII_START_HOUR + 2)
}

fn incumbents_match(a: &MultilevelResult, b: &MultilevelResult) -> bool {
    a.solve.objective.to_bits() == b.solve.objective.to_bits()
        && a.solve.dispatch == b.solve.dispatch
        && a.assignment == b.assignment
}

fn best_of(reps: usize, mut f: impl FnMut() -> MultilevelResult) -> (f64, MultilevelResult) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best_ms, last.expect("reps >= 1"))
}

/// Runs the comparison for `2..=max_servers` servers per data center.
pub fn study(max_servers: usize, reps: usize) -> SolverPerf {
    let cold_opts = BbOptions {
        incremental: false,
        ..BbOptions::default()
    };
    let mut points = Vec::new();
    for m in 2..=max_servers.max(2) {
        let (sys, scaled, slot) = fig11_instance(m);
        let (cold_ms, cold) = best_of(reps, || {
            solve_bb(&sys, &scaled, slot, &cold_opts).expect("cold bb")
        });
        let (incremental_ms, inc) = best_of(reps, || {
            solve_bb(&sys, &scaled, slot, &BbOptions::default()).expect("incremental bb")
        });
        points.push(SolverPerfPoint {
            servers: m,
            cold_ms,
            incremental_ms,
            speedup: if incremental_ms > 0.0 {
                cold_ms / incremental_ms
            } else {
                f64::INFINITY
            },
            nodes: inc.nodes,
            stats: inc.stats,
            bitwise_equal: incumbents_match(&cold, &inc),
        });
    }
    SolverPerf { points, reps }
}

/// Renders the study as a report.
pub fn report(max_servers: usize) -> String {
    render(&study(max_servers, 3))
}

/// Renders an already-run study.
pub fn render(s: &SolverPerf) -> String {
    let mut out = String::from(
        "# Solver perf: incremental workspace vs cold rebuild (Fig 11 config)\n\
         servers,cold_ms,incremental_ms,speedup,nodes,warm_hit_rate,pivots_saved,bitwise_equal\n",
    );
    for p in &s.points {
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{},{:.3},{:.0},{}\n",
            p.servers,
            p.cold_ms,
            p.incremental_ms,
            p.speedup,
            p.nodes,
            p.stats.warm_hit_rate(),
            p.stats.pivots_saved(),
            p.bitwise_equal,
        ));
    }
    out.push_str(&format!(
        "\noverall speedup: {:.2}x over {} sizes (best of {} reps each)\n\
         incumbents bitwise-identical across modes: {}\n",
        s.overall_speedup(),
        s.points.len(),
        s.reps,
        s.all_bitwise_equal(),
    ));
    out.push_str(
        "\nreading: interior bounds warm-start from the parent basis (DFS \
         makes consecutive nodes one-VM deltas), so the incremental tree \
         skips the per-node rebuild and most simplex pivots while every \
         accepted leaf still re-solves through the cold-equivalent path — \
         the incumbent cannot drift by even an ulp.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance criterion: on the Fig. 11 reference config the
    /// incremental tree returns a bit-identical incumbent (profit, dispatch
    /// and level assignment) while warm-starting most interior bounds.
    #[test]
    fn incremental_matches_cold_bitwise_on_reference_config() {
        let (sys, scaled, slot) = fig11_instance(4);
        let cold_opts = BbOptions {
            incremental: false,
            ..BbOptions::default()
        };
        let cold = solve_bb(&sys, &scaled, slot, &cold_opts).expect("cold bb");
        let inc = solve_bb(&sys, &scaled, slot, &BbOptions::default()).expect("inc bb");
        assert!(
            incumbents_match(&cold, &inc),
            "incumbents must agree to the bit"
        );
        assert_eq!(cold.nodes, inc.nodes, "same pruning decisions");
        assert!(
            inc.stats.warm_attempts > 0,
            "interior bounds should warm-start"
        );
        assert!(inc.stats.warm_hits > 0, "warm starts should mostly succeed");
        assert_eq!(cold.stats.warm_attempts, 0, "cold mode never warm-starts");
    }

    /// Wall-clock sanity: the warm-started tree is not slower than the
    /// cold rebuild. (The ≥2x headline is asserted by the `solver-perf`
    /// repro target on the release build; here a loose floor keeps the
    /// debug-profile test robust to timer noise.)
    #[test]
    fn incremental_is_not_slower_than_cold_rebuild() {
        let s = study(4, 3);
        assert!(s.all_bitwise_equal(), "every point must match bitwise");
        assert!(
            s.overall_speedup() > 1.0,
            "incremental should beat cold rebuild, got {:.2}x",
            s.overall_speedup()
        );
        for p in &s.points {
            assert!(
                p.stats.warm_hit_rate() > 0.5,
                "warm hit rate {:.2}",
                p.stats.warm_hit_rate()
            );
            assert!(p.nodes > 0);
        }
    }
}
