//! Solver-perf study: warm-started incremental branch-and-bound against
//! the cold-rebuild baseline on the Fig. 11 reference configuration.
//!
//! The §VII system is rebuilt with `m` servers per data center (demand
//! scaled with capacity, exactly as Fig. 11 does) and one representative
//! slot is solved twice by `solve_bb`:
//!
//! 1. **cold** — `SolverConfig::exact().incremental(false)`: every node
//!    rebuilds
//!    its LP from scratch and solves it with the full cold pipeline.
//! 2. **incremental** — the default: one persistent [`palb_core`]
//!    `SpecWorkspace` is patched per node and interior bounds warm-start
//!    from the parent basis (DFS order makes consecutive nodes one-VM
//!    deltas).
//!
//! The incumbent must be **bit-identical** either way — incremental mode
//! only changes how interior *bounds* are computed, and every accepted
//! leaf re-solves through the cold-equivalent path. Each point records
//! wall-clock for both modes (best of `reps` repetitions to shed timer
//! noise) plus the warm-start telemetry the incremental tree gathered.

use std::sync::Arc;
use std::time::Instant;

use palb_cluster::{presets, System};
use palb_core::obs::{Recorder, Registry, Snapshot};
use palb_core::{solve_bb, MultilevelResult, SolverConfig, SolverStats};

use crate::configs::section_vii_trace;

/// One measurement point of the cold vs incremental comparison.
pub struct SolverPerfPoint {
    /// Servers per data center.
    pub servers: usize,
    /// Cold-rebuild wall-clock, best of `reps`, ms.
    pub cold_ms: f64,
    /// Incremental wall-clock, best of `reps`, ms.
    pub incremental_ms: f64,
    /// `cold_ms / incremental_ms`.
    pub speedup: f64,
    /// Nodes explored (identical in both modes by construction).
    pub nodes: usize,
    /// Telemetry of the incremental tree.
    pub stats: SolverStats,
    /// Incumbent profit and dispatch agree to the bit across modes.
    pub bitwise_equal: bool,
}

/// The full study.
pub struct SolverPerf {
    /// One point per server count, ascending.
    pub points: Vec<SolverPerfPoint>,
    /// Timing repetitions per mode per point.
    pub reps: usize,
    /// Metrics snapshot of one *untimed* instrumented solve of the largest
    /// instance (node counts, warm-start counters, span timings). Taken
    /// outside the timing loops so telemetry never touches the speedup
    /// numbers.
    pub obs: Snapshot,
}

impl SolverPerf {
    /// Aggregate speedup: total cold time over total incremental time.
    pub fn overall_speedup(&self) -> f64 {
        let cold: f64 = self.points.iter().map(|p| p.cold_ms).sum();
        let inc: f64 = self.points.iter().map(|p| p.incremental_ms).sum();
        if inc > 0.0 {
            cold / inc
        } else {
            f64::INFINITY
        }
    }

    /// Whether every point's incumbent matched bit-for-bit.
    pub fn all_bitwise_equal(&self) -> bool {
        self.points.iter().all(|p| p.bitwise_equal)
    }
}

/// One point of the thread-scaling sweep: the same Fig. 11 instance solved
/// with `threads` branch-and-bound workers.
pub struct ThreadScalingPoint {
    /// Worker threads requested (`SolverConfig::threads`).
    pub threads: usize,
    /// Wall-clock, best of `reps`, ms.
    pub ms: f64,
    /// `sequential_ms / ms` (1.0 for the reference point).
    pub speedup: f64,
    /// Frontier subtrees handed to the workers (0 on the sequential path).
    pub subtrees: usize,
    /// Workers that actually participated.
    pub threads_used: usize,
    /// Incumbent profit, dispatch, assignment and optimality proof agree
    /// to the bit with the sequential reference.
    pub bitwise_equal: bool,
    /// Incumbent satisfies the documented determinism contract: bitwise
    /// equality, or (on a degenerate near-tie plateau) an objective within
    /// `gap_tol` of the sequential reference with the same proof status.
    pub within_gap_band: bool,
}

/// Thread-scaling sweep of the deterministic parallel branch-and-bound on
/// the Fig. 11 reference configuration.
pub struct ThreadScaling {
    /// Servers per data center of the instance swept.
    pub servers: usize,
    /// Timing repetitions per point.
    pub reps: usize,
    /// Wall-clock of the sequential (`threads = 1`) reference, ms.
    pub sequential_ms: f64,
    /// One point per requested thread count, in sweep order.
    pub points: Vec<ThreadScalingPoint>,
}

impl ThreadScaling {
    /// Whether every point's incumbent matched the sequential reference.
    pub fn all_bitwise_equal(&self) -> bool {
        self.points.iter().all(|p| p.bitwise_equal)
    }

    /// Whether every point satisfied the determinism contract (bitwise, or
    /// within the `gap_tol` band on a near-tie plateau). This is the hard
    /// repro gate; [`Self::all_bitwise_equal`] is reported alongside it.
    pub fn all_within_gap_band(&self) -> bool {
        self.points.iter().all(|p| p.within_gap_band)
    }

    /// Best speedup achieved by any point with `threads >= 2` (0.0 when
    /// the sweep had no parallel point).
    pub fn best_parallel_speedup(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.threads >= 2)
            .map(|p| p.speedup)
            .fold(0.0, f64::max)
    }
}

/// The default sweep the repro target and the CLI run: 1/2/4/8 workers.
pub const DEFAULT_THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Sweeps `threads` over the Fig. 11 instance at `servers` per data
/// center, timing each count and checking every incumbent against the
/// sequential reference: bit-for-bit in the generic case, within the
/// `gap_tol` band on degenerate near-tie plateaus.
pub fn thread_scaling(servers: usize, threads: &[usize], reps: usize) -> ThreadScaling {
    let (sys, scaled, slot) = fig11_instance(servers);
    let (sequential_ms, reference) = best_of(reps, || {
        solve_bb(&sys, &scaled, slot, &SolverConfig::exact()).expect("sequential bb")
    });
    let points = threads
        .iter()
        .map(|&t| {
            let opts = SolverConfig::exact().threads(t);
            let (ms, r) = best_of(reps, || {
                solve_bb(&sys, &scaled, slot, &opts).expect("parallel bb")
            });
            let bitwise_equal =
                incumbents_match(&reference, &r) && reference.proven_optimal == r.proven_optimal;
            // The contract's near-tie carve-out (`SolverConfig::threads`):
            // on
            // a degenerate plateau the incumbent may land on a different
            // leaf, but never beyond the gap band, and never with a
            // different proof status.
            let band = opts.gap_tol * (1.0 + reference.solve.objective.abs());
            let within_gap_band = bitwise_equal
                || ((reference.solve.objective - r.solve.objective).abs() <= band
                    && reference.proven_optimal == r.proven_optimal);
            ThreadScalingPoint {
                threads: t,
                ms,
                speedup: if ms > 0.0 {
                    sequential_ms / ms
                } else {
                    f64::INFINITY
                },
                subtrees: r.stats.subtrees,
                threads_used: r.stats.threads_used,
                bitwise_equal,
                within_gap_band,
            }
        })
        .collect();
    ThreadScaling {
        servers,
        reps,
        sequential_ms,
        points,
    }
}

/// Renders a thread-scaling sweep as a report section.
pub fn render_thread_scaling(t: &ThreadScaling) -> String {
    let mut out = format!(
        "# Thread scaling: deterministic parallel B&B (Fig 11 config, {} servers/dc)\n\
         threads,ms,speedup,subtrees,threads_used,bitwise_equal,within_gap_band\n",
        t.servers
    );
    for p in &t.points {
        out.push_str(&format!(
            "{},{:.2},{:.2},{},{},{},{}\n",
            p.threads,
            p.ms,
            p.speedup,
            p.subtrees,
            p.threads_used,
            p.bitwise_equal,
            p.within_gap_band,
        ));
    }
    out.push_str(&format!(
        "\nsequential reference: {:.2} ms (best of {} reps)\n\
         incumbents bitwise-identical across thread counts: {}\n\
         incumbents within the determinism contract (gap band): {}\n",
        t.sequential_ms,
        t.reps,
        t.all_bitwise_equal(),
        t.all_within_gap_band(),
    ));
    out.push_str(
        "\nreading: the tree is expanded to a lexicographic frontier of \
         subtree roots, each worker owns a warm-start workspace, and the \
         shared incumbent objective only prunes strictly-worse nodes — so \
         the returned profit, dispatch and level assignment are identical \
         at every thread count outside degenerate near-tie plateaus, where \
         they may differ within the gap tolerance (see DESIGN.md); only \
         wall-clock changes otherwise. Speedups require real cores; on a \
         single-CPU host the parallel points only pay thread overhead.\n",
    );
    out
}

/// The Fig. 11 reference instance at `m` servers per data center.
pub fn fig11_instance(m: usize) -> (System, Vec<Vec<f64>>, usize) {
    let trace = section_vii_trace();
    let rates = trace.slot(2); // the representative busy slot Fig. 11 uses
    let mut sys = presets::section_vii();
    for dc in &mut sys.data_centers {
        dc.servers = m;
    }
    // Scale the demand with capacity so every size is comparably loaded.
    let scale = m as f64 / 6.0;
    let scaled: Vec<Vec<f64>> = rates
        .iter()
        .map(|row| row.iter().map(|r| r * scale).collect())
        .collect();
    (sys, scaled, presets::SECTION_VII_START_HOUR + 2)
}

pub(crate) fn incumbents_match(a: &MultilevelResult, b: &MultilevelResult) -> bool {
    a.solve.objective.to_bits() == b.solve.objective.to_bits()
        && a.solve.dispatch == b.solve.dispatch
        && a.assignment == b.assignment
}

fn best_of(reps: usize, mut f: impl FnMut() -> MultilevelResult) -> (f64, MultilevelResult) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best_ms, last.expect("reps >= 1"))
}

/// Runs the comparison for `2..=max_servers` servers per data center.
pub fn study(max_servers: usize, reps: usize) -> SolverPerf {
    let cold_opts = SolverConfig::exact().incremental(false);
    let mut points = Vec::new();
    for m in 2..=max_servers.max(2) {
        let (sys, scaled, slot) = fig11_instance(m);
        let (cold_ms, cold) = best_of(reps, || {
            solve_bb(&sys, &scaled, slot, &cold_opts).expect("cold bb")
        });
        let (incremental_ms, inc) = best_of(reps, || {
            solve_bb(&sys, &scaled, slot, &SolverConfig::exact()).expect("incremental bb")
        });
        points.push(SolverPerfPoint {
            servers: m,
            cold_ms,
            incremental_ms,
            speedup: if incremental_ms > 0.0 {
                cold_ms / incremental_ms
            } else {
                f64::INFINITY
            },
            nodes: inc.nodes,
            stats: inc.stats,
            bitwise_equal: incumbents_match(&cold, &inc),
        });
    }
    // One extra instrumented solve of the largest instance, deliberately
    // outside best_of so recording overhead cannot color the timings.
    let registry = Arc::new(Registry::new());
    let (sys, scaled, slot) = fig11_instance(max_servers.max(2));
    let instrumented = SolverConfig::exact().obs(Recorder::attached(Arc::clone(&registry)));
    solve_bb(&sys, &scaled, slot, &instrumented).expect("instrumented bb");
    SolverPerf {
        points,
        reps,
        obs: registry.snapshot(),
    }
}

/// Renders the study as a report, followed by the thread-scaling sweep on
/// the largest instance.
pub fn report(max_servers: usize) -> String {
    let mut out = render(&study(max_servers, 3));
    out.push('\n');
    out.push_str(&render_thread_scaling(&thread_scaling(
        max_servers,
        &DEFAULT_THREAD_SWEEP,
        3,
    )));
    out
}

/// Renders an already-run study.
pub fn render(s: &SolverPerf) -> String {
    let mut out = String::from(
        "# Solver perf: incremental workspace vs cold rebuild (Fig 11 config)\n\
         servers,cold_ms,incremental_ms,speedup,nodes,warm_hit_rate,pivots_saved,bitwise_equal\n",
    );
    for p in &s.points {
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{},{:.3},{:.0},{}\n",
            p.servers,
            p.cold_ms,
            p.incremental_ms,
            p.speedup,
            p.nodes,
            p.stats.warm_hit_rate(),
            p.stats.pivots_saved(),
            p.bitwise_equal,
        ));
    }
    out.push_str(&format!(
        "\noverall speedup: {:.2}x over {} sizes (best of {} reps each)\n\
         incumbents bitwise-identical across modes: {}\n",
        s.overall_speedup(),
        s.points.len(),
        s.reps,
        s.all_bitwise_equal(),
    ));
    out.push_str(
        "\nreading: interior bounds warm-start from the parent basis (DFS \
         makes consecutive nodes one-VM deltas), so the incremental tree \
         skips the per-node rebuild and most simplex pivots while every \
         accepted leaf still re-solves through the cold-equivalent path — \
         the incumbent cannot drift by even an ulp.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance criterion: on the Fig. 11 reference config the
    /// incremental tree returns a bit-identical incumbent (profit, dispatch
    /// and level assignment) while warm-starting most interior bounds.
    #[test]
    fn incremental_matches_cold_bitwise_on_reference_config() {
        let (sys, scaled, slot) = fig11_instance(4);
        let cold_opts = SolverConfig::exact().incremental(false);
        let cold = solve_bb(&sys, &scaled, slot, &cold_opts).expect("cold bb");
        let inc = solve_bb(&sys, &scaled, slot, &SolverConfig::exact()).expect("inc bb");
        assert!(
            incumbents_match(&cold, &inc),
            "incumbents must agree to the bit"
        );
        assert_eq!(cold.nodes, inc.nodes, "same pruning decisions");
        assert!(
            inc.stats.warm_attempts > 0,
            "interior bounds should warm-start"
        );
        assert!(inc.stats.warm_hits > 0, "warm starts should mostly succeed");
        assert_eq!(cold.stats.warm_attempts, 0, "cold mode never warm-starts");
    }

    /// Wall-clock sanity: the warm-started tree is not slower than the
    /// cold rebuild. (The ≥2x headline is asserted by the `solver-perf`
    /// repro target on the release build; here a loose floor keeps the
    /// debug-profile test robust to timer noise.)
    #[test]
    fn incremental_is_not_slower_than_cold_rebuild() {
        let s = study(4, 3);
        assert!(s.all_bitwise_equal(), "every point must match bitwise");
        assert!(
            s.overall_speedup() > 1.0,
            "incremental should beat cold rebuild, got {:.2}x",
            s.overall_speedup()
        );
        for p in &s.points {
            assert!(
                p.stats.warm_hit_rate() > 0.5,
                "warm hit rate {:.2}",
                p.stats.warm_hit_rate()
            );
            assert!(p.nodes > 0);
        }
        // The untimed instrumented solve exposes the solver families.
        use palb_core::obs::names;
        let largest = s.points.last().unwrap();
        assert_eq!(
            s.obs.counter_value(names::BB_NODES_TOTAL, &[]),
            Some(largest.nodes as u64),
            "bb-node counter must equal nodes_explored"
        );
        assert!(s.obs.family_counter_total(names::WARM_HITS_TOTAL) > 0);
        assert!(s.obs.contains_family(palb_core::obs::SPAN_SECONDS));
    }

    /// The parallel acceptance criterion: every thread count satisfies the
    /// determinism contract — the sequential incumbent bit-for-bit, or (on
    /// a degenerate near-tie plateau) an objective within the gap band with
    /// the same proof status. (The ≥2x-at-4-threads headline is gated by
    /// the `solver-perf` repro target, and only on multi-core hosts; this
    /// debug-profile test checks determinism, not timing.)
    #[test]
    fn thread_sweep_is_bitwise_deterministic() {
        let t = thread_scaling(3, &[1, 2, 4], 1);
        assert!(
            t.all_within_gap_band(),
            "incumbent drifted beyond the gap band across threads"
        );
        assert!(
            t.points[0].bitwise_equal,
            "threads = 1 is the sequential algorithm itself"
        );
        assert_eq!(t.points.len(), 3);
        assert_eq!(t.points[0].threads_used, 1, "t=1 takes the sequential path");
        assert_eq!(t.points[0].subtrees, 0, "t=1 hands out no subtrees");
        for p in &t.points[1..] {
            assert!(p.threads_used >= 2, "parallel path should engage");
            assert!(
                p.subtrees >= 4 * p.threads_used.min(p.threads),
                "frontier should oversubscribe: {} subtrees for {} workers",
                p.subtrees,
                p.threads_used
            );
        }
    }
}
