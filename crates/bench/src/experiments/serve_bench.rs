//! Serving-layer replay benchmark: the lock-free live dispatcher under a
//! millions-RPS seed-pure replay.
//!
//! Three questions, all gated by the `repro serve` target:
//!
//! 1. **Throughput.** A 1/2/4/8-thread sweep over the §V system measures
//!    routed requests per second and sampled route latency (p50/p99)
//!    through the epoch-published route tables. The serving clock
//!    excludes planning — boundary plans are solved before each slot's
//!    clock starts — so the figure isolates the O(1) alias-route hot
//!    path plus the per-request epoch check.
//! 2. **Fidelity.** With drift disabled, routed/shed totals are
//!    thread-count invariant (index-partitioned, seed-pure routing), the
//!    empirical routing mix converges to each plan's φ fractions, and
//!    the swap counters reconcile exactly (`boundary == slots`,
//!    `total == boundary + drift`).
//! 3. **Adaptivity.** A scripted mid-slot rate shift must wake the
//!    drift sentinel, publish at least one re-plan through the live
//!    `PlanCell`, and stay drop-free throughout.

use palb_cluster::presets;
use palb_core::obs::{Recorder, Registry, Snapshot};
use palb_serve::{serve_replay, DriftOptions, EstimatorConfig, ServeOptions, ShiftSpec};
use palb_workload::Trace;
use std::sync::Arc;

/// One point of the thread sweep.
pub struct ThreadPoint {
    /// Router worker threads.
    pub threads: usize,
    /// Requests offered across all slots.
    pub requests: u64,
    /// Requests routed to a server.
    pub routed: u64,
    /// Requests shed by the plans' admission control.
    pub shed: u64,
    /// Wall-clock serving seconds (planning excluded).
    pub elapsed_seconds: f64,
    /// Routed requests per second.
    pub routed_per_second: f64,
    /// Median sampled route latency, seconds.
    pub route_p50_seconds: Option<f64>,
    /// p99 sampled route latency, seconds.
    pub route_p99_seconds: Option<f64>,
    /// Slot-boundary table swaps (must equal the slot count).
    pub boundary_swaps: u64,
    /// Every publication the plan cell saw.
    pub total_swaps: u64,
    /// Worst per-category empirical-vs-plan mix gap across slots.
    pub max_mix_divergence: Option<f64>,
}

/// The scripted-drift run.
pub struct DriftPoint {
    /// Mid-slot re-plans the sentinel triggered (gate: >= 1).
    pub drift_replans: u64,
    /// Sentinel checks evaluated.
    pub drift_checks: u64,
    /// Boundary swaps (one per slot).
    pub boundary_swaps: u64,
    /// All publications (gate: `boundary + drift`).
    pub total_swaps: u64,
    /// Requests offered.
    pub requests: u64,
    /// `routed + shed == requests` held throughout the hot swaps.
    pub drop_free: bool,
}

/// The full serving study.
pub struct ServeStudy {
    /// Trace slots per run.
    pub slots: usize,
    /// Requests replayed per slot.
    pub requests_per_slot: u64,
    /// The thread sweep (drift disabled).
    pub sweep: Vec<ThreadPoint>,
    /// The scripted mid-slot shift run (drift enabled).
    pub drift: DriftPoint,
    /// Routed/shed totals identical across every sweep point.
    pub thread_invariant: bool,
    /// Metrics snapshot of the drift run (route counters, swap/drift
    /// counters, route-latency histogram).
    pub obs: Snapshot,
}

impl ServeStudy {
    /// Best aggregate routed-request throughput across the sweep.
    pub fn peak_routed_per_second(&self) -> f64 {
        self.sweep
            .iter()
            .fold(0.0, |m, p| m.max(p.routed_per_second))
    }

    /// Every sweep point's swap counters reconcile exactly: one boundary
    /// swap per slot and nothing else (drift is disabled in the sweep).
    pub fn all_swaps_reconcile(&self) -> bool {
        self.sweep
            .iter()
            .all(|p| p.boundary_swaps == self.slots as u64 && p.total_swaps == p.boundary_swaps)
            && self.drift.total_swaps == self.drift.boundary_swaps + self.drift.drift_replans
    }

    /// Worst empirical-vs-plan mix gap anywhere in the sweep (`0` when no
    /// group gathered enough samples to qualify).
    pub fn worst_mix_divergence(&self) -> f64 {
        self.sweep
            .iter()
            .filter_map(|p| p.max_mix_divergence)
            .fold(0.0, f64::max)
    }
}

/// The benchmark trace: the §V low-arrivals matrix scaled per slot, so
/// every boundary re-plan faces a different rate matrix.
pub fn bench_trace(slots: usize) -> Trace {
    let base = presets::section_v_low_arrivals();
    Trace::new(
        (0..slots.max(1))
            .map(|t| {
                let f = 0.7 + 0.3 * (t % 3) as f64;
                base.iter()
                    .map(|row| row.iter().map(|r| r * f).collect())
                    .collect()
            })
            .collect(),
    )
}

fn point(threads: usize, slots: usize, requests_per_slot: u64) -> ThreadPoint {
    let system = presets::section_v();
    let trace = bench_trace(slots);
    let opts = ServeOptions {
        threads,
        seed: 0xBE7C_0DE5,
        requests_per_slot,
        ..ServeOptions::default()
    };
    let r = serve_replay(&system, &trace, &opts).expect("serve sweep run");
    ThreadPoint {
        threads,
        requests: r.requests,
        routed: r.routed,
        shed: r.shed,
        elapsed_seconds: r.elapsed_seconds,
        routed_per_second: r.routed_per_second,
        route_p50_seconds: r.route_p50_seconds,
        route_p99_seconds: r.route_p99_seconds,
        boundary_swaps: r.boundary_swaps,
        total_swaps: r.total_swaps,
        max_mix_divergence: r.max_mix_divergence,
    }
}

/// Runs the scripted-drift scenario with metrics attached: a violent
/// mid-slot concentration of all traffic onto one `(class, front-end)`
/// cell, which the sentinel must catch and re-plan away.
pub fn drift_run(slots: usize, requests_per_slot: u64) -> (DriftPoint, Snapshot) {
    let system = presets::section_v();
    let trace = bench_trace(slots.max(2));
    let mut shifted = presets::section_v_low_arrivals();
    for (s, row) in shifted.iter_mut().enumerate() {
        for (k, r) in row.iter_mut().enumerate() {
            *r = if s == 0 && k == 0 { 400.0 } else { 0.0 };
        }
    }
    let registry = Arc::new(Registry::new());
    let opts = ServeOptions {
        threads: 2,
        seed: 0xBE7C_0DE5,
        requests_per_slot,
        drift: Some(DriftOptions {
            check_every: (requests_per_slot / 10).max(4_096),
            estimator: EstimatorConfig {
                blend: 0.0,
                threshold: 0.5,
                min_rate: 1.0,
            },
            max_replans_per_slot: 1,
        }),
        shift: Some(ShiftSpec {
            slot: 1,
            at_fraction: 0.25,
            rates: shifted,
        }),
        obs: Recorder::attached(Arc::clone(&registry)),
        ..ServeOptions::default()
    };
    let r = serve_replay(&system, &trace, &opts).expect("serve drift run");
    (
        DriftPoint {
            drift_replans: r.drift_replans,
            drift_checks: r.drift_checks,
            boundary_swaps: r.boundary_swaps,
            total_swaps: r.total_swaps,
            requests: r.requests,
            drop_free: r.routed + r.shed == r.requests,
        },
        registry.snapshot(),
    )
}

/// Runs the full study: the thread sweep plus the scripted-drift run.
pub fn study(threads: &[usize], slots: usize, requests_per_slot: u64) -> ServeStudy {
    let sweep: Vec<ThreadPoint> = threads
        .iter()
        .map(|&t| point(t, slots, requests_per_slot))
        .collect();
    let thread_invariant = sweep
        .windows(2)
        .all(|w| w[0].routed == w[1].routed && w[0].shed == w[1].shed);
    let (drift, obs) = drift_run(slots, requests_per_slot);
    ServeStudy {
        slots,
        requests_per_slot,
        sweep,
        drift,
        thread_invariant,
        obs,
    }
}

/// Renders an already-run study as a report.
pub fn render(s: &ServeStudy) -> String {
    let mut out = format!(
        "# Serving layer: live dispatcher replay ({} slots x {} requests/slot)\n\
         ## Thread sweep (drift disabled)\n\
         threads,routed_per_second,p50_us,p99_us,routed,shed,boundary_swaps,total_swaps,max_mix_divergence\n",
        s.slots, s.requests_per_slot
    );
    for p in &s.sweep {
        out.push_str(&format!(
            "{},{:.0},{:.2},{:.2},{},{},{},{},{}\n",
            p.threads,
            p.routed_per_second,
            p.route_p50_seconds.unwrap_or(f64::NAN) * 1e6,
            p.route_p99_seconds.unwrap_or(f64::NAN) * 1e6,
            p.routed,
            p.shed,
            p.boundary_swaps,
            p.total_swaps,
            p.max_mix_divergence.unwrap_or(f64::NAN),
        ));
    }
    out.push_str(&format!(
        "\npeak: {:.0} routed req/s  thread-invariant: {}  worst mix divergence: {:.4}\n",
        s.peak_routed_per_second(),
        s.thread_invariant,
        s.worst_mix_divergence(),
    ));
    let d = &s.drift;
    out.push_str(&format!(
        "\n## Scripted mid-slot shift (drift sentinel enabled)\n\
         drift_replans: {}  drift_checks: {}  boundary_swaps: {}  total_swaps: {}  drop_free: {}\n",
        d.drift_replans, d.drift_checks, d.boundary_swaps, d.total_swaps, d.drop_free,
    ));
    out.push_str(
        "\nreading: each slot's plan is compiled into an immutable alias-method \
         route table and published through an epoch pointer, so the steady-state \
         hot path is one atomic load plus two array reads; the sweep shows how \
         that scales with worker threads, and the shift run shows the sharded \
         estimators catching a mid-slot mix change and hot-swapping a re-plan \
         without dropping a request.\n",
    );
    out
}

/// Runs and renders the study at the release-profile repro sizes.
pub fn report() -> String {
    render(&study(&[1, 2, 4, 8], 3, 2_000_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-profile smoke: small sweep, every fidelity invariant holds.
    #[test]
    fn small_study_holds_fidelity_invariants() {
        let s = study(&[1, 2], 2, 60_000);
        assert_eq!(s.sweep.len(), 2);
        assert!(s.thread_invariant, "routed/shed drifted across threads");
        assert!(s.all_swaps_reconcile(), "swap counters failed to reconcile");
        for p in &s.sweep {
            assert_eq!(p.requests, 2 * 60_000);
            assert_eq!(p.routed + p.shed, p.requests, "dropped requests");
            assert!(p.routed_per_second > 0.0);
        }
        assert!(s.worst_mix_divergence() < 0.05);
        assert!(s.drift.drift_replans >= 1, "shift went undetected");
        assert!(s.drift.drop_free);
        // The attached registry exported the serving families.
        assert!(s.obs.contains_family("palb_routes_total"));
        assert!(s.obs.contains_family("palb_drift_replans_total"));
    }

    /// The benchmark trace really varies across slots (each boundary
    /// re-plan sees a different matrix).
    #[test]
    fn bench_trace_varies_per_slot() {
        let t = bench_trace(3);
        assert_eq!(t.slots(), 3);
        assert!((t.rate(0, 0, 0) - t.rate(1, 0, 0)).abs() > 1e-9);
    }
}
