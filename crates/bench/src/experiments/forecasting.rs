//! Extension study: what imperfect demand foresight costs.
//!
//! The paper's controller reads the slot's true average arrival rates and
//! leaves prediction to "existing methods (e.g. the Kalman Filter)". Here
//! we close that loop: the optimizer decides on *forecast* rates, the
//! realized dispatch is clamped to what actually arrives, and the shared
//! evaluator scores it against the true workload — for each forecaster in
//! `palb_workload::forecast`, over two diurnal days.

use palb_cluster::{presets, ClassId, FrontEndId, System};
use palb_core::obs::Recorder;
use palb_core::{evaluate, Dispatch, OptimizedPolicy, Policy, SlotContext};
use palb_workload::diurnal::{generate, DiurnalConfig};
use palb_workload::forecast::{
    forecast_trace, mape, Ewma, Forecaster, Naive, ScalarKalman, SeasonalNaive,
};
use palb_workload::Trace;

/// Scales each (class, front-end) flow down so nothing exceeds what truly
/// arrived: you cannot dispatch requests that do not exist.
pub fn clamp_to_offered(dispatch: &mut Dispatch, actual: &[Vec<f64>]) {
    let dims = dispatch.dims().clone();
    for k in 0..dims.classes {
        for s in 0..dims.front_ends {
            let planned = dispatch.front_end_class_rate(ClassId(k), FrontEndId(s));
            let offered = actual[s][k];
            if planned > offered && planned > 0.0 {
                let factor = offered / planned;
                for sv in 0..dims.total_servers {
                    let l = dims.dc_of_server(sv);
                    let i = sv - dims.server_offset[l.0];
                    let v = dispatch.lambda(ClassId(k), FrontEndId(s), l, i);
                    if v > 0.0 {
                        dispatch.set_lambda(ClassId(k), FrontEndId(s), l, i, v * factor);
                    }
                }
            }
        }
    }
}

/// Drives the optimizer with `predicted` rates and evaluates against
/// `actual`. Returns total realized net profit.
pub fn run_with_forecast(system: &System, actual: &Trace, predicted: &Trace) -> f64 {
    assert_eq!(actual.slots(), predicted.slots());
    let mut policy = OptimizedPolicy::exact();
    let rec = Recorder::noop();
    let mut total = 0.0;
    for t in 0..actual.slots() {
        let ctx = SlotContext::new(system, predicted.slot(t), t, &rec);
        let mut dispatch = policy.decide(&ctx).expect("optimizer");
        clamp_to_offered(&mut dispatch, actual.slot(t));
        total += evaluate(system, actual.slot(t), t, &dispatch).net_profit;
    }
    total
}

/// Two noisy diurnal days for §VI (seasonal forecasters need day 1 as
/// history for day 2).
pub fn two_day_trace() -> Trace {
    generate(&DiurnalConfig {
        peak_rate: 80_000.0,
        slots: 48,
        ..DiurnalConfig::default()
    })
}

/// The comparison report.
pub fn report() -> String {
    let system = presets::section_vi();
    let actual = two_day_trace();
    let initial = actual.rate(0, 0, 0);

    let oracle = run_with_forecast(&system, &actual, &actual);
    let mut out = String::from(
        "# Extension: forecasting the arrival rates (SVI, two diurnal days)\n\
         forecaster,mape_pct,net_profit,vs_oracle_pct\n",
    );
    out.push_str(&format!("oracle,0.00,{oracle:.0},100.00\n"));

    let forecasters: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("naive", Box::new(Naive::new(initial))),
        ("ewma_0.5", Box::new(Ewma::new(0.5, initial))),
        ("kalman", Box::new(ScalarKalman::new(2.0e7, 4.0e7, initial))),
        ("seasonal_24h", Box::new(SeasonalNaive::new(24, initial))),
    ];
    for (name, proto) in forecasters {
        let predicted = forecast_trace(&actual, proto.as_ref());
        let err = mape(&actual, &predicted);
        let profit = run_with_forecast(&system, &actual, &predicted);
        out.push_str(&format!(
            "{name},{:.2},{profit:.0},{:.2}\n",
            100.0 * err,
            100.0 * profit / oracle
        ));
    }
    out.push_str(
        "\nreading: on smooth diurnal workloads even one-step-behind \
         forecasts keep most of the oracle profit — the controller's hourly \
         granularity is forgiving — while the seasonal forecaster closes \
         most of the remaining gap on day two.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_never_exceeds_offered() {
        let system = presets::section_vi();
        let actual = two_day_trace();
        // Predict double the real demand, then clamp.
        let predicted = actual.scaled(2.0);
        let mut policy = OptimizedPolicy::exact();
        let rec = Recorder::noop();
        let ctx = SlotContext::new(&system, predicted.slot(12), 12, &rec);
        let mut d = policy.decide(&ctx).unwrap();
        clamp_to_offered(&mut d, actual.slot(12));
        for k in 0..system.num_classes() {
            for s in 0..system.num_front_ends() {
                let sent = d.front_end_class_rate(ClassId(k), FrontEndId(s));
                let offered = actual.rate(12, s, k);
                assert!(
                    sent <= offered * (1.0 + 1e-9),
                    "class {k} fe {s}: {sent} > {offered}"
                );
            }
        }
    }

    #[test]
    fn oracle_bounds_all_forecasters() {
        let system = presets::section_vi();
        // A short window keeps the test quick.
        let actual = {
            let full = two_day_trace();
            let rates: Vec<_> = (8..16).map(|t| full.slot(t).clone()).collect();
            Trace::new(rates)
        };
        let oracle = run_with_forecast(&system, &actual, &actual);
        let naive = forecast_trace(&actual, &Naive::new(actual.rate(0, 0, 0)));
        let naive_profit = run_with_forecast(&system, &actual, &naive);
        assert!(
            naive_profit <= oracle * (1.0 + 1e-9),
            "naive {naive_profit} beat oracle {oracle}"
        );
        // And forecasting is not catastrophic on a smooth ramp.
        assert!(naive_profit > 0.5 * oracle);
    }
}
