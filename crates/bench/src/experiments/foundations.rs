//! Fig. 1 (electricity price curves), Fig. 3 (TUF shapes) and the setup
//! tables — the paper's input data, printed as CSV/tables so they can be
//! compared against the published plots.

use palb_cluster::{presets, price};
use palb_core::report::text_table;
use palb_tuf::{StepTuf, Tuf};

/// Fig. 1: hourly electricity prices at the three locations.
pub fn fig1() -> String {
    let h = price::houston();
    let mv = price::mountain_view();
    let a = price::atlanta();
    let mut out = String::from(
        "# Fig 1: electricity prices over a day ($/kWh, synthetic reconstruction)\n\
         hour,houston,mountain_view,atlanta\n",
    );
    for hour in 0..24 {
        out.push_str(&format!(
            "{hour},{:.3},{:.3},{:.3}\n",
            h.price_at(hour),
            mv.price_at(hour),
            a.price_at(hour)
        ));
    }
    out
}

/// Fig. 3: the three TUF shapes, sampled on a delay grid.
pub fn fig3() -> String {
    let constant = Tuf::Constant {
        utility: 10.0,
        deadline: 1.0,
    };
    let decay = Tuf::LinearDecay {
        u0: 10.0,
        u_end: 2.0,
        deadline: 1.0,
    };
    let step = Tuf::Step(
        StepTuf::new(vec![
            palb_tuf::Level {
                deadline: 0.4,
                utility: 10.0,
            },
            palb_tuf::Level {
                deadline: 0.7,
                utility: 6.0,
            },
            palb_tuf::Level {
                deadline: 1.0,
                utility: 3.0,
            },
        ])
        .unwrap(),
    );
    let mut out = String::from(
        "# Fig 3: typical TUF shapes (utility vs delay)\n\
         delay,constant,non_increasing,step_downward\n",
    );
    for i in 0..=24 {
        let r = i as f64 * 0.05;
        out.push_str(&format!(
            "{r:.2},{:.2},{:.2},{:.2}\n",
            constant.eval(r),
            decay.eval(r),
            step.eval(r)
        ));
    }
    out
}

/// All setup tables (Tables II–XI), reconstructed values flagged.
pub fn tables() -> String {
    let mut out = String::new();

    // Table II: §V arrival sets.
    out.push_str("# Table II: SV arrival sets (req/s) [reconstructed]\n");
    for (label, set) in [
        ("II(a) low", presets::section_v_low_arrivals()),
        ("II(b) high", presets::section_v_high_arrivals()),
    ] {
        out.push_str(&format!("-- {label} --\n"));
        let header: Vec<String> = ["front-end", "request1", "request2", "request3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = set
            .iter()
            .enumerate()
            .map(|(s, row)| {
                let mut r = vec![format!("server{}", s + 1)];
                r.extend(row.iter().map(|v| format!("{v}")));
                r
            })
            .collect();
        out.push_str(&text_table(&header, &rows));
    }

    // Tables III / IV+VI / VIII+XI: per-system data-center parameters.
    for (label, sys) in [
        (
            "Table III: SV data centers (mu req/s, energy kWh/req, price $/kWh)",
            presets::section_v(),
        ),
        (
            "Tables IV-VII: SVI data centers (mu req/h)",
            presets::section_vi(),
        ),
        (
            "Tables VIII-XI: SVII data centers (mu req/h)",
            presets::section_vii(),
        ),
    ] {
        out.push_str(&format!("\n# {label}\n"));
        let mut header = vec!["parameter".to_string()];
        for dc in &sys.data_centers {
            header.push(dc.name.clone());
        }
        let mut rows: Vec<Vec<String>> = Vec::new();
        for k in 0..sys.num_classes() {
            let mut mu = vec![format!("mu {}", sys.classes[k].name)];
            let mut en = vec![format!("energy {}", sys.classes[k].name)];
            for dc in &sys.data_centers {
                mu.push(format!("{}", dc.service_rate[k]));
                en.push(format!("{}", dc.energy_per_request[k]));
            }
            rows.push(mu);
            rows.push(en);
        }
        let mut price_row = vec!["price @ slot 0".to_string()];
        let mut servers_row = vec!["servers".to_string()];
        for dc in &sys.data_centers {
            price_row.push(format!("{:.3}", dc.prices.price_at(0)));
            servers_row.push(format!("{}", dc.servers));
        }
        rows.push(price_row);
        rows.push(servers_row);
        out.push_str(&text_table(&header, &rows));

        // TUFs of this system (Tables VII / IX / X).
        out.push_str("TUF levels (utility $ @ deadline):\n");
        for class in &sys.classes {
            let levels: Vec<String> = class
                .tuf
                .levels()
                .iter()
                .map(|l| format!("${} @ {:.6}", l.utility, l.deadline))
                .collect();
            out.push_str(&format!(
                "  {}: {} | transfer ${}/mile\n",
                class.name,
                levels.join(", "),
                class.transfer_cost_per_mile
            ));
        }

        // Distances (Tables V / §VII prose).
        out.push_str("distances (miles):\n");
        for (s, row) in sys.distance.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|d| format!("{d}")).collect();
            out.push_str(&format!("  front-end {}: {}\n", s + 1, cells.join(", ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_24_hours_and_divergence() {
        let csv = fig1();
        assert_eq!(csv.lines().count(), 26);
        assert!(csv.contains("houston"));
    }

    #[test]
    fn fig3_shapes_are_ordered() {
        let csv = fig3();
        // At delay 0.5 the constant pays 10, decay pays 6, step pays 6.
        let line = csv.lines().find(|l| l.starts_with("0.50")).unwrap();
        assert_eq!(line, "0.50,10.00,6.00,6.00");
    }

    #[test]
    fn tables_mention_every_section() {
        let t = tables();
        assert!(t.contains("Table II"));
        assert!(t.contains("Table III"));
        assert!(t.contains("SVI data centers"));
        assert!(t.contains("SVII data centers"));
        assert!(t.contains("transfer $"));
    }
}
