//! Model validation: replay optimizer decisions through the discrete-event
//! simulator and measure how faithful the paper's M/M/1 mean-delay
//! abstraction (Eq. 1) is — both in delay and in realized profit.
//!
//! This is the workspace's answer to the paper being simulation-only: the
//! optimizer's *analytic* profit is checked against a per-request queueing
//! replay with Poisson arrivals and exponential service.

use palb_cluster::presets;
use palb_core::{run_with, OptimizedPolicy, RunOptions};
use palb_queueing::des::{simulate_network, QueueSpec};
use palb_queueing::expected_delay;
use palb_workload::synthetic::constant_trace;

/// Result of replaying one slot's decision in the DES.
pub struct ReplayResult {
    /// Per-VM rows: (class, dc, predicted delay, simulated mean delay).
    pub vms: Vec<(usize, usize, f64, f64)>,
    /// Analytic slot revenue implied by mean delays.
    pub analytic_revenue: f64,
    /// Revenue when every request is paid by its *own* sojourn time in the
    /// DES replay.
    pub replay_revenue: f64,
}

/// Replays the §V low-arrival optimized decision.
pub fn replay_section_v(horizon: f64, seed: u64) -> ReplayResult {
    let system = presets::section_v();
    let trace = constant_trace(presets::section_v_low_arrivals(), 1);
    let result = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .expect("optimizer")
    .result;
    let dispatch = &result.decisions[0];
    let dims = dispatch.dims().clone();

    // Build one DES queue per active (class, server) VM.
    let mut specs = Vec::new();
    let mut meta = Vec::new(); // (k, dc, lambda, service, utility fn idx)
    for (k, sv) in dims.class_server_pairs() {
        let lam = dispatch.server_class_rate(k, sv);
        if lam <= 1e-9 {
            continue;
        }
        let l = dims.dc_of_server(sv);
        let service = dispatch.phi_by_server(k, sv) * system.data_centers[l.0].full_rate(k);
        specs.push(QueueSpec {
            arrival_rate: lam,
            service_rate: service,
        });
        meta.push((k, l, lam, service));
    }
    let warmup = horizon * 0.1;
    let results = simulate_network(&specs, horizon, warmup, seed);

    let mut vms = Vec::new();
    let mut analytic_revenue = 0.0;
    let mut replay_revenue = 0.0;
    let t = system.slot_length;
    for ((k, l, lam, service), q) in meta.into_iter().zip(&results) {
        let predicted = expected_delay(1.0, 1.0, service, lam);
        let simulated = q.sojourn.mean();
        vms.push((k.0, l.0, predicted, simulated));
        let tuf = &system.classes[k.0].tuf;
        analytic_revenue += tuf.eval(predicted) * lam * t;
        // Per-request payment: each completed request is paid by its own
        // sojourn, scaled back to a full slot.
        let measured = horizon - warmup;
        let per_req: f64 = q.sojourn.samples().iter().map(|&r| tuf.eval(r)).sum();
        replay_revenue += per_req / measured * t;
    }
    ReplayResult {
        vms,
        analytic_revenue,
        replay_revenue,
    }
}

/// Renders the validation report.
pub fn report() -> String {
    let r = replay_section_v(4_000.0, 42);
    let mut out = String::from(
        "# Validation: Eq. 1 mean delays vs discrete-event replay (SV, low load)\n\
         class,dc,predicted_delay_s,simulated_delay_s,rel_err\n",
    );
    let mut worst = 0.0_f64;
    for (k, l, pred, sim) in &r.vms {
        let rel = (sim - pred).abs() / pred;
        worst = worst.max(rel);
        out.push_str(&format!("{k},{l},{pred:.5},{sim:.5},{rel:.3}\n"));
    }
    out.push_str(&format!(
        "\nanalytic slot revenue ${:.0}, per-request replay revenue ${:.0} \
         ({:+.2}% gap), worst per-VM delay error {:.1}%\n",
        r.analytic_revenue,
        r.replay_revenue,
        100.0 * (r.replay_revenue / r.analytic_revenue - 1.0),
        100.0 * worst
    ));
    out.push_str(
        "\nreading: Eq. 1 predicts the replayed mean delays closely — the \
         queueing abstraction is faithful. The revenue gap is a *model* \
         finding, not an error: the paper pays by MEAN delay (\"guaranteeing \
         the average delay satisfaction\"), but sojourn times in an M/M/1 \
         are exponential, so when the optimizer parks a VM exactly at its \
         deadline, ~1/e of individual requests still finish late. A \
         per-request SLA would need the optimizer to target delay \
         quantiles instead of means.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_abstraction_is_faithful() {
        let r = replay_section_v(3_000.0, 7);
        assert!(!r.vms.is_empty());
        for (k, l, pred, sim) in &r.vms {
            let rel = (sim - pred).abs() / pred;
            assert!(
                rel < 0.25,
                "class {k} dc {l}: predicted {pred} vs simulated {sim}"
            );
        }
        // Mean-based accounting can only OVERSTATE per-request revenue
        // (the TUF is non-increasing and sojourns are exponential around
        // the mean), and the overstatement is bounded by the exponential
        // tail mass ~1/e at deadline-binding VMs.
        let ratio = r.replay_revenue / r.analytic_revenue;
        assert!(
            ratio <= 1.0 + 0.02,
            "replay revenue above analytic: ratio {ratio}"
        );
        assert!(ratio > 0.5, "replay collapsed: ratio {ratio}");
    }

    #[test]
    fn replay_is_deterministic() {
        let a = replay_section_v(500.0, 3);
        let b = replay_section_v(500.0, 3);
        assert_eq!(a.replay_revenue, b.replay_revenue);
    }
}
