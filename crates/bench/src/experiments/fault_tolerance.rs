//! Fault-tolerance study: profit retention of the degraded-mode control
//! loop under injected telemetry corruption and solver failures.
//!
//! The §VI day is replayed three ways:
//!
//! 1. **clean** — `OptimizedPolicy` on the pristine trace and prices: the
//!    fault-free profit every other number is normalized against.
//! 2. **bare + faults** — `OptimizedPolicy` wrapped in
//!    `ChaosPolicy` on the corrupted inputs: the un-hardened controller,
//!    which hard-aborts on the first injected solver failure.
//! 3. **resilient + faults** — `ResilientPolicy` with the same fault
//!    schedule on the same corrupted inputs: the fallback ladder rides
//!    through every fault and the run completes all 24 slots.
//!
//! Corruption at `fault_rate` means: each slot's rate observations are
//! wiped to NaN (whole-row bursts) with that probability, a couple percent
//! of individual readings come back negative, each data center's price
//! feed drops ~`fault_rate` of its slots, and every solver attempt fails
//! with that probability. The headline metric is **profit retention**:
//! resilient-under-faults profit over clean profit.

use std::sync::Arc;

use palb_cluster::{presets, System};
use palb_core::obs::{Recorder, Registry, Snapshot};
use palb_core::report::tier_histogram;
use palb_core::{
    run_with, ChaosPolicy, OptimizedPolicy, ResilientPolicy, RunOptions, RunResult, Tier,
};
use palb_workload::fault::{
    corrupt_price_feed, inject_rate_faults, PriceFaultConfig, RateFaultConfig, SolverFaultSchedule,
};
use palb_workload::Trace;

use crate::configs;

/// Outcome of one fault-tolerance run.
pub struct FaultToleranceResult {
    /// Probability used for rate bursts, price dropouts and solver faults.
    pub fault_rate: f64,
    /// Injection seed.
    pub seed: u64,
    /// Net profit of the fault-free Optimized run, $.
    pub clean_profit: f64,
    /// Net profit of the resilient run under faults, $.
    pub resilient_profit: f64,
    /// `resilient_profit / clean_profit`.
    pub retention: f64,
    /// Slots decided by each ladder tier, ladder order.
    pub tier_counts: Vec<(Tier, usize)>,
    /// Rate observations repaired across the run.
    pub sanitization_events: usize,
    /// Price-feed slots repaired across the three markets.
    pub price_incidents: usize,
    /// Solve attempts that failed before a tier succeeded.
    pub retries: usize,
    /// Slots that decided on any non-exact tier or needed input repair.
    pub degraded_slots: usize,
    /// Error message of the bare (un-hardened) run, `None` if it survived
    /// its fault schedule.
    pub bare_abort: Option<String>,
    /// Slots completed by the resilient run (always the full trace).
    pub completed_slots: usize,
    /// Metrics snapshot of the resilient run (tier decisions, solver
    /// faults, warm-start counters, slot economics).
    pub obs: Snapshot,
}

fn corrupted_inputs(fault_rate: f64, seed: u64) -> (System, Trace, usize) {
    let mut system = presets::section_vi();
    let mut price_incidents = 0;
    for (l, dc) in system.data_centers.iter_mut().enumerate() {
        let mut feed = dc.prices.as_slice().to_vec();
        let cfg = PriceFaultConfig::dropout(fault_rate, seed ^ ((l as u64) << 8));
        corrupt_price_feed(&mut feed, &cfg).expect("fault rate is a probability");
        let (clean, incidents) = palb_cluster::PriceSchedule::new_unchecked(feed).sanitized();
        dc.prices = clean;
        price_incidents += incidents.len();
    }
    let trace = inject_rate_faults(
        &configs::section_vi_trace(),
        &RateFaultConfig {
            seed,
            nan_burst_prob: fault_rate,
            negative_prob: fault_rate / 5.0,
            spike_prob: 0.0, // spikes change the offered load, muddying retention
            ..RateFaultConfig::default()
        },
    )
    .expect("fault rate is a probability");
    (system, trace, price_incidents)
}

/// Runs the three-way comparison at `fault_rate` with `seed`.
pub fn study(fault_rate: f64, seed: u64) -> FaultToleranceResult {
    let clean_system = presets::section_vi();
    let clean_trace = configs::section_vi_trace();
    let clean = run_with(
        &mut OptimizedPolicy::exact(),
        &clean_system,
        &clean_trace,
        &RunOptions::at(0),
    )
    .expect("fault-free baseline")
    .result;

    let (system, trace, price_incidents) = corrupted_inputs(fault_rate, seed);
    let schedule = SolverFaultSchedule::new(fault_rate, seed);

    let bare_abort = run_with(
        &mut ChaosPolicy::new(OptimizedPolicy::exact(), schedule.clone()),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .err()
    .map(|e| e.to_string());

    let registry = Arc::new(Registry::new());
    let mut resilient = ResilientPolicy::default().with_chaos(schedule);
    let opts = RunOptions::at(0).with_obs(Recorder::attached(Arc::clone(&registry)));
    let res = run_with(&mut resilient, &system, &trace, &opts)
        .expect("ladder never aborts")
        .result;

    FaultToleranceResult {
        fault_rate,
        seed,
        clean_profit: clean.total_net_profit(),
        resilient_profit: res.total_net_profit(),
        retention: res.total_net_profit() / clean.total_net_profit(),
        tier_counts: tier_histogram(&res),
        sanitization_events: health_sum(&res, |h| h.sanitization_events),
        price_incidents,
        retries: health_sum(&res, |h| h.retries),
        degraded_slots: res
            .slots
            .iter()
            .filter(|s| s.health.as_ref().is_some_and(|h| h.degraded))
            .count(),
        bare_abort,
        completed_slots: res.slots.len(),
        obs: registry.snapshot(),
    }
}

fn health_sum(run: &RunResult, f: impl Fn(&palb_core::SlotHealth) -> usize) -> usize {
    run.slots
        .iter()
        .filter_map(|s| s.health.as_ref().map(&f))
        .sum()
}

/// The printable report, tier histogram included.
pub fn report(fault_rate: f64, seed: u64) -> String {
    let r = study(fault_rate, seed);
    let mut out = format!(
        "# Fault tolerance: SVI day at fault rate {:.0}% (seed {})\n\
         clean optimized profit: ${:.2}\n\
         resilient profit under faults: ${:.2}\n\
         profit retention: {:.1}%\n\
         slots completed: {}/24, degraded: {}, retries: {}\n\
         rate repairs: {}, price repairs: {}\n",
        100.0 * r.fault_rate,
        r.seed,
        r.clean_profit,
        r.resilient_profit,
        100.0 * r.retention,
        r.completed_slots,
        r.degraded_slots,
        r.retries,
        r.sanitization_events,
        r.price_incidents,
    );
    out.push_str("\ntier histogram (slots decided per ladder rung):\n");
    for (tier, n) in &r.tier_counts {
        out.push_str(&format!("  {tier:<15} {n}\n"));
    }
    match &r.bare_abort {
        Some(e) => out.push_str(&format!("\nbare optimized run ABORTED: {e}\n")),
        None => out.push_str("\nbare optimized run survived this seed\n"),
    }
    out.push_str(
        "\nreading: the un-hardened controller forfeits the whole day on its \
         first solver fault; the fallback ladder finishes every slot and \
         keeps most of the fault-free profit, paying only for the slots it \
         had to decide with a heuristic or stale decision.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance criterion: at a 10% solver-failure rate with
    /// NaN bursts, the resilient policy completes the full 24-slot §VI
    /// run with zero aborts and keeps ≥ 80% of the fault-free optimized
    /// profit, while the un-wrapped optimized policy aborts.
    #[test]
    fn resilient_retains_profit_where_bare_optimizer_aborts() {
        let r = study(0.1, 42);
        assert_eq!(r.completed_slots, 24, "ladder must decide every slot");
        assert!(
            r.bare_abort.is_some(),
            "bare optimized policy should abort under this schedule"
        );
        assert!(
            r.retention >= 0.8,
            "retention {:.3} below the 80% floor (resilient {:.2} vs clean {:.2})",
            r.retention,
            r.resilient_profit,
            r.clean_profit
        );
        let decided: usize = r.tier_counts.iter().map(|&(_, n)| n).sum();
        assert_eq!(decided, 24, "every slot carries a tier");
        let (exact_tier, exact_slots) = r.tier_counts[0];
        assert_eq!(exact_tier, Tier::Exact);
        assert!(exact_slots < 24, "some slots must have degraded");
        assert!(exact_slots > 0, "most slots should still solve exactly");
        assert!(r.sanitization_events > 0, "NaN bursts should be repaired");
        assert!(r.price_incidents > 0, "price dropouts should be repaired");
        assert!(r.degraded_slots > 0);
        // The metrics snapshot agrees with the health-derived aggregates.
        use palb_core::obs::names;
        assert_eq!(
            r.obs.family_counter_total(names::TIER_DECISIONS_TOTAL),
            24,
            "every slot's tier decision lands on the registry"
        );
        assert_eq!(r.obs.counter_value(names::SLOTS_TOTAL, &[]), Some(24));
        assert!(r.obs.family_counter_total(names::SOLVER_FAULTS_TOTAL) > 0);
        assert!(r.obs.contains_family(names::SLOT_DECIDE_SECONDS));
    }

    #[test]
    fn zero_fault_rate_is_the_identity() {
        let r = study(0.0, 7);
        assert!(r.bare_abort.is_none());
        assert_eq!(r.degraded_slots, 0);
        assert_eq!(r.sanitization_events, 0);
        assert_eq!(r.price_incidents, 0);
        assert!(
            (r.retention - 1.0).abs() < 1e-9,
            "retention {} should be exactly 1",
            r.retention
        );
        assert_eq!(r.tier_counts[0], (Tier::Exact, 24));
    }
}
