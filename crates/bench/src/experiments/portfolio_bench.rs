//! The anytime-portfolio scale gate (`repro portfolio`).
//!
//! Two halves, mirroring the promise `palb_core::portfolio` makes:
//!
//! 1. **Paper size** — on the §VII system (Fig. 11's reference point)
//!    `SolverKind::Exact` must return bit-for-bit identical results at
//!    1/2/4/8 worker threads, and CI additionally pins those bits
//!    against the committed `BENCH_portfolio_baseline.json` so the
//!    redesigned `Solver` front end can never silently change the
//!    exact answer.
//! 2. **Scale** — the same system grown to `SCALE_SERVERS` servers per
//!    data center (a symmetry-reduced search space dozens of times
//!    the Fig. 11 reference; the gate requires >= 8x). There the exact
//!    solver cannot finish inside the fixed wall-clock budget, while
//!    the portfolio must still deliver >= 99% of the (unbudgeted)
//!    exact profit inside that budget.

use std::time::Instant;

use palb_cluster::presets;
use palb_core::{solve_bb, solve_with, SolverBudget, SolverConfig};

use crate::configs::section_vii_trace;

/// Servers per data center for the scale half. At 18 the
/// symmetry-reduced space is ~54x the §VII reference (comfortably past
/// [`SPACE_RATIO_FLOOR`]) and the exact tree needs ~2.2M nodes /
/// tens of seconds, far beyond [`DEFAULT_BUDGET_MS`] — yet the
/// unbudgeted reference still proves optimality in CI-tolerable time.
pub const SCALE_SERVERS: usize = 18;

/// Wall-clock budget (milliseconds) for the budgeted-exact and
/// portfolio runs of the scale half. Calibrated so the portfolio
/// converges comfortably inside it on a single CI core while the exact
/// tree is nowhere near done.
pub const DEFAULT_BUDGET_MS: u64 = 1_500;

/// Thread counts of the paper-size bitwise sweep.
pub const PAPER_THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Profit-retention floor of the scale gate.
pub const RETENTION_FLOOR: f64 = 0.99;

/// Search-space ratio floor of the scale gate.
pub const SPACE_RATIO_FLOOR: f64 = 8.0;

/// One paper-size exact solve.
pub struct PaperPoint {
    /// Worker threads.
    pub threads: usize,
    /// Exact objective, as raw bits for drift-proof comparison.
    pub objective_bits: u64,
    /// Nodes explored.
    pub nodes: usize,
    /// Wall clock, milliseconds.
    pub ms: f64,
}

/// The scale half: budgeted exact vs portfolio vs unbudgeted reference.
pub struct ScaleGate {
    /// Servers per data center.
    pub servers: usize,
    /// log2 of the symmetry-reduced assignment space at `servers`.
    pub log2_space: f64,
    /// log2 of the same space at the §VII reference size.
    pub log2_paper_space: f64,
    /// The wall-clock budget both contenders run under.
    pub budget_ms: u64,
    /// Did the budgeted exact run finish (it must not, for the gate to
    /// be meaningful)?
    pub exact_budgeted_proven: bool,
    /// Budgeted exact incumbent at the deadline.
    pub exact_budgeted_objective: f64,
    /// Unbudgeted exact reference objective.
    pub reference_objective: f64,
    /// Unbudgeted exact wall clock, milliseconds.
    pub reference_ms: f64,
    /// Portfolio objective inside the budget.
    pub portfolio_objective: f64,
    /// Portfolio wall clock, milliseconds.
    pub portfolio_ms: f64,
    /// Whether the portfolio's exact side finished (expected false).
    pub portfolio_proven: bool,
    /// Evaluation-cache telemetry of the portfolio run.
    pub cache_hits: u64,
    /// Cache misses (cold LP evaluations) of the portfolio run.
    pub cache_misses: u64,
}

/// The full study.
pub struct PortfolioStudy {
    /// Paper-size exact sweep, one point per thread count.
    pub paper: Vec<PaperPoint>,
    /// The scale gate.
    pub scale: ScaleGate,
}

impl PortfolioStudy {
    /// All paper-size points agree bitwise.
    pub fn paper_bitwise_invariant(&self) -> bool {
        self.paper
            .windows(2)
            .all(|w| w[0].objective_bits == w[1].objective_bits)
    }

    /// Paper-size exact objective bits (the baseline-pinned value).
    pub fn paper_objective_bits(&self) -> u64 {
        self.paper.first().map_or(0, |p| p.objective_bits)
    }

    /// Portfolio profit as a fraction of the unbudgeted exact profit.
    pub fn retention(&self) -> f64 {
        self.scale.portfolio_objective / self.scale.reference_objective
    }

    /// Symmetry-reduced search-space ratio, scale over paper size.
    pub fn space_ratio(&self) -> f64 {
        (self.scale.log2_space - self.scale.log2_paper_space).exp2()
    }
}

/// log2 of the symmetry-reduced assignment space of the §VII system
/// with `m` servers per data center: per (class, data center) the
/// non-decreasing level tuples over `m` servers form a multiset, so
/// with L levels there are C(m + L - 1, m) choices.
fn log2_space(system: &palb_cluster::System, m: usize) -> f64 {
    let mut log2 = 0.0f64;
    for class in &system.classes {
        let levels = class.tuf.num_levels();
        for _ in &system.data_centers {
            log2 += log2_binomial(m + levels - 1, m);
        }
    }
    log2
}

fn log2_binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut log2 = 0.0f64;
    for i in 0..k {
        log2 += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    log2
}

/// Builds the §VII system at `m` servers per data center with demand
/// scaled to keep the load comparable (the Fig. 11 convention).
fn scaled_instance(m: usize) -> (palb_cluster::System, Vec<Vec<f64>>, usize) {
    let mut sys = presets::section_vii();
    let paper_servers = sys.data_centers[0].servers;
    let trace = section_vii_trace();
    let rates = trace.slot(2); // the representative busy slot
    let scale = m as f64 / paper_servers as f64;
    let scaled: Vec<Vec<f64>> = rates
        .iter()
        .map(|row| row.iter().map(|r| r * scale).collect())
        .collect();
    for dc in &mut sys.data_centers {
        dc.servers = m;
    }
    (sys, scaled, presets::SECTION_VII_START_HOUR + 2)
}

/// Runs the study: the paper-size thread sweep plus the scale gate at
/// `scale_servers` servers per data center under `budget_ms`.
pub fn study(scale_servers: usize, budget_ms: u64) -> PortfolioStudy {
    // Paper size: the §VII system itself, exact at each thread count.
    let paper_sys = presets::section_vii();
    let paper_servers = paper_sys.data_centers[0].servers;
    let (sys, rates, slot) = scaled_instance(paper_servers);
    let paper = PAPER_THREAD_SWEEP
        .iter()
        .map(|&threads| {
            let t0 = Instant::now();
            let r = solve_bb(&sys, &rates, slot, &SolverConfig::exact().threads(threads))
                .expect("paper-size exact solve");
            PaperPoint {
                threads,
                objective_bits: r.solve.objective.to_bits(),
                nodes: r.nodes,
                ms: t0.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect();

    // Scale: budgeted exact (must truncate), portfolio (must retain),
    // unbudgeted exact (the reference).
    let (sys, rates, slot) = scaled_instance(scale_servers);
    let budget = SolverBudget::default().wall_clock_ms(budget_ms);

    let exact_budgeted = solve_bb(&sys, &rates, slot, &SolverConfig::exact().budget(budget))
        .expect("budgeted exact solve");

    let t0 = Instant::now();
    let portfolio = solve_with(
        &sys,
        &rates,
        slot,
        &SolverConfig::portfolio().budget(budget),
    )
    .expect("portfolio solve");
    let portfolio_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The reference must lift the default node cap: a truncated
    // "reference" silently understates the optimum and inflates
    // retention. `proven_optimal` is asserted so a bad calibration
    // fails loudly instead of gating against a guess.
    let t1 = Instant::now();
    let reference = solve_bb(
        &sys,
        &rates,
        slot,
        &SolverConfig::exact().max_nodes(usize::MAX),
    )
    .expect("reference exact solve");
    let reference_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(
        reference.proven_optimal,
        "unbudgeted reference failed to prove optimality at m={scale_servers}"
    );

    PortfolioStudy {
        paper,
        scale: ScaleGate {
            servers: scale_servers,
            log2_space: log2_space(&sys, scale_servers),
            log2_paper_space: log2_space(&sys, paper_servers),
            budget_ms,
            exact_budgeted_proven: exact_budgeted.proven_optimal,
            exact_budgeted_objective: exact_budgeted.solve.objective,
            reference_objective: reference.solve.objective,
            reference_ms,
            portfolio_objective: portfolio.solve.objective,
            portfolio_ms,
            portfolio_proven: portfolio.proven_optimal,
            cache_hits: portfolio.stats.cache_hits,
            cache_misses: portfolio.stats.cache_misses,
        },
    }
}

/// Renders the study as the `repro portfolio` report.
pub fn render(s: &PortfolioStudy) -> String {
    let mut out = String::from(
        "# Portfolio scale gate: anytime metaheuristic racing exact B&B\n\n\
         ## paper size (SolverKind::Exact must be thread-invariant, bitwise)\n\
         threads,objective_bits,nodes,ms\n",
    );
    for p in &s.paper {
        out.push_str(&format!(
            "{},{:#018x},{},{:.2}\n",
            p.threads, p.objective_bits, p.nodes, p.ms
        ));
    }
    out.push_str(&format!(
        "bitwise invariant: {}\n",
        s.paper_bitwise_invariant()
    ));
    let g = &s.scale;
    out.push_str(&format!(
        "\n## scale gate ({} servers/DC, budget {} ms)\n\
         search space: 2^{:.1} vs paper 2^{:.1} ({:.0}x, floor {:.0}x)\n\
         exact within budget: proven={} objective={:.2}\n\
         exact unbudgeted:    {:.0} ms, objective={:.2}\n\
         portfolio:           {:.0} ms, objective={:.2} (proven={}, cache {} hits / {} misses)\n\
         retention: {:.4} (floor {:.2})\n",
        g.servers,
        g.budget_ms,
        g.log2_space,
        g.log2_paper_space,
        s.space_ratio(),
        SPACE_RATIO_FLOOR,
        g.exact_budgeted_proven,
        g.exact_budgeted_objective,
        g.reference_ms,
        g.reference_objective,
        g.portfolio_ms,
        g.portfolio_objective,
        g.portfolio_proven,
        g.cache_hits,
        g.cache_misses,
        s.retention(),
        RETENTION_FLOOR,
    ));
    out
}

/// Compares the paper-size exact bits against a committed baseline
/// (the parsed `BENCH_portfolio_baseline.json`). `origin` names the
/// baseline in error messages.
pub fn check_baseline(s: &PortfolioStudy, baseline_bits: u64, origin: &str) -> Result<(), String> {
    if s.paper_objective_bits() != baseline_bits {
        return Err(format!(
            "paper-size exact drifted bitwise vs {origin}: {:#018x} != baseline {:#018x}",
            s.paper_objective_bits(),
            baseline_bits
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run of the full study machinery: tiny scale size and
    /// a generous budget, so the exact side finishes everywhere; checks
    /// the invariants that do not depend on timing out.
    #[test]
    fn miniature_study_is_consistent() {
        let s = study(8, 60_000);
        assert!(s.paper_bitwise_invariant());
        assert_eq!(s.paper.len(), PAPER_THREAD_SWEEP.len());
        assert!(s.space_ratio() > 1.0, "8 > 6 servers grows the space");
        assert!(
            s.retention() >= RETENTION_FLOOR,
            "retention {:.4}",
            s.retention()
        );
        check_baseline(&s, s.paper_objective_bits(), "self").unwrap();
        assert!(check_baseline(&s, !s.paper_objective_bits(), "flipped").is_err());
    }

    #[test]
    fn space_ratio_crosses_the_floor_at_the_gate_config() {
        let sys = presets::section_vii();
        let paper_servers = sys.data_centers[0].servers;
        let ratio = (log2_space(&sys, SCALE_SERVERS) - log2_space(&sys, paper_servers)).exp2();
        assert!(
            ratio >= SPACE_RATIO_FLOOR,
            "gate config is only {ratio:.1}x the paper size"
        );
    }

    #[test]
    fn log2_binomial_matches_small_cases() {
        // C(7,6) = 7, C(31,30) = 31, C(4,2) = 6.
        assert!((log2_binomial(7, 6) - 7f64.log2()).abs() < 1e-12);
        assert!((log2_binomial(31, 30) - 31f64.log2()).abs() < 1e-12);
        assert!((log2_binomial(4, 2) - 6f64.log2()).abs() < 1e-12);
    }
}
