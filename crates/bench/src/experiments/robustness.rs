//! Robustness study: how the optimizer's promises degrade when the real
//! service-time distribution is not exponential.
//!
//! The paper's Eq. 1 is exact only for M/M/1. Here the §V optimized
//! decision is replayed per-VM through a Lindley M/G/1 simulation under a
//! family of service distributions of increasing variability, and the
//! realized mean delays, on-time fractions and per-request revenue are
//! compared with the exponential case the optimizer assumed.

use palb_cluster::presets;
use palb_core::{run_with, OptimizedPolicy, RunOptions};
use palb_queueing::{simulate_mg1_lindley, Mg1, ServiceDist};
use palb_workload::synthetic::constant_trace;

/// Replay statistics under one service distribution.
pub struct RobustnessRow {
    /// Distribution label.
    pub label: String,
    /// Squared coefficient of variation.
    pub scv: f64,
    /// Dispatch-weighted mean of (simulated delay / Eq.1 prediction).
    pub delay_inflation: f64,
    /// Fraction of replayed requests inside their final deadline.
    pub on_time: f64,
    /// Per-request replay revenue relative to the exponential case.
    pub revenue_vs_exponential: f64,
}

/// Runs the study on the §V low-arrival decision.
pub fn study(customers: usize, seed: u64) -> Vec<RobustnessRow> {
    let system = presets::section_v();
    let trace = constant_trace(presets::section_v_low_arrivals(), 1);
    let result = run_with(
        &mut OptimizedPolicy::exact(),
        &system,
        &trace,
        &RunOptions::at(0),
    )
    .expect("optimizer")
    .result;
    let dispatch = &result.decisions[0];
    let dims = dispatch.dims().clone();

    // Active VMs: (class, lambda, service rate).
    let mut vms = Vec::new();
    for (k, sv) in dims.class_server_pairs() {
        let lam = dispatch.server_class_rate(k, sv);
        if lam <= 1e-9 {
            continue;
        }
        let l = dims.dc_of_server(sv);
        let service = dispatch.phi_by_server(k, sv) * system.data_centers[l.0].full_rate(k);
        vms.push((k, lam, service));
    }

    let dists: Vec<(&str, ServiceDist)> = vec![
        ("deterministic", ServiceDist::Deterministic),
        ("erlang-4", ServiceDist::Erlang(4)),
        ("erlang-2", ServiceDist::Erlang(2)),
        ("exponential (assumed)", ServiceDist::Exponential),
        ("hyperexp C2=2", ServiceDist::Hyperexponential { scv: 2.0 }),
        ("hyperexp C2=4", ServiceDist::Hyperexponential { scv: 4.0 }),
    ];

    let mut rows = Vec::new();
    let mut exp_revenue = None;
    for (label, dist) in dists {
        let mut weighted_inflation = 0.0;
        let mut weight = 0.0;
        let mut on_time = 0.0;
        let mut total = 0.0;
        let mut revenue_rate = 0.0;
        for (vm_idx, &(k, lam, service)) in vms.iter().enumerate() {
            let predicted = 1.0 / (service - lam);
            let warmup = customers / 10;
            let sim = simulate_mg1_lindley(
                lam,
                service,
                dist,
                customers,
                warmup,
                seed ^ (vm_idx as u64) << 3,
            );
            weighted_inflation += lam * sim.mean() / predicted;
            weight += lam;
            let tuf = &system.classes[k.0].tuf;
            let deadline = tuf.final_deadline();
            let n = sim.samples().len() as f64;
            for &r in sim.samples() {
                if r <= deadline {
                    on_time += 1.0;
                }
                revenue_rate += tuf.eval(r) * lam / n;
            }
            total += n;
            // Sanity: the P-K prediction exists for every stable VM.
            debug_assert!(Mg1::new(lam, service, dist).is_stable());
        }
        let revenue = revenue_rate;
        if matches!(dist, ServiceDist::Exponential) {
            exp_revenue = Some(revenue);
        }
        rows.push(RobustnessRow {
            label: label.to_string(),
            scv: dist.scv(),
            delay_inflation: weighted_inflation / weight,
            on_time: on_time / total,
            revenue_vs_exponential: revenue, // normalized below
        });
    }
    let base = exp_revenue.expect("exponential row present");
    for row in &mut rows {
        row.revenue_vs_exponential /= base;
    }
    rows
}

/// The printable report.
pub fn report() -> String {
    let rows = study(60_000, 77);
    let mut out = String::from(
        "# Robustness: service-time distribution vs the M/M/1 assumption (SV)\n\
         distribution,scv,delay_vs_eq1,on_time_pct,revenue_vs_exponential\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{},{:.2},{:.3},{:.2},{:.3}\n",
            r.label,
            r.scv,
            r.delay_inflation,
            100.0 * r.on_time,
            r.revenue_vs_exponential
        ));
    }
    out.push_str(
        "\nreading: lower-variability service (deterministic, Erlang) makes \
         the optimizer's deadline-binding VMs safer than promised; heavy-\
         tailed service (hyperexponential) inflates delays beyond Eq. 1 and \
         erodes per-request revenue — the M/M/1 assumption is an upper bound \
         on safety only for C2 <= 1.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variability_orders_outcomes() {
        let rows = study(20_000, 5);
        let find = |label: &str| rows.iter().find(|r| r.label.starts_with(label)).unwrap();
        let det = find("deterministic");
        let exp = find("exponential");
        let hyp = find("hyperexp C2=4");
        // Delay inflation grows with variability.
        assert!(det.delay_inflation < exp.delay_inflation);
        assert!(exp.delay_inflation < hyp.delay_inflation);
        // On-time fraction shrinks with variability.
        assert!(det.on_time > exp.on_time);
        assert!(exp.on_time > hyp.on_time);
        // Exponential replay matches Eq. 1 closely (it *is* the model).
        assert!(
            (exp.delay_inflation - 1.0).abs() < 0.08,
            "exponential inflation {}",
            exp.delay_inflation
        );
        // Revenue normalization anchors at 1 for the exponential row.
        assert!((exp.revenue_vs_exponential - 1.0).abs() < 1e-12);
        assert!(hyp.revenue_vs_exponential < 1.0);
        assert!(det.revenue_vs_exponential >= 1.0);
    }
}
