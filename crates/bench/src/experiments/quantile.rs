//! Extension study: mean-delay SLA (the paper's Eq. 6) versus the
//! per-request quantile SLA from `palb_core::quantile`.
//!
//! For each policy the §V decision is replayed in the discrete-event
//! simulator and each request is paid by its *own* sojourn time. The
//! mean-delay optimizer books more analytic profit but loses a large
//! slice of it to late requests; the quantile policy buys real headroom.

use palb_cluster::presets;
use palb_core::{run_with, OptimizedPolicy, Policy, QuantileSlaPolicy, RunOptions};
use palb_queueing::des::{simulate_network, QueueSpec};
use palb_workload::synthetic::constant_trace;

/// Replay outcome of one policy on the §V low-arrival slot.
pub struct QuantileOutcome {
    /// Policy display name.
    pub policy: String,
    /// Analytic (mean-delay-accounted) slot revenue.
    pub analytic_revenue: f64,
    /// Revenue when each request is paid by its own sojourn.
    pub replay_revenue: f64,
    /// Fraction of replayed requests inside their class's final deadline.
    pub on_time: f64,
}

/// Replays one policy's §V decision in the DES.
pub fn replay(policy: &mut dyn Policy, horizon: f64, seed: u64) -> QuantileOutcome {
    let system = presets::section_v();
    let trace = constant_trace(presets::section_v_low_arrivals(), 1);
    let result = run_with(policy, &system, &trace, &RunOptions::at(0))
        .expect("policy")
        .result;
    let dispatch = &result.decisions[0];
    let dims = dispatch.dims().clone();

    let mut specs = Vec::new();
    let mut meta = Vec::new();
    for (k, sv) in dims.class_server_pairs() {
        let lam = dispatch.server_class_rate(k, sv);
        if lam <= 1e-9 {
            continue;
        }
        let l = dims.dc_of_server(sv);
        let service = dispatch.phi_by_server(k, sv) * system.data_centers[l.0].full_rate(k);
        specs.push(QueueSpec {
            arrival_rate: lam,
            service_rate: service,
        });
        meta.push((k, lam, service));
    }
    let warmup = horizon * 0.1;
    let sims = simulate_network(&specs, horizon, warmup, seed);

    let t = system.slot_length;
    let measured = horizon - warmup;
    let mut analytic = 0.0;
    let mut replayed = 0.0;
    let mut on_time = 0.0_f64;
    let mut total = 0.0_f64;
    for ((k, lam, service), q) in meta.into_iter().zip(&sims) {
        let tuf = &system.classes[k.0].tuf;
        let mean_delay = 1.0 / (service - lam);
        analytic += tuf.eval(mean_delay) * lam * t;
        let deadline = tuf.final_deadline();
        for &r in q.sojourn.samples() {
            replayed += tuf.eval(r) / measured * t;
            total += 1.0;
            if r <= deadline {
                on_time += 1.0;
            }
        }
    }
    QuantileOutcome {
        policy: result.policy,
        analytic_revenue: analytic,
        replay_revenue: replayed,
        on_time: if total > 0.0 { on_time / total } else { 1.0 },
    }
}

/// The comparison report.
pub fn report() -> String {
    let mut out = String::from(
        "# Extension: mean-delay SLA (paper) vs per-request quantile SLA\n\
         policy,analytic_revenue,replay_revenue,on_time_pct\n",
    );
    let mut mean_policy = OptimizedPolicy::exact();
    let mut q90 = QuantileSlaPolicy::exact(0.90);
    let mut q99 = QuantileSlaPolicy::exact(0.99);
    let rows: Vec<(&str, QuantileOutcome)> = vec![
        (
            "mean_delay (paper)",
            replay(&mut mean_policy, 4_000.0, 2024),
        ),
        ("quantile p=0.90", replay(&mut q90, 4_000.0, 2024)),
        ("quantile p=0.99", replay(&mut q99, 4_000.0, 2024)),
    ];
    for (label, r) in &rows {
        out.push_str(&format!(
            "{label},{:.0},{:.0},{:.2}\n",
            r.analytic_revenue,
            r.replay_revenue,
            100.0 * r.on_time
        ));
    }
    out.push_str(
        "\nreading: the paper's mean-delay SLA (a 63.2nd-percentile SLA in \
         disguise for exponential sojourns) books the highest analytic \
         revenue but loses the most to late requests when paid per-request; \
         tightening deadlines by ln(1/(1-p)) converts the same solver stack \
         into a true percentile SLA.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_policy_raises_on_time_fraction() {
        let mean = replay(&mut OptimizedPolicy::exact(), 2_500.0, 7);
        let q90 = replay(&mut QuantileSlaPolicy::exact(0.90), 2_500.0, 7);
        assert!(
            q90.on_time > mean.on_time + 0.05,
            "q90 on-time {} vs mean {}",
            q90.on_time,
            mean.on_time
        );
        // And it actually delivers ≥ ~90% on-time per request.
        assert!(q90.on_time > 0.88, "q90 on-time {}", q90.on_time);
        // Analytic revenue ordering: mean-SLA books at least as much.
        assert!(mean.analytic_revenue >= q90.analytic_revenue - 1e-6);
    }

    #[test]
    fn replay_revenue_never_exceeds_analytic_here() {
        // With one-level TUFs and light load, per-request payment can only
        // lose relative to mean accounting.
        for p in [0.7, 0.9] {
            let r = replay(&mut QuantileSlaPolicy::exact(p), 1_500.0, 3);
            assert!(r.replay_revenue <= r.analytic_revenue * 1.02);
        }
    }
}
