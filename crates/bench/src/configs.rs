//! Canonical experiment configurations: the exact workload parameters used
//! to regenerate every figure, shared by the `repro` binary, the Criterion
//! benches and the integration tests so numbers always agree.

use palb_workload::burst::{self, BurstConfig};
use palb_workload::diurnal::{self, DiurnalConfig};
use palb_workload::Trace;

/// §VI workload: one day of World-Cup-like diurnal traffic, four front-end
/// day profiles, three classes shifted by 2 h, peak 80 000 req/h per
/// front-end per class. Saturates Houston + Atlanta at the evening peak so
/// Mountain View picks up paid overflow.
pub fn section_vi_trace() -> Trace {
    diurnal::generate(&DiurnalConfig {
        peak_rate: 80_000.0,
        ..DiurnalConfig::default()
    })
}

/// Scenario-matrix base workload: the §VI day with the log-normal noise
/// disabled. Scenario scorecards are regression-gated against a committed
/// baseline, so the clean trace must be identical on every build — a
/// noiseless diurnal trace never touches the RNG and is a pure closed-form
/// function of the slot index.
pub fn scenario_base_trace() -> Trace {
    diurnal::generate(&DiurnalConfig {
        peak_rate: 80_000.0,
        noise_sigma: 0.0,
        ..DiurnalConfig::default()
    })
}

/// Scenario-matrix base system: the §VI cluster moved into the
/// grid-coupled regime. In the paper's §VI parameters a request earns
/// $10-30 of TUF utility but costs ~5×10⁻⁵ $ of electricity, so no price
/// perturbation can ever steer dispatch — the price-chasing instability
/// the adversarial scenarios probe (see "When Market Prices Drive the
/// Load" in PAPERS.md) needs the energy bill to be a first-order term.
/// This variant scales `energy_per_request` so the evening-peak energy
/// cost is a double-digit share of slot profit, which puts the optimizer
/// exactly where spot-price swings genuinely move the plan.
pub fn scenario_base_system() -> palb_cluster::System {
    let mut sys = palb_cluster::presets::section_vi();
    for dc in &mut sys.data_centers {
        for e in &mut dc.energy_per_request {
            *e *= ENERGY_STRESS_FACTOR;
        }
    }
    sys
}

/// Energy scale-up applied by [`scenario_base_system`].
pub const ENERGY_STRESS_FACTOR: f64 = 50_000.0;

/// §VII workload: the 7-hour Google-like bursty trace, volatile enough
/// that the Balanced policy's fixed 1/K shares strand capacity during
/// class-imbalanced bursts (that is where its request2 drops come from).
pub fn section_vii_trace() -> Trace {
    burst::generate(&BurstConfig {
        mean_rate: 62_000.0,
        slots: palb_cluster::presets::SECTION_VII_SLOTS,
        reversion: 0.25,
        burst_prob: 0.5,
        ..BurstConfig::default()
    })
}

/// Servers per data center of the `large-sparse` solver-perf config: the
/// Fig. 11 instance blown up until its one-slot dispatch LP carries at
/// least 20x the nonzeros of the largest Fig. 11 point (asserted at run
/// time by the sparse study, not trusted from this constant). At this
/// size the dense tableau touches every one of the ~99% structural zeros
/// on every pivot, which is exactly the regime the sparse revised-simplex
/// engine exists for.
pub const LARGE_SPARSE_SERVERS: usize = 960;

/// Fig. 10(a): the §VII system with doubled per-server service rates —
/// the paper "increased data center capacities in order to simulate a
/// relatively low workload situation (all requests can be completed)".
pub fn section_vii_low_workload_system() -> palb_cluster::System {
    let mut sys = palb_cluster::presets::section_vii();
    for dc in &mut sys.data_centers {
        for r in &mut dc.service_rate {
            *r *= 2.0;
        }
    }
    sys
}

/// Fig. 10(b): the §VII trace scaled up so that *no* approach can complete
/// all requests.
pub fn section_vii_high_workload_trace() -> Trace {
    section_vii_trace().scaled(1.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_experiment_shapes() {
        let vi = section_vi_trace();
        assert_eq!((vi.slots(), vi.front_ends(), vi.classes()), (24, 4, 3));
        let vii = section_vii_trace();
        assert_eq!((vii.slots(), vii.front_ends(), vii.classes()), (7, 1, 2));
    }

    #[test]
    fn low_workload_system_has_double_rates() {
        let base = palb_cluster::presets::section_vii();
        let low = section_vii_low_workload_system();
        assert_eq!(
            low.data_centers[0].service_rate[0],
            2.0 * base.data_centers[0].service_rate[0]
        );
    }

    #[test]
    fn high_workload_trace_is_scaled() {
        let base = section_vii_trace();
        let high = section_vii_high_workload_trace();
        assert!((high.total_offered() - 1.8 * base.total_offered()).abs() < 1e-6);
    }
}
