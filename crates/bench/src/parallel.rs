//! Rayon-parallel slot evaluation.
//!
//! The paper's controller is causal but *memoryless across slots* — each
//! slot's decision depends only on that slot's rates and prices — so a
//! whole-trace run is embarrassingly parallel. The figure harness uses
//! this to regenerate 24-hour studies at full core count while the
//! sequential `palb_core::run` remains the reference implementation (a
//! test asserts they agree bit-for-bit on the outcomes).

use palb_cluster::System;
use palb_core::{evaluate, CoreError, Policy, RunResult};
use palb_workload::Trace;
use rayon::prelude::*;

/// Runs a policy over a trace with one rayon task per slot. The
/// `make_policy` factory is called per worker so policies need not be
/// `Sync`.
pub fn run_parallel<P, F>(
    make_policy: F,
    system: &System,
    trace: &Trace,
    start_slot: usize,
) -> Result<RunResult, CoreError>
where
    P: Policy,
    F: Fn() -> P + Sync,
{
    let results: Result<Vec<_>, CoreError> = (0..trace.slots())
        .into_par_iter()
        .map(|t| {
            let mut policy = make_policy();
            let slot = start_slot + t;
            let rates = trace.slot(t);
            let dispatch = policy.decide(system, rates, slot)?;
            let outcome = evaluate(system, rates, slot, &dispatch);
            Ok((outcome, dispatch))
        })
        .collect();
    let mut name = String::new();
    {
        let p = make_policy();
        name.push_str(p.name());
    }
    let pairs = results?;
    let (slots, decisions) = pairs.into_iter().unzip();
    Ok(RunResult {
        policy: name,
        slots,
        decisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::presets;
    use palb_core::{run, BalancedPolicy, OptimizedPolicy};
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn parallel_matches_sequential() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 4);
        let seq = run(&mut OptimizedPolicy::exact(), &sys, &trace, 0).unwrap();
        let par = run_parallel(OptimizedPolicy::exact, &sys, &trace, 0).unwrap();
        assert_eq!(seq.slots.len(), par.slots.len());
        for (a, b) in seq.slots.iter().zip(&par.slots) {
            assert_eq!(a.net_profit, b.net_profit, "deterministic solver must agree");
            assert_eq!(a.slot, b.slot);
        }
        assert_eq!(seq.policy, par.policy);
    }

    #[test]
    fn parallel_balanced_matches_too() {
        let sys = presets::section_vi();
        let trace = crate::configs::section_vi_trace();
        let seq = run(&mut BalancedPolicy, &sys, &trace, 0).unwrap();
        let par = run_parallel(|| BalancedPolicy, &sys, &trace, 0).unwrap();
        for (a, b) in seq.slots.iter().zip(&par.slots) {
            assert_eq!(a.net_profit, b.net_profit);
        }
    }
}
