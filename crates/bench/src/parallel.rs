//! Rayon-parallel slot evaluation.
//!
//! The paper's controller is causal but *memoryless across slots* — each
//! slot's decision depends only on that slot's rates and prices — so a
//! whole-trace run is embarrassingly parallel. The figure harness uses
//! this to regenerate 24-hour studies at full core count while the
//! sequential `palb_core::run` remains the reference implementation (a
//! test asserts they agree bit-for-bit on the outcomes).
//!
//! Like the sequential driver, the parallel runners sanitize the trace
//! once up front (`palb_core::sanitize_rates`) and attach repair counts to
//! the affected slots' health records, so the two paths see identical
//! inputs and produce identical outcomes.

use palb_cluster::System;
use palb_core::obs::Recorder;
use palb_core::{
    evaluate, sanitize_rates, CoreError, PartialRun, Policy, RunResult, SlotContext, SlotFailure,
    SlotHealth,
};
use palb_workload::Trace;
use rayon::prelude::*;

/// Runs a policy over a trace with one rayon task per slot, keeping every
/// slot's result. The `make_policy` factory is called per slot so policies
/// need not be `Sync`. Failed slots are collected as [`SlotFailure`]s
/// rather than discarding the finished work of their siblings.
pub fn run_parallel_partial<P, F>(
    make_policy: F,
    system: &System,
    trace: &Trace,
    start_slot: usize,
) -> PartialRun
where
    P: Policy,
    F: Fn() -> P + Sync,
{
    run_parallel_partial_with(make_policy, system, trace, start_slot, &Recorder::noop())
}

/// [`run_parallel_partial`] with an observability recorder. The recorder's
/// registry is atomics behind an `Arc`, so slot tasks record concurrently
/// and the per-slot counter merges are commutative — totals match the
/// sequential driver at every thread count.
pub fn run_parallel_partial_with<P, F>(
    make_policy: F,
    system: &System,
    trace: &Trace,
    start_slot: usize,
    obs: &Recorder,
) -> PartialRun
where
    P: Policy,
    F: Fn() -> P + Sync,
{
    let (clean, events) = sanitize_rates(trace);
    let repairs = palb_core::events_per_slot(&events, clean.slots());
    let per_slot: Vec<_> = (0..clean.slots())
        .into_par_iter()
        .map(|t| {
            let mut policy = make_policy();
            // Slot 0's task reads the display name off the policy it
            // already built, so the factory is never invoked just to be
            // asked for a string and dropped.
            let name = (t == 0).then(|| policy.name().to_owned());
            let slot = start_slot + t;
            let rates = clean.slot(t);
            let ctx = SlotContext::new(system, rates, slot, obs);
            let outcome = match policy.decide(&ctx) {
                Ok(dispatch) => {
                    let mut outcome = evaluate(system, rates, slot, &dispatch);
                    outcome.health = SlotHealth::merge_sanitization(ctx.take_health(), repairs[t]);
                    palb_core::obs::record_slot_outcome(obs, &outcome);
                    Ok((outcome, dispatch))
                }
                Err(error) => {
                    obs.counter_add(palb_core::obs::names::SLOT_FAILURES_TOTAL, &[], 1);
                    Err(SlotFailure {
                        index: t,
                        slot,
                        error,
                    })
                }
            };
            (name, outcome)
        })
        .collect();
    // `Trace` guarantees at least one slot, so slot 0's task always
    // records the display name; the fallback only exists to keep this
    // path panic-free if that invariant ever weakens.
    let name = per_slot
        .first()
        .and_then(|(n, _)| n.clone())
        .unwrap_or_default();
    let mut slots = Vec::new();
    let mut decisions = Vec::new();
    let mut failures = Vec::new();
    for (_, r) in per_slot {
        match r {
            Ok((outcome, dispatch)) => {
                slots.push(outcome);
                decisions.push(dispatch);
            }
            Err(f) => failures.push(f),
        }
    }
    PartialRun {
        result: RunResult {
            policy: name,
            slots,
            decisions,
        },
        failures,
    }
}

/// Strict parallel run, mirroring `palb_core::run`'s all-or-nothing
/// contract: if any slot fails, the error of the *lowest-index* failed
/// slot is returned (the same one the sequential driver would have hit
/// first), so the two paths agree on errors as well as on results. An
/// error that does not already name its slot (anything but
/// `CoreError::Solver`) is wrapped with the failing slot attached, so a
/// 24-slot study never aborts with a bare "infeasible" and no idea which
/// slot was infeasible.
pub fn run_parallel<P, F>(
    make_policy: F,
    system: &System,
    trace: &Trace,
    start_slot: usize,
) -> Result<RunResult, CoreError>
where
    P: Policy,
    F: Fn() -> P + Sync,
{
    let partial = run_parallel_partial(make_policy, system, trace, start_slot);
    match partial.failures.into_iter().next() {
        Some(first) => Err(first.error.with_slot(first.slot)),
        None => Ok(partial.result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::presets;
    use palb_core::{run_with, BalancedPolicy, ChaosPolicy, OptimizedPolicy, RunOptions};
    use palb_workload::fault::SolverFaultSchedule;
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn parallel_matches_sequential() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 4);
        let seq = run_with(
            &mut OptimizedPolicy::exact(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let par = run_parallel(OptimizedPolicy::exact, &sys, &trace, 0).unwrap();
        assert_eq!(seq.slots.len(), par.slots.len());
        for (a, b) in seq.slots.iter().zip(&par.slots) {
            assert_eq!(
                a.net_profit, b.net_profit,
                "deterministic solver must agree"
            );
            assert_eq!(a.slot, b.slot);
        }
        assert_eq!(seq.policy, par.policy);
    }

    #[test]
    fn parallel_balanced_matches_too() {
        let sys = presets::section_vi();
        let trace = crate::configs::section_vi_trace();
        let seq = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        let par = run_parallel(|| BalancedPolicy, &sys, &trace, 0).unwrap();
        for (a, b) in seq.slots.iter().zip(&par.slots) {
            assert_eq!(a.net_profit, b.net_profit);
        }
    }

    /// Bit-for-bit outcome comparison that tolerates the NaN entries of
    /// `class_dc_delay` (NaN != NaN defeats a plain `assert_eq!`; the
    /// Debug rendering is exact for every float, NaN included).
    fn assert_outcomes_identical(a: &RunResult, b: &RunResult) {
        assert_eq!(format!("{:?}", a.slots), format!("{:?}", b.slots));
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn name_comes_from_a_slot_policy_not_a_throwaway() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 3);
        let built = AtomicUsize::new(0);
        let par = run_parallel_partial(
            || {
                built.fetch_add(1, Ordering::Relaxed);
                BalancedPolicy
            },
            &sys,
            &trace,
            0,
        );
        assert_eq!(par.result.policy, "Balanced");
        assert!(par.failures.is_empty());
        // Exactly one policy per slot; none constructed just to be asked
        // for its display name and dropped.
        assert_eq!(built.load(Ordering::Relaxed), trace.slots());
    }

    #[test]
    fn parallel_sanitization_matches_sequential() {
        let sys = presets::section_v();
        let clean = constant_trace(presets::section_v_low_arrivals(), 3);
        let mut raw: Vec<_> = (0..3).map(|t| clean.slot(t).to_vec()).collect();
        raw[1][0][0] = f64::NAN;
        raw[2][2][1] = -5.0;
        let corrupted = Trace::new_unchecked(raw);
        let seq = run_with(&mut BalancedPolicy, &sys, &corrupted, &RunOptions::at(0))
            .unwrap()
            .result;
        let par = run_parallel(|| BalancedPolicy, &sys, &corrupted, 0).unwrap();
        assert_outcomes_identical(&seq, &par);
        let h = par.slots[1].health.as_ref().unwrap();
        assert_eq!(h.sanitization_events, 1);
    }

    #[test]
    fn partial_parallel_keeps_good_slots_and_orders_failures() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 8);
        let schedule = SolverFaultSchedule::new(0.5, 21);
        let make = || ChaosPolicy::new(BalancedPolicy, schedule.clone());
        let par = run_parallel_partial(make, &sys, &trace, 0);
        let mut seq_chaos = ChaosPolicy::new(BalancedPolicy, schedule.clone());
        let seq = run_with(&mut seq_chaos, &sys, &trace, &RunOptions::best_effort(0)).unwrap();
        assert_eq!(par.failures.len(), seq.failures.len());
        assert!(!par.is_complete());
        let par_failed: Vec<usize> = par.failures.iter().map(|f| f.index).collect();
        let seq_failed: Vec<usize> = seq.failures.iter().map(|f| f.index).collect();
        assert_eq!(par_failed, seq_failed, "same slots fail in either path");
        assert_outcomes_identical(&par.result, &seq.result);
        // The strict wrapper surfaces the lowest-index failure. Solver
        // errors already name their slot and pass through unwrapped.
        let err = run_parallel(make, &sys, &trace, 0).unwrap_err();
        let first = par_failed[0];
        assert!(
            matches!(err, CoreError::Solver { slot, .. } if slot == first),
            "{err:?} should be slot {first}"
        );
    }

    /// A policy that fails one specific slot with a context-free error.
    struct FailsAt(usize);

    impl Policy for FailsAt {
        fn name(&self) -> &str {
            "FailsAt"
        }

        fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<palb_core::Dispatch, CoreError> {
            if ctx.slot == self.0 {
                Err(CoreError::Infeasible)
            } else {
                BalancedPolicy.decide(ctx)
            }
        }
    }

    #[test]
    fn strict_wrapper_names_the_failing_slot() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 6);
        // start_slot 10: schedule slot 13 fails -> trace index 3.
        let err = run_parallel(|| FailsAt(13), &sys, &trace, 10).unwrap_err();
        match err {
            CoreError::Slot { slot, source } => {
                assert_eq!(slot, 13, "wrapped error names the schedule slot");
                assert_eq!(*source, CoreError::Infeasible);
            }
            other => panic!("expected slot-wrapped error, got {other:?}"),
        }
        // And the rendered message points straight at the slot.
        let text = run_parallel(|| FailsAt(13), &sys, &trace, 10)
            .unwrap_err()
            .to_string();
        assert!(text.contains("slot 13"), "{text}");
        assert!(text.contains("infeasible"), "{text}");
    }
}
