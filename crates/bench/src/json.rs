//! JSON export of run results, for plotting the regenerated figures with
//! external tooling (the paper's figures are line charts; the CSV output
//! covers spreadsheets, this covers notebooks).

use palb_cluster::System;
use palb_core::obs::Snapshot;
use palb_core::report::{power_churn, powered_on_series};
use palb_core::{RunResult, SlotHealth};
use serde_json::{json, Value};

use crate::experiments::fault_tolerance::FaultToleranceResult;
use crate::experiments::portfolio_bench::PortfolioStudy;
use crate::experiments::scenario_matrix::{self, ScenarioMatrix};
use crate::experiments::serve_bench::ServeStudy;
use crate::experiments::solver_perf::{SolverPerf, ThreadScaling};
use crate::experiments::sparse_lp::SparseStudy;

/// Serializes a slot's health record (`null` for nominal slots without
/// one).
fn health_to_json(health: &Option<SlotHealth>) -> Value {
    match health {
        Some(h) => json!({
            "tier": h.tier_used.map(|t| t.to_string()),
            "retries": h.retries,
            "sanitization_events": h.sanitization_events,
            "solve_iterations": h.solve_iterations,
            "degraded": h.degraded,
            "replay_age_slots": h.replay_age_slots,
            "solver": solver_stats_to_json(&h.solver),
        }),
        None => Value::Null,
    }
}

/// Serializes per-slot solver telemetry (nodes, warm-start hit rate,
/// pivots the warm path saved over a hypothetical all-cold tree).
fn solver_stats_to_json(s: &palb_core::SolverStats) -> Value {
    json!({
        "nodes_explored": s.nodes_explored,
        "warm_attempts": s.warm_attempts,
        "warm_hits": s.warm_hits,
        "warm_hit_rate": s.warm_hit_rate(),
        "warm_pivots": s.warm_pivots,
        "cold_solves": s.cold_solves,
        "cold_pivots": s.cold_pivots,
        "pivots_saved": s.pivots_saved(),
        "subtrees": s.subtrees,
        "threads_used": s.threads_used,
        "ftran_total": s.ftran_total,
        "ftran_nnz_total": s.ftran_nnz_total,
        "refactor_total": s.refactor_total,
        "cache_hits": s.cache_hits,
        "cache_misses": s.cache_misses,
        "cache_evictions": s.cache_evictions,
    })
}

/// Serializes the portfolio scale-gate study (`BENCH_portfolio.json`):
/// the paper-size bitwise thread sweep (with the exact objective bits
/// CI pins against `BENCH_portfolio_baseline.json`) and the scale gate's
/// budgeted-exact vs portfolio head-to-head.
pub fn portfolio_study_to_json(s: &PortfolioStudy) -> Value {
    let paper: Vec<Value> = s
        .paper
        .iter()
        .map(|p| {
            json!({
                "threads": p.threads,
                "objective_bits": format!("{:#018x}", p.objective_bits),
                "nodes": p.nodes,
                "ms": p.ms,
            })
        })
        .collect();
    let g = &s.scale;
    json!({
        "paper": paper,
        "paper_bitwise_invariant": s.paper_bitwise_invariant(),
        "exact_objective_bits": format!("{:#018x}", s.paper_objective_bits()),
        "scale": {
            "servers": g.servers,
            "log2_space": g.log2_space,
            "log2_paper_space": g.log2_paper_space,
            "space_ratio": s.space_ratio(),
            "budget_ms": g.budget_ms,
            "exact_budgeted_proven": g.exact_budgeted_proven,
            "exact_budgeted_objective": g.exact_budgeted_objective,
            "reference_objective": g.reference_objective,
            "reference_ms": g.reference_ms,
            "portfolio_objective": g.portfolio_objective,
            "portfolio_ms": g.portfolio_ms,
            "portfolio_proven": g.portfolio_proven,
            "cache_hits": g.cache_hits,
            "cache_misses": g.cache_misses,
            "retention": s.retention(),
        },
    })
}

/// Serializes the sparse-engine study (`BENCH_solver_sparse.json`): Fig. 11
/// branch-and-bound parity, fault-injected scenario parity per thread
/// count, and the large-sparse dense-vs-sparse head-to-head.
pub fn sparse_study_to_json(s: &SparseStudy) -> Value {
    let bb: Vec<Value> = s
        .bb_parity
        .iter()
        .map(|p| json!({"servers": p.servers, "bitwise_equal": p.bitwise_equal}))
        .collect();
    let chaos: Vec<Value> = s
        .chaos_parity
        .iter()
        .map(|p| json!({"threads": p.threads, "bitwise_equal": p.bitwise_equal}))
        .collect();
    let l = &s.large;
    json!({
        "reps": s.reps,
        "all_bitwise_equal": s.all_bitwise_equal(),
        "bb_parity": bb,
        "chaos_parity": chaos,
        "large_sparse": {
            "servers": l.servers,
            "rows": l.rows,
            "cols": l.cols,
            "nonzeros": l.nonzeros,
            "fig11_nonzeros": l.fig11_nonzeros,
            "meets_size_floor": l.meets_size_floor(),
            "dense_ms": l.dense_ms,
            "sparse_ms": l.sparse_ms,
            "speedup": l.speedup,
            "bitwise_equal": l.bitwise_equal,
        },
    })
}

/// Serializes the serving-layer replay study (`BENCH_serve.json`): the
/// 1/2/4/8-thread throughput sweep with route-latency quantiles, the
/// fidelity gates (thread invariance, swap reconciliation, mix
/// divergence), and the scripted-drift run.
pub fn serve_study_to_json(s: &ServeStudy) -> Value {
    let sweep: Vec<Value> = s
        .sweep
        .iter()
        .map(|p| {
            json!({
                "threads": p.threads,
                "requests": p.requests,
                "routed": p.routed,
                "shed": p.shed,
                "elapsed_seconds": p.elapsed_seconds,
                "routed_per_second": p.routed_per_second,
                "route_p50_seconds": p.route_p50_seconds,
                "route_p99_seconds": p.route_p99_seconds,
                "boundary_swaps": p.boundary_swaps,
                "total_swaps": p.total_swaps,
                "max_mix_divergence": p.max_mix_divergence,
            })
        })
        .collect();
    let d = &s.drift;
    json!({
        "slots": s.slots,
        "requests_per_slot": s.requests_per_slot,
        "peak_routed_per_second": s.peak_routed_per_second(),
        "thread_invariant": s.thread_invariant,
        "all_swaps_reconcile": s.all_swaps_reconcile(),
        "worst_mix_divergence": s.worst_mix_divergence(),
        "sweep": sweep,
        "drift": {
            "drift_replans": d.drift_replans,
            "drift_checks": d.drift_checks,
            "boundary_swaps": d.boundary_swaps,
            "total_swaps": d.total_swaps,
            "requests": d.requests,
            "drop_free": d.drop_free,
        },
        "obs": snapshot_to_json(&s.obs),
    })
}

/// Serializes a metrics snapshot: one object per sample, keyed by family
/// name and labels. The `palb-obs` JSONL exporter already emits one JSON
/// object per line; here each line is re-parsed into the surrounding
/// document so experiment files stay a single JSON value.
pub fn snapshot_to_json(snap: &Snapshot) -> Value {
    let samples: Vec<Value> = snap
        .to_jsonl()
        .lines()
        .map(|line| serde_json::from_str(line).expect("palb-obs emits valid JSON lines"))
        .collect();
    Value::Array(samples)
}

/// Serializes a thread-scaling sweep of the parallel branch-and-bound.
pub fn thread_scaling_to_json(t: &ThreadScaling) -> Value {
    let points: Vec<Value> = t
        .points
        .iter()
        .map(|p| {
            json!({
                "threads": p.threads,
                "ms": p.ms,
                "speedup": p.speedup,
                "subtrees": p.subtrees,
                "threads_used": p.threads_used,
                "bitwise_equal": p.bitwise_equal,
                "within_gap_band": p.within_gap_band,
            })
        })
        .collect();
    json!({
        "servers": t.servers,
        "reps": t.reps,
        "sequential_ms": t.sequential_ms,
        "best_parallel_speedup": t.best_parallel_speedup(),
        "all_bitwise_equal": t.all_bitwise_equal(),
        "all_within_gap_band": t.all_within_gap_band(),
        "points": points,
    })
}

/// Serializes a solver-perf study (cold rebuild vs incremental workspace),
/// with the thread-scaling sweep attached when one was run.
pub fn solver_perf_to_json(s: &SolverPerf, sweep: Option<&ThreadScaling>) -> Value {
    let points: Vec<Value> = s
        .points
        .iter()
        .map(|p| {
            json!({
                "servers": p.servers,
                "cold_ms": p.cold_ms,
                "incremental_ms": p.incremental_ms,
                "speedup": p.speedup,
                "nodes": p.nodes,
                "bitwise_equal": p.bitwise_equal,
                "solver": solver_stats_to_json(&p.stats),
            })
        })
        .collect();
    json!({
        "reps": s.reps,
        "overall_speedup": s.overall_speedup(),
        "all_bitwise_equal": s.all_bitwise_equal(),
        "points": points,
        "thread_scaling": sweep.map(thread_scaling_to_json),
        "obs": snapshot_to_json(&s.obs),
    })
}

/// Serializes a run (per-slot series + aggregates) to a JSON value.
pub fn run_to_json(system: &System, run: &RunResult) -> Value {
    let slots: Vec<Value> = run
        .slots
        .iter()
        .map(|s| {
            json!({
                "slot": s.slot,
                "revenue": s.revenue,
                "energy_cost": s.energy_cost,
                "transfer_cost": s.transfer_cost,
                "net_profit": s.net_profit,
                "offered": s.offered,
                "dispatched": s.dispatched,
                "completed": s.completed,
                "powered_on": s.powered_on,
                "class_dc_rate": s.class_dc_rate,
                "health": health_to_json(&s.health),
            })
        })
        .collect();
    json!({
        "policy": run.policy,
        "system": {
            "classes": system.classes.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
            "data_centers": system
                .data_centers
                .iter()
                .map(|d| d.name.clone())
                .collect::<Vec<_>>(),
            "front_ends": system.num_front_ends(),
            "slot_length": system.slot_length,
        },
        "totals": {
            "net_profit": run.total_net_profit(),
            "revenue": run.total_revenue(),
            "cost": run.total_cost(),
            "offered": run.total_offered(),
            "completed": run.total_completed(),
            "completion_ratio": run.completion_ratio(),
            "power_churn": power_churn(run),
        },
        "powered_on_series": powered_on_series(run),
        "slots": slots,
    })
}

/// Serializes a two-policy comparison.
pub fn comparison_to_json(system: &System, a: &RunResult, b: &RunResult) -> Value {
    json!({
        "runs": [run_to_json(system, a), run_to_json(system, b)],
    })
}

/// Serializes a fault-tolerance study result.
pub fn fault_tolerance_to_json(r: &FaultToleranceResult) -> Value {
    let tiers: Vec<Value> = r
        .tier_counts
        .iter()
        .map(|(t, n)| json!({ "tier": t.to_string(), "slots": n }))
        .collect();
    json!({
        "fault_rate": r.fault_rate,
        "seed": r.seed,
        "clean_profit": r.clean_profit,
        "resilient_profit": r.resilient_profit,
        "retention": r.retention,
        "tier_histogram": tiers,
        "sanitization_events": r.sanitization_events,
        "price_incidents": r.price_incidents,
        "retries": r.retries,
        "degraded_slots": r.degraded_slots,
        "completed_slots": r.completed_slots,
        "bare_abort": r.bare_abort,
        "obs": snapshot_to_json(&r.obs),
    })
}

/// Serializes the scenario stress matrix: the per-cell retention
/// scorecard plus the two CI gate values, so the `stress` smoke job can
/// both archive the artifact and diff it against the committed baseline.
pub fn scenario_matrix_to_json(m: &ScenarioMatrix) -> Value {
    let cells: Vec<Value> = m
        .cells
        .iter()
        .map(|c| {
            json!({
                "scenario": c.scenario,
                "policy": c.policy,
                "profit": c.profit,
                "surcharge": c.surcharge,
                "clean_profit": c.clean_profit,
                "clean_surcharge": c.clean_surcharge,
                "retention": c.retention,
                "completed_slots": c.completed_slots,
                "total_slots": c.total_slots,
                "failed_slots": c.failed_slots,
                "degraded_slots": c.degraded_slots,
                "tier_escalations": c.tier_escalations,
            })
        })
        .collect();
    json!({
        "seed": m.seed,
        "threads": m.threads,
        "lp_engine": scenario_matrix::engine_name(m.engine),
        "scenarios": m.scenarios,
        "policies": m.policies,
        "resilient_floor": m.resilient_floor(),
        "damping_gain_on_oscillation": m.damping_gain_on_oscillation(),
        "cells": cells,
        "obs": snapshot_to_json(&m.obs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::presets;
    use palb_core::{run_with, BalancedPolicy, RunOptions};
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn json_round_trips_through_serde() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 2);
        let r = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        let v = run_to_json(&sys, &r);
        // Parseable and structurally sound.
        let text = serde_json::to_string_pretty(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["policy"], "Balanced");
        assert_eq!(back["slots"].as_array().unwrap().len(), 2);
        let total = back["totals"]["net_profit"].as_f64().unwrap();
        assert!((total - r.total_net_profit()).abs() < 1e-6);
        assert_eq!(back["system"]["data_centers"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn nominal_slots_serialize_null_health() {
        assert_eq!(health_to_json(&None), Value::Null);
    }

    #[test]
    fn resilient_slots_carry_solver_telemetry() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        let r = run_with(
            &mut palb_core::ResilientPolicy::default(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let h = r.slots[0]
            .health
            .as_ref()
            .expect("resilient slots carry health");
        assert!(h.solver.nodes_explored >= 1);
        assert!(h.solver.warm_hit_rate() >= 0.0);
        // The telemetry block must serialize without panicking.
        let _ = run_to_json(&sys, &r);
    }

    #[test]
    fn solver_perf_json_reports_speedup_and_telemetry() {
        let s = crate::experiments::solver_perf::study(2, 1);
        assert!(s.overall_speedup() > 0.0);
        assert!(s.all_bitwise_equal());
        assert_eq!(s.points.len(), 1);
        assert!(s.points[0].stats.warm_attempts > 0);
        let v = solver_perf_to_json(&s, None);
        assert!(v["thread_scaling"].is_null());
        // Every obs sample re-parsed from the JSONL exporter, with the
        // bb-node counter present and positive.
        let obs = v["obs"].as_array().expect("obs is an array of samples");
        assert!(!obs.is_empty());
        let nodes = obs
            .iter()
            .find(|s| s["name"] == "palb_bb_nodes_total")
            .expect("bb-node family exported");
        assert_eq!(nodes["kind"], "counter");
        assert!(nodes["value"].as_u64().unwrap() > 0);
    }

    #[test]
    fn thread_scaling_json_carries_determinism_verdict() {
        let t = crate::experiments::solver_perf::thread_scaling(2, &[1, 2], 1);
        let v = thread_scaling_to_json(&t);
        // The hard contract holds on every instance; bitwise equality is
        // reported but may legitimately be false on a near-tie plateau.
        assert_eq!(v["all_within_gap_band"], serde_json::json!(true));
        assert!(v["all_bitwise_equal"].as_bool().is_some());
        assert_eq!(v["points"].as_array().unwrap().len(), 2);
        let full = solver_perf_to_json(&crate::experiments::solver_perf::study(2, 1), Some(&t));
        assert!(full["thread_scaling"]["sequential_ms"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn scenario_matrix_json_carries_cells_and_gates() {
        let picks: Vec<_> = palb_workload::scenario::builtin()
            .into_iter()
            .filter(|s| s.name() == "price_shock")
            .collect();
        let m = crate::experiments::scenario_matrix::matrix_for(7, 1, &picks);
        let v = scenario_matrix_to_json(&m);
        assert_eq!(v["seed"].as_u64(), Some(7));
        let cells = v["cells"].as_array().unwrap();
        assert_eq!(cells.len(), m.policies.len());
        assert!(cells[0]["retention"].as_f64().unwrap().is_finite());
        assert!(v["resilient_floor"].as_f64().unwrap().is_finite());
        // Single-scenario subset has no oscillation row: gain is NaN → null.
        assert!(v["damping_gain_on_oscillation"].is_null());
        assert!(!v["obs"].as_array().unwrap().is_empty());
    }

    #[test]
    fn serve_study_json_carries_sweep_and_gates() {
        let s = crate::experiments::serve_bench::study(&[1], 2, 30_000);
        let v = serve_study_to_json(&s);
        assert_eq!(v["slots"].as_u64(), Some(2));
        assert!(v["peak_routed_per_second"].as_f64().unwrap() > 0.0);
        assert_eq!(v["sweep"].as_array().unwrap().len(), 1);
        assert_eq!(v["all_swaps_reconcile"], serde_json::json!(true));
        assert!(v["drift"]["drop_free"].as_bool().unwrap());
        assert!(v["drift"]["drift_replans"].as_u64().unwrap() >= 1);
        // The drift run's metrics snapshot rides along for the artifact.
        assert!(!v["obs"].as_array().unwrap().is_empty());
    }

    #[test]
    fn comparison_holds_two_runs() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        let r = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        let v = comparison_to_json(&sys, &r, &r);
        assert_eq!(v["runs"].as_array().unwrap().len(), 2);
    }
}
