//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p palb-bench --bin repro -- <target>
//!
//! targets:
//!   fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//!   tables       all setup tables (II-XI)
//!   validate     Eq.1 vs discrete-event replay
//!   quantile     mean-delay vs per-request quantile SLA extension
//!   forecast     oracle vs forecast-driven control (Kalman et al.)
//!   robustness   service-time distribution sensitivity (M/G/1 replay)
//!   three-level  three-level TUFs (the paper's Eq. 18-22 case)
//!   ablations    the five DESIGN.md ablations
//!   fault-tolerance  degraded-mode ladder vs bare optimizer under faults
//!   solver-perf  warm-started incremental B&B vs cold rebuild (fails if
//!                incremental is slower or the incumbent drifts)
//!   sparse-lp    sparse revised-simplex engine vs dense tableau (fails if
//!                any answer drifts bitwise or the large-sparse config
//!                isn't at least 10x faster sparse)
//!   scenarios    adversarial scenario matrix with profit-retention
//!                scorecard (fails if the resilient floor drops below 80%
//!                or damping stops beating plain Resilient on oscillation)
//!   serve        live-dispatcher replay bench (fails below the
//!                throughput floor, on thread-variant routing, on swap
//!                mis-reconciliation, on mix divergence, or if a scripted
//!                mid-slot shift goes undetected)
//!   portfolio    anytime-portfolio scale gate (fails if the portfolio
//!                retains < 99% of exact profit inside the budget at the
//!                >= 8x scale config, if the exact tree finishes inside
//!                the budget there, or if paper-size exact results drift
//!                bitwise across threads or from the committed baseline);
//!                exports BENCH_portfolio.json
//!   all          everything above, in order
//! ```

use std::env;
use std::process::ExitCode;

use palb_bench::experiments::{
    ablations, fault_tolerance, forecasting, foundations, portfolio_bench, quantile, robustness,
    scenario_matrix, section_v, section_vi, section_vii, serve_bench, solver_perf, sparse_lp,
    three_level, validate,
};
use palb_bench::json::portfolio_study_to_json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <target>\n\
         targets: fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 \
         tables validate quantile forecast robustness three-level ablations \
         fault-tolerance solver-perf sparse-lp scenarios serve portfolio all"
    );
    ExitCode::FAILURE
}

/// Runs the sparse-engine study and enforces its two gates: bitwise
/// parity on every configuration (Fig. 11 branch-and-bound, fault-injected
/// scenario runs at 1/2/4/8 threads, the large-sparse LP) and a >= 10x
/// sparse-over-dense win on the large-sparse config, which must itself
/// carry >= 20x the Fig. 11 nonzeros.
fn run_sparse_lp() -> ExitCode {
    let s = sparse_lp::study(3);
    print!("{}", sparse_lp::render(&s));
    if !s.all_bitwise_equal() {
        eprintln!("sparse-lp: the engines drifted bitwise");
        return ExitCode::FAILURE;
    }
    if !s.large.meets_size_floor() {
        eprintln!(
            "sparse-lp: large-sparse config has {} nonzeros, below 20x the Fig 11 reference's {}",
            s.large.nonzeros, s.large.fig11_nonzeros
        );
        return ExitCode::FAILURE;
    }
    if s.large.speedup < 10.0 {
        eprintln!(
            "sparse-lp: sparse engine only {:.1}x faster than dense on the large-sparse config (gate: 10x)",
            s.large.speedup
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Conservative CI throughput floor for the serving bench, routed req/s.
/// Release builds on real hardware clear 2M+ req/s aggregate; the floor
/// only has to catch order-of-magnitude regressions on shared runners.
const SERVE_THROUGHPUT_FLOOR: f64 = 500_000.0;

/// Routing-mix divergence ceiling for the serving bench: the worst
/// per-category gap between the empirical mix and the plan's φ.
const SERVE_MIX_CEILING: f64 = 0.05;

/// Runs the serving-layer replay study and enforces its gates:
/// throughput above the conservative floor, thread-invariant routing,
/// exact swap reconciliation, bounded routing-mix divergence, and a
/// detected (drop-free) scripted mid-slot shift.
fn run_serve() -> ExitCode {
    let s = serve_bench::study(&[1, 2, 4, 8], 3, 2_000_000);
    print!("{}", serve_bench::render(&s));
    if s.peak_routed_per_second() < SERVE_THROUGHPUT_FLOOR {
        eprintln!(
            "serve: peak throughput {:.0} req/s below the {:.0} req/s floor",
            s.peak_routed_per_second(),
            SERVE_THROUGHPUT_FLOOR
        );
        return ExitCode::FAILURE;
    }
    if !s.thread_invariant {
        eprintln!("serve: routed/shed totals drifted across thread counts");
        return ExitCode::FAILURE;
    }
    if !s.all_swaps_reconcile() {
        eprintln!("serve: swap counters failed to reconcile with the slot count");
        return ExitCode::FAILURE;
    }
    if s.worst_mix_divergence() > SERVE_MIX_CEILING {
        eprintln!(
            "serve: routing mix diverged {:.4} from the plan's fractions (ceiling {:.2})",
            s.worst_mix_divergence(),
            SERVE_MIX_CEILING
        );
        return ExitCode::FAILURE;
    }
    if s.drift.drift_replans < 1 {
        eprintln!(
            "serve: scripted mid-slot shift went undetected ({} checks)",
            s.drift.drift_checks
        );
        return ExitCode::FAILURE;
    }
    if !s.drift.drop_free {
        eprintln!("serve: hot swaps dropped requests during the drift run");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Committed baseline pinning the paper-size exact objective bits.
const PORTFOLIO_BASELINE: &str = "BENCH_portfolio_baseline.json";

/// Runs the anytime-portfolio scale gate and enforces it: paper-size
/// exact results bitwise-invariant across threads (and vs the committed
/// baseline when present), a scale config whose search space is at
/// least 8x the paper's where the exact tree cannot finish inside the
/// budget, and >= 99% profit retention by the portfolio inside that
/// same budget. Exports `BENCH_portfolio.json`.
fn run_portfolio() -> ExitCode {
    let s = portfolio_bench::study(
        portfolio_bench::SCALE_SERVERS,
        portfolio_bench::DEFAULT_BUDGET_MS,
    );
    print!("{}", portfolio_bench::render(&s));

    let json = portfolio_study_to_json(&s);
    let text = serde_json::to_string_pretty(&json).expect("portfolio study serializes");
    if let Err(e) = std::fs::write("BENCH_portfolio.json", text) {
        eprintln!("portfolio: BENCH_portfolio.json: {e}");
        return ExitCode::FAILURE;
    }

    if !s.paper_bitwise_invariant() {
        eprintln!("portfolio: paper-size exact results drifted bitwise across thread counts");
        return ExitCode::FAILURE;
    }
    if s.space_ratio() < portfolio_bench::SPACE_RATIO_FLOOR {
        eprintln!(
            "portfolio: scale config is only {:.1}x the paper size (floor {:.0}x)",
            s.space_ratio(),
            portfolio_bench::SPACE_RATIO_FLOOR
        );
        return ExitCode::FAILURE;
    }
    if s.scale.exact_budgeted_proven {
        eprintln!(
            "portfolio: exact finished inside the {} ms budget — the scale config no longer stresses it",
            s.scale.budget_ms
        );
        return ExitCode::FAILURE;
    }
    if s.retention() < portfolio_bench::RETENTION_FLOOR {
        eprintln!(
            "portfolio: retention {:.4} below the {:.2} floor",
            s.retention(),
            portfolio_bench::RETENTION_FLOOR
        );
        return ExitCode::FAILURE;
    }
    match std::fs::read_to_string(PORTFOLIO_BASELINE) {
        Ok(text) => {
            let bits = serde_json::from_str::<serde_json::Value>(&text)
                .ok()
                .and_then(|v| {
                    v["exact_objective_bits"]
                        .as_str()
                        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
                });
            let Some(bits) = bits else {
                eprintln!("portfolio: {PORTFOLIO_BASELINE}: no parsable `exact_objective_bits`");
                return ExitCode::FAILURE;
            };
            if let Err(e) = portfolio_bench::check_baseline(&s, bits, PORTFOLIO_BASELINE) {
                eprintln!("portfolio: {e}");
                return ExitCode::FAILURE;
            }
            println!("bitwise pin vs {PORTFOLIO_BASELINE}: ok ({bits:#018x})");
        }
        Err(_) => {
            eprintln!("portfolio: no {PORTFOLIO_BASELINE} in the working directory — skipping the bitwise pin");
        }
    }
    ExitCode::SUCCESS
}

/// Runs the scenario stress matrix and enforces its two scorecard gates.
fn run_scenarios() -> ExitCode {
    let m = scenario_matrix::matrix(scenario_matrix::DEFAULT_SEED, 2);
    print!("{}", scenario_matrix::render(&m));
    if m.resilient_floor() < 0.8 {
        eprintln!(
            "scenarios: resilient retention floor {:.1}% below the 80% gate",
            100.0 * m.resilient_floor()
        );
        return ExitCode::FAILURE;
    }
    if !(m.damping_gain_on_oscillation() > 0.0) {
        eprintln!(
            "scenarios: damping no longer beats plain Resilient on price_oscillation ({:+.2} pp)",
            100.0 * m.damping_gain_on_oscillation()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(target) = args.first().map(String::as_str) else {
        return usage();
    };

    // Targets sharing an expensive run reuse one state object.
    match target {
        "fig1" => print!("{}", foundations::fig1()),
        "fig3" => print!("{}", foundations::fig3()),
        "tables" => print!("{}", foundations::tables()),
        "fig4" => print!("{}", section_v::fig4_report()),
        "fig5" => print!("{}", section_vi::fig5()),
        "fig6" => {
            let state = section_vi::run_section_vi();
            print!("{}", section_vi::fig6(&state));
        }
        "fig7" => {
            let state = section_vi::run_section_vi();
            print!("{}", section_vi::fig7(&state));
        }
        "fig8" => {
            let state = section_vii::run_section_vii();
            print!("{}", section_vii::fig8(&state));
        }
        "fig9" => {
            let state = section_vii::run_section_vii();
            print!("{}", section_vii::fig9(&state));
        }
        "fig10" => print!("{}", section_vii::fig10()),
        "fig11" => print!("{}", section_vii::fig11_report(5)),
        "validate" => print!("{}", validate::report()),
        "quantile" => print!("{}", quantile::report()),
        "forecast" => print!("{}", forecasting::report()),
        "robustness" => print!("{}", robustness::report()),
        "three-level" => print!("{}", three_level::report()),
        "ablations" => print!("{}", ablations::all()),
        "fault-tolerance" => print!("{}", fault_tolerance::report(0.1, 42)),
        "scenarios" => return run_scenarios(),
        "portfolio" => return run_portfolio(),
        "serve" => return run_serve(),
        "sparse-lp" => return run_sparse_lp(),
        "solver-perf" => {
            // CI smoke: a slower-than-cold incremental path or any
            // incumbent drift fails the run, not just the printout.
            let s = solver_perf::study(5, 3);
            print!("{}", solver_perf::render(&s));
            if !s.all_bitwise_equal() {
                eprintln!("solver-perf: incumbent drifted between modes");
                return ExitCode::FAILURE;
            }
            if s.overall_speedup() < 1.0 {
                eprintln!(
                    "solver-perf: incremental slower than cold rebuild ({:.2}x)",
                    s.overall_speedup()
                );
                return ExitCode::FAILURE;
            }
            // Thread-scaling sweep of the parallel search. Drift beyond
            // the documented gap band always fails (bitwise equality is
            // additionally reported per point); the wall-clock gate only
            // applies where real cores exist to win on.
            let t = solver_perf::thread_scaling(5, &solver_perf::DEFAULT_THREAD_SWEEP, 3);
            println!();
            print!("{}", solver_perf::render_thread_scaling(&t));
            if !t.all_within_gap_band() {
                eprintln!(
                    "solver-perf: incumbent drifted beyond the gap band across thread counts"
                );
                return ExitCode::FAILURE;
            }
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            if cores >= 2 && t.best_parallel_speedup() < 1.0 {
                eprintln!(
                    "solver-perf: parallel search slower than sequential on {} cores ({:.2}x)",
                    cores,
                    t.best_parallel_speedup()
                );
                return ExitCode::FAILURE;
            }
        }
        "all" => {
            print!("{}", foundations::fig1());
            println!();
            print!("{}", foundations::fig3());
            println!();
            print!("{}", foundations::tables());
            println!();
            print!("{}", section_v::fig4_report());
            println!();
            print!("{}", section_vi::fig5());
            println!();
            let vi = section_vi::run_section_vi();
            print!("{}", section_vi::fig6(&vi));
            println!();
            print!("{}", section_vi::fig7(&vi));
            println!();
            let vii = section_vii::run_section_vii();
            print!("{}", section_vii::fig8(&vii));
            println!();
            print!("{}", section_vii::fig9(&vii));
            println!();
            print!("{}", section_vii::fig10());
            println!();
            print!("{}", section_vii::fig11_report(5));
            println!();
            print!("{}", validate::report());
            println!();
            print!("{}", quantile::report());
            println!();
            print!("{}", forecasting::report());
            println!();
            print!("{}", robustness::report());
            println!();
            print!("{}", three_level::report());
            println!();
            print!("{}", ablations::all());
            println!();
            print!("{}", fault_tolerance::report(0.1, 42));
            println!();
            print!("{}", solver_perf::report(5));
            println!();
            if run_sparse_lp() != ExitCode::SUCCESS {
                return ExitCode::FAILURE;
            }
            println!();
            if run_serve() != ExitCode::SUCCESS {
                return ExitCode::FAILURE;
            }
            println!();
            if run_scenarios() != ExitCode::SUCCESS {
                return ExitCode::FAILURE;
            }
            println!();
            return run_portfolio();
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
