//! Criterion benches for the queueing substrate: event-driven simulation
//! throughput, the Lindley fast path, and statistics accumulation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use palb_queueing::des::{simulate_network, QueueSpec};
use palb_queueing::{simulate_mm1_lindley, Welford};

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing/des");
    // ~8 events per time unit at these rates; horizon 5_000 ≈ 40k events.
    group.throughput(Throughput::Elements(40_000));
    group.bench_function("mm1_horizon_5000", |b| {
        b.iter(|| {
            let r = palb_queueing::simulate_mm1(4.0, 6.0, 5_000.0, 100.0, 42);
            black_box(r.sojourn.mean())
        });
    });
    group.bench_function("network_16_queues", |b| {
        let specs: Vec<QueueSpec> = (0..16)
            .map(|i| QueueSpec {
                arrival_rate: 1.0 + 0.2 * i as f64,
                service_rate: 6.0,
            })
            .collect();
        b.iter(|| {
            let r = simulate_network(&specs, 500.0, 50.0, 7);
            black_box(r.len())
        });
    });
    group.finish();
}

fn bench_lindley(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing/lindley");
    group.throughput(Throughput::Elements(200_000));
    group.bench_function("mm1_200k_customers", |b| {
        b.iter(|| {
            let r = simulate_mm1_lindley(4.0, 6.0, 200_000, 1_000, 11);
            black_box(r.sojourn.mean())
        });
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing/stats");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("welford_1m_pushes", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for i in 0..1_000_000u32 {
                w.push(f64::from(i & 1023));
            }
            black_box(w.variance())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_des, bench_lindley, bench_stats);
criterion_main!(benches);
