//! Criterion benches for the multilevel solvers — the quantitative version
//! of the paper's Fig. 11 and of DESIGN.md ablations 1 and 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use palb_bench::configs::section_vii_trace;
use palb_cluster::presets;
use palb_core::{
    balanced_dispatch, solve_bb, solve_bigm, solve_uniform_levels, BigMOptions, SolverConfig,
};

fn section_vii_slot() -> (palb_cluster::System, Vec<Vec<f64>>, usize) {
    let sys = presets::section_vii();
    let trace = section_vii_trace();
    let rates = trace.slot(2).clone();
    (sys, rates, presets::SECTION_VII_START_HOUR + 2)
}

fn bench_multilevel_solvers(c: &mut Criterion) {
    let (sys, rates, slot) = section_vii_slot();
    let mut group = c.benchmark_group("solver/section_vii_slot");
    group.sample_size(10);

    group.bench_function("bb_symmetry", |b| {
        b.iter(|| {
            black_box(
                solve_bb(&sys, &rates, slot, &SolverConfig::exact())
                    .unwrap()
                    .solve
                    .objective,
            )
        });
    });
    group.bench_function("uniform_levels", |b| {
        b.iter(|| {
            black_box(
                solve_uniform_levels(&sys, &rates, slot)
                    .unwrap()
                    .solve
                    .objective,
            )
        });
    });
    group.bench_function("bigm_penalty", |b| {
        let mut opts = BigMOptions::default();
        opts.penalty.inner.max_iters = 150;
        opts.penalty.max_outer = 4;
        b.iter(|| {
            black_box(
                solve_bigm(&sys, &rates, slot, &opts)
                    .unwrap()
                    .polished
                    .objective,
            )
        });
    });
    group.bench_function("balanced_baseline", |b| {
        b.iter(|| black_box(balanced_dispatch(&sys, &rates, slot).total_dispatched()));
    });
    group.finish();
}

/// Fig. 11 as a Criterion sweep: plain per-server branch-and-bound time
/// versus servers per data center.
fn bench_fig11_scaling(c: &mut Criterion) {
    let trace = section_vii_trace();
    let base_rates = trace.slot(2).clone();
    let mut group = c.benchmark_group("solver/fig11_bb_plain");
    group.sample_size(10);
    for m in 1..=4usize {
        let mut sys = presets::section_vii();
        for dc in &mut sys.data_centers {
            dc.servers = m;
        }
        let scale = m as f64 / 6.0;
        let rates: Vec<Vec<f64>> = base_rates
            .iter()
            .map(|row| row.iter().map(|r| r * scale).collect())
            .collect();
        let slot = presets::SECTION_VII_START_HOUR + 2;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let opts = SolverConfig::exact().symmetry_breaking(false);
            b.iter(|| black_box(solve_bb(&sys, &rates, slot, &opts).unwrap().nodes));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multilevel_solvers, bench_fig11_scaling);
criterion_main!(benches);
