//! Criterion benches for the simplex substrate: random dense LPs of
//! growing size, the real §V dispatch LP, and the pivot-rule ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use palb_cluster::presets;
use palb_core::{solve_fixed_levels, Dims, LevelAssignment};
use palb_lp::{PivotRule, Problem, Rel, SolveOptions};

/// Deterministic pseudo-random bounded-feasible LP of the given size.
fn random_lp(n: usize, m: usize, seed: u64) -> Problem {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    let mut p = Problem::maximize();
    let vars: Vec<_> = (0..n)
        .map(|j| p.add_var(&format!("x{j}"), 0.0, 10.0, next() * 5.0))
        .collect();
    for i in 0..m {
        let terms: Vec<_> = vars.iter().map(|&v| (v, next() * 3.0)).collect();
        p.add_con(&format!("r{i}"), &terms, Rel::Le, 5.0 + next().abs() * 10.0);
    }
    p
}

fn bench_random_lps(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex/random");
    for (n, m) in [(10, 20), (30, 60), (60, 120), (120, 180)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}")),
            &(n, m),
            |b, &(n, m)| {
                let p = random_lp(n, m, 0xFEED);
                b.iter(|| black_box(p.solve().unwrap().objective()));
            },
        );
    }
    group.finish();
}

fn bench_dispatch_lp(c: &mut Criterion) {
    let sys = presets::section_v();
    let dims = Dims::of(&sys);
    let assignment = LevelAssignment::uniform(&dims, 1);
    let mut group = c.benchmark_group("simplex/dispatch");
    for (label, rates) in [
        ("sv_low", presets::section_v_low_arrivals()),
        ("sv_high", presets::section_v_high_arrivals()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let sol = solve_fixed_levels(&sys, &rates, 0, &assignment).unwrap();
                black_box(sol.objective)
            });
        });
    }
    group.finish();
}

fn bench_pivot_rules(c: &mut Criterion) {
    let p = random_lp(60, 120, 0xBEEF);
    let mut group = c.benchmark_group("simplex/pivot_rule");
    for (name, rule) in [("dantzig", PivotRule::Dantzig), ("bland", PivotRule::Bland)] {
        group.bench_function(name, |b| {
            let opts = SolveOptions {
                rule,
                ..SolveOptions::default()
            };
            b.iter(|| black_box(p.solve_with(&opts).unwrap().objective()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_random_lps,
    bench_dispatch_lp,
    bench_pivot_rules
);
criterion_main!(benches);
