//! Electricity price schedules (paper Fig. 1).
//!
//! The paper drives its experiments with real day-ahead price history from
//! three deregulated markets — Houston TX, Mountain View CA and Atlanta GA.
//! We do not have that proprietary history, so this module ships synthetic
//! 24-hour curves with the qualitative features visible in Fig. 1: a night
//! trough, a morning ramp, an afternoon peak of location-specific height
//! and phase, and Houston showing the largest swing (the §VII experiments
//! exploit the big Houston/Mountain-View divergence between 14:00 and
//! 19:00). Prices are constant within a slot, as the paper assumes.

/// A cyclic per-slot electricity price schedule in $/kWh.
///
/// Serializes as its price array; deserialization re-validates.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(try_from = "Vec<f64>", into = "Vec<f64>")]
pub struct PriceSchedule {
    hourly: Vec<f64>,
}

impl TryFrom<Vec<f64>> for PriceSchedule {
    type Error = String;
    fn try_from(hourly: Vec<f64>) -> Result<Self, String> {
        if hourly.is_empty() {
            return Err("price schedule cannot be empty".into());
        }
        for (i, &p) in hourly.iter().enumerate() {
            if !(p.is_finite() && p >= 0.0) {
                return Err(format!("bad price at slot {i}: {p}"));
            }
        }
        Ok(PriceSchedule { hourly })
    }
}

impl From<PriceSchedule> for Vec<f64> {
    fn from(p: PriceSchedule) -> Vec<f64> {
        p.hourly
    }
}

/// One corrupted price slot found (and repaired) by
/// [`PriceSchedule::sanitized`].
#[derive(Debug, Clone, PartialEq)]
pub struct PriceIncident {
    /// Slot-of-day whose price was unusable.
    pub slot: usize,
    /// The corrupted value as observed (may be NaN/∞/non-positive).
    pub observed: f64,
    /// The value substituted for it.
    pub replacement: f64,
}

impl PriceSchedule {
    /// Builds a schedule from explicit per-slot prices.
    ///
    /// # Panics
    /// Panics if `hourly` is empty or contains non-finite/negative prices.
    pub fn new(hourly: Vec<f64>) -> Self {
        assert!(!hourly.is_empty(), "price schedule cannot be empty");
        for (i, &p) in hourly.iter().enumerate() {
            assert!(p.is_finite() && p >= 0.0, "bad price at slot {i}: {p}");
        }
        PriceSchedule { hourly }
    }

    /// Builds a schedule without validating the price values — the entry
    /// point for fault injection and for replaying corrupted price feeds.
    /// Downstream consumers must run [`Self::validate`] or
    /// [`Self::sanitized`] before optimizing against such a schedule.
    ///
    /// # Panics
    /// Panics only if `hourly` is empty (a zero-length cycle cannot be
    /// indexed at all).
    pub fn new_unchecked(hourly: Vec<f64>) -> Self {
        assert!(!hourly.is_empty(), "price schedule cannot be empty");
        PriceSchedule { hourly }
    }

    /// Checks every slot price, returning the indices of unusable entries
    /// (non-finite or non-positive). An empty result means the schedule is
    /// safe to optimize against.
    pub fn validate(&self) -> Vec<usize> {
        self.hourly
            .iter()
            .enumerate()
            .filter(|(_, &p)| !(p.is_finite() && p > 0.0))
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns a copy with every unusable price (non-finite or
    /// non-positive) replaced by the mean of the usable slot-of-day prices,
    /// plus one [`PriceIncident`] per repair. If *no* slot is usable the
    /// replacement falls back to a nominal 0.05 $/kWh so the controller can
    /// still run in a fully degraded state.
    pub fn sanitized(&self) -> (Self, Vec<PriceIncident>) {
        let good: Vec<f64> = self
            .hourly
            .iter()
            .copied()
            .filter(|p| p.is_finite() && *p > 0.0)
            .collect();
        let replacement = if good.is_empty() {
            0.05
        } else {
            good.iter().sum::<f64>() / good.len() as f64
        };
        let mut incidents = Vec::new();
        let hourly = self
            .hourly
            .iter()
            .enumerate()
            .map(|(slot, &p)| {
                if p.is_finite() && p > 0.0 {
                    p
                } else {
                    incidents.push(PriceIncident {
                        slot,
                        observed: p,
                        replacement,
                    });
                    replacement
                }
            })
            .collect();
        (PriceSchedule { hourly }, incidents)
    }

    /// A flat schedule of `slots` identical prices.
    pub fn flat(price: f64, slots: usize) -> Self {
        Self::new(vec![price; slots])
    }

    /// Price during `slot` (cyclic beyond the schedule length).
    pub fn price_at(&self, slot: usize) -> f64 {
        self.hourly[slot % self.hourly.len()]
    }

    /// Number of distinct slots in the cycle.
    pub fn len(&self) -> usize {
        self.hourly.len()
    }

    /// Whether the schedule has no entries (never true for constructed
    /// schedules; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.hourly.is_empty()
    }

    /// All prices in the cycle.
    pub fn as_slice(&self) -> &[f64] {
        &self.hourly
    }

    /// Mean price over the cycle.
    pub fn mean(&self) -> f64 {
        self.hourly.iter().sum::<f64>() / self.hourly.len() as f64
    }

    /// Peak-to-trough spread over the cycle.
    pub fn spread(&self) -> f64 {
        let max = self.hourly.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let min = self.hourly.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        max - min
    }

    /// Uniformly scales every price (used by what-if experiments).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0);
        Self::new(self.hourly.iter().map(|p| p * factor).collect())
    }
}

/// Synthetic Houston, TX day-ahead curve: cheap nights, a steep ramp into a
/// tall 15:00–18:00 peak — the most volatile of the three markets.
pub fn houston() -> PriceSchedule {
    PriceSchedule::new(vec![
        0.042, 0.040, 0.038, 0.037, 0.038, 0.041, // 00-05
        0.048, 0.058, 0.066, 0.072, 0.078, 0.085, // 06-11
        0.094, 0.105, 0.118, 0.135, 0.142, 0.138, // 12-17
        0.120, 0.095, 0.078, 0.063, 0.052, 0.045, // 18-23
    ])
}

/// Synthetic Mountain View, CA curve: flatter, mild evening peak.
pub fn mountain_view() -> PriceSchedule {
    PriceSchedule::new(vec![
        0.062, 0.060, 0.059, 0.058, 0.059, 0.061, // 00-05
        0.064, 0.068, 0.072, 0.075, 0.077, 0.079, // 06-11
        0.081, 0.083, 0.085, 0.087, 0.089, 0.092, // 12-17
        0.095, 0.090, 0.082, 0.074, 0.068, 0.064, // 18-23
    ])
}

/// Synthetic Atlanta, GA curve: intermediate level, early-afternoon peak.
pub fn atlanta() -> PriceSchedule {
    PriceSchedule::new(vec![
        0.050, 0.048, 0.046, 0.045, 0.046, 0.049, // 00-05
        0.055, 0.062, 0.070, 0.078, 0.086, 0.094, // 06-11
        0.101, 0.106, 0.104, 0.098, 0.092, 0.086, // 12-17
        0.080, 0.073, 0.066, 0.060, 0.055, 0.052, // 18-23
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_indexing_wraps() {
        let p = PriceSchedule::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.price_at(0), 1.0);
        assert_eq!(p.price_at(4), 2.0);
        assert_eq!(p.price_at(300), 1.0);
    }

    #[test]
    fn flat_schedule_is_flat() {
        let p = PriceSchedule::flat(0.07, 24);
        assert_eq!(p.len(), 24);
        assert_eq!(p.spread(), 0.0);
        assert!((p.mean() - 0.07).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_schedule_rejected() {
        PriceSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "bad price")]
    fn negative_price_rejected() {
        PriceSchedule::new(vec![0.1, -0.2]);
    }

    #[test]
    fn location_curves_are_24h() {
        for p in [houston(), mountain_view(), atlanta()] {
            assert_eq!(p.len(), 24);
        }
    }

    #[test]
    fn houston_is_most_volatile() {
        // The Fig. 1 feature §VII exploits.
        assert!(houston().spread() > mountain_view().spread());
        assert!(houston().spread() > atlanta().spread());
    }

    #[test]
    fn afternoon_divergence_between_houston_and_mountain_view() {
        // Between 14:00 and 19:00 the two markets must diverge strongly in
        // *both* directions across the window (Houston peaks above, then
        // falls back), which is what makes geo-shifting profitable.
        let h = houston();
        let mv = mountain_view();
        let mut max_gap = 0.0_f64;
        for hr in 14..=19 {
            max_gap = max_gap.max((h.price_at(hr) - mv.price_at(hr)).abs());
        }
        assert!(max_gap > 0.04, "max gap {max_gap}");
    }

    #[test]
    fn scaled_multiplies_every_slot() {
        let p = houston().scaled(2.0);
        assert!((p.price_at(15) - 2.0 * houston().price_at(15)).abs() < 1e-12);
    }

    #[test]
    fn night_cheaper_than_peak_everywhere() {
        for p in [houston(), mountain_view(), atlanta()] {
            assert!(p.price_at(3) < p.price_at(15));
        }
    }

    #[test]
    fn unchecked_admits_corruption_and_validate_finds_it() {
        let p = PriceSchedule::new_unchecked(vec![0.05, f64::NAN, -0.1, 0.07]);
        assert_eq!(p.validate(), vec![1, 2]);
        assert!(PriceSchedule::new(vec![0.05, 0.07]).validate().is_empty());
    }

    #[test]
    fn sanitized_imputes_mean_of_usable_slots() {
        let p = PriceSchedule::new_unchecked(vec![0.04, f64::INFINITY, 0.08, 0.0]);
        let (clean, incidents) = p.sanitized();
        assert!(clean.validate().is_empty());
        // Mean of the two usable prices.
        assert!((clean.price_at(1) - 0.06).abs() < 1e-12);
        assert!((clean.price_at(3) - 0.06).abs() < 1e-12);
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].slot, 1);
        assert_eq!(incidents[1].slot, 3);
        assert_eq!(incidents[1].observed, 0.0);
        // Untouched slots survive bit-for-bit.
        assert_eq!(clean.price_at(0), 0.04);
        assert_eq!(clean.price_at(2), 0.08);
    }

    #[test]
    fn sanitized_with_nothing_usable_uses_nominal_price() {
        let p = PriceSchedule::new_unchecked(vec![f64::NAN, -1.0]);
        let (clean, incidents) = p.sanitized();
        assert_eq!(incidents.len(), 2);
        assert_eq!(clean.price_at(0), 0.05);
        assert!(clean.validate().is_empty());
    }
}
