//! Core system-model types: request classes, front-end servers, data
//! centers, and the assembled [`System`] (paper Fig. 2).
//!
//! Unit conventions (used consistently across the workspace):
//!
//! * **time** — one abstract time unit per experiment (seconds in §V,
//!   hours in §VI/§VII); `System::slot_length` is the slot duration `T`
//!   in those units,
//! * **rates** — requests per time unit,
//! * **energy** — kWh per request (paper Eq. 2's `P_k`),
//! * **money** — dollars; electricity prices are $/kWh, transfer costs
//!   $/(request·mile).

use palb_tuf::StepTuf;

use crate::price::PriceSchedule;

/// Identifier of a request class (`k` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub usize);

/// Identifier of a front-end server (`s`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrontEndId(pub usize);

/// Identifier of a data center (`l`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DcId(pub usize);

/// One type of service request with its SLA profit profile.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RequestClass {
    /// Human-readable name ("request1", …).
    pub name: String,
    /// Time-utility function mapping mean delay to per-request revenue.
    pub tuf: StepTuf,
    /// Transfer cost in $ per request per mile (`TranCost_k`, Eq. 3).
    pub transfer_cost_per_mile: f64,
}

/// A front-end server collecting requests from nearby clients.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrontEnd {
    /// Human-readable name.
    pub name: String,
}

/// A data center: `servers` homogeneous machines in one electricity market.
///
/// Heterogeneity across data centers (different capacities, service rates,
/// energy profiles, prices) is fully supported; servers *within* a data
/// center are homogeneous, exactly as the paper assumes.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DataCenter {
    /// Human-readable name (often the market location).
    pub name: String,
    /// Number of homogeneous servers `M_l`.
    pub servers: usize,
    /// Server capacity `C_{i,l}` (the paper normalizes to 1).
    pub capacity: f64,
    /// Full-capacity service rate `µ_{k,l}` per class (requests per time
    /// unit when a class owns the whole server).
    pub service_rate: Vec<f64>,
    /// Energy per request `P_{k,l}` in kWh, per class (Eq. 2; the Google
    /// energy-per-search model).
    pub energy_per_request: Vec<f64>,
    /// Power-usage-effectiveness multiplier on processing energy (≥ 1).
    /// The paper's suggested extension for cooling/peripheral overheads;
    /// 1.0 reproduces the paper's model exactly.
    #[serde(default = "default_pue")]
    pub pue: f64,
    /// Local electricity price schedule ($/kWh per slot).
    pub prices: PriceSchedule,
}

fn default_pue() -> f64 {
    1.0
}

impl DataCenter {
    /// Effective per-request energy for class `k` including PUE.
    pub fn effective_energy(&self, k: ClassId) -> f64 {
        self.energy_per_request[k.0] * self.pue
    }

    /// Full-capacity service rate of class `k` on one server
    /// (`C_{i,l}·µ_{k,l}`).
    pub fn full_rate(&self, k: ClassId) -> f64 {
        self.capacity * self.service_rate[k.0]
    }
}

/// Errors from [`System::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A collection that must be non-empty was empty.
    Empty(&'static str),
    /// A per-class vector had the wrong length.
    ClassMismatch {
        /// Where the mismatch was found.
        what: String,
    },
    /// The distance matrix shape does not match (front-ends × data centers).
    DistanceShape,
    /// A numeric field was non-finite or out of range.
    BadValue {
        /// Description of the offending field.
        what: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Empty(w) => write!(f, "system has no {w}"),
            ModelError::ClassMismatch { what } => {
                write!(f, "per-class vector length mismatch in {what}")
            }
            ModelError::DistanceShape => write!(f, "distance matrix shape mismatch"),
            ModelError::BadValue { what } => write!(f, "bad value: {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The assembled distributed-cloud system of paper Fig. 2.
///
/// Serializable: systems round-trip through JSON for the CLI. Always call
/// [`System::validate`] after deserializing — field-level invariants are
/// checked by the nested types, but cross-field consistency (per-class
/// vector lengths, distance-matrix shape) is not.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct System {
    /// Request classes (`K` of them).
    pub classes: Vec<RequestClass>,
    /// Front-end servers (`S`).
    pub front_ends: Vec<FrontEnd>,
    /// Data centers (`L`).
    pub data_centers: Vec<DataCenter>,
    /// `distance[s][l]` in miles between front-end `s` and data center `l`
    /// (`d_{s,l}`, Eq. 3).
    pub distance: Vec<Vec<f64>>,
    /// Slot length `T` in the experiment's time unit.
    pub slot_length: f64,
}

impl System {
    /// Number of request classes `K`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of front-ends `S`.
    pub fn num_front_ends(&self) -> usize {
        self.front_ends.len()
    }

    /// Number of data centers `L`.
    pub fn num_dcs(&self) -> usize {
        self.data_centers.len()
    }

    /// Total servers across all data centers.
    pub fn total_servers(&self) -> usize {
        self.data_centers.iter().map(|d| d.servers).sum()
    }

    /// Distance in miles between a front-end and a data center.
    pub fn distance(&self, s: FrontEndId, l: DcId) -> f64 {
        self.distance[s.0][l.0]
    }

    /// Per-request, non-utility cost of serving class `k` from front-end
    /// `s` at data center `l` during `slot`: energy (`P_{k,l}·p_l`) plus
    /// transfer (`TranCost_k·d_{s,l}`) — the cost terms of Eq. 5.
    pub fn unit_cost(&self, k: ClassId, s: FrontEndId, l: DcId, slot: usize) -> f64 {
        let dc = &self.data_centers[l.0];
        let energy = dc.effective_energy(k) * dc.prices.price_at(slot);
        let transfer = self.classes[k.0].transfer_cost_per_mile * self.distance(s, l);
        energy + transfer
    }

    /// Validates internal consistency; call once after construction.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.classes.is_empty() {
            return Err(ModelError::Empty("request classes"));
        }
        if self.front_ends.is_empty() {
            return Err(ModelError::Empty("front-end servers"));
        }
        if self.data_centers.is_empty() {
            return Err(ModelError::Empty("data centers"));
        }
        if !(self.slot_length.is_finite() && self.slot_length > 0.0) {
            return Err(ModelError::BadValue {
                what: format!("slot_length {}", self.slot_length),
            });
        }
        let k = self.num_classes();
        for dc in &self.data_centers {
            if dc.service_rate.len() != k {
                return Err(ModelError::ClassMismatch {
                    what: format!("{}.service_rate", dc.name),
                });
            }
            if dc.energy_per_request.len() != k {
                return Err(ModelError::ClassMismatch {
                    what: format!("{}.energy_per_request", dc.name),
                });
            }
            if dc.servers == 0 {
                return Err(ModelError::BadValue {
                    what: format!("{}.servers = 0", dc.name),
                });
            }
            if !(dc.capacity.is_finite() && dc.capacity > 0.0) {
                return Err(ModelError::BadValue {
                    what: format!("{}.capacity", dc.name),
                });
            }
            if dc.pue < 1.0 || !dc.pue.is_finite() {
                return Err(ModelError::BadValue {
                    what: format!("{}.pue = {}", dc.name, dc.pue),
                });
            }
            if dc.prices.is_empty() {
                return Err(ModelError::Empty("price schedule entries"));
            }
            for (i, &r) in dc.service_rate.iter().enumerate() {
                if !(r.is_finite() && r > 0.0) {
                    return Err(ModelError::BadValue {
                        what: format!("{}.service_rate[{i}] = {r}", dc.name),
                    });
                }
            }
            for (i, &e) in dc.energy_per_request.iter().enumerate() {
                if !(e.is_finite() && e >= 0.0) {
                    return Err(ModelError::BadValue {
                        what: format!("{}.energy_per_request[{i}] = {e}", dc.name),
                    });
                }
            }
        }
        if self.distance.len() != self.num_front_ends()
            || self.distance.iter().any(|row| row.len() != self.num_dcs())
        {
            return Err(ModelError::DistanceShape);
        }
        for row in &self.distance {
            for &d in row {
                if !(d.is_finite() && d >= 0.0) {
                    return Err(ModelError::BadValue {
                        what: format!("distance {d}"),
                    });
                }
            }
        }
        for class in &self.classes {
            let t = class.transfer_cost_per_mile;
            if !(t.is_finite() && t >= 0.0) {
                return Err(ModelError::BadValue {
                    what: format!("{}.transfer_cost_per_mile = {t}", class.name),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price::PriceSchedule;
    use palb_tuf::StepTuf;

    fn tiny_system() -> System {
        System {
            classes: vec![RequestClass {
                name: "r1".into(),
                tuf: StepTuf::constant(10.0, 0.5).unwrap(),
                transfer_cost_per_mile: 0.001,
            }],
            front_ends: vec![FrontEnd { name: "fe1".into() }],
            data_centers: vec![DataCenter {
                name: "dc1".into(),
                servers: 2,
                capacity: 1.0,
                service_rate: vec![100.0],
                energy_per_request: vec![0.5],
                pue: 1.0,
                prices: PriceSchedule::flat(0.1, 24),
            }],
            distance: vec![vec![100.0]],
            slot_length: 1.0,
        }
    }

    #[test]
    fn valid_system_passes() {
        assert_eq!(tiny_system().validate(), Ok(()));
    }

    #[test]
    fn unit_cost_combines_energy_and_transfer() {
        let s = tiny_system();
        // energy = 0.5 kWh * $0.1 = 0.05; transfer = 0.001 * 100 = 0.1
        let c = s.unit_cost(ClassId(0), FrontEndId(0), DcId(0), 0);
        assert!((c - 0.15).abs() < 1e-12);
    }

    #[test]
    fn pue_scales_energy_only() {
        let mut s = tiny_system();
        s.data_centers[0].pue = 2.0;
        let c = s.unit_cost(ClassId(0), FrontEndId(0), DcId(0), 0);
        assert!((c - 0.2).abs() < 1e-12); // 2*0.05 + 0.1
    }

    #[test]
    fn full_rate_uses_capacity() {
        let mut s = tiny_system();
        s.data_centers[0].capacity = 0.5;
        assert_eq!(s.data_centers[0].full_rate(ClassId(0)), 50.0);
    }

    #[test]
    fn validation_catches_mismatched_class_vectors() {
        let mut s = tiny_system();
        s.data_centers[0].service_rate = vec![100.0, 50.0];
        assert!(matches!(
            s.validate(),
            Err(ModelError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn validation_catches_distance_shape() {
        let mut s = tiny_system();
        s.distance = vec![vec![1.0, 2.0]];
        assert_eq!(s.validate(), Err(ModelError::DistanceShape));
    }

    #[test]
    fn validation_catches_bad_pue() {
        let mut s = tiny_system();
        s.data_centers[0].pue = 0.5;
        assert!(matches!(s.validate(), Err(ModelError::BadValue { .. })));
    }

    #[test]
    fn validation_catches_zero_servers() {
        let mut s = tiny_system();
        s.data_centers[0].servers = 0;
        assert!(matches!(s.validate(), Err(ModelError::BadValue { .. })));
    }

    #[test]
    fn counts_are_consistent() {
        let s = tiny_system();
        assert_eq!(s.num_classes(), 1);
        assert_eq!(s.num_front_ends(), 1);
        assert_eq!(s.num_dcs(), 1);
        assert_eq!(s.total_servers(), 2);
    }
}
