// palb:lint-tier = lib
//! # palb-cluster — the distributed-cloud system model
//!
//! Types describing the paper's system architecture (Fig. 2): `K` request
//! classes arriving at `S` front-end servers, dispatched to `L`
//! heterogeneous data centers of homogeneous servers, each data center in
//! its own electricity market. Includes:
//!
//! * [`System`] / [`DataCenter`] / [`RequestClass`] — validated model types,
//! * [`price`] — per-slot electricity price schedules with synthetic
//!   Houston / Mountain View / Atlanta day curves (Fig. 1 substitute),
//! * [`cost`] — the paper's Eq. 2 (processing energy $) and Eq. 3
//!   (transfer $),
//! * [`power`] — powered-on server accounting,
//! * [`presets`] — the §V, §VI and §VII experiment setups.
//!
//! ```
//! use palb_cluster::presets;
//!
//! let system = presets::section_vi();
//! assert_eq!(system.num_dcs(), 3);
//! system.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod power;
pub mod presets;
pub mod price;
mod types;

pub use price::{PriceIncident, PriceSchedule};
pub use types::{
    ClassId, DataCenter, DcId, FrontEnd, FrontEndId, ModelError, RequestClass, System,
};
