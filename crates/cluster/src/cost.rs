//! Dollar-cost accounting: the paper's Eq. 2 (processing energy) and
//! Eq. 3 (request transfer).

/// Eq. 2: dollar cost of processing `lambda` requests per time unit for a
/// whole slot: `PCost = P_k · λ · T · p`, with `P_k` in kWh/request, `p` in
/// $/kWh and `T` the slot length.
pub fn processing_cost(energy_per_request: f64, lambda: f64, slot_length: f64, price: f64) -> f64 {
    debug_assert!(energy_per_request >= 0.0 && lambda >= 0.0 && slot_length > 0.0 && price >= 0.0);
    energy_per_request * lambda * slot_length * price
}

/// Eq. 3: dollar cost of transferring `lambda` requests per time unit from
/// a front-end to a data center `distance` miles away for a whole slot:
/// `TCost = TranCost_k · Distance · λ · T`.
pub fn transfer_cost(
    transfer_cost_per_mile: f64,
    distance: f64,
    lambda: f64,
    slot_length: f64,
) -> f64 {
    debug_assert!(
        transfer_cost_per_mile >= 0.0 && distance >= 0.0 && lambda >= 0.0 && slot_length > 0.0
    );
    transfer_cost_per_mile * distance * lambda * slot_length
}

/// Revenue of a whole slot: per-request utility × rate × slot length (the
/// `U_k(R)·λ·T` term of Eq. 4).
pub fn slot_revenue(unit_utility: f64, lambda: f64, slot_length: f64) -> f64 {
    unit_utility * lambda * slot_length
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_processing_cost() {
        // 0.5 kWh/request, 100 req/h, 1 h slot, $0.10/kWh -> $5.
        assert!((processing_cost(0.5, 100.0, 1.0, 0.10) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn eq3_transfer_cost() {
        // $0.003 per request-mile, 1000 miles, 10 req/h, 1 h -> $30.
        assert!((transfer_cost(0.003, 1000.0, 10.0, 1.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn costs_scale_linearly_in_rate_and_time() {
        let base = processing_cost(0.2, 50.0, 1.0, 0.08);
        assert!((processing_cost(0.2, 100.0, 1.0, 0.08) - 2.0 * base).abs() < 1e-12);
        assert!((processing_cost(0.2, 50.0, 2.0, 0.08) - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_costs_nothing() {
        assert_eq!(processing_cost(0.5, 0.0, 1.0, 0.1), 0.0);
        assert_eq!(transfer_cost(0.003, 500.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn revenue_is_linear() {
        assert!((slot_revenue(10.0, 3.0, 2.0) - 60.0).abs() < 1e-12);
    }
}
