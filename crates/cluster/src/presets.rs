//! The paper's three experiment setups, reconstructed.
//!
//! Several setup tables are partially illegible in the available text of
//! the paper (arrival sets, prices, distances, sub-deadlines). Every
//! reconstructed value below was chosen to satisfy the *verbal* constraints
//! the paper states — the orderings and regimes its analysis depends on —
//! and the reconstruction is documented in `EXPERIMENTS.md` at the
//! workspace root. Legible values (service rates, per-request kWh in §V,
//! TUF maxima in §VI, transfer-cost ladder) are used verbatim.

use palb_tuf::StepTuf;

use crate::price::{self, PriceSchedule};
use crate::types::{DataCenter, FrontEnd, RequestClass, System};

/// §V "study of basic characteristics": 3 request classes, 4 front-ends,
/// 3 heterogeneous data centers × 6 servers, constant (one-level) TUFs,
/// constant electricity prices, **no transfer cost** ("Transferring cost is
/// not considered in this basic study"). Time unit: **seconds**; the slot
/// is one hour = 3600 s.
pub fn section_v() -> System {
    // §V TUF values are illegible in the source; chosen so that profit per
    // CPU-second favours the *fast-to-serve* class 1, which is what lets
    // the profit-maximizing dispatcher also complete more requests than
    // Balanced under overload (the paper reports ~16% more).
    let classes = vec![
        RequestClass {
            name: "request1".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::constant(2.5, 0.10).unwrap(),
            transfer_cost_per_mile: 0.0,
        },
        RequestClass {
            name: "request2".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::constant(2.0, 0.12).unwrap(),
            transfer_cost_per_mile: 0.0,
        },
        RequestClass {
            name: "request3".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::constant(3.0, 0.15).unwrap(),
            transfer_cost_per_mile: 0.0,
        },
    ];
    let front_ends = (1..=4)
        .map(|i| FrontEnd {
            name: format!("frontend{i}"),
        })
        .collect();
    // Table III (verbatim where legible): µ per class per server (req/s),
    // per-request energy (kWh); prices reconstructed (constant in §V).
    let data_centers = vec![
        DataCenter {
            name: "datacenter1".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![150.0, 130.0, 140.0],
            energy_per_request: vec![2.0, 4.0, 6.0],
            pue: 1.0,
            // §V prices are illegible in the source; chosen so the
            // lowest-*price* data center (this one) is not the lowest
            // *cost* choice for every class — the misalignment the
            // profit-oblivious Balanced policy cannot see.
            prices: PriceSchedule::flat(0.20, 24),
        },
        DataCenter {
            name: "datacenter2".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![140.0, 120.0, 130.0],
            energy_per_request: vec![1.0, 3.0, 5.0],
            pue: 1.0,
            prices: PriceSchedule::flat(0.24, 24),
        },
        DataCenter {
            name: "datacenter3".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![160.0, 130.0, 160.0],
            energy_per_request: vec![1.0, 3.0, 6.0],
            pue: 1.0,
            prices: PriceSchedule::flat(0.22, 24),
        },
    ];
    System {
        classes,
        front_ends,
        data_centers,
        distance: vec![vec![0.0; 3]; 4], // transfer cost disabled in §V
        slot_length: 3600.0,
    }
}

/// §V Table II(a): the light arrival set, `rates[s][k]` in requests/second.
pub fn section_v_low_arrivals() -> Vec<Vec<f64>> {
    vec![
        vec![30.0, 20.0, 25.0],
        vec![25.0, 15.0, 20.0],
        vec![20.0, 25.0, 15.0],
        vec![15.0, 20.0, 30.0],
    ]
}

/// §V Table II(b): the heavy arrival set (total offered load exceeds what
/// either approach can complete), `rates[s][k]` in requests/second.
pub fn section_v_high_arrivals() -> Vec<Vec<f64>> {
    // Class-asymmetric overload: request1 (fast to serve, high margin per
    // CPU) arrives at roughly twice the rate of the others. Balanced's
    // fixed 1/3 shares cap it at ~720 req/s systemwide while the optimizer
    // re-provisions CPU toward it — the source of the paper's "~16% more
    // requests processed" under heavy load.
    vec![
        vec![500.0, 120.0, 180.0],
        vec![450.0, 130.0, 170.0],
        vec![400.0, 120.0, 180.0],
        vec![450.0, 130.0, 170.0],
    ]
}

/// §VI study with World-Cup-like traces and one-level TUFs: 3 classes,
/// 4 front-ends, 3 data centers × 6 servers in the Houston / Mountain View
/// / Atlanta electricity markets. Time unit: **hours**; slot = 1 h.
///
/// Verbal constraints encoded: for request1, DC1 and DC2 share the same
/// processing capacity and DC3 has the highest; DC2 is by far the farthest
/// from every front-end (which is why Optimized starves it of request1 in
/// Fig. 7); TUF maxima are $10/$20/$30 and transfer costs
/// $0.003/$0.005/$0.007 per mile (verbatim).
pub fn section_vi() -> System {
    let classes = vec![
        RequestClass {
            name: "request1".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::constant(10.0, 0.020).unwrap(),
            transfer_cost_per_mile: 0.003,
        },
        RequestClass {
            name: "request2".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::constant(20.0, 0.015).unwrap(),
            transfer_cost_per_mile: 0.005,
        },
        RequestClass {
            name: "request3".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::constant(30.0, 0.010).unwrap(),
            transfer_cost_per_mile: 0.007,
        },
    ];
    let front_ends = (1..=4)
        .map(|i| FrontEnd {
            name: format!("frontend{i}"),
        })
        .collect();
    let data_centers = vec![
        DataCenter {
            name: "houston".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![50_000.0, 40_000.0, 45_000.0],
            energy_per_request: vec![0.00030, 0.00050, 0.00070],
            pue: 1.0,
            prices: price::houston(),
        },
        DataCenter {
            name: "mountain_view".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![50_000.0, 42_000.0, 40_000.0],
            energy_per_request: vec![0.00028, 0.00048, 0.00068],
            pue: 1.0,
            prices: price::mountain_view(),
        },
        DataCenter {
            name: "atlanta".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![60_000.0, 45_000.0, 50_000.0],
            energy_per_request: vec![0.00032, 0.00052, 0.00072],
            pue: 1.0,
            prices: price::atlanta(),
        },
    ];
    // Table V reconstructed: DC2 (mountain_view) farthest from all four
    // front-ends — a coast away, so transfer eats most of request1's $10
    // utility and the optimizer only sends overflow there (Fig. 7).
    let distance = vec![
        vec![200.0, 2500.0, 500.0],
        vec![300.0, 2600.0, 450.0],
        vec![250.0, 2400.0, 600.0],
        vec![400.0, 2700.0, 350.0],
    ];
    System {
        classes,
        front_ends,
        data_centers,
        distance,
        slot_length: 1.0,
    }
}

/// §VII study with a Google-2010-like trace and two-level TUFs: 2 classes
/// from a single front-end into 2 data centers × 6 servers priced like
/// Houston and Mountain View. The experiment window is 14:00–19:00, where
/// Fig. 1's price divergence is largest. Time unit: **hours**; slot = 1 h.
pub fn section_vii() -> System {
    let classes = vec![
        // Sub-deadlines sit on the 1/µ scale so the level choice is a real
        // capacity trade-off: meeting level 1 of request1 reserves an M/M/1
        // margin of 1/D₁ = 10 000 req/h on a server whose full rate is only
        // 30 000–35 000 req/h, while level 2 reserves just 2 000 req/h.
        RequestClass {
            name: "request1".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::two_level(20.0, 1.0 / 10_000.0, 15.0, 1.0 / 2_000.0).unwrap(),
            transfer_cost_per_mile: 0.0002,
        },
        RequestClass {
            name: "request2".into(),
            // palb:allow(unwrap): paper-constant TUF parameters are statically valid
            tuf: StepTuf::two_level(30.0, 1.0 / 12_000.0, 22.0, 1.0 / 2_500.0).unwrap(),
            transfer_cost_per_mile: 0.0003,
        },
    ];
    let front_ends = vec![FrontEnd {
        name: "frontend1".into(),
    }];
    let data_centers = vec![
        DataCenter {
            name: "houston".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![30_000.0, 20_000.0],
            // §VII makes electricity the decisive cost: per-request energy
            // on the §V scale (kWh per request), so the Houston price spike
            // between 14:00 and 19:00 actually moves the optimum.
            energy_per_request: vec![20.0, 30.0],
            pue: 1.0,
            prices: price::houston(),
        },
        DataCenter {
            name: "mountain_view".into(),
            servers: 6,
            capacity: 1.0,
            service_rate: vec![35_000.0, 26_000.0],
            energy_per_request: vec![25.0, 35.0],
            pue: 1.0,
            prices: price::mountain_view(),
        },
    ];
    System {
        classes,
        front_ends,
        data_centers,
        distance: vec![vec![1000.0, 2000.0]],
        slot_length: 1.0,
    }
}

/// First slot (hour of day) of the §VII experiment window.
pub const SECTION_VII_START_HOUR: usize = 13;
/// Number of slots in the §VII experiment (the 7-hour Google trace).
pub const SECTION_VII_SLOTS: usize = 7;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClassId, DcId, FrontEndId};

    #[test]
    fn all_presets_validate() {
        for s in [section_v(), section_vi(), section_vii()] {
            assert_eq!(s.validate(), Ok(()));
        }
    }

    #[test]
    fn section_v_matches_paper_shape() {
        let s = section_v();
        assert_eq!(s.num_classes(), 3);
        assert_eq!(s.num_front_ends(), 4);
        assert_eq!(s.num_dcs(), 3);
        assert!(s.data_centers.iter().all(|d| d.servers == 6));
        // No transfer costs in the basic study.
        for k in 0..3 {
            let c = s.unit_cost(ClassId(k), FrontEndId(0), DcId(0), 0);
            let energy = s.data_centers[0].energy_per_request[k] * 0.20;
            assert!((c - energy).abs() < 1e-12);
        }
    }

    #[test]
    fn section_v_arrival_sets_have_right_shape() {
        for set in [section_v_low_arrivals(), section_v_high_arrivals()] {
            assert_eq!(set.len(), 4);
            assert!(set.iter().all(|row| row.len() == 3));
        }
        // The heavy set offers far more load than the light one.
        let total = |set: Vec<Vec<f64>>| -> f64 { set.iter().flatten().sum() };
        assert!(total(section_v_high_arrivals()) > 5.0 * total(section_v_low_arrivals()));
    }

    #[test]
    fn section_vi_encodes_verbal_constraints() {
        let s = section_vi();
        // DC1 and DC2 share request1 capacity; DC3 is highest.
        let r1 = |l: usize| s.data_centers[l].service_rate[0];
        assert_eq!(r1(0), r1(1));
        assert!(r1(2) > r1(0));
        // DC2 is the farthest from every front-end.
        for row in &s.distance {
            assert!(row[1] > row[0] && row[1] > row[2]);
        }
        // Transfer-cost ladder is the paper's 3/5/7 mils per mile.
        assert_eq!(s.classes[0].transfer_cost_per_mile, 0.003);
        assert_eq!(s.classes[1].transfer_cost_per_mile, 0.005);
        assert_eq!(s.classes[2].transfer_cost_per_mile, 0.007);
        // TUF maxima 10/20/30.
        assert_eq!(s.classes[0].tuf.max_utility(), 10.0);
        assert_eq!(s.classes[2].tuf.max_utility(), 30.0);
    }

    #[test]
    fn section_vii_uses_two_level_tufs() {
        let s = section_vii();
        assert_eq!(s.num_classes(), 2);
        assert_eq!(s.num_front_ends(), 1);
        assert_eq!(s.num_dcs(), 2);
        for c in &s.classes {
            assert_eq!(c.tuf.num_levels(), 2);
        }
        // The second data center is twice as far as the first.
        assert_eq!(s.distance[0], vec![1000.0, 2000.0]);
    }

    #[test]
    fn section_vii_window_has_price_divergence() {
        let s = section_vii();
        let mut max_gap = 0.0_f64;
        for h in SECTION_VII_START_HOUR..SECTION_VII_START_HOUR + SECTION_VII_SLOTS {
            let a = s.data_centers[0].prices.price_at(h);
            let b = s.data_centers[1].prices.price_at(h);
            max_gap = max_gap.max((a - b).abs());
        }
        assert!(max_gap > 0.03, "price gap {max_gap} too small for §VII");
    }
}
