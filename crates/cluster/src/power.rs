//! Powered-on server accounting.
//!
//! The paper powers a server off whenever no workload is assigned to it
//! (§IV: "when there is no workload on a server, the server should be
//! powered off"), treating switching costs and durations as negligible
//! within an hour-long slot. Because the energy model is per-request
//! (Eq. 2), the powered-on count is a derived *operational* metric — it
//! does not change the dollar objective but is what an operator would act
//! on, so the reports surface it.

/// Load threshold (requests per time unit) below which a server is
/// considered idle and powered off.
pub const IDLE_EPSILON: f64 = 1e-9;

/// Counts servers whose total assigned rate exceeds [`IDLE_EPSILON`].
pub fn powered_on(server_loads: &[f64]) -> usize {
    server_loads.iter().filter(|&&l| l > IDLE_EPSILON).count()
}

/// Splits a per-server load slice into (powered-on, powered-off) counts.
pub fn power_split(server_loads: &[f64]) -> (usize, usize) {
    let on = powered_on(server_loads);
    (on, server_loads.len() - on)
}

/// Fraction of servers powered on (0 for an empty slice).
pub fn power_on_ratio(server_loads: &[f64]) -> f64 {
    if server_loads.is_empty() {
        0.0
    } else {
        powered_on(server_loads) as f64 / server_loads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_loaded_servers() {
        let loads = [0.0, 5.0, 1e-12, 3.0, 0.0];
        assert_eq!(powered_on(&loads), 2);
        assert_eq!(power_split(&loads), (2, 3));
    }

    #[test]
    fn ratio_handles_empty() {
        assert_eq!(power_on_ratio(&[]), 0.0);
        assert_eq!(power_on_ratio(&[1.0, 0.0]), 0.5);
    }

    #[test]
    fn all_idle_means_all_off() {
        assert_eq!(powered_on(&[0.0; 8]), 0);
    }
}
