//! Property test of the parallel branch-and-bound's determinism contract
//! on randomized small systems: any two thread counts (sequential
//! included) return bit-for-bit identical results unless distinct
//! assignments score within `gap_tol` of each other in the decisive
//! window — and even then the objectives agree to within the gap band.
//! The same holds through the degraded-mode ladder under injected
//! faults, where additionally the tier/retry control flow must be
//! thread-count-independent.

use palb_cluster::{DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
use palb_core::multilevel::MultilevelResult;
use palb_core::{
    run_with, solve_bb, CoreError, ResilientOptions, ResilientPolicy, RunOptions, SolverConfig,
};
use palb_tuf::StepTuf;
use palb_workload::fault::SolverFaultSchedule;
use palb_workload::synthetic::constant_trace;
use proptest::prelude::*;

/// Parameters of one randomized instance. Utilities and deadlines are
/// drawn from wide, continuous ranges, so exact objective ties between
/// *different* assignments (the one configuration where parallel order
/// could legitimately pick another argmax) have probability zero.
#[derive(Debug, Clone)]
struct Instance {
    classes: Vec<(f64, f64, f64, f64)>, // (u1, margin1, u2, margin2)
    dcs: Vec<(usize, f64, f64)>,        // (servers, price, service_rate)
    offered: Vec<f64>,                  // per class
}

fn instance() -> impl Strategy<Value = Instance> {
    let class = (3.0f64..6.0, 20.0f64..60.0, 0.3f64..1.5, 2.0f64..8.0)
        .prop_map(|(u1, m1, du, m2)| (u1, m1, u1 - du, m2));
    let dc = (1usize..=2, 0.05f64..0.3, 80.0f64..120.0);
    (
        proptest::collection::vec(class, 1..=2),
        proptest::collection::vec(dc, 1..=2),
        0.2f64..2.0,
    )
        .prop_map(|(classes, dcs, load)| {
            // Offer a class-even share of roughly `load` times the total
            // full-capacity rate, so instances span under- and overload.
            let total_rate: f64 = dcs.iter().map(|&(m, _, r)| m as f64 * r).sum();
            let offered = classes
                .iter()
                .enumerate()
                .map(|(k, _)| load * total_rate / (classes.len() + k) as f64)
                .collect();
            Instance {
                classes,
                dcs,
                offered,
            }
        })
}

fn build(inst: &Instance) -> System {
    let classes: Vec<RequestClass> = inst
        .classes
        .iter()
        .enumerate()
        .map(|(k, &(u1, m1, u2, m2))| RequestClass {
            name: format!("r{k}"),
            tuf: StepTuf::two_level(u1, 1.0 / m1, u2, 1.0 / m2).expect("valid two-level tuf"),
            transfer_cost_per_mile: 0.0,
        })
        .collect();
    let n_classes = classes.len();
    let data_centers: Vec<DataCenter> = inst
        .dcs
        .iter()
        .enumerate()
        .map(|(l, &(servers, price, rate))| DataCenter {
            name: format!("dc{l}"),
            servers,
            capacity: 1.0,
            service_rate: vec![rate; n_classes],
            energy_per_request: vec![1.0; n_classes],
            pue: 1.0,
            prices: PriceSchedule::flat(price, 24),
        })
        .collect();
    let system = System {
        classes,
        front_ends: vec![FrontEnd { name: "fe".into() }],
        distance: vec![vec![0.0; data_centers.len()]],
        data_centers,
        slot_length: 1.0,
    };
    system.validate().expect("generated system is valid");
    system
}

/// Bit-identical when the objectives tie exactly (the generic case);
/// otherwise both must sit within the gap band of each other — the
/// documented near-tie carve-out of `SolverConfig::threads`.
fn check_pair(
    a: &MultilevelResult,
    b: &MultilevelResult,
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    if a.solve.objective.to_bits() == b.solve.objective.to_bits() {
        assert_same_bits(b, a, label);
    } else {
        let band = SolverConfig::exact().gap_tol * (1.0 + a.solve.objective.abs());
        prop_assert!(
            (a.solve.objective - b.solve.objective).abs() <= band,
            "{label}: objective drift beyond the gap band: {} vs {}",
            a.solve.objective,
            b.solve.objective
        );
    }
    Ok(())
}

fn assert_same_bits(a: &MultilevelResult, b: &MultilevelResult, label: &str) {
    assert_eq!(
        a.solve.objective.to_bits(),
        b.solve.objective.to_bits(),
        "{label}: objective {} vs {}",
        a.solve.objective,
        b.solve.objective
    );
    assert_eq!(a.solve.dispatch, b.solve.dispatch, "{label}: dispatch");
    assert_eq!(a.assignment, b.assignment, "{label}: assignment");
    assert_eq!(a.proven_optimal, b.proven_optimal, "{label}: proof flag");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn parallel_bb_is_bitwise_deterministic(inst in instance()) {
        let sys = build(&inst);
        let rates = vec![inst.offered.clone()];
        let seq = solve_bb(&sys, &rates, 0, &SolverConfig::exact());
        let solve = |threads: usize| solve_bb(
            &sys,
            &rates,
            0,
            &SolverConfig::exact().threads(threads),
        );
        let p2 = solve(2);
        let p4 = solve(4);
        match (&seq, &p2, &p4) {
            (Ok(s), Ok(p2), Ok(p4)) => {
                // Bit-identical in the generic case; a near-tie plateau
                // may move the incumbent, but never past the gap band.
                check_pair(s, p2, "seq vs t2")?;
                check_pair(s, p4, "seq vs t4")?;
                check_pair(p2, p4, "t2 vs t4")?;
            }
            (Err(CoreError::Infeasible), Err(CoreError::Infeasible), Err(CoreError::Infeasible)) => {}
            (s, p2, p4) => prop_assert!(
                false,
                "outcome kind diverged: seq {s:?} vs t2 {p2:?} vs t4 {p4:?}"
            ),
        }
    }

    #[test]
    fn resilient_ladder_matches_across_threads_under_faults(
        inst in instance(),
        fault_rate in 0.0f64..0.6,
        seed in 0u64..1000,
    ) {
        let sys = build(&inst);
        let trace = constant_trace(vec![inst.offered.clone()], 2);
        let run_at = |threads: usize| {
            let opts = ResilientOptions {
                solver: SolverConfig::exact().threads(threads),
                ..ResilientOptions::default()
            };
            let mut policy = ResilientPolicy::new(opts)
                .with_chaos(SolverFaultSchedule::new(fault_rate, seed));
            run_with(&mut policy, &sys, &trace, &RunOptions::at(0)).expect("the ladder is infallible").result
        };
        let seq = run_at(1);
        let par = run_at(2);
        // The fault-handling history is thread-independent, and profits
        // agree with the sequential reference to within the gap band.
        for (a, b) in seq.slots.iter().zip(&par.slots) {
            let (ha, hb) = (a.health.as_ref().unwrap(), b.health.as_ref().unwrap());
            prop_assert_eq!(&ha.tier_used, &hb.tier_used, "tier drifted on slot {}", a.slot);
            prop_assert_eq!(ha.retries, hb.retries, "retries drifted on slot {}", a.slot);
            let band = 1e-6 * (1.0 + a.net_profit.abs());
            prop_assert!(
                (a.net_profit - b.net_profit).abs() <= band,
                "slot {}: profit {} vs {} exceeds the near-tie band",
                a.slot, a.net_profit, b.net_profit
            );
        }
    }
}
