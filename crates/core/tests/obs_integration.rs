//! Observability contract of the instrumented solver stack:
//!
//! 1. **bitwise invisibility** — attaching or detaching a recorder never
//!    changes solver output, at any thread count (the acceptance gate for
//!    the telemetry layer riding inside the determinism-critical B&B);
//! 2. **exact span accounting** — the `bb_node` span counter equals
//!    `nodes_explored` at every thread count, because per-worker span
//!    records merge through commutative counter adds;
//! 3. **noop overhead** — with no recorder attached the instrumented
//!    solver is not measurably slower than a generous bound over the
//!    attached run on the Fig. 11-style reference instance.

use std::sync::Arc;
use std::time::Instant;

use palb_cluster::{presets, System};
use palb_core::multilevel::MultilevelResult;
use palb_core::obs::{names, spans, Recorder, Registry, SPAN_SECONDS, SPAN_TOTAL};
use palb_core::{run_with, solve_bb, ResilientPolicy, RunOptions, SolverConfig};
use palb_workload::synthetic::constant_trace;

/// The Fig. 11 reference shape: the §VII two-class / two-DC system on a
/// representative busy slot.
fn fig11_like() -> (System, Vec<Vec<f64>>, usize) {
    (presets::section_vii(), vec![vec![40_000.0, 35_000.0]], 13)
}

fn assert_same_bits(a: &MultilevelResult, b: &MultilevelResult, label: &str) {
    assert_eq!(
        a.solve.objective.to_bits(),
        b.solve.objective.to_bits(),
        "{label}: objective {} vs {}",
        a.solve.objective,
        b.solve.objective
    );
    assert_eq!(a.solve.dispatch, b.solve.dispatch, "{label}: dispatch");
    assert_eq!(a.assignment, b.assignment, "{label}: assignment");
    assert_eq!(a.proven_optimal, b.proven_optimal, "{label}: proof flag");
}

#[test]
fn recorder_is_bitwise_invisible_at_every_thread_count() {
    let (sys, rates, slot) = fig11_like();
    let baseline = solve_bb(&sys, &rates, slot, &SolverConfig::exact()).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let noop = solve_bb(&sys, &rates, slot, &SolverConfig::exact().threads(threads)).unwrap();
        let registry = Arc::new(Registry::new());
        let instrumented = solve_bb(
            &sys,
            &rates,
            slot,
            &SolverConfig::exact()
                .threads(threads)
                .obs(Recorder::attached(Arc::clone(&registry))),
        )
        .unwrap();
        assert_same_bits(
            &noop,
            &instrumented,
            &format!("noop vs attached t{threads}"),
        );
        assert_same_bits(&baseline, &instrumented, &format!("seq ref vs t{threads}"));

        // Exact span accounting: per-worker merges are commutative adds,
        // so the bb_node span counter equals nodes_explored regardless of
        // how the frontier was split.
        let nodes = instrumented.stats.nodes_explored as u64;
        assert!(nodes > 0);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(SPAN_TOTAL, &[("span", spans::BB_NODE)]),
            Some(nodes),
            "t{threads}: bb_node span count must equal nodes_explored"
        );
        assert_eq!(
            snap.counter_value(names::BB_NODES_TOTAL, &[]),
            Some(nodes),
            "t{threads}: bb-node counter must equal nodes_explored"
        );
        assert!(
            snap.family_counter_total(names::WARM_HITS_TOTAL) > 0,
            "t{threads}: warm starts should land on the registry"
        );
        assert!(snap.contains_family(SPAN_SECONDS));
        assert!(
            snap.counter_value(SPAN_TOTAL, &[("span", spans::LP_SOLVE)])
                .unwrap_or(0)
                > 0,
            "t{threads}: lp_solve spans should record"
        );
    }
}

#[test]
fn instrumented_driver_matches_plain_run_and_exports_slot_families() {
    let (sys, rates, slot) = fig11_like();
    let trace = constant_trace(rates, 3);
    let plain = run_with(
        &mut ResilientPolicy::default(),
        &sys,
        &trace,
        &RunOptions::at(slot),
    )
    .unwrap()
    .result;

    let registry = Arc::new(Registry::new());
    let opts = RunOptions::at(slot).with_obs(Recorder::attached(Arc::clone(&registry)));
    let instrumented = run_with(&mut ResilientPolicy::default(), &sys, &trace, &opts)
        .unwrap()
        .result;

    // Telemetry is bitwise invisible to the economics as well.
    assert_eq!(plain.decisions, instrumented.decisions);
    assert_eq!(
        plain.total_net_profit().to_bits(),
        instrumented.total_net_profit().to_bits()
    );

    let snap = registry.snapshot();
    assert_eq!(snap.counter_value(names::SLOTS_TOTAL, &[]), Some(3));
    assert_eq!(
        snap.counter_value(names::TIER_DECISIONS_TOTAL, &[("tier", "exact")]),
        Some(3),
        "clean inputs decide on the exact tier every slot"
    );
    assert!(snap.contains_family(names::SLOT_DECIDE_SECONDS));
    assert!(snap.contains_family(names::NET_PROFIT_DOLLARS));
    assert!(snap.family_counter_total(names::BB_NODES_TOTAL) > 0);
    assert!(snap
        .counter_value(names::SLOT_FAILURES_TOTAL, &[])
        .is_none());
}

#[test]
fn noop_recorder_overhead_is_negligible() {
    // Min-of-k wall-clock: the noop run must not be slower than a very
    // generous bound over the attached run. (The real guard is the branch
    // structure — `Recorder::noop` reads no clock and allocates nothing —
    // this test just catches gross regressions like an unconditional
    // clock read per node.)
    let (sys, rates, slot) = fig11_like();
    let min_of = |opts: &SolverConfig| -> f64 {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                solve_bb(&sys, &rates, slot, opts).unwrap();
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let noop_ms = min_of(&SolverConfig::exact());
    let registry = Arc::new(Registry::new());
    let attached_ms = min_of(&SolverConfig::exact().obs(Recorder::attached(registry)));
    assert!(
        noop_ms <= attached_ms * 1.5 + 20.0,
        "noop run took {noop_ms:.2} ms vs attached {attached_ms:.2} ms"
    );
}
