//! Loom models of the parallel solver's shared-state protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (`cargo xtask loom`, the
//! CI loom job). Each `loom::model` closure is executed once per distinct
//! thread interleaving — including weak-memory reorderings of the
//! `Relaxed` atomics these protocols use — so the assertions below are
//! checked on *every* schedule loom can reach within the preemption
//! bound, not on one lucky run.
//!
//! These are the real [`palb_core::sync`] types on loom's instrumented
//! atomics, complementing the in-tree exhaustive checker in
//! `palb_core::sync::model` (which runs in the plain test suite on
//! abstract state machines).
#![cfg(loom)]

use palb_core::sync::{Arc, BudgetCounter, Flag, IncumbentCell, WorkQueue};

/// The incumbent cell is a monotone maximum: with offers racing each
/// other, the final value is exactly the largest finite offer (or the
/// seed when every offer is below it).
#[test]
fn incumbent_offers_keep_the_true_maximum() {
    loom::model(|| {
        let cell = Arc::new(IncumbentCell::new(1.0));
        let t1 = {
            let c = Arc::clone(&cell);
            loom::thread::spawn(move || c.offer(3.0))
        };
        let t2 = {
            let c = Arc::clone(&cell);
            loom::thread::spawn(move || c.offer(2.0))
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(cell.get().to_bits(), 3.0f64.to_bits());
    });
}

/// Offers below the current value never regress the cell, on any
/// interleaving of the CAS retry loops.
#[test]
fn incumbent_never_regresses_below_the_seed() {
    loom::model(|| {
        let cell = Arc::new(IncumbentCell::new(5.0));
        let t1 = {
            let c = Arc::clone(&cell);
            loom::thread::spawn(move || c.offer(4.0))
        };
        let t2 = {
            let c = Arc::clone(&cell);
            loom::thread::spawn(move || c.offer(-1.0))
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(cell.get().to_bits(), 5.0f64.to_bits());
    });
}

/// Exactly-once dispatch: two workers draining a queue of three tickets
/// between them partition `0..3` — no ticket is dropped or duplicated.
#[test]
fn work_queue_partitions_the_range() {
    loom::model(|| {
        let queue = Arc::new(WorkQueue::new(3));
        let worker = |q: Arc<WorkQueue>| {
            loom::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(i) = q.claim() {
                    mine.push(i);
                }
                mine
            })
        };
        let t1 = worker(Arc::clone(&queue));
        let t2 = worker(Arc::clone(&queue));
        let mut all = t1.join().unwrap();
        all.extend(t2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        assert_eq!(queue.claim(), None);
    });
}

/// With a cap of 1 and two racing charges, exactly one succeeds — the
/// budget admits `cap` units no matter how the `fetch_add`s interleave.
#[test]
fn budget_counter_admits_exactly_cap_charges() {
    loom::model(|| {
        let budget = Arc::new(BudgetCounter::new());
        let t1 = {
            let b = Arc::clone(&budget);
            loom::thread::spawn(move || b.charge(1))
        };
        let t2 = {
            let b = Arc::clone(&budget);
            loom::thread::spawn(move || b.charge(1))
        };
        let wins = usize::from(t1.join().unwrap()) + usize::from(t2.join().unwrap());
        assert_eq!(wins, 1);
        assert_eq!(budget.spent(), 2);
    });
}

/// The worker-exit protocol: a worker that claims its last ticket,
/// publishes an incumbent and raises the truncation flag is fully visible
/// to a reader that observes the flag raised *and joins the worker*. The
/// flag alone is only an eventual signal (Relaxed), so the model asserts
/// the post-join state — which is what the solver's reduction step relies
/// on.
#[test]
fn worker_exit_state_is_visible_after_join() {
    loom::model(|| {
        let cell = Arc::new(IncumbentCell::new(0.0));
        let flag = Arc::new(Flag::new());
        let queue = Arc::new(WorkQueue::new(1));
        let worker = {
            let (c, f, q) = (Arc::clone(&cell), Arc::clone(&flag), Arc::clone(&queue));
            loom::thread::spawn(move || {
                if q.claim().is_some() {
                    c.offer(7.0);
                    f.raise();
                }
            })
        };
        // A racing observer may see the flag either way; it must never
        // see it lowered again after seeing it raised.
        let saw_first = flag.is_raised();
        let saw_second = flag.is_raised();
        assert!(!saw_first || saw_second);
        worker.join().unwrap();
        assert!(flag.is_raised());
        assert_eq!(cell.get().to_bits(), 7.0f64.to_bits());
        assert_eq!(queue.claim(), None);
    });
}
