//! Property tests of the anytime portfolio's determinism contract on
//! randomized small systems: for a fixed seed the anytime search is
//! **seed-pure** (two runs agree bit-for-bit), **thread-invariant**
//! (threads 1/2/4/8 return the same final incumbent, bitwise), and the
//! evaluation cache is **bitwise-invisible** (cache on/off changes only
//! the `cache_*` telemetry, never the incumbent). On the same tiny
//! instances the portfolio race must come back `proven_optimal` with
//! the exact solver's objective verbatim.
//!
//! These mirror the deterministic fixed-instance tests inside
//! `palb_core::portfolio`; here the instances are drawn from the same
//! randomized family as `parallel_bb_proptest.rs`.

use palb_cluster::{DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
use palb_core::multilevel::MultilevelResult;
use palb_core::{solve_bb, solve_with, SolverConfig};
use palb_tuf::StepTuf;
use proptest::prelude::*;

/// Parameters of one randomized instance (same family as the parallel
/// B&B property tests: wide continuous utility/margin ranges, so exact
/// objective ties between different assignments have probability zero).
#[derive(Debug, Clone)]
struct Instance {
    classes: Vec<(f64, f64, f64, f64)>, // (u1, margin1, u2, margin2)
    dcs: Vec<(usize, f64, f64)>,        // (servers, price, service_rate)
    offered: Vec<f64>,                  // per class
}

fn instance() -> impl Strategy<Value = Instance> {
    let class = (3.0f64..6.0, 20.0f64..60.0, 0.3f64..1.5, 2.0f64..8.0)
        .prop_map(|(u1, m1, du, m2)| (u1, m1, u1 - du, m2));
    let dc = (1usize..=3, 0.05f64..0.3, 80.0f64..120.0);
    (
        proptest::collection::vec(class, 1..=2),
        proptest::collection::vec(dc, 1..=2),
        0.2f64..2.0,
    )
        .prop_map(|(classes, dcs, load)| {
            let total_rate: f64 = dcs.iter().map(|&(m, _, r)| m as f64 * r).sum();
            let offered = classes
                .iter()
                .enumerate()
                .map(|(k, _)| load * total_rate / (classes.len() + k) as f64)
                .collect();
            Instance {
                classes,
                dcs,
                offered,
            }
        })
}

fn build(inst: &Instance) -> System {
    let classes: Vec<RequestClass> = inst
        .classes
        .iter()
        .enumerate()
        .map(|(k, &(u1, m1, u2, m2))| RequestClass {
            name: format!("r{k}"),
            tuf: StepTuf::two_level(u1, 1.0 / m1, u2, 1.0 / m2).expect("valid two-level tuf"),
            transfer_cost_per_mile: 0.0,
        })
        .collect();
    let n_classes = classes.len();
    let data_centers: Vec<DataCenter> = inst
        .dcs
        .iter()
        .enumerate()
        .map(|(l, &(servers, price, rate))| DataCenter {
            name: format!("dc{l}"),
            servers,
            capacity: 1.0,
            service_rate: vec![rate; n_classes],
            energy_per_request: vec![1.0; n_classes],
            pue: 1.0,
            prices: PriceSchedule::flat(price, 24),
        })
        .collect();
    let system = System {
        classes,
        front_ends: vec![FrontEnd { name: "fe".into() }],
        distance: vec![vec![0.0; data_centers.len()]],
        data_centers,
        slot_length: 1.0,
    };
    system.validate().expect("generated system is valid");
    system
}

fn assert_same_bits(
    a: &MultilevelResult,
    b: &MultilevelResult,
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(
        a.solve.objective.to_bits(),
        b.solve.objective.to_bits(),
        "{}: objective {} vs {}",
        label,
        a.solve.objective,
        b.solve.objective
    );
    prop_assert_eq!(
        &a.assignment,
        &b.assignment,
        "{}: assignment drifted",
        label
    );
    prop_assert_eq!(a.nodes, b.nodes, "{}: evaluation count drifted", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same budget → bit-for-bit identical incumbents, at
    /// any thread count. Threads only change who evaluates a proposal,
    /// never which proposals exist or how the population sorts.
    #[test]
    fn anytime_is_seed_pure_and_thread_invariant(
        inst in instance(),
        seed in 0u64..1_000,
    ) {
        let sys = build(&inst);
        let rates = vec![inst.offered.clone()];
        let base = solve_with(&sys, &rates, 0, &SolverConfig::anytime().seed(seed)).unwrap();
        let again = solve_with(&sys, &rates, 0, &SolverConfig::anytime().seed(seed)).unwrap();
        assert_same_bits(&base, &again, "rerun with the same seed")?;
        for threads in [2usize, 4, 8] {
            let par = solve_with(
                &sys,
                &rates,
                0,
                &SolverConfig::anytime().seed(seed).threads(threads),
            )
            .unwrap();
            assert_same_bits(&base, &par, &format!("threads {threads}"))?;
        }
    }

    /// Disabling the evaluation cache changes telemetry, never the
    /// incumbent: the budget counts logical evaluations (hits and
    /// misses alike), so the search trajectory is cache-independent.
    #[test]
    fn eval_cache_is_bitwise_invisible(
        inst in instance(),
        seed in 0u64..1_000,
    ) {
        let sys = build(&inst);
        let rates = vec![inst.offered.clone()];
        let on = solve_with(&sys, &rates, 0, &SolverConfig::anytime().seed(seed)).unwrap();
        let off = solve_with(
            &sys,
            &rates,
            0,
            &SolverConfig::anytime().seed(seed).cache_capacity(0),
        )
        .unwrap();
        assert_same_bits(&on, &off, "cache on vs off")?;
        prop_assert_eq!(off.stats.cache_hits + off.stats.cache_misses, 0);
    }

    /// On instances small enough for the exact side to finish, the
    /// portfolio race returns the exact branch-and-bound's answer
    /// verbatim and marks it proven.
    #[test]
    fn portfolio_agrees_with_exact_on_small_instances(
        inst in instance(),
        seed in 0u64..1_000,
    ) {
        let sys = build(&inst);
        let rates = vec![inst.offered.clone()];
        let exact = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
        let port = solve_with(&sys, &rates, 0, &SolverConfig::portfolio().seed(seed)).unwrap();
        prop_assert!(port.proven_optimal, "exact side should finish on tiny instances");
        prop_assert_eq!(
            port.solve.objective.to_bits(),
            exact.solve.objective.to_bits(),
            "portfolio objective {} vs exact {}",
            port.solve.objective,
            exact.solve.objective
        );
        prop_assert_eq!(&port.assignment, &exact.assignment);
    }
}
