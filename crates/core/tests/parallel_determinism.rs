//! Determinism contract of the parallel branch-and-bound: for any thread
//! count the solver must return the *same bits* — objective, dispatch,
//! level assignment, and optimality proof — as the sequential reference,
//! on clean runs and under injected solver faults alike.
//!
//! The one carve-out (see `SolverConfig::threads` and DESIGN.md): when two
//! distinct assignments score within `gap_tol` of each other in the
//! decisive window, the gap prune makes the surviving near-tie a
//! function of search history, which the frontier split perturbs. In
//! that band the contract weakens to: thread counts agree to within the
//! gap tolerance, and the callers' observable control flow (ladder
//! tiers, retries) does not depend on the thread count at all.

use palb_cluster::{presets, DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
use palb_core::multilevel::MultilevelResult;
use palb_core::{run_with, solve_bb, ResilientOptions, ResilientPolicy, RunOptions, SolverConfig};
use palb_tuf::StepTuf;
use palb_workload::fault::SolverFaultSchedule;
use palb_workload::synthetic::constant_trace;

/// A 1-class / 1-DC / `servers`-server system whose optimum mixes levels
/// at mid load (narrow utility gap, wide capacity gap).
fn tiny(servers: usize) -> System {
    System {
        classes: vec![RequestClass {
            name: "r".into(),
            tuf: StepTuf::two_level(4.5, 1.0 / 40.0, 4.0, 1.0 / 5.0).unwrap(),
            transfer_cost_per_mile: 0.0,
        }],
        front_ends: vec![FrontEnd { name: "fe".into() }],
        data_centers: vec![DataCenter {
            name: "dc".into(),
            servers,
            capacity: 1.0,
            service_rate: vec![100.0],
            energy_per_request: vec![1.0],
            pue: 1.0,
            prices: PriceSchedule::flat(0.1, 24),
        }],
        distance: vec![vec![0.0]],
        slot_length: 1.0,
    }
}

fn assert_same_bits(a: &MultilevelResult, b: &MultilevelResult, label: &str) {
    assert_eq!(
        a.solve.objective.to_bits(),
        b.solve.objective.to_bits(),
        "{label}: objective {} vs {}",
        a.solve.objective,
        b.solve.objective
    );
    assert_eq!(a.solve.dispatch, b.solve.dispatch, "{label}: dispatch");
    assert_eq!(a.assignment, b.assignment, "{label}: assignment");
    assert_eq!(a.proven_optimal, b.proven_optimal, "{label}: proof flag");
}

#[test]
fn every_thread_count_returns_the_sequential_bits_on_tiny_systems() {
    for servers in [2, 3] {
        let sys = tiny(servers);
        for offered in [30.0, 90.0, 150.0, 250.0] {
            let rates = vec![vec![offered]];
            let seq = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
            for threads in [2, 3, 4, 8] {
                let par =
                    solve_bb(&sys, &rates, 0, &SolverConfig::exact().threads(threads)).unwrap();
                assert_same_bits(&par, &seq, &format!("{servers}sv {offered}r t{threads}"));
            }
        }
    }
}

#[test]
fn every_thread_count_returns_the_sequential_bits_on_section_vii() {
    let sys = presets::section_vii();
    for rates in [
        vec![vec![40_000.0, 35_000.0]],
        vec![vec![15_000.0, 60_000.0]],
    ] {
        let seq = solve_bb(&sys, &rates, 13, &SolverConfig::exact()).unwrap();
        assert!(seq.proven_optimal);
        for threads in [2, 4, 8] {
            let par = solve_bb(&sys, &rates, 13, &SolverConfig::exact().threads(threads)).unwrap();
            assert_same_bits(&par, &seq, &format!("section vii t{threads}"));
        }
    }
}

#[test]
fn parallel_and_cold_modes_compose_deterministically() {
    // threads x incremental: all four corners must agree bit-for-bit.
    let sys = tiny(2);
    let rates = vec![vec![150.0]];
    let reference = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
    for incremental in [false, true] {
        for threads in [1, 2, 4] {
            let r = solve_bb(
                &sys,
                &rates,
                0,
                &SolverConfig::exact()
                    .incremental(incremental)
                    .threads(threads),
            )
            .unwrap();
            assert_same_bits(&r, &reference, &format!("inc={incremental} t{threads}"));
        }
    }
}

#[test]
fn resilient_ladder_under_faults_agrees_across_thread_counts() {
    // The degraded-mode ladder retries and falls back around injected
    // solver faults. Which tier answers and how many retries it takes
    // must not depend on the worker-thread count. The BlandRetry tier
    // (Bland pivoting on perturbed rates) manufactures a degenerate
    // near-tie plateau inside the gap band, so for profits the contract
    // is agreement to within the band, not bitwise (the bitwise half of
    // the contract is covered by the clean-config tests above).
    let sys = presets::section_vii();
    let trace = constant_trace(vec![vec![30_000.0, 25_000.0]], 4);
    let run_at = |threads: usize| {
        let opts = ResilientOptions {
            solver: SolverConfig::exact().threads(threads),
            ..ResilientOptions::default()
        };
        let mut policy = ResilientPolicy::new(opts).with_chaos(SolverFaultSchedule::new(0.4, 77));
        run_with(&mut policy, &sys, &trace, &RunOptions::at(13))
            .unwrap()
            .result
    };
    let seq = run_at(1);
    for threads in [2usize, 4] {
        let par = run_at(threads);
        for (a, b) in seq.slots.iter().zip(&par.slots) {
            let (ha, hb) = (a.health.as_ref().unwrap(), b.health.as_ref().unwrap());
            assert_eq!(
                ha.tier_used, hb.tier_used,
                "t{threads}: tier drifted on slot {}",
                a.slot
            );
            assert_eq!(
                ha.retries, hb.retries,
                "t{threads}: retries drifted on slot {}",
                a.slot
            );
            let band = 1e-6 * (1.0 + a.net_profit.abs());
            assert!(
                (a.net_profit - b.net_profit).abs() <= band,
                "t{threads}: slot {} profit {} vs {} exceeds the near-tie band",
                a.slot,
                a.net_profit,
                b.net_profit
            );
        }
    }
}
