//! Decision representation: problem dimensions, the dispatch/allocation
//! decision `(λ_{k,s,i,l}, φ_{k,i,l})`, and feasibility checking against
//! the paper's constraints (Eqs. 6–8).

use palb_cluster::{ClassId, DcId, FrontEndId, System};

/// Flattened index arithmetic for the four-dimensional decision space.
///
/// Servers are numbered globally: data center `l`'s servers occupy the
/// contiguous range `server_offset[l] .. server_offset[l] + m[l]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dims {
    /// Number of request classes `K`.
    pub classes: usize,
    /// Number of front-ends `S`.
    pub front_ends: usize,
    /// Number of data centers `L`.
    pub dcs: usize,
    /// Servers per data center `M_l`.
    pub servers_per_dc: Vec<usize>,
    /// Global index of each data center's first server.
    pub server_offset: Vec<usize>,
    /// Total servers `N = Σ M_l`.
    pub total_servers: usize,
}

impl Dims {
    /// Extracts dimensions from a [`System`].
    pub fn of(system: &System) -> Self {
        let servers_per_dc: Vec<usize> = system.data_centers.iter().map(|d| d.servers).collect();
        let mut server_offset = Vec::with_capacity(servers_per_dc.len());
        let mut acc = 0;
        for &m in &servers_per_dc {
            server_offset.push(acc);
            acc += m;
        }
        Dims {
            classes: system.num_classes(),
            front_ends: system.num_front_ends(),
            dcs: system.num_dcs(),
            servers_per_dc,
            server_offset,
            total_servers: acc,
        }
    }

    /// Global server index of server `i` in data center `l`.
    #[inline]
    pub fn server(&self, l: DcId, i: usize) -> usize {
        debug_assert!(i < self.servers_per_dc[l.0]);
        self.server_offset[l.0] + i
    }

    /// Data center owning global server `sv`.
    pub fn dc_of_server(&self, sv: usize) -> DcId {
        debug_assert!(sv < self.total_servers);
        let l = self
            .server_offset
            .partition_point(|&off| off <= sv)
            .saturating_sub(1);
        DcId(l)
    }

    /// Index into the λ vector for `(class, front-end, global server)`.
    #[inline]
    pub fn lambda_idx(&self, k: ClassId, s: FrontEndId, sv: usize) -> usize {
        debug_assert!(k.0 < self.classes && s.0 < self.front_ends && sv < self.total_servers);
        (k.0 * self.front_ends + s.0) * self.total_servers + sv
    }

    /// Index into the φ vector for `(class, global server)`.
    #[inline]
    pub fn phi_idx(&self, k: ClassId, sv: usize) -> usize {
        debug_assert!(k.0 < self.classes && sv < self.total_servers);
        k.0 * self.total_servers + sv
    }

    /// Length of the λ vector.
    pub fn lambda_len(&self) -> usize {
        self.classes * self.front_ends * self.total_servers
    }

    /// Length of the φ vector.
    pub fn phi_len(&self) -> usize {
        self.classes * self.total_servers
    }

    /// Iterates all (class, global-server) pairs.
    pub fn class_server_pairs(&self) -> impl Iterator<Item = (ClassId, usize)> + '_ {
        (0..self.classes).flat_map(move |k| (0..self.total_servers).map(move |sv| (ClassId(k), sv)))
    }
}

/// A complete slot decision: the dispatch rates `λ_{k,s,i,l}` and CPU
/// shares `φ_{k,i,l}` of the paper's formulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    dims: Dims,
    /// `λ` values indexed by [`Dims::lambda_idx`] (requests per time unit).
    lambda: Vec<f64>,
    /// `φ` values indexed by [`Dims::phi_idx`] (fraction of a server).
    phi: Vec<f64>,
}

impl Dispatch {
    /// All-zero decision (every server off).
    pub fn zero(dims: Dims) -> Self {
        let lambda = vec![0.0; dims.lambda_len()];
        let phi = vec![0.0; dims.phi_len()];
        Dispatch { dims, lambda, phi }
    }

    /// The dimension helper.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Dispatched rate for `(class, front-end, dc, server-in-dc)`.
    pub fn lambda(&self, k: ClassId, s: FrontEndId, l: DcId, i: usize) -> f64 {
        self.lambda[self.dims.lambda_idx(k, s, self.dims.server(l, i))]
    }

    /// Sets a dispatch rate.
    pub fn set_lambda(&mut self, k: ClassId, s: FrontEndId, l: DcId, i: usize, v: f64) {
        let idx = self.dims.lambda_idx(k, s, self.dims.server(l, i));
        self.lambda[idx] = v;
    }

    /// CPU share of `(class, dc, server-in-dc)`.
    pub fn phi(&self, k: ClassId, l: DcId, i: usize) -> f64 {
        self.phi[self.dims.phi_idx(k, self.dims.server(l, i))]
    }

    /// Sets a CPU share.
    pub fn set_phi(&mut self, k: ClassId, l: DcId, i: usize, v: f64) {
        let idx = self.dims.phi_idx(k, self.dims.server(l, i));
        self.phi[idx] = v;
    }

    /// Raw λ access by global server index.
    pub fn lambda_by_server(&self, k: ClassId, s: FrontEndId, sv: usize) -> f64 {
        self.lambda[self.dims.lambda_idx(k, s, sv)]
    }

    /// Raw φ access by global server index.
    pub fn phi_by_server(&self, k: ClassId, sv: usize) -> f64 {
        self.phi[self.dims.phi_idx(k, sv)]
    }

    /// Mutable raw stores (used by the formulation layer).
    pub(crate) fn raw_mut(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>) {
        (&mut self.lambda, &mut self.phi)
    }

    /// Aggregate rate of `class` on global server `sv` (summed over
    /// front-ends) — the `λ_k` that enters Eq. 1.
    pub fn server_class_rate(&self, k: ClassId, sv: usize) -> f64 {
        (0..self.dims.front_ends)
            .map(|s| self.lambda[self.dims.lambda_idx(k, FrontEndId(s), sv)])
            .sum()
    }

    /// Total rate on global server `sv` across classes.
    pub fn server_load(&self, sv: usize) -> f64 {
        (0..self.dims.classes)
            .map(|k| self.server_class_rate(ClassId(k), sv))
            .sum()
    }

    /// Total CPU share allocated on global server `sv`.
    pub fn server_share(&self, sv: usize) -> f64 {
        (0..self.dims.classes)
            .map(|k| self.phi[self.dims.phi_idx(ClassId(k), sv)])
            .sum()
    }

    /// Rate of `class` dispatched to data center `l` (all servers, all
    /// front-ends) — the series plotted in the paper's Figs. 7 and 9.
    pub fn dc_class_rate(&self, k: ClassId, l: DcId) -> f64 {
        (0..self.dims.servers_per_dc[l.0])
            .map(|i| self.server_class_rate(k, self.dims.server(l, i)))
            .sum()
    }

    /// Total rate dispatched (everything, everywhere).
    pub fn total_dispatched(&self) -> f64 {
        self.lambda.iter().sum()
    }

    /// Total rate of one class dispatched from one front-end.
    pub fn front_end_class_rate(&self, k: ClassId, s: FrontEndId) -> f64 {
        (0..self.dims.total_servers)
            .map(|sv| self.lambda[self.dims.lambda_idx(k, s, sv)])
            .sum()
    }

    /// Per-server total loads, global order (input to power accounting).
    pub fn server_loads(&self) -> Vec<f64> {
        (0..self.dims.total_servers)
            .map(|sv| self.server_load(sv))
            .collect()
    }
}

/// Checks a decision against the paper's constraints:
/// Eq. 7 (dispatched ≤ offered per class and front-end), Eq. 8 (CPU shares
/// sum ≤ 1 per server), non-negativity, and — when `check_delay` is set —
/// Eq. 6 (mean delay within the final deadline wherever traffic flows).
///
/// Returns the first violation found, or `Ok(())`.
pub fn check_feasible(
    system: &System,
    rates: &[Vec<f64>],
    dispatch: &Dispatch,
    check_delay: bool,
    tol: f64,
) -> Result<(), String> {
    let dims = dispatch.dims();
    // Non-negativity.
    for (k, sv) in dims.class_server_pairs() {
        let phi = dispatch.phi_by_server(k, sv);
        if !(0.0 - tol..=1.0 + tol).contains(&phi) {
            return Err(format!(
                "phi out of range at class {k:?} server {sv}: {phi}"
            ));
        }
        for s in 0..dims.front_ends {
            let lam = dispatch.lambda_by_server(k, FrontEndId(s), sv);
            if lam < -tol || !lam.is_finite() {
                return Err(format!(
                    "negative/bad lambda at class {k:?} fe {s} server {sv}: {lam}"
                ));
            }
        }
    }
    // Eq. 8: Σ_k φ ≤ 1 per server.
    for sv in 0..dims.total_servers {
        let share = dispatch.server_share(sv);
        if share > 1.0 + tol {
            return Err(format!("server {sv}: CPU shares sum to {share} > 1"));
        }
    }
    // Eq. 7: Σ_{l,i} λ_{k,s,·} ≤ λ_{k,s}.
    for k in 0..dims.classes {
        for s in 0..dims.front_ends {
            let sent = dispatch.front_end_class_rate(ClassId(k), FrontEndId(s));
            let offered = rates[s][k];
            if sent > offered + tol * (1.0 + offered) {
                return Err(format!(
                    "class {k} fe {s}: dispatched {sent} exceeds offered {offered}"
                ));
            }
        }
    }
    // Eq. 6: wherever traffic flows, the M/M/1 queue must be stable and the
    // mean delay within the class's final deadline.
    if check_delay {
        for (k, sv) in dims.class_server_pairs() {
            let lam = dispatch.server_class_rate(k, sv);
            if lam <= tol {
                continue;
            }
            let l = dims.dc_of_server(sv);
            let dc = &system.data_centers[l.0];
            let rate = dispatch.phi_by_server(k, sv) * dc.full_rate(k);
            let deadline = system.classes[k.0].tuf.final_deadline();
            if rate <= lam {
                return Err(format!(
                    "class {k:?} server {sv}: unstable queue (rate {rate} <= lambda {lam})"
                ));
            }
            let delay = 1.0 / (rate - lam);
            if delay > deadline * (1.0 + 1e-6) + tol {
                return Err(format!(
                    "class {k:?} server {sv}: delay {delay} exceeds deadline {deadline}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::presets;

    #[test]
    fn dims_of_section_v() {
        let sys = presets::section_v();
        let d = Dims::of(&sys);
        assert_eq!(d.classes, 3);
        assert_eq!(d.front_ends, 4);
        assert_eq!(d.dcs, 3);
        assert_eq!(d.total_servers, 18);
        assert_eq!(d.server(DcId(1), 0), 6);
        assert_eq!(d.server(DcId(2), 5), 17);
        assert_eq!(d.dc_of_server(0), DcId(0));
        assert_eq!(d.dc_of_server(5), DcId(0));
        assert_eq!(d.dc_of_server(6), DcId(1));
        assert_eq!(d.dc_of_server(17), DcId(2));
        assert_eq!(d.lambda_len(), 3 * 4 * 18);
        assert_eq!(d.phi_len(), 3 * 18);
    }

    #[test]
    fn lambda_round_trip_and_aggregates() {
        let sys = presets::section_v();
        let mut disp = Dispatch::zero(Dims::of(&sys));
        disp.set_lambda(ClassId(0), FrontEndId(1), DcId(1), 2, 5.0);
        disp.set_lambda(ClassId(0), FrontEndId(3), DcId(1), 2, 7.0);
        disp.set_phi(ClassId(0), DcId(1), 2, 0.4);
        assert_eq!(disp.lambda(ClassId(0), FrontEndId(1), DcId(1), 2), 5.0);
        let sv = disp.dims().server(DcId(1), 2);
        assert_eq!(disp.server_class_rate(ClassId(0), sv), 12.0);
        assert_eq!(disp.server_load(sv), 12.0);
        assert_eq!(disp.server_share(sv), 0.4);
        assert_eq!(disp.dc_class_rate(ClassId(0), DcId(1)), 12.0);
        assert_eq!(disp.dc_class_rate(ClassId(0), DcId(0)), 0.0);
        assert_eq!(disp.front_end_class_rate(ClassId(0), FrontEndId(3)), 7.0);
        assert_eq!(disp.total_dispatched(), 12.0);
    }

    #[test]
    fn feasibility_accepts_legal_decisions() {
        let sys = presets::section_v();
        let rates = vec![vec![10.0, 10.0, 10.0]; 4];
        let mut disp = Dispatch::zero(Dims::of(&sys));
        disp.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 8.0);
        disp.set_phi(ClassId(0), DcId(0), 0, 0.5); // rate 75 >> 8 + 1/0.1
        assert_eq!(check_feasible(&sys, &rates, &disp, true, 1e-9), Ok(()));
    }

    #[test]
    fn feasibility_rejects_oversubscribed_cpu() {
        let sys = presets::section_v();
        let rates = vec![vec![10.0, 10.0, 10.0]; 4];
        let mut disp = Dispatch::zero(Dims::of(&sys));
        disp.set_phi(ClassId(0), DcId(0), 0, 0.7);
        disp.set_phi(ClassId(1), DcId(0), 0, 0.7);
        let err = check_feasible(&sys, &rates, &disp, false, 1e-9).unwrap_err();
        assert!(err.contains("CPU shares"));
    }

    #[test]
    fn feasibility_rejects_overdispatch() {
        let sys = presets::section_v();
        let rates = vec![vec![10.0, 10.0, 10.0]; 4];
        let mut disp = Dispatch::zero(Dims::of(&sys));
        disp.set_lambda(ClassId(2), FrontEndId(0), DcId(0), 0, 11.0);
        disp.set_phi(ClassId(2), DcId(0), 0, 1.0);
        let err = check_feasible(&sys, &rates, &disp, false, 1e-9).unwrap_err();
        assert!(err.contains("exceeds offered"), "{err}");
    }

    #[test]
    fn feasibility_rejects_unstable_queue() {
        let sys = presets::section_v();
        let rates = vec![vec![100.0, 10.0, 10.0]; 4];
        let mut disp = Dispatch::zero(Dims::of(&sys));
        disp.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 80.0);
        disp.set_phi(ClassId(0), DcId(0), 0, 0.5); // rate 75 < 80
        let err = check_feasible(&sys, &rates, &disp, true, 1e-9).unwrap_err();
        assert!(err.contains("unstable"), "{err}");
    }

    #[test]
    fn feasibility_rejects_missed_deadline() {
        let sys = presets::section_v();
        let rates = vec![vec![100.0, 10.0, 10.0]; 4];
        let mut disp = Dispatch::zero(Dims::of(&sys));
        // rate 75, lambda 70: delay = 0.2 > deadline 0.1.
        disp.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 70.0);
        disp.set_phi(ClassId(0), DcId(0), 0, 0.5);
        let err = check_feasible(&sys, &rates, &disp, true, 1e-9).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
    }

    #[test]
    fn zero_dispatch_is_feasible() {
        let sys = presets::section_vii();
        let rates = vec![vec![0.0, 0.0]];
        let disp = Dispatch::zero(Dims::of(&sys));
        assert_eq!(check_feasible(&sys, &rates, &disp, true, 1e-9), Ok(()));
        assert_eq!(disp.server_loads(), vec![0.0; 12]);
    }
}
