//! Error type for the optimizer crate.

use palb_lp::LpError;

use crate::resilient::Tier;

/// Errors from the dispatch solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The constraint system admits no feasible decision (e.g. mandatory
    /// CPU-share reservations exceed a server, or conflicting levels).
    Infeasible,
    /// The underlying LP solver failed for a non-infeasibility reason.
    Lp(LpError),
    /// The inputs are structurally inconsistent.
    Model(String),
    /// A parallel branch-and-bound worker thread panicked. The panic is
    /// contained at the join point and surfaced as a structured error so
    /// the resilient ladder can fall back instead of unwinding the whole
    /// control loop.
    WorkerPanic,
    /// A solver failure with its control-loop context attached: which slot
    /// was being decided and which degradation-ladder tier was attempting
    /// the solve when the underlying LP gave up.
    Solver {
        /// Schedule slot being decided when the failure occurred.
        slot: usize,
        /// Degradation-ladder tier that was attempting the solve.
        tier: Tier,
        /// The underlying LP failure.
        source: LpError,
    },
    /// Any other failure with the slot it occurred in attached. Drivers
    /// add this wrapper (via [`CoreError::with_slot`]) when surfacing a
    /// per-slot error that does not already carry slot context, so a
    /// whole-trace run never reports a bare `Infeasible` with no hint of
    /// *which* slot was infeasible.
    Slot {
        /// Schedule slot being decided when the failure occurred.
        slot: usize,
        /// The underlying failure.
        source: Box<CoreError>,
    },
}

impl CoreError {
    /// Attaches `slot` context to the error unless it already carries
    /// one ([`CoreError::Solver`] and [`CoreError::Slot`] do).
    pub fn with_slot(self, slot: usize) -> CoreError {
        match self {
            CoreError::Solver { .. } | CoreError::Slot { .. } => self,
            other => CoreError::Slot {
                slot,
                source: Box::new(other),
            },
        }
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Infeasible => write!(f, "dispatch problem is infeasible"),
            CoreError::Lp(e) => write!(f, "LP solver failure: {e}"),
            CoreError::Model(m) => write!(f, "model error: {m}"),
            CoreError::WorkerPanic => {
                write!(f, "a parallel branch-and-bound worker thread panicked")
            }
            CoreError::Solver { slot, tier, source } => {
                write!(f, "solver failure at slot {slot} (tier {tier}): {source}")
            }
            CoreError::Slot { slot, source } => {
                write!(f, "slot {slot}: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lp(e) => Some(e),
            CoreError::Solver { source, .. } => Some(source),
            CoreError::Slot { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::Infeasible => CoreError::Infeasible,
            other => CoreError::Lp(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_lp_maps_to_core_infeasible() {
        assert_eq!(CoreError::from(LpError::Infeasible), CoreError::Infeasible);
        assert!(matches!(
            CoreError::from(LpError::Unbounded),
            CoreError::Lp(LpError::Unbounded)
        ));
    }

    #[test]
    fn display_is_informative() {
        assert!(CoreError::Infeasible.to_string().contains("infeasible"));
        assert!(CoreError::Model("x".into()).to_string().contains('x'));
    }

    #[test]
    fn with_slot_wraps_context_free_errors_only() {
        let wrapped = CoreError::Infeasible.with_slot(4);
        assert_eq!(
            wrapped,
            CoreError::Slot {
                slot: 4,
                source: Box::new(CoreError::Infeasible)
            }
        );
        let text = wrapped.to_string();
        assert!(text.contains("slot 4"), "{text}");
        assert!(text.contains("infeasible"), "{text}");
        use std::error::Error;
        assert!(wrapped.source().is_some());
        // Errors that already carry a slot pass through untouched.
        let solver = CoreError::Solver {
            slot: 9,
            tier: Tier::Exact,
            source: LpError::Numeric("x".into()),
        };
        assert!(matches!(
            solver.with_slot(4),
            CoreError::Solver { slot: 9, .. }
        ));
        // Idempotent: re-wrapping keeps the original slot.
        assert!(matches!(
            CoreError::Infeasible.with_slot(4).with_slot(7),
            CoreError::Slot { slot: 4, .. }
        ));
    }

    #[test]
    fn solver_variant_carries_context_and_source() {
        let e = CoreError::Solver {
            slot: 13,
            tier: Tier::Exact,
            source: LpError::Numeric("bad pivot".into()),
        };
        let text = e.to_string();
        assert!(text.contains("slot 13"), "{text}");
        assert!(text.contains("exact"), "{text}");
        assert!(text.contains("bad pivot"), "{text}");
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
