// palb:lint-tier = lib
//! # palb-core — profit-aware request dispatching and resource allocation
//!
//! The primary contribution of *Profit Aware Load Balancing for Distributed
//! Cloud Data Centers* (Liu, Ren, Quan, Zhao, Ren — IPPS 2013): a
//! time-slotted controller that maximizes a cloud provider's **net profit**
//! (SLA revenue minus electricity and transfer dollars) by jointly deciding
//!
//! * where to dispatch each front-end's per-class request rates
//!   (`λ_{k,s,i,l}`),
//! * how much CPU each class's VM gets on every server (`φ_{k,i,l}`), and
//! * (derived) how many servers stay powered on.
//!
//! The modules map onto the paper's §IV:
//!
//! * [`formulate`] — the fixed-level LP (the one-level-TUF case, Eq. 5–8
//!   linearized) used by every solver,
//! * [`multilevel`] — exact branch-and-bound over TUF level choices (the
//!   discrete problem the paper ships to CPLEX), plus uniform-level and
//!   exhaustive variants,
//! * [`solver`] — the unified solver entry point: [`SolverConfig`]
//!   builder, [`SolverKind`] selection (exact / anytime / portfolio) and
//!   [`SolverBudget`] (nodes / wall-clock / no-improvement quota),
//! * [`portfolio`] — the anytime population search and the
//!   exact-vs-anytime portfolio race behind [`SolverKind::Anytime`] and
//!   [`SolverKind::Portfolio`],
//! * [`bigm`] — the paper-literal continuous big-M path solved with our
//!   augmented-Lagrangian substrate and polished back to exact levels,
//! * [`balanced`] — the paper's static price-greedy baseline (§V-A),
//! * [`driver`] — the slot loop running any [`Policy`] over a workload
//!   trace,
//! * [`mod@evaluate`] — the shared economics evaluator scoring every
//!   policy identically,
//! * [`obs`] — canonical metric names and recording helpers over the
//!   `palb-obs` substrate (wired through [`RunOptions`] and
//!   [`SlotContext`]),
//! * [`sanitize`] — input repair at the control-loop boundary (NaN/∞/
//!   negative observed rates),
//! * [`resilient`] — the degraded-mode fallback ladder
//!   ([`ResilientPolicy`]) and the fault-injecting [`ChaosPolicy`],
//! * [`report`] — CSV/table formatting for the figure-regeneration harness,
//! * [`sync`] — the verified concurrency primitives behind the parallel
//!   solver (incumbent CAS, subtree ticket queue, node budget), with an
//!   in-tree exhaustive interleaving model checker ([`sync::model`]) and
//!   loom/TSan coverage via `cargo xtask analyze`'s sibling commands.
//!
//! ```
//! use palb_cluster::presets;
//! use palb_core::{run_with, BalancedPolicy, OptimizedPolicy, RunOptions};
//! use palb_workload::synthetic::constant_trace;
//!
//! let system = presets::section_v();
//! let trace = constant_trace(presets::section_v_low_arrivals(), 1);
//! let opts = RunOptions::default();
//! let opt = run_with(&mut OptimizedPolicy::exact(), &system, &trace, &opts)
//!     .unwrap()
//!     .result;
//! let bal = run_with(&mut BalancedPolicy, &system, &trace, &opts)
//!     .unwrap()
//!     .result;
//! assert!(opt.total_net_profit() > bal.total_net_profit());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod balanced;
pub mod bigm;
pub mod driver;
pub mod error;
pub mod evaluate;
pub mod formulate;
pub mod model;
pub mod multilevel;
pub mod obs;
pub mod portfolio;
pub mod quantile;
pub mod report;
pub mod resilient;
pub mod sanitize;
pub mod scenario;
pub mod solver;
pub mod sync;

pub use balanced::balanced_dispatch;
pub use bigm::{solve_bigm, BigMOptions, BigMResult};
pub use driver::{
    run_with, BalancedPolicy, OptimizedPolicy, PartialRun, Policy, RunOptions, RunResult,
    SlotContext, SlotFailure, SolverSelection, SystemSource,
};
pub use error::CoreError;
pub use evaluate::{evaluate, SlotOutcome};
pub use formulate::{
    dispatch_problem, lp_text, solve_fixed_levels, solve_fixed_levels_with, LevelAssignment,
    LevelSolve,
};
pub use model::{check_feasible, Dims, Dispatch};
#[allow(deprecated)]
pub use multilevel::BbOptions;
pub use multilevel::{
    solve_bb, solve_exhaustive, solve_uniform_levels, solve_uniform_levels_with, MultilevelResult,
    SolverStats,
};
pub use quantile::{quantile_margin_factor, quantile_system, QuantileSlaPolicy};
pub use resilient::{
    ChaosPolicy, DampingOptions, ResilientOptions, ResilientPolicy, SlotHealth, Tier,
};
pub use sanitize::{events_per_slot, sanitize_rates, RateFaultKind, SanitizationEvent};
pub use scenario::{grid_ramp_surcharge, SlotSystems};
pub use solver::{
    parse_solver_kind, solve_with, ConfiguredSolver, Solver, SolverBudget, SolverConfig, SolverKind,
};
