//! The shared slot evaluator: given a system, offered rates, the slot index
//! and a decision, computes the realized economics of the slot — revenue
//! from TUFs evaluated at the M/M/1 mean delays (Eq. 1), processing energy
//! cost (Eq. 2), transfer cost (Eq. 3) and the resulting net profit
//! (Eq. 4) — plus the operational metrics the paper plots (dispatch per
//! data center, completion counts, powered-on servers).
//!
//! Both policies (Optimized and Balanced) are scored by this same function,
//! so comparisons can never be skewed by policy-specific accounting.

use palb_cluster::{cost, power, ClassId, DcId, FrontEndId, System};

use palb_num::is_zero;

use crate::model::Dispatch;
use crate::resilient::SlotHealth;

/// Realized economics and operational metrics of one slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOutcome {
    /// Slot index the outcome belongs to.
    pub slot: usize,
    /// Revenue from time-utility functions, $.
    pub revenue: f64,
    /// Processing energy cost (Eq. 2), $.
    pub energy_cost: f64,
    /// Transfer cost (Eq. 3), $.
    pub transfer_cost: f64,
    /// `revenue − energy_cost − transfer_cost`, $.
    pub net_profit: f64,
    /// Requests offered during the slot (count).
    pub offered: f64,
    /// Requests dispatched to some server (count).
    pub dispatched: f64,
    /// Requests completed within their final deadline (count).
    pub completed: f64,
    /// Powered-on servers per data center.
    pub powered_on: Vec<usize>,
    /// `rate[k][l]`: dispatched rate of class `k` at data center `l`
    /// (the series of the paper's Figs. 7 and 9).
    pub class_dc_rate: Vec<Vec<f64>>,
    /// `delay[k][l]`: dispatch-weighted mean delay of class `k` at data
    /// center `l` (`NaN` when nothing is dispatched there).
    pub class_dc_delay: Vec<Vec<f64>>,
    /// Control-loop health telemetry for the slot. `None` when neither the
    /// policy nor the driver observed anything health-worthy (plain
    /// policies on clean inputs); populated by [`crate::run_with`] from
    /// [`crate::SlotContext::record_health`] and the input-sanitization
    /// pass.
    pub health: Option<SlotHealth>,
}

impl SlotOutcome {
    /// Fraction of offered requests that completed in time.
    pub fn completion_ratio(&self) -> f64 {
        if self.offered <= 0.0 {
            1.0
        } else {
            self.completed / self.offered
        }
    }

    /// Total dollar cost (energy + transfer).
    pub fn total_cost(&self) -> f64 {
        self.energy_cost + self.transfer_cost
    }
}

/// Evaluates a decision for one slot. `rates[s][k]` are the offered
/// arrival rates at each front-end.
pub fn evaluate(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dispatch: &Dispatch,
) -> SlotOutcome {
    let dims = dispatch.dims();
    let t = system.slot_length;
    let kk = dims.classes;
    let ll = dims.dcs;

    let mut revenue = 0.0;
    let mut energy_cost = 0.0;
    let mut transfer_cost = 0.0;
    let mut completed_rate = 0.0;
    let mut class_dc_rate = vec![vec![0.0; ll]; kk];
    let mut class_dc_delay_num = vec![vec![0.0; ll]; kk];

    for l in 0..ll {
        let dc = &system.data_centers[l];
        let price = dc.prices.price_at(slot);
        for i in 0..dims.servers_per_dc[l] {
            let sv = dims.server(DcId(l), i);
            for k in 0..kk {
                let lam = dispatch.server_class_rate(ClassId(k), sv);
                if lam <= power::IDLE_EPSILON {
                    continue;
                }
                let class = &system.classes[k];
                let service = dispatch.phi_by_server(ClassId(k), sv) * dc.full_rate(ClassId(k));
                // Eq. 1: mean delay of this class VM; +inf if unstable.
                let delay = if service > lam {
                    1.0 / (service - lam)
                } else {
                    f64::INFINITY
                };
                // Revenue: the TUF of the mean delay (0 beyond the final
                // deadline — dispatched but worthless).
                let unit_utility = if delay.is_finite() {
                    class.tuf.eval(delay)
                } else {
                    0.0
                };
                revenue += cost::slot_revenue(unit_utility, lam, t);
                if delay <= class.tuf.final_deadline() {
                    completed_rate += lam;
                }
                // Eq. 2: energy is paid for every processed request whether
                // or not it earned utility.
                energy_cost +=
                    cost::processing_cost(dc.effective_energy(ClassId(k)), lam, t, price);
                class_dc_rate[k][l] += lam;
                if delay.is_finite() {
                    class_dc_delay_num[k][l] += lam * delay;
                }
            }
        }
    }

    // Eq. 3: transfer cost depends on the origin front-end.
    for k in 0..kk {
        let per_mile = system.classes[k].transfer_cost_per_mile;
        if is_zero(per_mile) {
            continue;
        }
        for s in 0..dims.front_ends {
            for l in 0..ll {
                let mut lam_sl = 0.0;
                for i in 0..dims.servers_per_dc[l] {
                    lam_sl += dispatch.lambda(ClassId(k), FrontEndId(s), DcId(l), i);
                }
                if lam_sl > 0.0 {
                    transfer_cost += cost::transfer_cost(
                        per_mile,
                        system.distance(FrontEndId(s), DcId(l)),
                        lam_sl,
                        t,
                    );
                }
            }
        }
    }

    let offered_rate: f64 = rates.iter().flatten().sum();
    let dispatched_rate = dispatch.total_dispatched();
    let powered_on: Vec<usize> = (0..ll)
        .map(|l| {
            let loads: Vec<f64> = (0..dims.servers_per_dc[l])
                .map(|i| dispatch.server_load(dims.server(DcId(l), i)))
                .collect();
            power::powered_on(&loads)
        })
        .collect();
    let class_dc_delay = class_dc_rate
        .iter()
        .zip(&class_dc_delay_num)
        .map(|(rates_l, nums_l)| {
            rates_l
                .iter()
                .zip(nums_l)
                .map(|(&r, &n)| if r > 0.0 { n / r } else { f64::NAN })
                .collect()
        })
        .collect();

    SlotOutcome {
        slot,
        revenue,
        energy_cost,
        transfer_cost,
        net_profit: revenue - energy_cost - transfer_cost,
        offered: offered_rate * t,
        dispatched: dispatched_rate * t,
        completed: completed_rate * t,
        powered_on,
        class_dc_rate,
        class_dc_delay,
        health: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dims;
    use palb_cluster::presets;

    fn one_flow_dispatch(sys: &System) -> (Dispatch, Vec<Vec<f64>>) {
        // §V system, 10 req/s of class 0 from fe0 to dc0 server0, phi 0.5.
        let mut d = Dispatch::zero(Dims::of(sys));
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 10.0);
        d.set_phi(ClassId(0), DcId(0), 0, 0.5);
        let rates = vec![
            vec![10.0, 0.0, 0.0],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        ];
        (d, rates)
    }

    #[test]
    fn single_flow_accounting() {
        let sys = presets::section_v();
        let (d, rates) = one_flow_dispatch(&sys);
        let out = evaluate(&sys, &rates, 0, &d);
        let t = 3600.0;
        // delay = 1/(0.5*150 - 10) = 1/65 = 0.0154 < 0.1 -> utility $2.5.
        assert!((out.revenue - 2.5 * 10.0 * t).abs() < 1e-6);
        // energy: 2 kWh * 10/s * 3600 s * $0.20 = $14_400.
        assert!((out.energy_cost - 14_400.0).abs() < 1e-6);
        // §V has no transfer costs.
        assert_eq!(out.transfer_cost, 0.0);
        assert!((out.net_profit - (90_000.0 - 14_400.0)).abs() < 1e-6);
        assert!((out.completed - 36_000.0).abs() < 1e-6);
        assert!((out.offered - 36_000.0).abs() < 1e-6);
        assert_eq!(out.powered_on, vec![1, 0, 0]);
        assert!((out.class_dc_rate[0][0] - 10.0).abs() < 1e-12);
        assert!((out.class_dc_delay[0][0] - 1.0 / 65.0).abs() < 1e-9);
        assert!(out.class_dc_delay[0][1].is_nan());
        assert!((out.completion_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_vm_earns_nothing_but_pays_energy() {
        let sys = presets::section_v();
        let mut d = Dispatch::zero(Dims::of(&sys));
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 100.0);
        d.set_phi(ClassId(0), DcId(0), 0, 0.5); // capacity 75 < 100
        let rates = vec![
            vec![100.0, 0.0, 0.0],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        ];
        let out = evaluate(&sys, &rates, 0, &d);
        assert_eq!(out.revenue, 0.0);
        assert!(out.energy_cost > 0.0);
        assert!(out.net_profit < 0.0);
        assert_eq!(out.completed, 0.0);
    }

    #[test]
    fn late_but_stable_flow_earns_zero_and_misses_completion() {
        let sys = presets::section_v();
        let mut d = Dispatch::zero(Dims::of(&sys));
        // capacity 75, lambda 70 -> delay 0.2 > deadline 0.1.
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 70.0);
        d.set_phi(ClassId(0), DcId(0), 0, 0.5);
        let rates = vec![
            vec![70.0, 0.0, 0.0],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        ];
        let out = evaluate(&sys, &rates, 0, &d);
        assert_eq!(out.revenue, 0.0);
        assert_eq!(out.completed, 0.0);
        assert!(out.dispatched > 0.0);
    }

    #[test]
    fn transfer_cost_counts_distance() {
        let sys = presets::section_vi();
        let mut d = Dispatch::zero(Dims::of(&sys));
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(1), 0, 100.0);
        d.set_phi(ClassId(0), DcId(1), 0, 0.5);
        let mut rates = vec![vec![0.0; 3]; 4];
        rates[0][0] = 100.0;
        let out = evaluate(&sys, &rates, 0, &d);
        // fe0 -> mountain_view = 2500 miles at $0.003/mile = $7.5/request.
        assert!((out.transfer_cost - 0.003 * 2500.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dispatch_zero_everything() {
        let sys = presets::section_vii();
        let d = Dispatch::zero(Dims::of(&sys));
        let rates = vec![vec![50.0, 60.0]];
        let out = evaluate(&sys, &rates, 0, &d);
        assert_eq!(out.revenue, 0.0);
        assert_eq!(out.net_profit, 0.0);
        assert_eq!(out.dispatched, 0.0);
        assert!((out.offered - 110.0).abs() < 1e-9);
        assert_eq!(out.powered_on, vec![0, 0]);
        assert_eq!(out.completion_ratio(), 0.0);
    }

    #[test]
    fn two_level_tuf_pays_by_achieved_level() {
        let sys = presets::section_vii();
        let mut d = Dispatch::zero(Dims::of(&sys));
        // Class 0 on houston server 0 with phi = 0.5: service = 15_000.
        // lambda = 1_000 -> delay = 1/14_000 < D1=1e-4 -> level 1 ($20).
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 0, 1_000.0);
        d.set_phi(ClassId(0), DcId(0), 0, 0.5);
        // Class 0 on houston server 1 with phi = 0.5, lambda = 11_000:
        // delay = 1/4_000 = 2.5e-4 in (D1, D2] -> level 2 ($15).
        d.set_lambda(ClassId(0), FrontEndId(0), DcId(0), 1, 11_000.0);
        d.set_phi(ClassId(0), DcId(0), 1, 0.5);
        let rates = vec![vec![12_000.0, 0.0]];
        let out = evaluate(&sys, &rates, 13, &d);
        let expect_revenue = 20.0 * 1_000.0 + 15.0 * 11_000.0;
        assert!(
            (out.revenue - expect_revenue).abs() < 1e-6,
            "revenue {} vs {expect_revenue}",
            out.revenue
        );
        assert!((out.completed - 12_000.0).abs() < 1e-9);
    }
}
