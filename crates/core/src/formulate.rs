//! LP formulation of the dispatch problem for a *fixed* utility-level
//! assignment.
//!
//! The paper's objective (Eq. 5) is nonlinear only because the utility
//! `U_k(R)` jumps across TUF levels. Once every (class, server) VM is
//! pinned to a level `q` — earning `U_{k,q}` under the delay bound
//! `R ≤ D_{k,q}` — the problem collapses to the LP the paper solves for
//! one-level TUFs (§IV-1):
//!
//! ```text
//!   max  Σ (U_{k,q} − P_{k,l}·p_l − TranCost_k·d_{s,l}) · λ_{k,s,i,l} · T
//!   s.t. φ_{k,i,l}·C_{i,l}·µ_{k,l} − Σ_s λ_{k,s,i,l} ≥ 1/D_{k,q}   (Eq. 6 linearized)
//!        Σ_{i,l} λ_{k,s,i,l} ≤ λ_{k,s}                              (Eq. 7)
//!        Σ_k φ_{k,i,l} ≤ 1                                          (Eq. 8)
//! ```
//!
//! This module is the work-horse of every solver in the crate: the
//! one-level path calls it once, the branch-and-bound calls it per node,
//! and the big-M path calls it to polish snapped levels.

use std::sync::Arc;

use palb_cluster::{ClassId, FrontEndId, System};
use palb_lp::{
    BlockStructure, ConId, LpError, Problem, Rel, SolveOptions, VarId, Workspace, WorkspaceStats,
};

use crate::error::CoreError;
use crate::model::{Dims, Dispatch};

/// A utility-level assignment: for every `(class, global server)` either
/// `Some(q)` (the VM exists and must meet level `q`'s sub-deadline,
/// 1-based) or `None` (the class is disabled on that server — the
/// load-conditional *extension*; the paper's own formulation always
/// assigns a level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelAssignment {
    levels: Vec<Option<usize>>,
    dims: Dims,
}

impl LevelAssignment {
    /// Every class active on every server at level `q` (the paper's
    /// unconditional Eq. 6 with a one-level TUF uses `q = 1`).
    pub fn uniform(dims: &Dims, q: usize) -> Self {
        LevelAssignment {
            levels: vec![Some(q); dims.phi_len()],
            dims: dims.clone(),
        }
    }

    /// The paper's default for multi-level TUFs: every VM pinned to the
    /// *last* (loosest) level of its class's TUF.
    pub fn loosest(system: &System, dims: &Dims) -> Self {
        let mut a = Self::uniform(dims, 1);
        for (k, sv) in dims.class_server_pairs() {
            a.set(k, sv, Some(system.classes[k.0].tuf.num_levels()));
        }
        a
    }

    /// Level of `(class, global server)`.
    pub fn get(&self, k: ClassId, sv: usize) -> Option<usize> {
        self.levels[self.dims.phi_idx(k, sv)]
    }

    /// Sets the level of `(class, global server)`.
    pub fn set(&mut self, k: ClassId, sv: usize, q: Option<usize>) {
        let idx = self.dims.phi_idx(k, sv);
        self.levels[idx] = q;
    }

    /// The dimension helper this assignment was built for.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Validates levels against the system's TUFs.
    pub fn validate(&self, system: &System) -> Result<(), CoreError> {
        for (k, sv) in self.dims.class_server_pairs() {
            if let Some(q) = self.get(k, sv) {
                let n = system.classes[k.0].tuf.num_levels();
                if q == 0 || q > n {
                    // palb:allow(trans-alloc): cold rejection path — the message only allocates when the assignment is invalid and the solve aborts
                    return Err(CoreError::Model(format!(
                        "level {q} out of 1..={n} for class {k:?} server {sv}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Result of a fixed-level LP solve.
#[derive(Debug, Clone)]
pub struct LevelSolve {
    /// The optimal decision under the level assignment.
    pub dispatch: Dispatch,
    /// LP objective: slot net profit assuming each VM earns exactly its
    /// assigned level's utility (a lower bound on the realized profit,
    /// since lighter-than-deadline loading can bump a VM to a better
    /// level at evaluation time).
    pub objective: f64,
    /// Simplex pivots spent.
    pub pivots: usize,
}

/// Builds and solves the fixed-level LP. `rates[s][k]` are offered rates.
///
/// Returns [`CoreError::Infeasible`] when the assignment is impossible
/// (e.g. the per-class share reservations `1/(D_q·C·µ)` of a server sum
/// past 1).
pub fn solve_fixed_levels(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    assignment: &LevelAssignment,
) -> Result<LevelSolve, CoreError> {
    solve_fixed_levels_with(system, rates, slot, assignment, &SolveOptions::default())
}

/// [`solve_fixed_levels`] with explicit LP solver options — the entry point
/// the degradation ladder uses to impose iteration budgets and pivot-rule
/// overrides on individual solve attempts.
pub fn solve_fixed_levels_with(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    assignment: &LevelAssignment,
    lp_opts: &SolveOptions,
) -> Result<LevelSolve, CoreError> {
    assignment.validate(system)?;
    let dims = assignment.dims().clone();
    let spec: Vec<Option<(f64, f64)>> = (0..dims.phi_len())
        .map(|idx| {
            let k = idx / dims.total_servers;
            let sv = idx % dims.total_servers;
            assignment.get(ClassId(k), sv).map(|q| {
                let tuf = &system.classes[k].tuf;
                (tuf.utility_of_level(q), tuf.deadline_of_level(q))
            })
        })
        .collect();
    solve_spec_with(system, rates, slot, &dims, &spec, lp_opts)
}

/// The assembled LP plus the variable/constraint handles needed to read a
/// decision back out of a solution (and to patch the model in place).
pub(crate) struct SpecProblem {
    pub problem: Problem,
    pub lam_vars: Vec<Option<VarId>>,
    pub phi_vars: Vec<Option<VarId>>,
    pub delay_cons: Vec<Option<ConId>>,
    pub supply_cons: Vec<Option<ConId>>,
    /// Per-server block metadata for the sparse engine's Dantzig-Wolfe
    /// style pricing: every φ/λ variable and every delay/share row belongs
    /// to its server's block; the supply rows couple servers and carry the
    /// coupling id. Harmless on the dense engine (ignored).
    pub blocks: BlockStructure,
}

/// Builds the fixed-terms LP without solving it (shared by the solver and
/// the CLI's LP-format exporter).
///
/// `names` controls whether variables and constraints carry human-readable
/// names: the exporter wants them, the solver hot path does not (name
/// formatting dominated model-build profiles before it was made lazy).
pub(crate) fn build_spec_problem(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    spec: &[Option<(f64, f64)>],
    names: bool,
) -> SpecProblem {
    debug_assert_eq!(spec.len(), dims.phi_len());
    let t = system.slot_length;
    let mut p = Problem::maximize();

    // Block metadata, tracked in variable/constraint creation order: each
    // server is one block, supply rows couple servers.
    let coupling = dims.total_servers as u32;
    let mut var_blocks: Vec<u32> = Vec::new();
    let mut con_blocks: Vec<u32> = Vec::new();

    // φ variables and the utility/deadline of each active (class, server).
    let mut phi_vars: Vec<Option<VarId>> = vec![None; dims.phi_len()];
    let mut level_util = vec![0.0; dims.phi_len()];
    let mut level_deadline = vec![0.0; dims.phi_len()];
    for (k, sv) in dims.class_server_pairs() {
        let idx = dims.phi_idx(k, sv);
        if let Some((util, deadline)) = spec[idx] {
            level_util[idx] = util;
            level_deadline[idx] = deadline;
            phi_vars[idx] = Some(if names {
                // palb:allow(trans-alloc): debug naming only — benchmarked solves take the unnamed branch
                p.add_var(&format!("phi_k{}_sv{sv}", k.0), 0.0, 1.0, 0.0)
            } else {
                p.add_var_unnamed(0.0, 1.0, 0.0)
            });
            var_blocks.push(sv as u32);
        }
    }

    // λ variables with per-request net margin as objective coefficient.
    let mut lam_vars: Vec<Option<VarId>> = vec![None; dims.lambda_len()];
    for (k, sv) in dims.class_server_pairs() {
        let pidx = dims.phi_idx(k, sv);
        if phi_vars[pidx].is_none() {
            continue;
        }
        let l = dims.dc_of_server(sv);
        for s in 0..dims.front_ends {
            let margin = (level_util[pidx] - system.unit_cost(k, FrontEndId(s), l, slot)) * t;
            let idx = dims.lambda_idx(k, FrontEndId(s), sv);
            lam_vars[idx] = Some(if names {
                p.add_var(
                    // palb:allow(trans-alloc): debug naming only — benchmarked solves take the unnamed branch
                    &format!("lam_k{}_s{s}_sv{sv}", k.0),
                    0.0,
                    f64::INFINITY,
                    margin,
                )
            } else {
                p.add_var_unnamed(0.0, f64::INFINITY, margin)
            });
            var_blocks.push(sv as u32);
        }
    }

    // One scratch buffer serves every row below (the per-row `vec!` churn
    // used to dominate node-bound build time in branch-and-bound).
    let mut terms: Vec<(VarId, f64)> =
        Vec::with_capacity(1 + dims.front_ends.max(dims.classes).max(dims.total_servers));

    // Eq. 6 linearized: φ·C·µ − Σ_s λ ≥ 1/D_q for every active VM.
    let mut delay_cons: Vec<Option<ConId>> = vec![None; dims.phi_len()];
    for (k, sv) in dims.class_server_pairs() {
        let pidx = dims.phi_idx(k, sv);
        let Some(phi) = phi_vars[pidx] else { continue };
        let l = dims.dc_of_server(sv);
        let full_rate = system.data_centers[l.0].full_rate(k);
        terms.clear();
        terms.push((phi, full_rate));
        for s in 0..dims.front_ends {
            if let Some(lv) = lam_vars[dims.lambda_idx(k, FrontEndId(s), sv)] {
                terms.push((lv, -1.0));
            }
        }
        // The guard keeps the optimum strictly inside the deadline so float
        // round-off in a binding constraint cannot tip the realized delay
        // past D (which would zero the VM's revenue at evaluation time).
        let rhs = (1.0 / level_deadline[pidx]) * (1.0 + 1e-6);
        delay_cons[pidx] = Some(if names {
            // palb:allow(trans-alloc): debug naming only — benchmarked solves take the unnamed branch
            p.add_con(&format!("delay_k{}_sv{sv}", k.0), &terms, Rel::Ge, rhs)
        } else {
            p.add_con_unnamed(&terms, Rel::Ge, rhs)
        });
        con_blocks.push(sv as u32);
    }

    // Eq. 7: dispatched ≤ offered per (class, front-end).
    let mut supply_cons: Vec<Option<ConId>> = vec![None; dims.classes * dims.front_ends];
    for k in 0..dims.classes {
        for s in 0..dims.front_ends {
            terms.clear();
            for sv in 0..dims.total_servers {
                if let Some(lv) = lam_vars[dims.lambda_idx(ClassId(k), FrontEndId(s), sv)] {
                    terms.push((lv, 1.0));
                }
            }
            if !terms.is_empty() {
                supply_cons[k * dims.front_ends + s] = Some(if names {
                    // palb:allow(trans-alloc): debug naming only — benchmarked solves take the unnamed branch
                    p.add_con(&format!("supply_k{k}_s{s}"), &terms, Rel::Le, rates[s][k])
                } else {
                    p.add_con_unnamed(&terms, Rel::Le, rates[s][k])
                });
                con_blocks.push(coupling);
            }
        }
    }

    // Eq. 8: Σ_k φ ≤ 1 per server.
    for sv in 0..dims.total_servers {
        terms.clear();
        for k in 0..dims.classes {
            if let Some(phi) = phi_vars[dims.phi_idx(ClassId(k), sv)] {
                terms.push((phi, 1.0));
            }
        }
        if !terms.is_empty() {
            if names {
                // palb:allow(trans-alloc): debug naming only — benchmarked solves take the unnamed branch
                p.add_con(&format!("share_sv{sv}"), &terms, Rel::Le, 1.0);
            } else {
                p.add_con_unnamed(&terms, Rel::Le, 1.0);
            }
            con_blocks.push(sv as u32);
        }
    }

    SpecProblem {
        problem: p,
        lam_vars,
        phi_vars,
        delay_cons,
        supply_cons,
        blocks: BlockStructure {
            var_blocks,
            con_blocks,
            n_blocks: coupling,
        },
    }
}

/// Generalized fixed-terms LP: for every `(class, global server)` VM,
/// `spec[phi_idx]` gives `Some((unit_utility, deadline))` or `None` when
/// the class is disabled on that server. The branch-and-bound relaxation
/// uses mixed specs (top-level utility with last-level deadline) that no
/// [`LevelAssignment`] can express.
pub(crate) fn solve_spec_with(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    spec: &[Option<(f64, f64)>],
    lp_opts: &SolveOptions,
) -> Result<LevelSolve, CoreError> {
    let built = build_spec_problem(system, rates, slot, dims, spec, false);
    let opts = SolveOptions {
        blocks: Some(Arc::new(built.blocks)),
        ..lp_opts.clone()
    };
    let sol = match built.problem.solve_with(&opts) {
        Ok(s) => s,
        Err(LpError::Infeasible) => return Err(CoreError::Infeasible),
        Err(e) => return Err(CoreError::Lp(e)),
    };
    Ok(read_solve(dims, &built.lam_vars, &built.phi_vars, &sol))
}

/// Reads a dispatch decision back out of an LP solution.
fn read_solve(
    dims: &Dims,
    lam_vars: &[Option<VarId>],
    phi_vars: &[Option<VarId>],
    sol: &palb_lp::Solution,
) -> LevelSolve {
    let mut dispatch = Dispatch::zero(dims.clone());
    {
        let (lambda, phi) = dispatch.raw_mut();
        for (idx, var) in lam_vars.iter().enumerate() {
            if let Some(v) = *var {
                lambda[idx] = sol.value(v).max(0.0);
            }
        }
        for (idx, var) in phi_vars.iter().enumerate() {
            if let Some(v) = *var {
                phi[idx] = sol.value(v).clamp(0.0, 1.0);
            }
        }
    }
    LevelSolve {
        dispatch,
        objective: sol.objective(),
        pivots: sol.iterations(),
    }
}

/// Renders the fixed-level dispatch LP for one slot in CPLEX LP format —
/// the model the paper would have handed to GLPK/CPLEX, exported for
/// inspection or for cross-checking with an external solver.
pub fn lp_text(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    assignment: &LevelAssignment,
) -> Result<String, CoreError> {
    assignment.validate(system)?;
    let dims = assignment.dims().clone();
    let spec: Vec<Option<(f64, f64)>> = (0..dims.phi_len())
        .map(|idx| {
            let k = idx / dims.total_servers;
            let sv = idx % dims.total_servers;
            assignment.get(ClassId(k), sv).map(|q| {
                let tuf = &system.classes[k].tuf;
                (tuf.utility_of_level(q), tuf.deadline_of_level(q))
            })
        })
        .collect();
    let built = build_spec_problem(system, rates, slot, &dims, &spec, true);
    Ok(built.problem.to_lp_format())
}

/// Builds the fixed-level dispatch LP for one slot *without solving it*,
/// returning the assembled [`Problem`] together with its per-server block
/// metadata. The bench's sparse-engine study uses this to measure model
/// size (nonzero counts) and to time the two LP engines on the identical
/// model.
pub fn dispatch_problem(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    assignment: &LevelAssignment,
) -> Result<(Problem, BlockStructure), CoreError> {
    assignment.validate(system)?;
    let dims = assignment.dims().clone();
    let spec: Vec<Option<(f64, f64)>> = (0..dims.phi_len())
        .map(|idx| {
            let k = idx / dims.total_servers;
            let sv = idx % dims.total_servers;
            assignment.get(ClassId(k), sv).map(|q| {
                let tuf = &system.classes[k].tuf;
                (tuf.utility_of_level(q), tuf.deadline_of_level(q))
            })
        })
        .collect();
    let built = build_spec_problem(system, rates, slot, &dims, &spec, false);
    Ok((built.problem, built.blocks))
}

/// A slot-scoped incremental solve engine over the dispatch LP.
///
/// The LP's *structure* — which variables and rows exist, and every matrix
/// coefficient — is fixed by [`Dims`] and the data centers' full rates; a
/// level assignment only moves objective coefficients (λ margins) and
/// right-hand sides (delay reservations), and a new slot only moves margins
/// (electricity prices) and supply rows (offered rates). `SpecWorkspace`
/// exploits that: it builds the all-active model **once**, then patches
/// coefficients in place through a persistent [`palb_lp::Workspace`].
///
/// Two solve paths with different contracts:
///
/// * [`SpecWorkspace::solve_cold`] runs the *legacy* full solver
///   (presolve + two-phase simplex) on the patched [`Problem`]. Because the
///   patched problem is value-identical to a freshly built one, the result
///   is **bit-for-bit identical** to [`solve_spec_with`] — this is the path
///   whose answers callers publish (incumbents, leaves, final dispatches).
/// * [`SpecWorkspace::solve_warm`] warm-starts the simplex from the
///   previous basis (dual repair + primal re-entry), skipping presolve and
///   most pivots. Used only where the answer steers search (branch-and-
///   bound interior bounds), never where it is published.
///
/// Only all-active specs are expressible (a `None` VM changes the sparsity
/// pattern); callers with disabled classes fall back to the per-call
/// builder.
pub(crate) struct SpecWorkspace {
    ws: Workspace,
    dims: Dims,
    t: f64,
    lam_vars: Vec<Option<VarId>>,
    phi_vars: Vec<Option<VarId>>,
    delay_cons: Vec<ConId>,
    supply_cons: Vec<ConId>,
    /// Current `(utility, deadline)` per φ index — the diff baseline.
    cur_spec: Vec<(f64, f64)>,
    /// `unit_cost(k, s, dc_of(sv), slot)` flattened as `pidx·S + s`.
    unit_costs: Vec<f64>,
    /// Per-server block metadata (shared with every solve of this model).
    blocks: Arc<BlockStructure>,
    /// Cold solves routed through the legacy full path (and their pivots);
    /// the warm-side counters live in [`Workspace::stats`].
    legacy_cold_solves: usize,
    legacy_cold_pivots: usize,
}

impl SpecWorkspace {
    /// Builds the all-active model for `spec` (dense `(utility, deadline)`
    /// per φ index) and wraps it in an incremental workspace.
    pub(crate) fn new(
        system: &System,
        rates: &[Vec<f64>],
        slot: usize,
        dims: &Dims,
        spec: &[(f64, f64)],
        lp_opts: &SolveOptions,
    ) -> Result<Self, CoreError> {
        debug_assert_eq!(spec.len(), dims.phi_len());
        let full: Vec<Option<(f64, f64)>> = spec.iter().copied().map(Some).collect();
        let built = build_spec_problem(system, rates, slot, dims, &full, false);
        let delay_cons: Vec<ConId> = built
            .delay_cons
            .iter()
            // palb:allow(unwrap): the all-active spec materializes every delay row
            .map(|c| c.expect("all-active spec has every delay row"))
            .collect();
        let supply_cons: Vec<ConId> = built
            .supply_cons
            .iter()
            // palb:allow(unwrap): the all-active spec materializes every supply row
            .map(|c| c.expect("all-active spec has every supply row"))
            .collect();
        let blocks = Arc::new(built.blocks);
        let ws_opts = SolveOptions {
            blocks: Some(Arc::clone(&blocks)),
            ..lp_opts.clone()
        };
        let ws = Workspace::new(&built.problem, &ws_opts).map_err(CoreError::Lp)?;
        let mut unit_costs = vec![0.0; dims.phi_len() * dims.front_ends];
        for (k, sv) in dims.class_server_pairs() {
            let pidx = dims.phi_idx(k, sv);
            let l = dims.dc_of_server(sv);
            for s in 0..dims.front_ends {
                unit_costs[pidx * dims.front_ends + s] =
                    system.unit_cost(k, FrontEndId(s), l, slot);
            }
        }
        Ok(SpecWorkspace {
            ws,
            dims: dims.clone(),
            t: system.slot_length,
            lam_vars: built.lam_vars,
            phi_vars: built.phi_vars,
            delay_cons,
            supply_cons,
            cur_spec: spec.to_vec(),
            unit_costs,
            blocks,
            legacy_cold_solves: 0,
            legacy_cold_pivots: 0,
        })
    }

    /// The dimension helper the workspace was built for.
    pub(crate) fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Patches the model to a new dense spec: λ margins for every changed
    /// utility, delay reservations for every changed deadline. The margin
    /// arithmetic replicates [`build_spec_problem`] exactly, so the patched
    /// problem stays value-identical to a fresh build.
    pub(crate) fn apply_spec(&mut self, spec: &[(f64, f64)]) {
        debug_assert_eq!(spec.len(), self.dims.phi_len());
        let fe = self.dims.front_ends;
        for pidx in 0..spec.len() {
            let (util, deadline) = spec[pidx];
            let (cur_util, cur_deadline) = self.cur_spec[pidx];
            if deadline != cur_deadline {
                self.ws
                    .set_rhs(self.delay_cons[pidx], (1.0 / deadline) * (1.0 + 1e-6));
            }
            if util != cur_util {
                let k = ClassId(pidx / self.dims.total_servers);
                let sv = pidx % self.dims.total_servers;
                for s in 0..fe {
                    let margin = (util - self.unit_costs[pidx * fe + s]) * self.t;
                    let lv = self.lam_vars[self.dims.lambda_idx(k, FrontEndId(s), sv)]
                        // palb:allow(unwrap): the all-active workspace has every lambda variable
                        .expect("all-active workspace");
                    self.ws.set_objective(lv, margin);
                }
            }
            self.cur_spec[pidx] = spec[pidx];
        }
    }

    /// Patches the supply rows to new offered rates.
    pub(crate) fn set_rates(&mut self, rates: &[Vec<f64>]) {
        for k in 0..self.dims.classes {
            for s in 0..self.dims.front_ends {
                self.ws
                    .set_rhs(self.supply_cons[k * self.dims.front_ends + s], rates[s][k]);
            }
        }
    }

    /// Re-aims the workspace at another slot of the same system: refreshes
    /// the cached unit costs (electricity prices are slot-dependent),
    /// re-derives every λ margin under the current spec, and installs the
    /// slot's offered rates. The constraint matrix is slot-invariant, so
    /// the basis survives and the next solve warm-starts across slots.
    pub(crate) fn retarget(&mut self, system: &System, rates: &[Vec<f64>], slot: usize) {
        debug_assert_eq!(Dims::of(system), self.dims);
        self.t = system.slot_length;
        let fe = self.dims.front_ends;
        for (k, sv) in self.dims.class_server_pairs() {
            let pidx = self.dims.phi_idx(k, sv);
            let l = self.dims.dc_of_server(sv);
            let util = self.cur_spec[pidx].0;
            for s in 0..fe {
                let cost = system.unit_cost(k, FrontEndId(s), l, slot);
                self.unit_costs[pidx * fe + s] = cost;
                let margin = (util - cost) * self.t;
                let lv = self.lam_vars[self.dims.lambda_idx(k, FrontEndId(s), sv)]
                    // palb:allow(unwrap): the all-active workspace has every lambda variable
                    .expect("all-active workspace");
                self.ws.set_objective(lv, margin);
            }
        }
        self.set_rates(rates);
    }

    /// Solves the patched model through the legacy full path — bit-for-bit
    /// identical to a fresh [`solve_spec_with`] of the same model.
    pub(crate) fn solve_cold(&mut self, lp_opts: &SolveOptions) -> Result<LevelSolve, CoreError> {
        let opts = SolveOptions {
            blocks: Some(Arc::clone(&self.blocks)),
            ..lp_opts.clone()
        };
        let sol = match self.ws.problem().solve_with(&opts) {
            Ok(s) => s,
            Err(LpError::Infeasible) => return Err(CoreError::Infeasible),
            Err(e) => return Err(CoreError::Lp(e)),
        };
        self.legacy_cold_solves += 1;
        self.legacy_cold_pivots += sol.iterations();
        Ok(read_solve(&self.dims, &self.lam_vars, &self.phi_vars, &sol))
    }

    /// Solves the patched model warm-starting from the previous basis
    /// (with the workspace's internal cold fallback). Objective and
    /// decision agree with [`SpecWorkspace::solve_cold`] to solver
    /// tolerance but not necessarily bit-for-bit — use only for bounds.
    pub(crate) fn solve_warm(&mut self, lp_opts: &SolveOptions) -> Result<LevelSolve, CoreError> {
        let sol = match self.ws.solve_with(lp_opts) {
            Ok(s) => s,
            Err(LpError::Infeasible) => return Err(CoreError::Infeasible),
            Err(e) => return Err(CoreError::Lp(e)),
        };
        Ok(read_solve(&self.dims, &self.lam_vars, &self.phi_vars, &sol))
    }

    /// Warm-side counters of the underlying LP workspace.
    pub(crate) fn lp_stats(&self) -> WorkspaceStats {
        *self.ws.stats()
    }
}

/// A pool of [`SpecWorkspace`]s keyed by [`Dims`], so the parallel
/// branch-and-bound can hand every worker thread its own warm-start
/// workspace and recycle them across slots. Entries whose dimensions no
/// longer match the system being solved are simply never taken again (a
/// system change mid-run only happens in tests; the pool stays tiny —
/// bounded by the largest worker count ever used plus one seed workspace).
#[derive(Default)]
pub(crate) struct WorkspacePool {
    entries: Vec<SpecWorkspace>,
}

impl WorkspacePool {
    /// Removes and returns a pooled workspace matching `dims`, if any.
    /// The caller is responsible for retargeting it before use.
    pub(crate) fn take_matching(&mut self, dims: &Dims) -> Option<SpecWorkspace> {
        let pos = self.entries.iter().position(|w| w.dims() == dims)?;
        Some(self.entries.swap_remove(pos))
    }

    /// A ready-to-solve workspace for `(system, rates, slot, spec)`: a
    /// pooled one retargeted and re-spec'd when the dimensions match
    /// (same semantics as [`ensure_spec_workspace`]), a fresh build
    /// otherwise.
    pub(crate) fn acquire(
        &mut self,
        system: &System,
        rates: &[Vec<f64>],
        slot: usize,
        dims: &Dims,
        spec: &[(f64, f64)],
        lp_opts: &SolveOptions,
    ) -> Result<SpecWorkspace, CoreError> {
        match self.take_matching(dims) {
            Some(mut w) => {
                w.retarget(system, rates, slot);
                w.apply_spec(spec);
                Ok(w)
            }
            None => SpecWorkspace::new(system, rates, slot, dims, spec, lp_opts),
        }
    }

    /// Returns a workspace to the pool for later reuse.
    pub(crate) fn release(&mut self, w: SpecWorkspace) {
        self.entries.push(w);
    }

    /// Whether the pool currently holds any workspace.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Reuses `cache` when its workspace matches `dims` (retargeting it to the
/// given slot/rates/spec), otherwise builds a fresh one into it.
pub(crate) fn ensure_spec_workspace<'a>(
    cache: &'a mut Option<SpecWorkspace>,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    spec: &[(f64, f64)],
    lp_opts: &SolveOptions,
) -> Result<&'a mut SpecWorkspace, CoreError> {
    let reusable = cache.as_ref().is_some_and(|w| w.dims() == dims);
    if !reusable {
        *cache = Some(SpecWorkspace::new(
            system, rates, slot, dims, spec, lp_opts,
        )?);
    } else {
        // palb:allow(unwrap): the workspace was installed by the branch above
        let w = cache.as_mut().expect("just checked");
        w.retarget(system, rates, slot);
        w.apply_spec(spec);
    }
    // palb:allow(unwrap): the workspace was installed by the branch above
    Ok(cache.as_mut().expect("just installed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::model::check_feasible;
    use palb_cluster::{presets, DcId};

    #[test]
    fn light_load_dispatches_everything() {
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let sol = solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        check_feasible(&sys, &rates, &sol.dispatch, true, 1e-6).unwrap();
        let offered: f64 = rates.iter().flatten().sum();
        let dispatched = sol.dispatch.total_dispatched();
        assert!(
            (dispatched - offered).abs() < 1e-4 * offered,
            "dispatched {dispatched} of {offered}"
        );
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn heavy_load_saturates_but_stays_feasible() {
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_high_arrivals();
        let sol = solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        check_feasible(&sys, &rates, &sol.dispatch, true, 1e-5).unwrap();
        let offered: f64 = rates.iter().flatten().sum();
        let dispatched = sol.dispatch.total_dispatched();
        assert!(dispatched < offered, "heavy load cannot all be served");
        assert!(dispatched > 0.3 * offered, "dispatched only {dispatched}");
    }

    #[test]
    fn lp_objective_matches_evaluator_under_binding_levels() {
        // For a one-level TUF the evaluator pays the same utility the LP
        // assumed whenever delays meet the deadline, so objective ==
        // realized net profit.
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let sol = solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        let out = evaluate(&sys, &rates, 0, &sol.dispatch);
        assert!(
            (out.net_profit - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()),
            "evaluator {} vs LP {}",
            out.net_profit,
            sol.objective
        );
    }

    #[test]
    fn disabled_servers_get_no_traffic() {
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let mut a = LevelAssignment::uniform(&dims, 1);
        // Disable everything at DC 0.
        for k in 0..dims.classes {
            for i in 0..dims.servers_per_dc[0] {
                a.set(ClassId(k), dims.server(DcId(0), i), None);
            }
        }
        let rates = presets::section_v_low_arrivals();
        let sol = solve_fixed_levels(&sys, &rates, 0, &a).unwrap();
        for k in 0..dims.classes {
            assert_eq!(sol.dispatch.dc_class_rate(ClassId(k), DcId(0)), 0.0);
        }
        assert!(sol.dispatch.total_dispatched() > 0.0);
    }

    #[test]
    fn impossible_reservations_are_infeasible() {
        // Force every class to level 1 on a §VII server: reservations
        // 10_000/30_000 + 12_000/25_000 = 0.813 < 1, feasible; then shrink
        // deadlines via a doctored system to push the sum past 1.
        let mut sys = presets::section_vii();
        sys.classes[0].tuf =
            palb_tuf::StepTuf::two_level(20.0, 1.0 / 25_000.0, 12.0, 1.0 / 2_000.0).unwrap();
        sys.classes[1].tuf =
            palb_tuf::StepTuf::two_level(30.0, 1.0 / 22_000.0, 18.0, 1.0 / 2_500.0).unwrap();
        // Reservations now 25_000/30_000 + 22_000/25_000 = 1.71 > 1.
        let dims = Dims::of(&sys);
        let rates = vec![vec![100.0, 100.0]];
        let err =
            solve_fixed_levels(&sys, &rates, 13, &LevelAssignment::uniform(&dims, 1)).unwrap_err();
        assert_eq!(err, CoreError::Infeasible);
    }

    #[test]
    fn validate_rejects_out_of_range_levels() {
        let sys = presets::section_v(); // one-level TUFs
        let dims = Dims::of(&sys);
        let a = LevelAssignment::uniform(&dims, 2);
        assert!(matches!(a.validate(&sys), Err(CoreError::Model(_))));
    }

    #[test]
    fn loosest_assignment_uses_final_levels() {
        let sys = presets::section_vii(); // two-level TUFs
        let dims = Dims::of(&sys);
        let a = LevelAssignment::loosest(&sys, &dims);
        assert_eq!(a.get(ClassId(0), 0), Some(2));
        a.validate(&sys).unwrap();
    }

    #[test]
    fn negative_margin_routes_are_unused() {
        // Make class 0 unprofitable everywhere: utility below any cost.
        let mut sys = presets::section_v();
        sys.classes[0].tuf = palb_tuf::StepTuf::constant(0.01, 0.10).unwrap();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let sol = solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        for l in 0..3 {
            assert_eq!(sol.dispatch.dc_class_rate(ClassId(0), DcId(l)), 0.0);
        }
        // Other classes still flow.
        assert!(sol.dispatch.total_dispatched() > 0.0);
    }
}
