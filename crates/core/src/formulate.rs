//! LP formulation of the dispatch problem for a *fixed* utility-level
//! assignment.
//!
//! The paper's objective (Eq. 5) is nonlinear only because the utility
//! `U_k(R)` jumps across TUF levels. Once every (class, server) VM is
//! pinned to a level `q` — earning `U_{k,q}` under the delay bound
//! `R ≤ D_{k,q}` — the problem collapses to the LP the paper solves for
//! one-level TUFs (§IV-1):
//!
//! ```text
//!   max  Σ (U_{k,q} − P_{k,l}·p_l − TranCost_k·d_{s,l}) · λ_{k,s,i,l} · T
//!   s.t. φ_{k,i,l}·C_{i,l}·µ_{k,l} − Σ_s λ_{k,s,i,l} ≥ 1/D_{k,q}   (Eq. 6 linearized)
//!        Σ_{i,l} λ_{k,s,i,l} ≤ λ_{k,s}                              (Eq. 7)
//!        Σ_k φ_{k,i,l} ≤ 1                                          (Eq. 8)
//! ```
//!
//! This module is the work-horse of every solver in the crate: the
//! one-level path calls it once, the branch-and-bound calls it per node,
//! and the big-M path calls it to polish snapped levels.

use palb_cluster::{ClassId, FrontEndId, System};
use palb_lp::{LpError, Problem, Rel, SolveOptions, VarId};

use crate::error::CoreError;
use crate::model::{Dims, Dispatch};

/// A utility-level assignment: for every `(class, global server)` either
/// `Some(q)` (the VM exists and must meet level `q`'s sub-deadline,
/// 1-based) or `None` (the class is disabled on that server — the
/// load-conditional *extension*; the paper's own formulation always
/// assigns a level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelAssignment {
    levels: Vec<Option<usize>>,
    dims: Dims,
}

impl LevelAssignment {
    /// Every class active on every server at level `q` (the paper's
    /// unconditional Eq. 6 with a one-level TUF uses `q = 1`).
    pub fn uniform(dims: &Dims, q: usize) -> Self {
        LevelAssignment {
            levels: vec![Some(q); dims.phi_len()],
            dims: dims.clone(),
        }
    }

    /// The paper's default for multi-level TUFs: every VM pinned to the
    /// *last* (loosest) level of its class's TUF.
    pub fn loosest(system: &System, dims: &Dims) -> Self {
        let mut a = Self::uniform(dims, 1);
        for (k, sv) in dims.class_server_pairs() {
            a.set(k, sv, Some(system.classes[k.0].tuf.num_levels()));
        }
        a
    }

    /// Level of `(class, global server)`.
    pub fn get(&self, k: ClassId, sv: usize) -> Option<usize> {
        self.levels[self.dims.phi_idx(k, sv)]
    }

    /// Sets the level of `(class, global server)`.
    pub fn set(&mut self, k: ClassId, sv: usize, q: Option<usize>) {
        let idx = self.dims.phi_idx(k, sv);
        self.levels[idx] = q;
    }

    /// The dimension helper this assignment was built for.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Validates levels against the system's TUFs.
    pub fn validate(&self, system: &System) -> Result<(), CoreError> {
        for (k, sv) in self.dims.class_server_pairs() {
            if let Some(q) = self.get(k, sv) {
                let n = system.classes[k.0].tuf.num_levels();
                if q == 0 || q > n {
                    return Err(CoreError::Model(format!(
                        "level {q} out of 1..={n} for class {k:?} server {sv}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Result of a fixed-level LP solve.
#[derive(Debug, Clone)]
pub struct LevelSolve {
    /// The optimal decision under the level assignment.
    pub dispatch: Dispatch,
    /// LP objective: slot net profit assuming each VM earns exactly its
    /// assigned level's utility (a lower bound on the realized profit,
    /// since lighter-than-deadline loading can bump a VM to a better
    /// level at evaluation time).
    pub objective: f64,
    /// Simplex pivots spent.
    pub pivots: usize,
}

/// Builds and solves the fixed-level LP. `rates[s][k]` are offered rates.
///
/// Returns [`CoreError::Infeasible`] when the assignment is impossible
/// (e.g. the per-class share reservations `1/(D_q·C·µ)` of a server sum
/// past 1).
pub fn solve_fixed_levels(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    assignment: &LevelAssignment,
) -> Result<LevelSolve, CoreError> {
    solve_fixed_levels_with(system, rates, slot, assignment, &SolveOptions::default())
}

/// [`solve_fixed_levels`] with explicit LP solver options — the entry point
/// the degradation ladder uses to impose iteration budgets and pivot-rule
/// overrides on individual solve attempts.
pub fn solve_fixed_levels_with(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    assignment: &LevelAssignment,
    lp_opts: &SolveOptions,
) -> Result<LevelSolve, CoreError> {
    assignment.validate(system)?;
    let dims = assignment.dims().clone();
    let spec: Vec<Option<(f64, f64)>> = (0..dims.phi_len())
        .map(|idx| {
            let k = idx / dims.total_servers;
            let sv = idx % dims.total_servers;
            assignment.get(ClassId(k), sv).map(|q| {
                let tuf = &system.classes[k].tuf;
                (tuf.utility_of_level(q), tuf.deadline_of_level(q))
            })
        })
        .collect();
    solve_spec_with(system, rates, slot, &dims, &spec, lp_opts)
}

/// The assembled LP plus the variable handles needed to read a decision
/// back out of a solution.
pub(crate) struct SpecProblem {
    pub problem: Problem,
    pub lam_vars: Vec<Option<VarId>>,
    pub phi_vars: Vec<Option<VarId>>,
}

/// Builds the fixed-terms LP without solving it (shared by the solver and
/// the CLI's LP-format exporter).
pub(crate) fn build_spec_problem(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    spec: &[Option<(f64, f64)>],
) -> SpecProblem {
    debug_assert_eq!(spec.len(), dims.phi_len());
    let t = system.slot_length;
    let mut p = Problem::maximize();

    // φ variables and the utility/deadline of each active (class, server).
    let mut phi_vars: Vec<Option<VarId>> = vec![None; dims.phi_len()];
    let mut level_util = vec![0.0; dims.phi_len()];
    let mut level_deadline = vec![0.0; dims.phi_len()];
    for (k, sv) in dims.class_server_pairs() {
        let idx = dims.phi_idx(k, sv);
        if let Some((util, deadline)) = spec[idx] {
            level_util[idx] = util;
            level_deadline[idx] = deadline;
            phi_vars[idx] = Some(p.add_var(&format!("phi_k{}_sv{sv}", k.0), 0.0, 1.0, 0.0));
        }
    }

    // λ variables with per-request net margin as objective coefficient.
    let mut lam_vars: Vec<Option<VarId>> = vec![None; dims.lambda_len()];
    for (k, sv) in dims.class_server_pairs() {
        let pidx = dims.phi_idx(k, sv);
        if phi_vars[pidx].is_none() {
            continue;
        }
        let l = dims.dc_of_server(sv);
        for s in 0..dims.front_ends {
            let margin =
                (level_util[pidx] - system.unit_cost(k, FrontEndId(s), l, slot)) * t;
            let idx = dims.lambda_idx(k, FrontEndId(s), sv);
            lam_vars[idx] = Some(p.add_var(
                &format!("lam_k{}_s{s}_sv{sv}", k.0),
                0.0,
                f64::INFINITY,
                margin,
            ));
        }
    }

    // Eq. 6 linearized: φ·C·µ − Σ_s λ ≥ 1/D_q for every active VM.
    for (k, sv) in dims.class_server_pairs() {
        let pidx = dims.phi_idx(k, sv);
        let Some(phi) = phi_vars[pidx] else { continue };
        let l = dims.dc_of_server(sv);
        let full_rate = system.data_centers[l.0].full_rate(k);
        let mut terms = vec![(phi, full_rate)];
        for s in 0..dims.front_ends {
            if let Some(lv) = lam_vars[dims.lambda_idx(k, FrontEndId(s), sv)] {
                terms.push((lv, -1.0));
            }
        }
        // The guard keeps the optimum strictly inside the deadline so float
        // round-off in a binding constraint cannot tip the realized delay
        // past D (which would zero the VM's revenue at evaluation time).
        p.add_con(
            &format!("delay_k{}_sv{sv}", k.0),
            &terms,
            Rel::Ge,
            (1.0 / level_deadline[pidx]) * (1.0 + 1e-6),
        );
    }

    // Eq. 7: dispatched ≤ offered per (class, front-end).
    for k in 0..dims.classes {
        for s in 0..dims.front_ends {
            let mut terms = Vec::new();
            for sv in 0..dims.total_servers {
                if let Some(lv) = lam_vars[dims.lambda_idx(ClassId(k), FrontEndId(s), sv)] {
                    terms.push((lv, 1.0));
                }
            }
            if !terms.is_empty() {
                p.add_con(&format!("supply_k{k}_s{s}"), &terms, Rel::Le, rates[s][k]);
            }
        }
    }

    // Eq. 8: Σ_k φ ≤ 1 per server.
    for sv in 0..dims.total_servers {
        let mut terms = Vec::new();
        for k in 0..dims.classes {
            if let Some(phi) = phi_vars[dims.phi_idx(ClassId(k), sv)] {
                terms.push((phi, 1.0));
            }
        }
        if !terms.is_empty() {
            p.add_con(&format!("share_sv{sv}"), &terms, Rel::Le, 1.0);
        }
    }

    SpecProblem { problem: p, lam_vars, phi_vars }
}

/// Generalized fixed-terms LP: for every `(class, global server)` VM,
/// `spec[phi_idx]` gives `Some((unit_utility, deadline))` or `None` when
/// the class is disabled on that server. The branch-and-bound relaxation
/// uses mixed specs (top-level utility with last-level deadline) that no
/// [`LevelAssignment`] can express.
pub(crate) fn solve_spec(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    spec: &[Option<(f64, f64)>],
) -> Result<LevelSolve, CoreError> {
    solve_spec_with(system, rates, slot, dims, spec, &SolveOptions::default())
}

/// [`solve_spec`] with explicit LP solver options.
pub(crate) fn solve_spec_with(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    spec: &[Option<(f64, f64)>],
    lp_opts: &SolveOptions,
) -> Result<LevelSolve, CoreError> {
    let SpecProblem { problem: p, lam_vars, phi_vars } =
        build_spec_problem(system, rates, slot, dims, spec);
    let sol = match p.solve_with(lp_opts) {
        Ok(s) => s,
        Err(LpError::Infeasible) => return Err(CoreError::Infeasible),
        Err(e) => return Err(CoreError::Lp(e)),
    };

    // Read the decision back.
    let mut dispatch = Dispatch::zero(dims.clone());
    {
        let (lambda, phi) = dispatch.raw_mut();
        for (idx, var) in lam_vars.iter().enumerate() {
            if let Some(v) = *var {
                lambda[idx] = sol.value(v).max(0.0);
            }
        }
        for (idx, var) in phi_vars.iter().enumerate() {
            if let Some(v) = *var {
                phi[idx] = sol.value(v).clamp(0.0, 1.0);
            }
        }
    }
    Ok(LevelSolve {
        dispatch,
        objective: sol.objective(),
        pivots: sol.iterations(),
    })
}

/// Renders the fixed-level dispatch LP for one slot in CPLEX LP format —
/// the model the paper would have handed to GLPK/CPLEX, exported for
/// inspection or for cross-checking with an external solver.
pub fn lp_text(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    assignment: &LevelAssignment,
) -> Result<String, CoreError> {
    assignment.validate(system)?;
    let dims = assignment.dims().clone();
    let spec: Vec<Option<(f64, f64)>> = (0..dims.phi_len())
        .map(|idx| {
            let k = idx / dims.total_servers;
            let sv = idx % dims.total_servers;
            assignment.get(ClassId(k), sv).map(|q| {
                let tuf = &system.classes[k].tuf;
                (tuf.utility_of_level(q), tuf.deadline_of_level(q))
            })
        })
        .collect();
    let built = build_spec_problem(system, rates, slot, &dims, &spec);
    Ok(built.problem.to_lp_format())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::model::check_feasible;
    use palb_cluster::{presets, DcId};

    #[test]
    fn light_load_dispatches_everything() {
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let sol =
            solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        check_feasible(&sys, &rates, &sol.dispatch, true, 1e-6).unwrap();
        let offered: f64 = rates.iter().flatten().sum();
        let dispatched = sol.dispatch.total_dispatched();
        assert!(
            (dispatched - offered).abs() < 1e-4 * offered,
            "dispatched {dispatched} of {offered}"
        );
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn heavy_load_saturates_but_stays_feasible() {
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_high_arrivals();
        let sol =
            solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        check_feasible(&sys, &rates, &sol.dispatch, true, 1e-5).unwrap();
        let offered: f64 = rates.iter().flatten().sum();
        let dispatched = sol.dispatch.total_dispatched();
        assert!(dispatched < offered, "heavy load cannot all be served");
        assert!(dispatched > 0.3 * offered, "dispatched only {dispatched}");
    }

    #[test]
    fn lp_objective_matches_evaluator_under_binding_levels() {
        // For a one-level TUF the evaluator pays the same utility the LP
        // assumed whenever delays meet the deadline, so objective ==
        // realized net profit.
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let sol =
            solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        let out = evaluate(&sys, &rates, 0, &sol.dispatch);
        assert!(
            (out.net_profit - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()),
            "evaluator {} vs LP {}",
            out.net_profit,
            sol.objective
        );
    }

    #[test]
    fn disabled_servers_get_no_traffic() {
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let mut a = LevelAssignment::uniform(&dims, 1);
        // Disable everything at DC 0.
        for k in 0..dims.classes {
            for i in 0..dims.servers_per_dc[0] {
                a.set(ClassId(k), dims.server(DcId(0), i), None);
            }
        }
        let rates = presets::section_v_low_arrivals();
        let sol = solve_fixed_levels(&sys, &rates, 0, &a).unwrap();
        for k in 0..dims.classes {
            assert_eq!(sol.dispatch.dc_class_rate(ClassId(k), DcId(0)), 0.0);
        }
        assert!(sol.dispatch.total_dispatched() > 0.0);
    }

    #[test]
    fn impossible_reservations_are_infeasible() {
        // Force every class to level 1 on a §VII server: reservations
        // 10_000/30_000 + 12_000/25_000 = 0.813 < 1, feasible; then shrink
        // deadlines via a doctored system to push the sum past 1.
        let mut sys = presets::section_vii();
        sys.classes[0].tuf =
            palb_tuf::StepTuf::two_level(20.0, 1.0 / 25_000.0, 12.0, 1.0 / 2_000.0).unwrap();
        sys.classes[1].tuf =
            palb_tuf::StepTuf::two_level(30.0, 1.0 / 22_000.0, 18.0, 1.0 / 2_500.0).unwrap();
        // Reservations now 25_000/30_000 + 22_000/25_000 = 1.71 > 1.
        let dims = Dims::of(&sys);
        let rates = vec![vec![100.0, 100.0]];
        let err =
            solve_fixed_levels(&sys, &rates, 13, &LevelAssignment::uniform(&dims, 1)).unwrap_err();
        assert_eq!(err, CoreError::Infeasible);
    }

    #[test]
    fn validate_rejects_out_of_range_levels() {
        let sys = presets::section_v(); // one-level TUFs
        let dims = Dims::of(&sys);
        let a = LevelAssignment::uniform(&dims, 2);
        assert!(matches!(a.validate(&sys), Err(CoreError::Model(_))));
    }

    #[test]
    fn loosest_assignment_uses_final_levels() {
        let sys = presets::section_vii(); // two-level TUFs
        let dims = Dims::of(&sys);
        let a = LevelAssignment::loosest(&sys, &dims);
        assert_eq!(a.get(ClassId(0), 0), Some(2));
        a.validate(&sys).unwrap();
    }

    #[test]
    fn negative_margin_routes_are_unused() {
        // Make class 0 unprofitable everywhere: utility below any cost.
        let mut sys = presets::section_v();
        sys.classes[0].tuf = palb_tuf::StepTuf::constant(0.01, 0.10).unwrap();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let sol =
            solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        for l in 0..3 {
            assert_eq!(sol.dispatch.dc_class_rate(ClassId(0), DcId(l)), 0.0);
        }
        // Other classes still flow.
        assert!(sol.dispatch.total_dispatched() > 0.0);
    }
}
