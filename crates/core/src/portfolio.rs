//! Anytime metaheuristic portfolio over level assignments.
//!
//! The exact branch-and-bound of [`crate::multilevel`] reproduces the
//! paper's Fig. 11 — and, like the paper's CPLEX runs, explodes
//! combinatorially past a few servers per class. This module adds the
//! production-scale escape hatch (ROADMAP item 1):
//!
//! * **Anytime search** ([`SolverKind::Anytime`]): a seed-pure,
//!   generation-synchronous evolution over level-assignment genomes.
//!   `branches` logical evolution branches each carry their own
//!   deterministic RNG stream and propose mutations/recombinations of
//!   members drawn from one shared **dominance population** (the elite
//!   truncation of everything evaluated so far). A generation's
//!   proposals are evaluated in parallel (pure LP solves, so results are
//!   independent of scheduling), merged in proposal order, and the
//!   population re-sorted by `(objective desc, genome lex)` — every step
//!   is a deterministic function of `(seed, budget, quota)`, which makes
//!   the incumbent **bit-for-bit identical at every thread count**.
//!   Termination: a no-improvement quota (consecutive generations
//!   without a strictly better best objective), the evaluation budget,
//!   or the wall clock (the only scheduling-dependent stop; see
//!   DESIGN.md §14 for the carve-outs).
//! * **Portfolio race** ([`SolverKind::Portfolio`]): the anytime search
//!   and the exact tree run on scoped threads against one shared
//!   [`IncumbentCell`]. Anytime improvements prune exact subtrees
//!   (strict comparison — sound, because the cell only ever holds
//!   feasible objectives); the exact side stops the anytime search the
//!   moment it proves optimality; a wall-clock budget stops whichever
//!   side is still running. The better incumbent wins (exact wins
//!   bitwise ties); when the exact tree finishes it has proven nothing
//!   beats the shared cell, so the winner — whichever side found it —
//!   comes back `proven_optimal`. At paper sizes the portfolio thus
//!   degrades to the deterministic exact answer, and past them to the
//!   anytime incumbent.
//!
//! Genomes honor the exact solver's symmetry canon: within each data
//! center the per-server level tuples are kept lexicographically
//! non-decreasing ([`canonicalize`]), so the anytime search explores the
//! same quotient space the symmetry-broken tree does and never wastes
//! evaluations on permuted duplicates.
//!
//! Every evaluation goes through an [`EvalCache`] (capacity-bounded,
//! FIFO eviction) memoizing genome → LP outcome across moves, branches
//! and generations, backed by [`WorkspacePool`] workspaces whose cold
//! solves are bit-for-bit equal to from-scratch solves. The cache is
//! **bitwise-invisible**: the evaluation budget counts logical
//! evaluations (hits and misses alike), so switching it off changes
//! wall-clock and the `cache_*` telemetry, never the incumbent.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use palb_cluster::System;

use crate::error::CoreError;
use crate::formulate::{LevelAssignment, LevelSolve, SpecWorkspace, WorkspacePool};
use crate::model::Dims;
use crate::multilevel::{
    solve_bb_ctl, solve_uniform_levels_in, MultilevelResult, SearchCtl, SolverStats,
};
use crate::obs::record_solver_stats;
use crate::solver::{SolverConfig, SolverKind};
use crate::sync::{Flag, IncumbentCell, WorkQueue};

/// Fallback no-improvement quota when the budget leaves it unset.
const DEFAULT_QUOTA: usize = 16;

/// A level-assignment genome: one 1-based level index per phi position
/// (`k * total_servers + sv`), the same layout the exact solver's partial
/// assignments use.
type Genome = Vec<u8>;

/// splitmix64 — the workspace's standard seed-pure counter hash (cf. the
/// resilient ladder's perturbation stream). Advances `state` and returns
/// the next draw.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The RNG stream for evolution branch `b` under `seed`: decorrelated by
/// one splitmix step so adjacent branches do not share prefixes.
fn branch_stream(seed: u64, b: usize) -> u64 {
    let mut s = seed ^ (b as u64).wrapping_mul(0xd129_0d3b_93b8_b4a7);
    splitmix(&mut s);
    s
}

/// Rewrites `genome` into symmetry-canonical form: within each data
/// center, per-server level tuples (class-major) sorted lexicographically
/// non-decreasing — the exact tree's quotient space.
fn canonicalize(dims: &Dims, genome: &mut Genome) {
    let mut tuples: Vec<Vec<u8>> = Vec::new();
    for l in 0..dims.dcs {
        let start = dims.server_offset[l];
        let m = dims.servers_per_dc[l];
        tuples.clear();
        tuples.extend((0..m).map(|i| {
            let sv = start + i;
            (0..dims.classes)
                .map(|k| genome[k * dims.total_servers + sv])
                .collect::<Vec<u8>>()
        }));
        tuples.sort_unstable();
        for (i, tuple) in tuples.iter().enumerate() {
            let sv = start + i;
            for (k, &q) in tuple.iter().enumerate() {
                genome[k * dims.total_servers + sv] = q;
            }
        }
    }
}

/// The genome of a complete [`LevelAssignment`].
fn genome_of(dims: &Dims, a: &LevelAssignment) -> Genome {
    let mut g = vec![1u8; dims.phi_len()];
    for (k, sv) in dims.class_server_pairs() {
        g[k.0 * dims.total_servers + sv] = a.get(k, sv).unwrap_or(1) as u8;
    }
    g
}

/// The [`LevelAssignment`] a genome describes.
fn assignment_of(dims: &Dims, genome: &[u8]) -> LevelAssignment {
    let mut a = LevelAssignment::uniform(dims, 1);
    for (k, sv) in dims.class_server_pairs() {
        a.set(k, sv, Some(genome[k.0 * dims.total_servers + sv] as usize));
    }
    a
}

/// Builds the fixed-level spec a genome pins every VM to.
fn spec_of(system: &System, dims: &Dims, genome: &[u8], out: &mut Vec<(f64, f64)>) {
    out.clear();
    out.extend((0..dims.phi_len()).map(|idx| {
        let k = idx / dims.total_servers;
        let q = genome[idx] as usize;
        let tuf = &system.classes[k].tuf;
        (tuf.utility_of_level(q), tuf.deadline_of_level(q))
    }));
}

/// Outcome of evaluating one genome: the cold LP solve, or `None` when
/// the fixed levels are infeasible.
type EvalOutcome = Option<LevelSolve>;

/// Capacity-bounded genome → LP-outcome memo with FIFO eviction. Shared
/// across evaluation workers behind a mutex; hit/miss/eviction telemetry
/// is charged to the *worker's* stats (and lex-merged like every other
/// per-worker counter), so the cache itself stays scheduling-agnostic.
///
/// `BTreeMap`, not `HashMap`: the memo sits on the anytime decision path
/// and the determinism auditor bans hash-order containers there — lookup
/// and FIFO eviction never iterate the map today, but a `BTreeMap` keeps
/// any future iteration ordered by construction instead of by hasher.
pub(crate) struct EvalCache {
    map: BTreeMap<Genome, EvalOutcome>,
    order: VecDeque<Genome>,
    capacity: usize,
}

impl EvalCache {
    /// An empty cache bounded to `capacity` entries (≥ 1).
    pub(crate) fn new(capacity: usize) -> Self {
        EvalCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, genome: &[u8]) -> Option<&EvalOutcome> {
        self.map.get(genome)
    }

    /// Inserts an outcome, evicting the oldest entry at capacity.
    /// Returns how many entries were evicted (0 or 1).
    fn insert(&mut self, genome: Genome, outcome: EvalOutcome) -> u64 {
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                evicted = 1;
            }
        }
        if self.map.insert(genome.clone(), outcome).is_none() {
            self.order.push_back(genome);
        }
        evicted
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

fn lock_cache(cache: &Mutex<EvalCache>) -> std::sync::MutexGuard<'_, EvalCache> {
    // A poisoned cache only means another worker panicked mid-insert;
    // the memo content is still valid (inserts are single assignments).
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Evaluates one genome through the shared cache: a logical evaluation
/// either way (the budget counts hits and misses identically, so the
/// cache cannot change the search trajectory), an LP solve only on miss.
fn eval_cached(
    cache: Option<&Mutex<EvalCache>>,
    ws: &mut SpecWorkspace,
    system: &System,
    dims: &Dims,
    cfg: &SolverConfig,
    genome: &[u8],
    spec_buf: &mut Vec<(f64, f64)>,
    stats: &mut SolverStats,
) -> Result<EvalOutcome, CoreError> {
    stats.nodes_explored += 1;
    if let Some(c) = cache {
        if let Some(hit) = lock_cache(c).get(genome).cloned() {
            stats.cache_hits += 1;
            return Ok(hit);
        }
    }
    spec_of(system, dims, genome, spec_buf);
    ws.apply_spec(spec_buf);
    let outcome = match ws.solve_cold(&cfg.lp) {
        Ok(s) => {
            stats.cold_solves += 1;
            stats.cold_pivots += s.pivots;
            Some(s)
        }
        Err(CoreError::Infeasible) => None,
        Err(e) => return Err(e),
    };
    if let Some(c) = cache {
        stats.cache_misses += 1;
        stats.cache_evictions += lock_cache(c).insert(genome.to_vec(), outcome.clone());
    }
    Ok(outcome)
}

/// Evaluates a batch of genomes, on `cfg.threads` scoped workers when the
/// batch warrants it. Results come back in input order and per-worker
/// stats are merged in worker-index (lexicographic) order, so the batch
/// is a pure function of its inputs at every thread count.
fn evaluate_batch(
    pool: &mut WorkspacePool,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    cfg: &SolverConfig,
    cache: Option<&Mutex<EvalCache>>,
    genomes: &[Genome],
    stats: &mut SolverStats,
) -> Result<Vec<EvalOutcome>, CoreError> {
    if genomes.is_empty() {
        return Ok(Vec::new());
    }
    let mut root_spec = Vec::with_capacity(dims.phi_len());
    spec_of(system, dims, &genomes[0], &mut root_spec);
    let workers = cfg.threads.min(genomes.len()).max(1);

    if workers == 1 {
        let mut ws = pool.acquire(system, rates, slot, dims, &root_spec, &cfg.lp)?;
        let mut spec_buf = Vec::with_capacity(dims.phi_len());
        let mut out = Vec::with_capacity(genomes.len());
        for g in genomes {
            out.push(eval_cached(
                cache,
                &mut ws,
                system,
                dims,
                cfg,
                g,
                &mut spec_buf,
                stats,
            )?);
        }
        pool.release(ws);
        return Ok(out);
    }

    let mut worker_ws = Vec::with_capacity(workers);
    for _ in 0..workers {
        worker_ws.push(pool.acquire(system, rates, slot, dims, &root_spec, &cfg.lp)?);
    }
    let queue = WorkQueue::new(genomes.len());
    type Outcome = (usize, Result<EvalOutcome, CoreError>);
    let worker_returns: Vec<(Vec<Outcome>, SpecWorkspace, SolverStats)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = worker_ws
                .into_iter()
                .map(|ws| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut ws = ws;
                        let mut spec_buf: Vec<(f64, f64)> = Vec::with_capacity(dims.phi_len());
                        let mut wstats = SolverStats::default();
                        let mut outcomes: Vec<Outcome> = Vec::new();
                        while let Some(i) = queue.claim() {
                            let res = eval_cached(
                                cache,
                                &mut ws,
                                system,
                                dims,
                                cfg,
                                &genomes[i],
                                &mut spec_buf,
                                &mut wstats,
                            );
                            let failed = res.is_err();
                            outcomes.push((i, res));
                            if failed {
                                break;
                            }
                        }
                        (outcomes, ws, wstats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| CoreError::WorkerPanic))
                .collect::<Result<Vec<_>, CoreError>>()
        })?;

    let mut indexed: Vec<Outcome> = Vec::with_capacity(genomes.len());
    for (outcomes, ws, wstats) in worker_returns {
        pool.release(ws);
        stats.merge(&wstats);
        indexed.extend(outcomes);
    }
    indexed.sort_by_key(|(i, _)| *i);
    let mut out = Vec::with_capacity(genomes.len());
    for (_, res) in indexed {
        out.push(res?);
    }
    Ok(out)
}

/// One dominance-population member.
struct Indiv {
    genome: Genome,
    solve: LevelSolve,
}

/// Sorts the population canonically: objective descending, genome
/// ascending on exact ties — a total order, so the elite truncation is
/// deterministic.
fn sort_population(population: &mut [Indiv]) {
    population.sort_by(|a, b| {
        b.solve
            .objective
            .total_cmp(&a.solve.objective)
            .then_with(|| a.genome.cmp(&b.genome))
    });
}

fn population_contains(population: &[Indiv], genome: &[u8]) -> bool {
    population.iter().any(|i| i.genome == genome)
}

/// Draws one offspring genome from branch stream `state`: a one-position
/// level mutation (3/4 of draws) or a per-DC block recombination of two
/// population members (1/4, once the population has two members). Returns
/// `None` when the system has no mutable position (single-level TUFs).
fn propose(state: &mut u64, population: &[Indiv], system: &System, dims: &Dims) -> Option<Genome> {
    let len = population.len();
    let kind = splitmix(state);
    let pa = (splitmix(state) % len as u64) as usize;
    if len >= 2 && kind % 4 == 0 {
        let mut pb = (splitmix(state) % len as u64) as usize;
        if pb == pa {
            pb = (pb + 1) % len;
        }
        let mut child = population[pa].genome.clone();
        for l in 0..dims.dcs {
            if splitmix(state) & 1 == 1 {
                let start = dims.server_offset[l];
                let m = dims.servers_per_dc[l];
                for k in 0..dims.classes {
                    for i in 0..m {
                        let idx = k * dims.total_servers + start + i;
                        child[idx] = population[pb].genome[idx];
                    }
                }
            }
        }
        canonicalize(dims, &mut child);
        Some(child)
    } else {
        let mut child = population[pa].genome.clone();
        let phi = dims.phi_len();
        let start = (splitmix(state) % phi as u64) as usize;
        for off in 0..phi {
            let idx = (start + off) % phi;
            let k = idx / dims.total_servers;
            let n = system.classes[k].tuf.num_levels();
            if n <= 1 {
                continue;
            }
            let old = child[idx];
            let mut q = 1 + (splitmix(state) % n as u64) as u8;
            if q == old {
                q = q % n as u8 + 1;
            }
            child[idx] = q;
            canonicalize(dims, &mut child);
            return Some(child);
        }
        None
    }
}

/// [`solve_anytime_ctl`] with the deadline derived from the config's
/// budget, recording its stats like the exact entry points do.
// palb:decision-path
pub(crate) fn solve_anytime_in(
    pool: &mut WorkspacePool,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    cfg: &SolverConfig,
) -> Result<MultilevelResult, CoreError> {
    let ctl = SearchCtl {
        deadline: cfg
            .budget
            .wall_clock_ms
            // palb:allow(determinism): anchoring the SolverBudget wall-clock deadline — the audited anytime carve-out
            .map(|ms| Instant::now() + Duration::from_millis(ms)),
        ..SearchCtl::default()
    };
    let result = solve_anytime_ctl(pool, system, rates, slot, cfg, ctl);
    if let Ok(r) = &result {
        record_solver_stats(&cfg.obs, &r.stats);
    }
    result
}

/// The anytime population search. Deterministic at every thread count for
/// a fixed `(seed, budget, quota)` — unless a wall-clock deadline or an
/// external stop interrupts a run mid-generation (the documented
/// carve-outs). Never proves optimality.
// palb:decision-path
pub(crate) fn solve_anytime_ctl(
    pool: &mut WorkspacePool,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    cfg: &SolverConfig,
    ctl: SearchCtl<'_>,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let mut stats = SolverStats {
        threads_used: cfg.threads.max(1),
        ..SolverStats::default()
    };
    let cache_store =
        (cfg.cache_capacity > 0).then(|| Mutex::new(EvalCache::new(cfg.cache_capacity)));
    let cache = cache_store.as_ref();

    // Seed the population: the uniform-level heuristic's winner (a strong
    // start — it already enumerates every per-(class, DC) combination),
    // the all-top and the loosest uniform genomes. All three are
    // symmetry-canonical by construction.
    let mut seeds: Vec<Genome> = Vec::new();
    let mut seed_cache = pool.take_matching(&dims);
    if let Ok(u) = solve_uniform_levels_in(&mut seed_cache, system, rates, slot, &cfg.lp) {
        stats.nodes_explored += u.stats.nodes_explored;
        stats.cold_solves += u.stats.cold_solves;
        stats.cold_pivots += u.stats.cold_pivots;
        seeds.push(genome_of(&dims, &u.assignment));
    }
    if let Some(w) = seed_cache {
        pool.release(w);
    }
    for extra in [
        vec![1u8; dims.phi_len()],
        genome_of(&dims, &LevelAssignment::loosest(system, &dims)),
    ] {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    let outcomes = evaluate_batch(
        pool, system, rates, slot, &dims, cfg, cache, &seeds, &mut stats,
    )?;
    let mut population: Vec<Indiv> = seeds
        .into_iter()
        .zip(outcomes)
        .filter_map(|(genome, o)| o.map(|solve| Indiv { genome, solve }))
        .collect();
    sort_population(&mut population);
    population.truncate(cfg.population.max(1));
    if population.is_empty() {
        return Err(CoreError::Infeasible);
    }
    let mut best_obj = population[0].solve.objective;
    if let Some(cell) = ctl.shared {
        cell.offer(best_obj);
    }

    let quota = cfg.budget.no_improve_quota.unwrap_or(DEFAULT_QUOTA).max(1);
    let branches = cfg.branches.max(1);
    let offspring = cfg.offspring.max(1);
    let mut streams: Vec<u64> = (0..branches).map(|b| branch_stream(cfg.seed, b)).collect();
    let mut no_improve = 0usize;

    while no_improve < quota && stats.nodes_explored < cfg.budget.max_nodes && !ctl.interrupted() {
        // Proposal phase: single-threaded and cheap, so branch streams
        // advance identically at every thread count.
        let mut props: Vec<Genome> = Vec::new();
        for stream in streams.iter_mut() {
            for _ in 0..offspring {
                if let Some(g) = propose(stream, &population, system, &dims) {
                    if !population_contains(&population, &g) && !props.contains(&g) {
                        props.push(g);
                    }
                }
            }
        }
        let outs = evaluate_batch(
            pool, system, rates, slot, &dims, cfg, cache, &props, &mut stats,
        )?;
        for (genome, o) in props.into_iter().zip(outs) {
            if let Some(solve) = o {
                population.push(Indiv { genome, solve });
            }
        }
        sort_population(&mut population);
        population.truncate(cfg.population.max(1));
        if population[0].solve.objective > best_obj {
            best_obj = population[0].solve.objective;
            if let Some(cell) = ctl.shared {
                cell.offer(best_obj);
            }
            no_improve = 0;
        } else {
            no_improve += 1;
        }
    }

    let best = &population[0];
    debug_assert!(assignment_of(&dims, &best.genome).validate(system).is_ok());
    Ok(MultilevelResult {
        solve: best.solve.clone(),
        assignment: assignment_of(&dims, &best.genome),
        nodes: stats.nodes_explored,
        proven_optimal: false,
        stats,
    })
}

/// The portfolio race: exact branch-and-bound and the anytime search on
/// scoped threads sharing one incumbent cell. Race protocol (DESIGN.md
/// §14):
///
/// * anytime improvements land in the shared cell, where the exact side
///   strictly prunes against them;
/// * the exact side's leaves land in the same cell, raising the bar the
///   anytime side must beat to publish;
/// * the exact side **stops** the anytime side when it proves
///   optimality, and its result is then returned verbatim (determinism:
///   the portfolio equals the exact answer whenever exact finishes);
/// * a wall-clock budget stops both sides; the better incumbent wins,
///   exact on exact ties;
/// * one side erroring leaves the other side's result standing — the
///   race doubles as a redundancy ladder.
// palb:decision-path
pub(crate) fn solve_portfolio(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    cfg: &SolverConfig,
) -> Result<MultilevelResult, CoreError> {
    let shared = IncumbentCell::new(-f64::MAX);
    let stop_exact = Flag::new();
    let stop_anytime = Flag::new();
    let deadline = cfg
        .budget
        .wall_clock_ms
        // palb:allow(determinism): anchoring the SolverBudget wall-clock deadline — the audited anytime carve-out
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    // Split the thread budget across the sides; both run even at 1 (the
    // whole point is hedging, and the single-core loss is bounded by the
    // budget).
    let anytime_threads = (cfg.threads / 2).max(1);
    let exact_threads = (cfg.threads - cfg.threads / 2).max(1);
    let exact_cfg = SolverConfig {
        kind: SolverKind::Exact,
        threads: exact_threads,
        ..cfg.clone()
    };
    let anytime_cfg = SolverConfig {
        kind: SolverKind::Anytime,
        threads: anytime_threads,
        ..cfg.clone()
    };

    let (exact_res, anytime_res) = std::thread::scope(|scope| {
        let exact_handle = scope.spawn(|| {
            let mut pool = WorkspacePool::default();
            let ctl = SearchCtl {
                shared: Some(&shared),
                stop: Some(&stop_exact),
                deadline,
            };
            let r = solve_bb_ctl(&mut pool, system, rates, slot, &exact_cfg, ctl);
            if matches!(&r, Ok(res) if res.proven_optimal) {
                stop_anytime.raise();
            }
            r
        });
        let anytime_handle = scope.spawn(|| {
            let mut pool = WorkspacePool::default();
            let ctl = SearchCtl {
                shared: Some(&shared),
                stop: Some(&stop_anytime),
                deadline,
            };
            let r = solve_anytime_ctl(&mut pool, system, rates, slot, &anytime_cfg, ctl);
            if let Ok(res) = &r {
                record_solver_stats(&anytime_cfg.obs, &res.stats);
            }
            r
        });
        (
            exact_handle.join().map_err(|_| CoreError::WorkerPanic),
            anytime_handle.join().map_err(|_| CoreError::WorkerPanic),
        )
    });
    let exact_res = exact_res.and_then(|r| r);
    let anytime_res = anytime_res.and_then(|r| r);

    match (exact_res, anytime_res) {
        (Ok(e), Ok(a)) => {
            let mut stats = e.stats;
            stats.merge(&a.stats);
            stats.subtrees = e.stats.subtrees;
            stats.threads_used = cfg.threads.max(2);
            let nodes = stats.nodes_explored;
            // The better side wins; exact wins (bitwise) ties. When the
            // exact tree finished, it has proven that nothing beats the
            // *shared* incumbent — so the winner is optimal even when it
            // is the anytime side: anytime improvements can prune the
            // subtree holding the exact side's would-be optimum, leaving
            // the exact tree's local incumbent behind the cell.
            let proven = e.proven_optimal;
            if e.solve.objective >= a.solve.objective {
                Ok(MultilevelResult {
                    solve: e.solve,
                    assignment: e.assignment,
                    nodes,
                    proven_optimal: proven,
                    stats,
                })
            } else {
                Ok(MultilevelResult {
                    solve: a.solve,
                    assignment: a.assignment,
                    nodes,
                    proven_optimal: proven,
                    stats,
                })
            }
        }
        (Ok(e), Err(_)) => Ok(e),
        (Err(_), Ok(a)) => Ok(a),
        (Err(e), Err(_)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::{solve_bb, solve_exhaustive, solve_uniform_levels};
    use crate::solver::{solve_with, SolverBudget};
    use palb_cluster::{presets, DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
    use palb_tuf::StepTuf;

    fn tiny(two_servers: bool) -> System {
        System {
            classes: vec![RequestClass {
                name: "r".into(),
                tuf: StepTuf::two_level(4.5, 1.0 / 40.0, 4.0, 1.0 / 5.0).unwrap(),
                transfer_cost_per_mile: 0.0,
            }],
            front_ends: vec![FrontEnd { name: "fe".into() }],
            data_centers: vec![DataCenter {
                name: "dc".into(),
                servers: if two_servers { 2 } else { 1 },
                capacity: 1.0,
                service_rate: vec![100.0],
                energy_per_request: vec![1.0],
                pue: 1.0,
                prices: PriceSchedule::flat(0.1, 24),
            }],
            distance: vec![vec![0.0]],
            slot_length: 1.0,
        }
    }

    #[test]
    fn canonicalize_sorts_server_tuples_within_each_dc() {
        let sys = presets::section_vii();
        let dims = Dims::of(&sys);
        let mut g: Genome = (0..dims.phi_len()).map(|i| 1 + (i % 2) as u8).collect();
        canonicalize(&dims, &mut g);
        for l in 0..dims.dcs {
            let start = dims.server_offset[l];
            let m = dims.servers_per_dc[l];
            for i in 1..m {
                let prev: Vec<u8> = (0..dims.classes)
                    .map(|k| g[k * dims.total_servers + start + i - 1])
                    .collect();
                let cur: Vec<u8> = (0..dims.classes)
                    .map(|k| g[k * dims.total_servers + start + i])
                    .collect();
                assert!(prev <= cur, "dc {l} servers {} and {i} out of order", i - 1);
            }
        }
        // Canonicalization is idempotent.
        let mut again = g.clone();
        canonicalize(&dims, &mut again);
        assert_eq!(g, again);
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_decorrelated() {
        let mut a1 = branch_stream(7, 0);
        let mut a2 = branch_stream(7, 0);
        let mut b = branch_stream(7, 1);
        let draws_a1: Vec<u64> = (0..8).map(|_| splitmix(&mut a1)).collect();
        let draws_a2: Vec<u64> = (0..8).map(|_| splitmix(&mut a2)).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| splitmix(&mut b)).collect();
        assert_eq!(draws_a1, draws_a2);
        assert_ne!(draws_a1, draws_b);
    }

    #[test]
    fn eval_cache_bounds_capacity_fifo() {
        let mut c = EvalCache::new(2);
        assert_eq!(c.insert(vec![1], None), 0);
        assert_eq!(c.insert(vec![2], None), 0);
        assert_eq!(c.insert(vec![3], None), 1); // evicts [1]
        assert_eq!(c.len(), 2);
        assert!(c.get(&[1]).is_none());
        assert!(c.get(&[2]).is_some());
        assert!(c.get(&[3]).is_some());
    }

    #[test]
    fn anytime_matches_exhaustive_on_tiny_system() {
        let sys = tiny(true);
        for offered in [30.0, 90.0, 150.0, 250.0] {
            let rates = vec![vec![offered]];
            let ex = solve_exhaustive(&sys, &rates, 0).unwrap();
            let any = solve_with(&sys, &rates, 0, &SolverConfig::anytime()).unwrap();
            assert!(!any.proven_optimal);
            assert!(
                (any.solve.objective - ex.solve.objective).abs()
                    < 1e-6 * (1.0 + ex.solve.objective.abs()),
                "offered {offered}: anytime {} vs exhaustive {}",
                any.solve.objective,
                ex.solve.objective
            );
        }
    }

    #[test]
    fn anytime_beats_or_matches_uniform_on_section_vii() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let uni = solve_uniform_levels(&sys, &rates, 13).unwrap();
        let any = solve_with(&sys, &rates, 13, &SolverConfig::anytime()).unwrap();
        assert!(any.solve.objective >= uni.solve.objective);
        assert!(any.stats.cache_misses > 0, "cache never exercised");
    }

    #[test]
    fn anytime_is_thread_invariant_bitwise() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let base = solve_with(&sys, &rates, 13, &SolverConfig::anytime()).unwrap();
        for threads in [2, 4, 8] {
            let par =
                solve_with(&sys, &rates, 13, &SolverConfig::anytime().threads(threads)).unwrap();
            assert_eq!(
                par.solve.objective.to_bits(),
                base.solve.objective.to_bits(),
                "threads {threads}"
            );
            assert_eq!(par.assignment, base.assignment, "threads {threads}");
            assert_eq!(par.nodes, base.nodes, "threads {threads}");
        }
    }

    #[test]
    fn eval_cache_is_bitwise_invisible() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let on = solve_with(&sys, &rates, 13, &SolverConfig::anytime()).unwrap();
        let off = solve_with(&sys, &rates, 13, &SolverConfig::anytime().cache_capacity(0)).unwrap();
        assert_eq!(on.solve.objective.to_bits(), off.solve.objective.to_bits());
        assert_eq!(on.assignment, off.assignment);
        assert_eq!(on.nodes, off.nodes);
        assert_eq!(off.stats.cache_hits + off.stats.cache_misses, 0);
    }

    #[test]
    fn portfolio_returns_the_exact_answer_when_exact_finishes() {
        let sys = tiny(true);
        for offered in [90.0, 150.0] {
            let rates = vec![vec![offered]];
            let exact = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
            let port = solve_with(&sys, &rates, 0, &SolverConfig::portfolio()).unwrap();
            assert!(port.proven_optimal, "exact side should finish on tiny");
            assert_eq!(
                port.solve.objective.to_bits(),
                exact.solve.objective.to_bits(),
                "offered {offered}"
            );
            assert_eq!(port.assignment, exact.assignment);
        }
    }

    #[test]
    fn portfolio_respects_a_tight_wall_clock() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let cfg = SolverConfig::portfolio().budget(
            SolverBudget::nodes(200_000)
                .wall_clock_ms(60_000)
                .no_improve_quota(4),
        );
        let r = solve_with(&sys, &rates, 13, &cfg).unwrap();
        assert!(r.solve.objective.is_finite());
        // Paper-size exact finishes well inside a minute, so the race
        // resolves to the proven optimum.
        assert!(r.proven_optimal);
    }
}
