//! Materializes `palb_workload::scenario` system effects against the
//! cluster model, and scores plan churn under grid coupling.
//!
//! The workload crate cannot see [`System`], so its scenario engine emits
//! abstract [`SlotEffect`]s. [`SlotSystems`] turns a base system plus an
//! effect list into per-slot patched systems and plugs into the driver as
//! a [`SystemSource`], which is how DC outages and transfer-cost spikes
//! reach the control loop (previously only rates and prices were
//! corruptible).
//!
//! [`grid_ramp_surcharge`] prices slot-over-slot swings in each DC's
//! energy draw — the grid-stability coupling that makes plan-churn costly
//! and gives the damping variant of `ResilientPolicy` something to win.

use std::collections::BTreeMap;

use palb_cluster::System;
use palb_workload::scenario::SlotEffect;

use crate::driver::{RunResult, SystemSource};
use crate::error::CoreError;

/// A [`SystemSource`] with per-slot overrides: slots touched by scenario
/// effects get a patched clone of the base system, untouched slots share
/// the base.
#[derive(Debug, Clone)]
pub struct SlotSystems {
    base: System,
    overrides: Vec<Option<System>>,
}

impl SlotSystems {
    /// A source with no overrides (every slot sees `base`).
    pub fn constant(base: System) -> Self {
        SlotSystems {
            base,
            overrides: Vec::new(),
        }
    }

    /// Materializes scenario `effects` over `horizon` schedule slots.
    ///
    /// * `ServerFactor` scales a DC's server count, flooring but keeping
    ///   at least one server up (the §III model needs every DC
    ///   addressable, and [`System::validate`] rejects empty DCs).
    /// * `TransferFactor` scales the front-end → DC distance column, which
    ///   scales Eq. 4's transfer costs.
    ///
    /// Effects beyond the horizon or naming unknown DCs are rejected, as
    /// are non-finite or negative factors.
    pub fn from_effects(
        base: System,
        effects: &[SlotEffect],
        horizon: usize,
    ) -> Result<Self, CoreError> {
        let num_dcs = base.num_dcs();
        let mut overrides: Vec<Option<System>> = vec![None; horizon];
        for e in effects {
            let (slot, factor) = match e {
                SlotEffect::ServerFactor { slot, factor, .. } => (*slot, *factor),
                SlotEffect::TransferFactor { slot, factor, .. } => (*slot, *factor),
            };
            if slot >= horizon {
                return Err(CoreError::Model(format!(
                    "scenario effect at slot {slot} beyond horizon {horizon}"
                )));
            }
            if !(factor.is_finite() && factor >= 0.0) {
                return Err(CoreError::Model(format!(
                    "scenario effect factor {factor} must be finite and non-negative"
                )));
            }
            let sys = overrides[slot].get_or_insert_with(|| base.clone());
            match e {
                SlotEffect::ServerFactor { dc, factor, .. } => {
                    if *dc >= num_dcs {
                        return Err(CoreError::Model(format!(
                            "scenario effect names DC {dc}, system has {num_dcs}"
                        )));
                    }
                    let d = &mut sys.data_centers[*dc];
                    d.servers = ((d.servers as f64 * factor).floor() as usize).max(1);
                }
                SlotEffect::TransferFactor { dc, factor, .. } => {
                    if let Some(dc) = dc {
                        if *dc >= num_dcs {
                            return Err(CoreError::Model(format!(
                                "scenario effect names DC {dc}, system has {num_dcs}"
                            )));
                        }
                    }
                    for row in sys.distance.iter_mut() {
                        for (l, d) in row.iter_mut().enumerate() {
                            if dc.is_none_or(|target| target == l) {
                                *d *= factor;
                            }
                        }
                    }
                }
            }
        }
        for (slot, sys) in overrides.iter().enumerate() {
            if let Some(sys) = sys {
                sys.validate()
                    .map_err(|e| CoreError::Model(format!("patched system at slot {slot}: {e}")))?;
            }
        }
        Ok(SlotSystems { base, overrides })
    }

    /// Whether any slot differs from the base system.
    pub fn has_overrides(&self) -> bool {
        self.overrides.iter().any(Option::is_some)
    }

    /// Number of slots carrying an override.
    pub fn patched_slots(&self) -> usize {
        self.overrides.iter().filter(|o| o.is_some()).count()
    }
}

impl SystemSource for SlotSystems {
    fn base(&self) -> &System {
        &self.base
    }

    fn system_for(&self, slot: usize) -> &System {
        self.overrides
            .get(slot)
            .and_then(Option::as_ref)
            .unwrap_or(&self.base)
    }
}

/// Energy drawn by each DC during one outcome's slot:
/// `E_l = Σ_k class_dc_rate[k][l] × energy_per_request[k][l] × PUE_l`.
fn energy_draw(system: &System, class_dc_rate: &[Vec<f64>]) -> Vec<f64> {
    let mut draw = vec![0.0; system.num_dcs()];
    for (l, dc) in system.data_centers.iter().enumerate() {
        for (k, row) in class_dc_rate.iter().enumerate() {
            draw[l] += row[l] * dc.energy_per_request[k] * dc.pue;
        }
    }
    draw
}

/// The grid-coupling surcharge for a run:
/// `kappa × Σ_{t>first} Σ_l price_l(t) × |E_l(t) − E_l(t−1)|`
/// over schedule slots `start_slot .. start_slot + horizon`.
///
/// `E_l(t)` is DC `l`'s energy draw in slot `t`; a slot the run failed to
/// decide draws nothing (an honest ramp down and back up). This is a
/// demand-charge-style penalty on load swings a DC presents to its grid,
/// motivated by the price-chasing instability literature: a policy that
/// shifts its whole plan every time prices gyrate pays for the churn.
pub fn grid_ramp_surcharge(
    source: &dyn SystemSource,
    start_slot: usize,
    horizon: usize,
    run: &RunResult,
    kappa: f64,
) -> f64 {
    if kappa <= 0.0 || horizon == 0 {
        return 0.0;
    }
    let by_slot: BTreeMap<usize, &Vec<Vec<f64>>> = run
        .slots
        .iter()
        .map(|o| (o.slot, &o.class_dc_rate))
        .collect();
    let num_dcs = source.base().num_dcs();
    let mut surcharge = 0.0;
    let mut prev: Option<Vec<f64>> = None;
    for t in start_slot..start_slot + horizon {
        let system = source.system_for(t);
        let draw = match by_slot.get(&t) {
            Some(rate) => energy_draw(system, rate),
            None => vec![0.0; num_dcs],
        };
        if let Some(prev) = &prev {
            for (l, dc) in system.data_centers.iter().enumerate() {
                surcharge += dc.prices.price_at(t) * (draw[l] - prev[l]).abs();
            }
        }
        prev = Some(draw);
    }
    kappa * surcharge
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_with, BalancedPolicy, RunOptions};
    use palb_cluster::presets;
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn effects_patch_only_their_slots() {
        let base = presets::section_vi();
        let effects = vec![
            SlotEffect::ServerFactor {
                slot: 3,
                dc: 0,
                factor: 0.2,
            },
            SlotEffect::TransferFactor {
                slot: 3,
                dc: Some(1),
                factor: 10.0,
            },
        ];
        let src = SlotSystems::from_effects(base.clone(), &effects, 24).unwrap();
        assert!(src.has_overrides());
        assert_eq!(src.patched_slots(), 1);
        let patched = src.system_for(3);
        let nominal = base.data_centers[0].servers;
        assert_eq!(
            patched.data_centers[0].servers,
            ((nominal as f64 * 0.2).floor() as usize).max(1)
        );
        assert!(patched.data_centers[0].servers < nominal);
        assert!((patched.distance[0][1] - base.distance[0][1] * 10.0).abs() < 1e-9);
        assert!((patched.distance[0][0] - base.distance[0][0]).abs() < 1e-12);
        // Untouched slots share the base.
        assert_eq!(src.system_for(4).data_centers[0].servers, nominal);
        assert_eq!(src.system_for(100).data_centers[0].servers, nominal);
    }

    #[test]
    fn outage_never_empties_a_dc() {
        let base = presets::section_vi();
        let effects = vec![SlotEffect::ServerFactor {
            slot: 0,
            dc: 2,
            factor: 1e-9,
        }];
        let src = SlotSystems::from_effects(base, &effects, 1).unwrap();
        assert_eq!(src.system_for(0).data_centers[2].servers, 1);
        src.system_for(0).validate().unwrap();
    }

    #[test]
    fn bad_effects_are_rejected() {
        let base = presets::section_vi();
        let beyond = vec![SlotEffect::ServerFactor {
            slot: 30,
            dc: 0,
            factor: 0.5,
        }];
        assert!(SlotSystems::from_effects(base.clone(), &beyond, 24).is_err());
        let unknown_dc = vec![SlotEffect::ServerFactor {
            slot: 0,
            dc: 9,
            factor: 0.5,
        }];
        assert!(SlotSystems::from_effects(base.clone(), &unknown_dc, 24).is_err());
        let bad_factor = vec![SlotEffect::TransferFactor {
            slot: 0,
            dc: None,
            factor: f64::NAN,
        }];
        assert!(SlotSystems::from_effects(base, &bad_factor, 24).is_err());
    }

    #[test]
    fn run_over_sees_the_patched_system() {
        // An extreme transfer spike on every DC but one pushes Balanced's
        // cheapest-total-cost choice around; the run must differ from the
        // unpatched one on exactly the patched slot.
        let base = presets::section_vi();
        let trace = constant_trace(vec![vec![1_000.0, 0.0, 0.0]; 4], 3);
        let effects = vec![SlotEffect::TransferFactor {
            slot: 1,
            dc: Some(0),
            factor: 1e4,
        }];
        let src = SlotSystems::from_effects(base.clone(), &effects, 3).unwrap();
        let mut p1 = BalancedPolicy;
        let patched = run_with(&mut p1, &src, &trace, &RunOptions::at(0)).unwrap();
        let mut p2 = BalancedPolicy;
        let clean = run_with(&mut p2, &base, &trace, &RunOptions::at(0)).unwrap();
        assert_eq!(patched.result.decisions[0], clean.result.decisions[0]);
        assert_eq!(patched.result.decisions[2], clean.result.decisions[2]);
        assert!(
            patched.result.slots[1].transfer_cost >= clean.result.slots[1].transfer_cost,
            "patched transfer cost should not drop"
        );
    }

    #[test]
    fn surcharge_prices_ramps_and_ignores_flat_runs() {
        let base = presets::section_vi();
        // Constant load → constant dispatch → zero ramping surcharge.
        let trace = constant_trace(vec![vec![500.0, 0.0, 0.0]; 4], 4);
        let run = run_with(
            &mut BalancedPolicy,
            &base,
            &trace,
            &RunOptions {
                sanitize: false,
                ..RunOptions::default()
            },
        )
        .unwrap()
        .result;
        let flat = grid_ramp_surcharge(&base, 0, 4, &run, 1.0);
        // Balanced re-picks DCs as prices move across slots, so some churn
        // is possible; but kappa = 0 must always yield exactly zero.
        assert_eq!(grid_ramp_surcharge(&base, 0, 4, &run, 0.0), 0.0);
        assert!(flat >= 0.0);
        // A varying load must out-ramp the constant one.
        let mut rates = Vec::new();
        for t in 0..4usize {
            let r = if t % 2 == 0 { 100.0 } else { 2_000.0 };
            rates.push(vec![vec![r, 0.0, 0.0]; 4]);
        }
        let swing_trace = palb_workload::Trace::new(rates);
        let swing_run = run_with(
            &mut BalancedPolicy,
            &base,
            &swing_trace,
            &RunOptions::default(),
        )
        .unwrap()
        .result;
        let swing = grid_ramp_surcharge(&base, 0, 4, &swing_run, 1.0);
        assert!(swing > flat, "swing {swing} vs flat {flat}");
        // Surcharge scales linearly in kappa.
        let double = grid_ramp_surcharge(&base, 0, 4, &swing_run, 2.0);
        assert!((double - 2.0 * swing).abs() < 1e-9);
    }
}
