//! Verified concurrency primitives for the parallel solver.
//!
//! PR 3 made profit-critical state concurrent: the branch-and-bound
//! workers share an incumbent objective, a subtree ticket queue and a
//! node budget. This module confines every one of those protocols to a
//! named type with a stated invariant, built on the cfg-switched
//! [`palb_obs::sync`] shim — `std::sync` in normal builds, `loom::sync`
//! under `--cfg loom` — so each protocol is checked three ways:
//!
//! 1. [`model`] — an in-tree exhaustive interleaving explorer that
//!    enumerates *every* schedule of small state-machine models of these
//!    protocols. Runs in the regular test suite (`cargo test`), no
//!    external tooling.
//! 2. **loom** (`cargo xtask loom`, CI) — the same protocols on the real
//!    atomics, exhaustively interleaved *including* weak-memory
//!    reorderings, via `crates/core/tests/loom_models.rs`.
//! 3. **ThreadSanitizer** (`cargo xtask tsan`, nightly CI) — the full
//!    parallel solver suite under a data-race detector.
//!
//! The f64-bits-in-an-atomic trick lives here and in
//! [`palb_obs::metrics::Gauge`] only (see [`IncumbentCell`] for the
//! invariant); the rest of the workspace never touches raw atomic bits.

pub use palb_obs::sync::{Arc, AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};

pub mod model;

/// The parallel solver's shared incumbent objective: a monotone `f64`
/// maximum lifted by compare-and-swap.
///
/// The value is stored as `f64::to_bits` in an [`AtomicU64`].
/// **Invariant:** only *finite* objectives are ever published, so the
/// decoded values are totally ordered by plain `f64` comparison and the
/// cell is monotonically non-decreasing over any execution. `Relaxed`
/// ordering suffices: the cell is a single location (C++ guarantees a
/// total modification order per location), and the solver's reduction
/// step never reads other memory through it — the incumbent is a pruning
/// *hint*; the canonical result is recomputed from per-subtree outcomes.
#[derive(Debug)]
pub struct IncumbentCell {
    bits: AtomicU64,
}

impl IncumbentCell {
    /// A cell seeded with the root incumbent objective.
    pub fn new(seed: f64) -> Self {
        debug_assert!(seed.is_finite(), "incumbent seed must be finite");
        IncumbentCell {
            bits: AtomicU64::new(seed.to_bits()),
        }
    }

    /// Lifts the stored maximum to at least `val`. Lock-free; concurrent
    /// offers all land (the final value is the maximum of the seed and
    /// every offer, proven by [`model`] and the loom suite).
    pub fn offer(&self, val: f64) {
        debug_assert!(val.is_finite(), "incumbent offers must be finite");
        let mut cur = self.bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < val {
            match self.bits.compare_exchange_weak(
                cur,
                val.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current maximum. May lag concurrent offers; never exceeds the
    /// true maximum of everything offered.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// An atomic ticket dispenser over `0..len`: the parallel solver's
/// subtree checkout queue.
///
/// **Invariant:** every index in `0..len` is handed out to exactly one
/// caller (exactly-once dispatch), in ascending order per the queue's
/// single modification order; after exhaustion every claim returns
/// `None`.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    len: usize,
}

impl WorkQueue {
    /// A queue over the indices `0..len`.
    pub fn new(len: usize) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Claims the next unclaimed index, or `None` when the queue is
    /// exhausted.
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }

    /// Number of indices the queue dispenses.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the queue dispenses nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A shared monotone spend counter with a cap — the solver's global node
/// budget.
///
/// **Invariant:** at most `cap` charges succeed *plus at most one
/// in-flight overshoot per concurrent caller* (each caller detects
/// exhaustion on its own failed charge); the counter itself never
/// decreases.
#[derive(Debug)]
pub struct BudgetCounter {
    spent: AtomicUsize,
}

impl BudgetCounter {
    /// A counter starting at zero spend.
    pub fn new() -> Self {
        BudgetCounter {
            spent: AtomicUsize::new(0),
        }
    }

    /// Records one unit of spend against `cap`. Returns `true` while the
    /// pre-charge spend was within budget.
    pub fn charge(&self, cap: usize) -> bool {
        self.spent.fetch_add(1, Ordering::Relaxed) < cap
    }

    /// Units charged so far (including over-budget attempts).
    pub fn spent(&self) -> usize {
        self.spent.load(Ordering::Relaxed)
    }
}

impl Default for BudgetCounter {
    fn default() -> Self {
        BudgetCounter::new()
    }
}

/// A one-way boolean: starts lowered, can only be raised. Used for the
/// solver's `truncated` / `failed` signals.
///
/// **Invariant:** once any thread observes the flag raised, every later
/// observation on any thread is raised (monotone on the flag's single
/// modification order).
#[derive(Debug)]
pub struct Flag {
    raised: AtomicBool,
}

impl Flag {
    /// A lowered flag.
    pub fn new() -> Self {
        Flag {
            raised: AtomicBool::new(false),
        }
    }

    /// Raises the flag (idempotent).
    pub fn raise(&self) {
        self.raised.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_raised(&self) -> bool {
        self.raised.load(Ordering::Relaxed)
    }
}

impl Default for Flag {
    fn default() -> Self {
        Flag::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incumbent_cell_is_a_monotone_max() {
        let c = IncumbentCell::new(1.0);
        c.offer(0.5); // below: ignored
        assert_eq!(c.get().to_bits(), 1.0f64.to_bits());
        c.offer(2.5);
        assert_eq!(c.get().to_bits(), 2.5f64.to_bits());
        c.offer(2.5); // equal: ignored, still exact
        assert_eq!(c.get().to_bits(), 2.5f64.to_bits());
    }

    #[test]
    fn incumbent_cell_handles_negative_objectives() {
        let c = IncumbentCell::new(-10.0);
        c.offer(-3.0);
        assert_eq!(c.get().to_bits(), (-3.0f64).to_bits());
        c.offer(-5.0);
        assert_eq!(c.get().to_bits(), (-3.0f64).to_bits());
    }

    #[test]
    fn concurrent_offers_keep_the_true_maximum() {
        let c = Arc::new(IncumbentCell::new(0.0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.offer((t * 1000 + i) as f64 / 7.0);
                    }
                });
            }
        });
        assert_eq!(c.get().to_bits(), (3999.0f64 / 7.0).to_bits());
    }

    #[test]
    fn work_queue_dispenses_each_index_once() {
        let q = WorkQueue::new(3);
        assert_eq!(q.claim(), Some(0));
        assert_eq!(q.claim(), Some(1));
        assert_eq!(q.claim(), Some(2));
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim(), None);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(WorkQueue::new(0).is_empty());
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        let q = Arc::new(WorkQueue::new(1000));
        let claimed: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(i) = q.claim() {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn budget_counter_admits_exactly_cap_sequential_charges() {
        let b = BudgetCounter::new();
        let admitted = (0..10).filter(|_| b.charge(4)).count();
        assert_eq!(admitted, 4);
        assert_eq!(b.spent(), 10);
    }

    #[test]
    fn flag_is_one_way() {
        let f = Flag::new();
        assert!(!f.is_raised());
        f.raise();
        f.raise();
        assert!(f.is_raised());
    }
}
