//! Input sanitization at the control-loop boundary (§III's "observe the
//! average arrival rates" step, hardened).
//!
//! The paper assumes the controller observes clean per-slot arrival rates.
//! Real telemetry is not clean: monitoring gaps yield NaN, mis-scaled
//! counters yield absurd spikes, and race conditions yield negative
//! deltas. Rather than let one bad float poison an LP (every objective
//! coefficient and RHS it touches becomes NaN), [`sanitize_rates`] repairs
//! the trace *before* any solver sees it:
//!
//! * **NaN / ±∞** — treated as a missing observation and imputed from the
//!   previous slot's (already sanitized) rate for the same
//!   `(front_end, class)`; slot 0 falls back to 0 (serve nothing rather
//!   than hallucinate load).
//! * **Negative** — clamped to 0 (a rate below zero carries no usable
//!   magnitude information).
//!
//! Every repair is recorded as a [`SanitizationEvent`] so the per-slot
//! health telemetry can report how trustworthy each decision's inputs
//! were.

use palb_workload::Trace;

/// What kind of corruption a repaired observation had.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateFaultKind {
    /// NaN or ±∞: a missing/overflowed observation, imputed.
    NonFinite,
    /// A negative rate, clamped to zero.
    Negative,
}

/// One repaired rate observation.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizationEvent {
    /// Trace-local slot index of the repaired observation.
    pub slot: usize,
    /// Front-end index.
    pub front_end: usize,
    /// Request-class index.
    pub class: usize,
    /// The corrupted value as observed.
    pub observed: f64,
    /// The value substituted for it.
    pub replacement: f64,
    /// Corruption category.
    pub kind: RateFaultKind,
}

/// Repairs every unusable rate in `trace`, returning the clean trace and
/// the list of repairs. The result always satisfies the [`Trace`]
/// invariants (finite, non-negative), so downstream solvers can assume
/// clean inputs.
pub fn sanitize_rates(trace: &Trace) -> (Trace, Vec<SanitizationEvent>) {
    let mut events = Vec::new();
    let mut clean: Vec<Vec<Vec<f64>>> = Vec::with_capacity(trace.slots());
    for t in 0..trace.slots() {
        let mut slot_rates = Vec::with_capacity(trace.front_ends());
        for s in 0..trace.front_ends() {
            let mut row = Vec::with_capacity(trace.classes());
            for k in 0..trace.classes() {
                let r = trace.rate(t, s, k);
                let v = if !r.is_finite() {
                    // Impute from the previous *sanitized* slot so a long
                    // NaN burst decays to the last trusted observation
                    // instead of compounding.
                    let imputed = if t > 0 { clean[t - 1][s][k] } else { 0.0 };
                    events.push(SanitizationEvent {
                        slot: t,
                        front_end: s,
                        class: k,
                        observed: r,
                        replacement: imputed,
                        kind: RateFaultKind::NonFinite,
                    });
                    imputed
                } else if r < 0.0 {
                    events.push(SanitizationEvent {
                        slot: t,
                        front_end: s,
                        class: k,
                        observed: r,
                        replacement: 0.0,
                        kind: RateFaultKind::Negative,
                    });
                    0.0
                } else {
                    r
                };
                row.push(v);
            }
            slot_rates.push(row);
        }
        clean.push(slot_rates);
    }
    (Trace::new(clean), events)
}

/// Number of repairs per trace slot (dense, length `slots`), for merging
/// into per-slot health telemetry.
pub fn events_per_slot(events: &[SanitizationEvent], slots: usize) -> Vec<usize> {
    let mut counts = vec![0usize; slots];
    for e in events {
        counts[e.slot] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trace_passes_through_bit_identical() {
        let trace = Trace::new(vec![vec![vec![1.0, 2.0]], vec![vec![3.0, 4.0]]]);
        let (clean, events) = sanitize_rates(&trace);
        assert_eq!(clean, trace);
        assert!(events.is_empty());
    }

    #[test]
    fn nan_imputes_from_previous_slot() {
        let trace =
            Trace::new_unchecked(vec![vec![vec![5.0]], vec![vec![f64::NAN]], vec![vec![7.0]]]);
        let (clean, events) = sanitize_rates(&trace);
        assert_eq!(clean.rate(1, 0, 0), 5.0);
        assert_eq!(clean.rate(2, 0, 0), 7.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, RateFaultKind::NonFinite);
        assert_eq!(events[0].slot, 1);
        assert_eq!(events[0].replacement, 5.0);
    }

    #[test]
    fn nan_burst_decays_to_last_trusted_value() {
        let trace = Trace::new_unchecked(vec![
            vec![vec![9.0]],
            vec![vec![f64::NAN]],
            vec![vec![f64::NAN]],
        ]);
        let (clean, events) = sanitize_rates(&trace);
        // Both missing slots replay the last trusted observation.
        assert_eq!(clean.rate(1, 0, 0), 9.0);
        assert_eq!(clean.rate(2, 0, 0), 9.0);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn leading_nan_and_negatives_fall_to_zero() {
        let trace = Trace::new_unchecked(vec![
            vec![vec![f64::NAN, -3.0]],
            vec![vec![f64::INFINITY, 2.0]],
        ]);
        let (clean, events) = sanitize_rates(&trace);
        assert_eq!(clean.rate(0, 0, 0), 0.0); // no history: serve nothing
        assert_eq!(clean.rate(0, 0, 1), 0.0); // negative clamped
        assert_eq!(clean.rate(1, 0, 0), 0.0); // imputed from repaired 0
        assert_eq!(clean.rate(1, 0, 1), 2.0);
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].kind, RateFaultKind::Negative);
    }

    #[test]
    fn per_slot_counts_are_dense() {
        let trace = Trace::new_unchecked(vec![
            vec![vec![f64::NAN, -1.0]],
            vec![vec![1.0, 1.0]],
            vec![vec![f64::NAN, 1.0]],
        ]);
        let (_, events) = sanitize_rates(&trace);
        assert_eq!(events_per_slot(&events, 3), vec![2, 0, 1]);
    }
}
