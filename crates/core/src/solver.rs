//! The unified solver entry point: one [`SolverConfig`] describes *which*
//! multilevel solver runs ([`SolverKind`]) and *how much* it may spend
//! ([`SolverBudget`]), replacing the ad-hoc `BbOptions` field plumbing
//! that every call site used to assemble by hand.
//!
//! Three kinds share the config:
//!
//! * [`SolverKind::Exact`] — the branch-and-bound of
//!   [`crate::multilevel::solve_bb`], bit-for-bit unchanged. This is the
//!   default; `SolverConfig::exact()` with a default budget behaves
//!   exactly like the old `BbOptions::default()`.
//! * [`SolverKind::Anytime`] — the seed-pure population search of
//!   [`crate::portfolio`]: parallel evolution branches over level
//!   assignments with a shared dominance population and a no-improvement
//!   termination quota. Never proves optimality; scales to systems where
//!   the exact tree explodes.
//! * [`SolverKind::Portfolio`] — both at once, racing through a shared
//!   atomic incumbent: the anytime side's improvements prune the exact
//!   tree, the exact side stops the anytime search when it proves
//!   optimality, and a wall-clock budget stops whoever is still running.
//!
//! Construction is builder-style and total — every method is infallible
//! and the config is ready to use at any point:
//!
//! ```
//! use palb_core::solver::{SolverBudget, SolverConfig};
//! let cfg = SolverConfig::exact()
//!     .threads(8)
//!     .budget(SolverBudget::nodes(50_000).wall_clock_ms(250));
//! assert_eq!(cfg.threads, 8);
//! ```

use std::fmt;

use palb_cluster::System;
use palb_lp::SolveOptions;

use crate::error::CoreError;
use crate::formulate::WorkspacePool;
use crate::multilevel::MultilevelResult;
use crate::obs::Recorder;

/// Which multilevel search a [`SolverConfig`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Exact branch-and-bound over per-(class, server) level choices.
    Exact,
    /// Population-based anytime search (never proves optimality).
    Anytime,
    /// Anytime search racing the exact solver through a shared incumbent.
    Portfolio,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolverKind::Exact => "exact",
            SolverKind::Anytime => "anytime",
            SolverKind::Portfolio => "portfolio",
        })
    }
}

/// How much a solve may spend, across all [`SolverKind`]s: exact search
/// counts tree nodes, the anytime search counts LP evaluations, and both
/// honor the optional wall clock. Unset limits never bind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBudget {
    /// Hard cap on explored nodes (exact) or LP evaluations (anytime).
    /// The result is still the best incumbent, flagged not proven optimal
    /// when the cap binds.
    pub max_nodes: usize,
    /// Wall-clock cutoff in milliseconds. Checked at node/generation
    /// granularity, so a solve may overshoot by one LP bound. Wall-clock
    /// stops are inherently scheduling-dependent and sit outside the
    /// determinism contract (see DESIGN.md §14).
    pub wall_clock_ms: Option<u64>,
    /// Anytime termination quota: stop after this many consecutive
    /// generations without a strict improvement of the best objective.
    /// Ignored by the exact search.
    pub no_improve_quota: Option<usize>,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            max_nodes: 200_000,
            wall_clock_ms: None,
            no_improve_quota: None,
        }
    }
}

impl SolverBudget {
    /// A budget capped at `max_nodes` nodes/evaluations, no wall clock.
    pub fn nodes(max_nodes: usize) -> Self {
        SolverBudget {
            max_nodes,
            ..SolverBudget::default()
        }
    }

    /// Sets the wall-clock cutoff in milliseconds.
    pub fn wall_clock_ms(mut self, ms: u64) -> Self {
        self.wall_clock_ms = Some(ms);
        self
    }

    /// Sets the anytime no-improvement termination quota.
    pub fn no_improve_quota(mut self, generations: usize) -> Self {
        self.no_improve_quota = Some(generations);
        self
    }
}

/// Options for every multilevel solver, built fluently from one of the
/// kind constructors ([`SolverConfig::exact`], [`SolverConfig::anytime`],
/// [`SolverConfig::portfolio`]). Fields stay public so struct-update
/// syntax keeps working, but call sites should prefer the builder
/// methods (the `bb-options` xtask lint flags leftover `BbOptions`
/// literals).
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Which search runs. Defaults to [`SolverKind::Exact`].
    pub kind: SolverKind,
    /// Node/evaluation, wall-clock and quota limits.
    pub budget: SolverBudget,
    /// Exploit server homogeneity: only explore level assignments whose
    /// per-server level tuples are lexicographically non-decreasing within
    /// each data center. Lossless and usually exponentially cheaper. The
    /// anytime search always canonicalizes to this form.
    pub symmetry_breaking: bool,
    /// Relative optimality gap below which an exact node is pruned.
    pub gap_tol: f64,
    /// LP solver options used for every node bound / evaluation (and for
    /// the incumbent seeds), so callers can impose per-solve budgets.
    pub lp: SolveOptions,
    /// Solve interior exact-node bounds by patching a persistent LP
    /// workspace and warm-starting the simplex from the parent's basis.
    /// Leaves, incumbent seeds and anytime evaluations always go through
    /// the cold full path, so the returned incumbent is bit-for-bit
    /// independent of this flag; only wall-clock changes.
    pub incremental: bool,
    /// Worker threads. For [`SolverKind::Exact`] this is the in-slot
    /// parallel tree search (see the determinism contract in
    /// [`crate::multilevel`]); for the anytime search it parallelizes
    /// per-generation offspring evaluation (results are thread-invariant
    /// by construction); for the portfolio it is split across the two
    /// racing sides.
    pub threads: usize,
    /// Seed for the anytime search's deterministic RNG streams. Two runs
    /// with the same seed, budget and quota produce identical incumbents
    /// at every thread count.
    pub seed: u64,
    /// Parallel evolution branches feeding the shared dominance
    /// population (anytime/portfolio only).
    pub branches: usize,
    /// Dominance-population capacity: how many elite assignments survive
    /// each generation (anytime/portfolio only).
    pub population: usize,
    /// Offspring each branch proposes per generation (anytime/portfolio
    /// only).
    pub offspring: usize,
    /// Evaluation-cache capacity in entries; `0` disables the cache. The
    /// cache memoizes level-assignment → LP outcome across moves and is
    /// bitwise-invisible: on or off, the incumbent is identical (only
    /// wall-clock and the `cache_*` telemetry change).
    pub cache_capacity: usize,
    /// Observability recorder the solver reports through. Defaults to the
    /// no-op recorder. Recording never participates in the determinism
    /// contract.
    pub obs: Recorder,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            kind: SolverKind::Exact,
            budget: SolverBudget::default(),
            symmetry_breaking: true,
            gap_tol: 1e-7,
            lp: SolveOptions::default(),
            incremental: true,
            threads: 1,
            seed: 0x5eed_1ab5,
            branches: 4,
            population: 16,
            offspring: 4,
            cache_capacity: 8_192,
            obs: Recorder::noop(),
        }
    }
}

impl SolverConfig {
    /// Exact branch-and-bound with default options — behaviorally
    /// identical to the historical `BbOptions::default()`.
    pub fn exact() -> Self {
        SolverConfig::default()
    }

    /// Anytime population search with a default termination quota of 8
    /// generations and a 4 096-evaluation cap.
    pub fn anytime() -> Self {
        SolverConfig {
            kind: SolverKind::Anytime,
            budget: SolverBudget {
                max_nodes: 4_096,
                wall_clock_ms: None,
                no_improve_quota: Some(8),
            },
            ..SolverConfig::default()
        }
    }

    /// Portfolio: anytime search racing the exact solver. Defaults to the
    /// anytime budget on the heuristic side and the exact node cap on the
    /// tree side; add a wall-clock budget to bound the race. The
    /// population parameters are wider than [`SolverConfig::anytime`]'s
    /// (calibrated on the `repro portfolio` scale gate, where the lean
    /// defaults stall in a local optimum well before the budget runs
    /// out): eight branches keep proposal diversity high enough that the
    /// no-improvement quota keeps resetting instead of tripping early.
    pub fn portfolio() -> Self {
        SolverConfig {
            kind: SolverKind::Portfolio,
            budget: SolverBudget {
                no_improve_quota: Some(8),
                ..SolverBudget::default()
            },
            branches: 8,
            population: 24,
            offspring: 6,
            ..SolverConfig::default()
        }
    }

    /// Sets the worker thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the whole budget.
    pub fn budget(mut self, budget: SolverBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets only the node/evaluation cap, keeping the other limits.
    pub fn max_nodes(mut self, max_nodes: usize) -> Self {
        self.budget.max_nodes = max_nodes;
        self
    }

    /// Sets the relative optimality gap for exact pruning.
    pub fn gap_tol(mut self, gap_tol: f64) -> Self {
        self.gap_tol = gap_tol;
        self
    }

    /// Replaces the LP solver options.
    pub fn lp(mut self, lp: SolveOptions) -> Self {
        self.lp = lp;
        self
    }

    /// Enables or disables symmetry breaking.
    pub fn symmetry_breaking(mut self, on: bool) -> Self {
        self.symmetry_breaking = on;
        self
    }

    /// Enables or disables warm-started incremental node bounds.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Sets the anytime RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of evolution branches (clamped to at least 1).
    pub fn branches(mut self, branches: usize) -> Self {
        self.branches = branches.max(1);
        self
    }

    /// Sets the evaluation-cache capacity (`0` disables the cache).
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Attaches an observability recorder.
    pub fn obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Finishes the builder into a reusable [`ConfiguredSolver`] that
    /// keeps its warm-start workspace pool across solves.
    pub fn build(self) -> ConfiguredSolver {
        ConfiguredSolver::new(self)
    }
}

/// A per-slot multilevel solver. The unified object interface over the
/// exact, anytime and portfolio searches: policies and drivers hold a
/// `dyn Solver` (or a [`ConfiguredSolver`]) and never match on the kind
/// themselves.
pub trait Solver {
    /// Display name used in reports (`"exact"`, `"anytime"`, …).
    fn name(&self) -> &str;

    /// Solves one slot's multilevel problem.
    fn solve(
        &mut self,
        system: &System,
        rates: &[Vec<f64>],
        slot: usize,
    ) -> Result<MultilevelResult, CoreError>;
}

/// The [`Solver`] a [`SolverConfig`] describes, with a persistent
/// warm-start [`WorkspacePool`] so repeated solves (slot after slot)
/// reuse assembled LPs and their bases.
pub struct ConfiguredSolver {
    cfg: SolverConfig,
    pool: WorkspacePool,
}

impl std::fmt::Debug for ConfiguredSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConfiguredSolver")
            .field("cfg", &self.cfg)
            .field("workspace_ready", &!self.pool.is_empty())
            .finish()
    }
}

impl ConfiguredSolver {
    /// A solver for the given config with an empty workspace pool.
    pub fn new(cfg: SolverConfig) -> Self {
        ConfiguredSolver {
            cfg,
            pool: WorkspacePool::default(),
        }
    }

    /// The configuration this solver runs.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }
}

impl Solver for ConfiguredSolver {
    fn name(&self) -> &str {
        match self.cfg.kind {
            SolverKind::Exact => "exact",
            SolverKind::Anytime => "anytime",
            SolverKind::Portfolio => "portfolio",
        }
    }

    fn solve(
        &mut self,
        system: &System,
        rates: &[Vec<f64>],
        slot: usize,
    ) -> Result<MultilevelResult, CoreError> {
        solve_with_in(&mut self.pool, system, rates, slot, &self.cfg)
    }
}

/// Solves one slot under `cfg`, dispatching on [`SolverConfig::kind`].
/// For [`SolverKind::Exact`] this is exactly [`crate::multilevel::solve_bb`].
pub fn solve_with(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    cfg: &SolverConfig,
) -> Result<MultilevelResult, CoreError> {
    let mut pool = WorkspacePool::default();
    solve_with_in(&mut pool, system, rates, slot, cfg)
}

/// [`solve_with`] against a caller-owned workspace pool (the portfolio
/// race spawns its own per-side pools; the pool serves the exact and
/// anytime paths).
pub(crate) fn solve_with_in(
    pool: &mut WorkspacePool,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    cfg: &SolverConfig,
) -> Result<MultilevelResult, CoreError> {
    match cfg.kind {
        SolverKind::Exact => crate::multilevel::solve_bb_in(pool, system, rates, slot, cfg),
        SolverKind::Anytime => crate::portfolio::solve_anytime_in(pool, system, rates, slot, cfg),
        SolverKind::Portfolio => crate::portfolio::solve_portfolio(system, rates, slot, cfg),
    }
}

/// Parses a solver kind name as accepted by the CLI `--solver` flag.
/// `"uniform"` is not a [`SolverKind`] — the CLI maps it to the
/// uniform-level heuristic policy before reaching this parser.
pub fn parse_solver_kind(name: &str) -> Option<SolverKind> {
    match name {
        "exact" => Some(SolverKind::Exact),
        "anytime" => Some(SolverKind::Anytime),
        "portfolio" => Some(SolverKind::Portfolio),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_left_to_right() {
        let cfg = SolverConfig::exact()
            .threads(8)
            .budget(
                SolverBudget::nodes(77)
                    .wall_clock_ms(250)
                    .no_improve_quota(3),
            )
            .gap_tol(1e-6)
            .seed(42)
            .branches(2)
            .cache_capacity(0);
        assert_eq!(cfg.kind, SolverKind::Exact);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.budget.max_nodes, 77);
        assert_eq!(cfg.budget.wall_clock_ms, Some(250));
        assert_eq!(cfg.budget.no_improve_quota, Some(3));
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.branches, 2);
        assert_eq!(cfg.cache_capacity, 0);
    }

    #[test]
    fn kind_constructors_set_kind_and_defaults() {
        assert_eq!(SolverConfig::exact().kind, SolverKind::Exact);
        assert_eq!(SolverConfig::anytime().kind, SolverKind::Anytime);
        assert_eq!(SolverConfig::portfolio().kind, SolverKind::Portfolio);
        // The exact default budget is the historical BbOptions default.
        assert_eq!(SolverConfig::exact().budget.max_nodes, 200_000);
        assert!(SolverConfig::anytime().budget.no_improve_quota.is_some());
    }

    #[test]
    fn thread_and_branch_clamps() {
        assert_eq!(SolverConfig::exact().threads(0).threads, 1);
        assert_eq!(SolverConfig::anytime().branches(0).branches, 1);
    }

    #[test]
    fn parse_solver_kind_accepts_cli_names() {
        assert_eq!(parse_solver_kind("exact"), Some(SolverKind::Exact));
        assert_eq!(parse_solver_kind("anytime"), Some(SolverKind::Anytime));
        assert_eq!(parse_solver_kind("portfolio"), Some(SolverKind::Portfolio));
        assert_eq!(parse_solver_kind("uniform"), None);
        assert_eq!(parse_solver_kind(""), None);
    }

    #[test]
    fn display_names_round_trip_through_the_parser() {
        for kind in [
            SolverKind::Exact,
            SolverKind::Anytime,
            SolverKind::Portfolio,
        ] {
            assert_eq!(parse_solver_kind(&kind.to_string()), Some(kind));
        }
    }
}
