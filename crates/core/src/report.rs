//! Report formatting: turning [`RunResult`]s into the CSV series and
//! aligned text tables that the `repro` harness prints for each of the
//! paper's figures.

use palb_cluster::{ClassId, DcId, System};

use crate::driver::RunResult;
use crate::resilient::Tier;

/// Per-slot net-profit comparison of two runs (the series behind the
/// paper's Figs. 4, 6, 8 and 10).
pub fn net_profit_csv(a: &RunResult, b: &RunResult) -> String {
    assert_eq!(
        a.slots.len(),
        b.slots.len(),
        "runs must cover the same slots"
    );
    let mut out = format!("slot,{}_net_profit,{}_net_profit\n", a.policy, b.policy);
    for (sa, sb) in a.slots.iter().zip(&b.slots) {
        out.push_str(&format!(
            "{},{:.4},{:.4}\n",
            sa.slot, sa.net_profit, sb.net_profit
        ));
    }
    out
}

/// Per-slot dispatch of one class to every data center (the paper's
/// Figs. 7 and 9 series) for a single run.
pub fn dispatch_csv(system: &System, run: &RunResult, k: ClassId) -> String {
    let mut out = String::from("slot");
    for dc in &system.data_centers {
        out.push_str(&format!(",{}", dc.name));
    }
    out.push('\n');
    for s in &run.slots {
        out.push_str(&format!("{}", s.slot));
        for l in 0..system.num_dcs() {
            out.push_str(&format!(",{:.4}", s.class_dc_rate[k.0][l]));
        }
        out.push('\n');
    }
    out
}

/// An aligned plain-text table (monospace) from a header and rows.
pub fn text_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (c, h) in header.iter().enumerate() {
        width[c] = h.len();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (c, cell) in row.iter().enumerate() {
            width[c] = width[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], width: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>w$}", cell, w = width[c]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header, &width));
    let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &width));
    }
    out
}

/// Summary comparison of two runs: totals, completion, cost — the numbers
/// quoted in the paper's §VII-B prose (completion percentages, the
/// "spent 7.74% more on the cost" remark).
pub fn summary_table(a: &RunResult, b: &RunResult) -> String {
    let header = vec!["metric".to_string(), a.policy.clone(), b.policy.clone()];
    let f = |v: f64| format!("{v:.2}");
    let pct = |v: f64| format!("{:.2}%", v * 100.0);
    let rows = vec![
        vec![
            "net profit ($)".into(),
            f(a.total_net_profit()),
            f(b.total_net_profit()),
        ],
        vec![
            "revenue ($)".into(),
            f(a.total_revenue()),
            f(b.total_revenue()),
        ],
        vec!["cost ($)".into(), f(a.total_cost()), f(b.total_cost())],
        vec![
            "offered (req)".into(),
            f(a.total_offered()),
            f(b.total_offered()),
        ],
        vec![
            "completed (req)".into(),
            f(a.total_completed()),
            f(b.total_completed()),
        ],
        vec![
            "completion".into(),
            pct(a.completion_ratio()),
            pct(b.completion_ratio()),
        ],
    ];
    text_table(&header, &rows)
}

/// Per-data-center powered-on server series for a run.
pub fn powered_on_csv(system: &System, run: &RunResult) -> String {
    let mut out = String::from("slot");
    for dc in &system.data_centers {
        out.push_str(&format!(",{}", dc.name));
    }
    out.push('\n');
    for s in &run.slots {
        out.push_str(&format!("{}", s.slot));
        for &n in &s.powered_on {
            out.push_str(&format!(",{n}"));
        }
        out.push('\n');
    }
    out
}

/// Share of one class's total dispatch that lands at each data center over
/// a whole run (a compact Fig. 7 summary).
pub fn dispatch_share(system: &System, run: &RunResult, k: ClassId) -> Vec<(String, f64)> {
    let mut per_dc = vec![0.0; system.num_dcs()];
    for s in &run.slots {
        for l in 0..system.num_dcs() {
            per_dc[l] += s.class_dc_rate[k.0][l];
        }
    }
    let total: f64 = per_dc.iter().sum();
    system
        .data_centers
        .iter()
        .zip(per_dc)
        .map(|(dc, v)| (dc.name.clone(), if total > 0.0 { v / total } else { 0.0 }))
        .collect()
}

/// Dispatch share of one data center for one class (convenience).
pub fn dc_share(system: &System, run: &RunResult, k: ClassId, l: DcId) -> f64 {
    dispatch_share(system, run, k)[l.0].1
}

/// Total powered-on servers per slot (summed over data centers).
pub fn powered_on_series(run: &RunResult) -> Vec<usize> {
    run.slots
        .iter()
        .map(|s| s.powered_on.iter().sum())
        .collect()
}

/// Power churn: total number of server on/off transitions across the run,
/// summed per data center (`Σ_t Σ_l |on_{l,t} − on_{l,t−1}|`).
///
/// The paper assumes switching costs and durations are negligible within
/// an hour-long slot; this metric quantifies how much switching that
/// assumption must absorb.
pub fn power_churn(run: &RunResult) -> usize {
    let mut churn = 0usize;
    for w in run.slots.windows(2) {
        for (a, b) in w[0].powered_on.iter().zip(&w[1].powered_on) {
            churn += a.abs_diff(*b);
        }
    }
    churn
}

/// How many slots each degradation-ladder tier decided, in ladder order.
/// Slots with no health record (plain policies) are not counted.
pub fn tier_histogram(run: &RunResult) -> Vec<(Tier, usize)> {
    Tier::ALL
        .iter()
        .map(|&tier| {
            let n = run
                .slots
                .iter()
                .filter(|s| s.health.as_ref().is_some_and(|h| h.tier_used == Some(tier)))
                .count();
            (tier, n)
        })
        .collect()
}

/// Aligned text table of per-slot health telemetry: which tier decided
/// each slot, retries, input repairs and solver effort. Slots without a
/// health record render as nominal (`-` tier, zero counters).
pub fn health_table(run: &RunResult) -> String {
    let header: Vec<String> = ["slot", "tier", "retries", "repairs", "pivots", "degraded"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = run
        .slots
        .iter()
        .map(|s| match &s.health {
            Some(h) => vec![
                s.slot.to_string(),
                h.tier_used.map_or_else(|| "-".into(), |t| t.to_string()),
                h.retries.to_string(),
                h.sanitization_events.to_string(),
                h.solve_iterations.to_string(),
                if h.degraded {
                    "yes".into()
                } else {
                    "no".into()
                },
            ],
            None => vec![
                s.slot.to_string(),
                "-".into(),
                "0".into(),
                "0".into(),
                "0".into(),
                "no".into(),
            ],
        })
        .collect();
    text_table(&header, &rows)
}

/// One-line tier summary, e.g. `exact:21 uniform-levels:2 replay:1`
/// (tiers that decided zero slots are omitted).
pub fn tier_summary(run: &RunResult) -> String {
    let parts: Vec<String> = tier_histogram(run)
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .map(|(t, n)| format!("{t}:{n}"))
        .collect();
    if parts.is_empty() {
        "no health telemetry".to_string()
    } else {
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_with, BalancedPolicy, RunOptions};
    use palb_cluster::presets;
    use palb_workload::synthetic::constant_trace;

    fn small_run() -> (palb_cluster::System, RunResult) {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 2);
        let r = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        (sys, r)
    }

    #[test]
    fn net_profit_csv_has_slot_rows() {
        let (_, r) = small_run();
        let csv = net_profit_csv(&r, &r);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("slot,Balanced"));
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn dispatch_csv_names_data_centers() {
        let (sys, r) = small_run();
        let csv = dispatch_csv(&sys, &r, ClassId(0));
        assert!(csv.starts_with("slot,datacenter1,datacenter2,datacenter3\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn text_table_aligns_columns() {
        let t = text_table(
            &["a".into(), "long_header".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn summary_table_contains_all_metrics() {
        let (_, r) = small_run();
        let t = summary_table(&r, &r);
        for needle in ["net profit", "revenue", "cost", "completed", "completion"] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn dispatch_share_sums_to_one() {
        let (sys, r) = small_run();
        let shares = dispatch_share(&sys, &r, ClassId(0));
        let total: f64 = shares.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(shares.len(), 3);
        assert!((dc_share(&sys, &r, ClassId(0), DcId(0)) - shares[0].1).abs() < 1e-12);
    }

    #[test]
    fn powered_on_csv_shape() {
        let (sys, r) = small_run();
        let csv = powered_on_csv(&sys, &r);
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn health_reporting_covers_ladder_and_plain_runs() {
        use crate::resilient::ResilientPolicy;
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 3);
        let r = run_with(
            &mut ResilientPolicy::default(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let hist = tier_histogram(&r);
        assert_eq!(hist.len(), Tier::ALL.len());
        assert_eq!(hist[0], (Tier::Exact, 3));
        assert_eq!(tier_summary(&r), "exact:3");
        let table = health_table(&r);
        assert!(table.contains("tier"));
        assert!(table.lines().count() == 2 + 3);
        assert!(table.contains("exact"));
        // A plain policy has no telemetry: histogram is all zeros.
        let (_, plain) = small_run();
        assert!(tier_histogram(&plain).iter().all(|&(_, n)| n == 0));
        assert_eq!(tier_summary(&plain), "no health telemetry");
        assert!(health_table(&plain).contains('-'));
    }

    #[test]
    fn power_series_and_churn() {
        let (_, r) = small_run();
        let series = powered_on_series(&r);
        assert_eq!(series.len(), 2);
        // Identical slots (constant trace, same prices) -> zero churn.
        assert_eq!(power_churn(&r), 0);
        // A doctored run with changing power counts shows churn.
        let mut doctored = r.clone();
        doctored.slots[1].powered_on = vec![6, 0, 2];
        let expected: usize = doctored.slots[0]
            .powered_on
            .iter()
            .zip(&doctored.slots[1].powered_on)
            .map(|(a, b)| a.abs_diff(*b))
            .sum();
        assert!(expected > 0);
        assert_eq!(power_churn(&doctored), expected);
    }
}
