//! The **Balanced** baseline (paper §V-A): a static, profit-oblivious
//! policy that
//!
//! 1. allocates server resources evenly — every class gets a `1/K` CPU
//!    share on every server,
//! 2. dispatches each front-end's workload to the data center with the
//!    *lowest current electricity price* first, filling it to utilization
//!    (the final-deadline capacity of its servers), then overflowing to
//!    the next-cheapest data center, and so on,
//! 3. spreads the load assigned to a data center evenly across its
//!    servers, and drops whatever exceeds total capacity.
//!
//! It ignores profit structure, transfer costs and per-class service-rate
//! differences when *choosing* data centers — but it is charged for all of
//! them by the shared evaluator, exactly like the optimizer.

use palb_cluster::{ClassId, DcId, FrontEndId, System};
use palb_queueing::max_rate_for_deadline;

use crate::model::{Dims, Dispatch};

/// Safety margin keeping Balanced's "fill to capacity" strictly inside the
/// deadline so float round-off cannot tip a full VM past its deadline.
const FILL_GUARD: f64 = 1.0 - 1e-9;

/// Computes the Balanced decision for one slot.
pub fn balanced_dispatch(system: &System, rates: &[Vec<f64>], slot: usize) -> Dispatch {
    let dims = Dims::of(system);
    let kk = dims.classes;
    let mut dispatch = Dispatch::zero(dims.clone());

    // Even resource allocation: φ = 1/K everywhere.
    let phi = 1.0 / kk as f64;
    for (k, sv) in dims.class_server_pairs() {
        let l = dims.dc_of_server(sv);
        let i = sv - dims.server_offset[l.0];
        dispatch.set_phi(k, l, i, phi);
    }

    // Remaining per-(class, server) capacity under the final deadline.
    let mut cap = vec![0.0; dims.phi_len()];
    for (k, sv) in dims.class_server_pairs() {
        let l = dims.dc_of_server(sv);
        let dc = &system.data_centers[l.0];
        let deadline = system.classes[k.0].tuf.final_deadline();
        cap[dims.phi_idx(k, sv)] =
            FILL_GUARD * max_rate_for_deadline(phi, dc.capacity, dc.service_rate[k.0], deadline);
    }

    // Data centers ordered by current electricity price (cheapest first).
    let mut dc_order: Vec<usize> = (0..dims.dcs).collect();
    dc_order.sort_by(|&a, &b| {
        system.data_centers[a]
            .prices
            .price_at(slot)
            .total_cmp(&system.data_centers[b].prices.price_at(slot))
    });

    for s in 0..dims.front_ends {
        for k in 0..kk {
            let mut remaining = rates[s][k];
            if remaining <= 0.0 {
                continue;
            }
            for &l in &dc_order {
                if remaining <= 0.0 {
                    break;
                }
                // Available capacity of class k at this data center.
                let servers = dims.servers_per_dc[l];
                let avail: f64 = (0..servers)
                    .map(|i| cap[dims.phi_idx(ClassId(k), dims.server(DcId(l), i))])
                    .sum();
                if avail <= 0.0 {
                    continue;
                }
                let take = remaining.min(avail);
                // Spread evenly: proportional to each server's remaining
                // capacity so servers fill at the same relative pace.
                for i in 0..servers {
                    let idx = dims.phi_idx(ClassId(k), dims.server(DcId(l), i));
                    if cap[idx] <= 0.0 {
                        continue;
                    }
                    let share = take * cap[idx] / avail;
                    let prev = dispatch.lambda(ClassId(k), FrontEndId(s), DcId(l), i);
                    dispatch.set_lambda(ClassId(k), FrontEndId(s), DcId(l), i, prev + share);
                    cap[idx] -= share;
                }
                remaining -= take;
            }
            // Anything still remaining is dropped (offered > capacity).
        }
    }
    dispatch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::model::check_feasible;
    use palb_cluster::presets;

    #[test]
    fn light_load_goes_to_cheapest_dc() {
        let sys = presets::section_v();
        // §V prices: dc1 (index 0) is cheapest at $0.20/kWh.
        let rates = vec![
            vec![5.0, 0.0, 0.0],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        ];
        let d = balanced_dispatch(&sys, &rates, 0);
        assert!((d.dc_class_rate(ClassId(0), DcId(0)) - 5.0).abs() < 1e-9);
        assert_eq!(d.dc_class_rate(ClassId(0), DcId(1)), 0.0);
        assert_eq!(d.dc_class_rate(ClassId(0), DcId(2)), 0.0);
    }

    #[test]
    fn decisions_are_feasible_light_and_heavy() {
        let sys = presets::section_v();
        for rates in [
            presets::section_v_low_arrivals(),
            presets::section_v_high_arrivals(),
        ] {
            let d = balanced_dispatch(&sys, &rates, 0);
            check_feasible(&sys, &rates, &d, true, 1e-6).unwrap();
        }
    }

    #[test]
    fn overflow_cascades_to_next_cheapest() {
        let sys = presets::section_v();
        // Class 0 capacity per DC at phi=1/3 and final deadline 0.1 s:
        // dc1: 6*(50-10)=240; dc2: 6*(46.66-10)=220; dc3: 6*(53.33-10)=260.
        // Price order: dc1 ($0.20) < dc3 ($0.22) < dc2 ($0.24).
        let rates = vec![
            vec![300.0, 0.0, 0.0],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        ];
        let d = balanced_dispatch(&sys, &rates, 0);
        let to_dc1 = d.dc_class_rate(ClassId(0), DcId(0));
        // Cheapest (dc1) saturates near its 240 capacity...
        assert!(to_dc1 > 220.0, "dc1 got {to_dc1}");
        // ... and the overflow lands at the next cheapest (dc3 at $0.22).
        let to_dc3 = d.dc_class_rate(ClassId(0), DcId(2));
        assert!(to_dc3 > 40.0, "dc3 got {to_dc3}");
        assert_eq!(d.dc_class_rate(ClassId(0), DcId(1)), 0.0);
        // Everything dispatched (total capacity suffices).
        assert!((d.total_dispatched() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn excess_load_is_dropped() {
        let sys = presets::section_v();
        let rates = vec![
            vec![5_000.0, 0.0, 0.0],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        ];
        let d = balanced_dispatch(&sys, &rates, 0);
        let dispatched = d.total_dispatched();
        assert!(dispatched < 5_000.0);
        // Class-0 system capacity at phi=1/3: 240+220+260 = 720.
        assert!((dispatched - 720.0).abs() < 5.0, "dispatched {dispatched}");
        check_feasible(&sys, &rates, &d, true, 1e-6).unwrap();
    }

    #[test]
    fn dispatched_flows_complete_in_time() {
        let sys = presets::section_v();
        let rates = presets::section_v_high_arrivals();
        let d = balanced_dispatch(&sys, &rates, 0);
        let out = evaluate(&sys, &rates, 0, &d);
        // The guard keeps every filled VM within its deadline, so all
        // dispatched requests complete.
        assert!(
            (out.completed - out.dispatched).abs() < 1e-6 * out.dispatched,
            "completed {} of dispatched {}",
            out.completed,
            out.dispatched
        );
    }

    #[test]
    fn load_spreads_across_servers_of_a_dc() {
        let sys = presets::section_v();
        let rates = vec![
            vec![60.0, 0.0, 0.0],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        ];
        let d = balanced_dispatch(&sys, &rates, 0);
        // All 6 servers of the cheapest DC carry equal load (10 each).
        for i in 0..6 {
            let lam = d.lambda(ClassId(0), FrontEndId(0), DcId(0), i);
            assert!((lam - 10.0).abs() < 1e-9, "server {i}: {lam}");
        }
    }

    #[test]
    fn price_order_changes_with_slot() {
        let sys = presets::section_vi();
        // Find two hours where the cheapest data center differs.
        let cheapest = |slot: usize| {
            (0..3)
                .min_by(|&a, &b| {
                    sys.data_centers[a]
                        .prices
                        .price_at(slot)
                        .total_cmp(&sys.data_centers[b].prices.price_at(slot))
                })
                .unwrap()
        };
        let night = cheapest(3);
        let peak = cheapest(15);
        let mut rates = vec![vec![0.0; 3]; 4];
        rates[0][0] = 100.0;
        let d_night = balanced_dispatch(&sys, &rates, 3);
        let d_peak = balanced_dispatch(&sys, &rates, 15);
        assert!(d_night.dc_class_rate(ClassId(0), DcId(night)) > 99.0);
        assert!(d_peak.dc_class_rate(ClassId(0), DcId(peak)) > 99.0);
        // The synthetic curves make Houston cheapest at night but not at
        // the afternoon peak.
        assert_ne!(night, peak);
    }
}
