//! Quantile-SLA extension.
//!
//! The paper's constraint (Eq. 6) bounds the **mean** delay, but the
//! sojourn time of a stable M/M/1 queue is exponential with rate
//! `µ_eff − λ`, so a VM parked exactly at its mean-delay deadline still
//! lets `1/e ≈ 36.8%` of individual requests finish late (quantified by
//! the DES replay in `palb-bench`). This module upgrades the SLA to
//!
//! ```text
//!   P(T ≤ D) ≥ p        ⇔        µ_eff − λ ≥ ln(1/(1−p)) / D
//! ```
//!
//! which is *exactly* the paper's formulation with every deadline `D`
//! replaced by `D / ln(1/(1−p))` — so the entire solver stack (LP,
//! branch-and-bound, big-M path) is reused unchanged on a transformed
//! system, while evaluation still scores against the *original* TUFs.
//!
//! At `p = 1 − 1/e ≈ 0.632` the transformation is the identity: the
//! mean-delay SLA is the 63.2nd-percentile SLA in disguise.

use palb_cluster::System;
use palb_tuf::{Level, StepTuf};

use crate::driver::{OptimizedPolicy, Policy, SlotContext};
use crate::error::CoreError;
use crate::model::Dispatch;

/// The deadline shrink factor `ln(1/(1−p))` for a target on-time
/// probability `p`.
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn quantile_margin_factor(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "on-time probability must be in (0, 1), got {p}"
    );
    (1.0 / (1.0 - p)).ln()
}

/// Returns a copy of `system` whose TUF deadlines are tightened so that a
/// mean-delay-feasible decision on the copy guarantees
/// `P(T ≤ D_original) ≥ p` per request on the original.
pub fn quantile_system(system: &System, p: f64) -> System {
    let factor = quantile_margin_factor(p);
    let mut out = system.clone();
    for class in &mut out.classes {
        let levels: Vec<Level> = class
            .tuf
            .levels()
            .iter()
            .map(|l| Level {
                deadline: l.deadline / factor,
                utility: l.utility,
            })
            .collect();
        // palb:allow(unwrap): positive scaling preserves TUF validity
        class.tuf = StepTuf::new(levels).expect("scaling preserves TUF validity");
    }
    out
}

/// A policy that optimizes under a per-request quantile SLA: decisions are
/// made on the deadline-tightened system, then evaluated (by the caller's
/// driver) against the original economics.
#[derive(Debug, Clone)]
pub struct QuantileSlaPolicy {
    inner: OptimizedPolicy,
    /// Target on-time probability `p`.
    pub p: f64,
}

impl QuantileSlaPolicy {
    /// Exact solver targeting on-time probability `p`.
    pub fn exact(p: f64) -> Self {
        let _ = quantile_margin_factor(p); // validate early
        QuantileSlaPolicy {
            inner: OptimizedPolicy::exact(),
            p,
        }
    }

    /// Forces every LP onto the given engine (see
    /// [`OptimizedPolicy::with_lp_engine`]).
    pub fn with_lp_engine(mut self, engine: palb_lp::EngineKind) -> Self {
        self.inner = self.inner.with_lp_engine(engine);
        self
    }
}

impl Policy for QuantileSlaPolicy {
    fn name(&self) -> &str {
        "OptimizedQuantile"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError> {
        let tightened = quantile_system(ctx.system, self.p);
        // Decide on a derived context over the tightened system; health and
        // metrics still land on the caller's context/recorder.
        let inner_ctx = SlotContext::new(&tightened, ctx.rates, ctx.slot, ctx.obs);
        let result = self.inner.decide(&inner_ctx);
        if let Some(h) = inner_ctx.take_health() {
            ctx.record_health(h);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_with, BalancedPolicy, RunOptions};
    use crate::model::check_feasible;
    use palb_cluster::presets;
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn margin_factor_identities() {
        // Mean-delay SLA == 63.2nd percentile.
        let p_mean = 1.0 - (-1.0_f64).exp();
        assert!((quantile_margin_factor(p_mean) - 1.0).abs() < 1e-12);
        // 90th percentile needs ln(10) ≈ 2.30x the margin.
        assert!((quantile_margin_factor(0.9) - 10.0_f64.ln()).abs() < 1e-12);
        // Monotone in p.
        assert!(quantile_margin_factor(0.99) > quantile_margin_factor(0.9));
    }

    #[test]
    #[should_panic(expected = "on-time probability")]
    fn rejects_bad_probability() {
        quantile_margin_factor(1.0);
    }

    #[test]
    fn transformed_system_tightens_every_level() {
        let sys = presets::section_vii();
        let q = quantile_system(&sys, 0.9);
        let f = quantile_margin_factor(0.9);
        for (orig, tight) in sys.classes.iter().zip(&q.classes) {
            for (a, b) in orig.tuf.levels().iter().zip(tight.tuf.levels()) {
                assert!((b.deadline - a.deadline / f).abs() < 1e-15);
                assert_eq!(a.utility, b.utility);
            }
        }
        q.validate().unwrap();
    }

    #[test]
    fn quantile_decisions_feasible_and_conservative() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        let mean = run_with(
            &mut OptimizedPolicy::exact(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let q90 = run_with(
            &mut QuantileSlaPolicy::exact(0.9),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        // Decisions remain feasible for the ORIGINAL (looser) deadlines.
        check_feasible(&sys, trace.slot(0), &q90.decisions[0], true, 1e-6).unwrap();
        // Tighter guarantees can only cost analytic profit.
        assert!(q90.total_net_profit() <= mean.total_net_profit() + 1e-6);
        // But stay above the profit-oblivious baseline at this load.
        let bal = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert!(q90.total_net_profit() > bal.total_net_profit());
    }

    #[test]
    fn quantile_vms_run_with_real_headroom() {
        // Every loaded VM under the p=0.9 policy keeps mean delay at most
        // D/ln(10) — i.e. 90% of exponential sojourns inside D.
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_high_arrivals(), 1);
        let q90 = run_with(
            &mut QuantileSlaPolicy::exact(0.9),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let d = &q90.decisions[0];
        let dims = d.dims();
        let f = quantile_margin_factor(0.9);
        for (k, sv) in dims.class_server_pairs() {
            let lam = d.server_class_rate(k, sv);
            if lam <= 1e-9 {
                continue;
            }
            let l = dims.dc_of_server(sv);
            let service = d.phi_by_server(k, sv) * sys.data_centers[l.0].full_rate(k);
            let mean_delay = 1.0 / (service - lam);
            let deadline = sys.classes[k.0].tuf.final_deadline();
            assert!(
                mean_delay <= deadline / f * (1.0 + 1e-6),
                "class {k:?} server {sv}: mean delay {mean_delay} vs quantile bound {}",
                deadline / f
            );
        }
    }
}
