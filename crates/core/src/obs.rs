//! Observability glue: canonical metric names for the controller stack
//! and recording helpers over the [`palb_obs`] substrate.
//!
//! Recording points are assigned so nothing is double-counted:
//!
//! * the configured solvers ([`crate::multilevel::solve_bb`],
//!   [`crate::solver::solve_with`] and friends) record their own
//!   [`SolverStats`] through [`SolverConfig::obs`] — the uniform-level
//!   incumbent seed is folded into those stats, so the seed never records
//!   separately, and the portfolio's two sides each record once (the sums
//!   equal the merged stats);
//! * standalone heuristic and one-level LP callers (e.g.
//!   [`crate::OptimizedPolicy`]) record via [`record_solver_stats`];
//! * the driver records per-slot economics and health-derived counters
//!   (tier decisions, retries, sanitization, degraded slots) but **not**
//!   [`SlotHealth::solver`], which the solving layer already recorded.
//!
//! [`SolverConfig::obs`]: crate::solver::SolverConfig

pub use palb_obs::{
    log_linear_bounds, Recorder, Registry, Snapshot, Span, SPAN_SECONDS, SPAN_TOTAL,
};

use crate::evaluate::SlotOutcome;
use crate::multilevel::SolverStats;
use crate::resilient::SlotHealth;

/// Canonical metric family names. Scheme: `palb_` prefix, `_total` suffix
/// for counters, `_seconds` for duration histograms; tiers and spans are
/// labels (`tier="exact"`, `span="run/slot/bb_node"`), never name parts.
pub mod names {
    /// Histogram of per-slot `Policy::decide` wall-clock latency.
    pub const SLOT_DECIDE_SECONDS: &str = "palb_slot_decide_seconds";
    /// Slots decided and evaluated.
    pub const SLOTS_TOTAL: &str = "palb_slots_total";
    /// Slots whose decision failed (strict abort or collected failure).
    pub const SLOT_FAILURES_TOTAL: &str = "palb_slot_failures_total";
    /// Accumulated net profit, $ (gauge; adds per slot).
    pub const NET_PROFIT_DOLLARS: &str = "palb_net_profit_dollars";
    /// Accumulated requests offered (gauge; adds per slot).
    pub const REQUESTS_OFFERED: &str = "palb_requests_offered";
    /// Accumulated requests completed in time (gauge; adds per slot).
    pub const REQUESTS_COMPLETED: &str = "palb_requests_completed";
    /// Accumulated requests offered but not completed (gauge).
    pub const REQUESTS_DROPPED: &str = "palb_requests_dropped";
    /// Decisions produced per ladder tier, labelled `tier="<tier>"`.
    pub const TIER_DECISIONS_TOTAL: &str = "palb_tier_decisions_total";
    /// Failed solve attempts across ladder descents.
    pub const TIER_RETRIES_TOTAL: &str = "palb_tier_retries_total";
    /// Solver faults observed, labelled `tier="<failing tier>"`.
    pub const SOLVER_FAULTS_TOTAL: &str = "palb_solver_faults_total";
    /// Input repairs made by the sanitization pass.
    pub const SANITIZATION_EVENTS_TOTAL: &str = "palb_sanitization_events_total";
    /// Slots decided in a degraded state (fallback tier or repaired input).
    pub const DEGRADED_SLOTS_TOTAL: &str = "palb_degraded_slots_total";
    /// Branch-and-bound nodes (or enumerated LPs) explored.
    pub const BB_NODES_TOTAL: &str = "palb_bb_nodes_total";
    /// Interior bounds that entered the warm-start path.
    pub const WARM_ATTEMPTS_TOTAL: &str = "palb_warm_attempts_total";
    /// Warm attempts that succeeded without a cold fallback.
    pub const WARM_HITS_TOTAL: &str = "palb_warm_hits_total";
    /// Simplex pivots spent inside successful warm solves.
    pub const WARM_PIVOTS_TOTAL: &str = "palb_warm_pivots_total";
    /// Solves answered by the cold path, including warm fallbacks.
    pub const COLD_SOLVES_TOTAL: &str = "palb_cold_solves_total";
    /// Simplex pivots spent inside cold solves.
    pub const COLD_PIVOTS_TOTAL: &str = "palb_cold_pivots_total";
    /// Sparse LP engine: FTRAN-equivalent column extractions (0 on dense).
    pub const LP_FTRAN_TOTAL: &str = "palb_lp_ftran_total";
    /// Sparse LP engine: nonzeros touched by those extractions.
    pub const LP_FTRAN_NNZ_TOTAL: &str = "palb_lp_ftran_nnz_total";
    /// Sparse LP engine: basis refactorizations (eta-file compressions).
    pub const LP_REFACTOR_TOTAL: &str = "palb_lp_refactor_total";
    /// Anytime/portfolio evaluation-cache lookups answered from the memo.
    pub const EVAL_CACHE_HITS_TOTAL: &str = "palb_eval_cache_hits_total";
    /// Anytime/portfolio evaluation-cache lookups that required an LP.
    pub const EVAL_CACHE_MISSES_TOTAL: &str = "palb_eval_cache_misses_total";
    /// Anytime/portfolio evaluation-cache entries evicted at capacity.
    pub const EVAL_CACHE_EVICTIONS_TOTAL: &str = "palb_eval_cache_evictions_total";
    /// Scenario perturbation events applied to a world, labelled
    /// `scenario` and `kind` (the perturbation name).
    pub const SCENARIO_PERTURBATIONS_TOTAL: &str = "palb_scenario_perturbations_total";
    /// Slots whose system parameters a scenario patched, labelled
    /// `scenario`.
    pub const SCENARIO_SLOTS_PATCHED_TOTAL: &str = "palb_scenario_slots_patched_total";
    /// Ladder decisions that escalated past the exact tier while running a
    /// scenario, labelled `scenario` and `policy`.
    pub const SCENARIO_TIER_ESCALATIONS_TOTAL: &str = "palb_scenario_tier_escalations_total";
    /// Dispatch decisions blended toward the previous plan by the damping
    /// variant of the resilient policy.
    pub const DAMPING_EVENTS_TOTAL: &str = "palb_damping_events_total";
    /// Serving layer: requests routed to a server by the live dispatcher.
    pub const ROUTES_TOTAL: &str = "palb_routes_total";
    /// Serving layer: requests shed (offered mass the plan does not
    /// dispatch anywhere — the admission-control remainder).
    pub const ROUTES_SHED_TOTAL: &str = "palb_routes_shed_total";
    /// Serving layer: per-route lookup latency (sampled), in seconds.
    pub const ROUTE_SECONDS: &str = "palb_route_seconds";
    /// Serving layer: route-table publications at slot boundaries.
    pub const PLAN_SWAPS_TOTAL: &str = "palb_plan_swaps_total";
    /// Serving layer: mid-slot re-plans triggered by drift detection.
    pub const DRIFT_REPLANS_TOTAL: &str = "palb_drift_replans_total";
    /// Serving layer: drift checks evaluated against the active plan.
    pub const DRIFT_CHECKS_TOTAL: &str = "palb_drift_checks_total";
}

/// Canonical span paths for the timing hierarchy
/// `run > slot > tier > bb_node > lp_solve`. Each layer records at its
/// canonical depth — the path is a fixed taxonomy (so per-node recording
/// stays allocation-light and mergeable across workers), not a dynamic
/// call chain.
pub mod spans {
    /// One whole [`crate::run_with`] drive.
    pub const RUN: &str = "run";
    /// One slot's decide + evaluate.
    pub const SLOT: &str = "run/slot";
    /// One ladder-tier attempt inside a slot.
    pub const TIER: &str = "run/slot/tier";
    /// One branch-and-bound node (bound + branch).
    pub const BB_NODE: &str = "run/slot/tier/bb_node";
    /// One LP bound solve inside a node.
    pub const LP_SOLVE: &str = "run/slot/tier/bb_node/lp_solve";
}

/// Records one solve's [`SolverStats`] onto the registry counters. Called
/// by whichever layer owns the stats (see the module docs for the
/// recording-point map).
pub fn record_solver_stats(rec: &Recorder, stats: &SolverStats) {
    if !rec.is_enabled() {
        return;
    }
    rec.counter_add(names::BB_NODES_TOTAL, &[], stats.nodes_explored as u64);
    rec.counter_add(names::WARM_ATTEMPTS_TOTAL, &[], stats.warm_attempts as u64);
    rec.counter_add(names::WARM_HITS_TOTAL, &[], stats.warm_hits as u64);
    rec.counter_add(names::WARM_PIVOTS_TOTAL, &[], stats.warm_pivots as u64);
    rec.counter_add(names::COLD_SOLVES_TOTAL, &[], stats.cold_solves as u64);
    rec.counter_add(names::COLD_PIVOTS_TOTAL, &[], stats.cold_pivots as u64);
    if stats.ftran_total > 0 {
        rec.counter_add(names::LP_FTRAN_TOTAL, &[], stats.ftran_total);
        rec.counter_add(names::LP_FTRAN_NNZ_TOTAL, &[], stats.ftran_nnz_total);
    }
    if stats.refactor_total > 0 {
        rec.counter_add(names::LP_REFACTOR_TOTAL, &[], stats.refactor_total);
    }
    if stats.cache_hits + stats.cache_misses > 0 {
        rec.counter_add(names::EVAL_CACHE_HITS_TOTAL, &[], stats.cache_hits);
        rec.counter_add(names::EVAL_CACHE_MISSES_TOTAL, &[], stats.cache_misses);
        rec.counter_add(
            names::EVAL_CACHE_EVICTIONS_TOTAL,
            &[],
            stats.cache_evictions,
        );
    }
}

/// Records the health-derived counters of one decided slot (tier used,
/// retries, sanitization, degradation). [`SlotHealth::solver`] is *not*
/// recorded here — the solving layer already did.
pub fn record_health(rec: &Recorder, health: &SlotHealth) {
    if !rec.is_enabled() {
        return;
    }
    if let Some(tier) = health.tier_used {
        rec.counter_add(names::TIER_DECISIONS_TOTAL, &[("tier", tier.label())], 1);
    }
    if health.retries > 0 {
        rec.counter_add(names::TIER_RETRIES_TOTAL, &[], health.retries as u64);
    }
    if health.sanitization_events > 0 {
        rec.counter_add(
            names::SANITIZATION_EVENTS_TOTAL,
            &[],
            health.sanitization_events as u64,
        );
    }
    if health.degraded {
        rec.counter_add(names::DEGRADED_SLOTS_TOTAL, &[], 1);
    }
}

/// Records one evaluated slot's economics plus its health counters.
pub fn record_slot_outcome(rec: &Recorder, outcome: &SlotOutcome) {
    if !rec.is_enabled() {
        return;
    }
    rec.counter_add(names::SLOTS_TOTAL, &[], 1);
    rec.gauge_add(names::NET_PROFIT_DOLLARS, &[], outcome.net_profit);
    rec.gauge_add(names::REQUESTS_OFFERED, &[], outcome.offered);
    rec.gauge_add(names::REQUESTS_COMPLETED, &[], outcome.completed);
    rec.gauge_add(
        names::REQUESTS_DROPPED,
        &[],
        (outcome.offered - outcome.completed).max(0.0),
    );
    if let Some(h) = &outcome.health {
        record_health(rec, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::Tier;
    use std::sync::Arc;

    fn outcome(net_profit: f64, offered: f64, completed: f64) -> SlotOutcome {
        SlotOutcome {
            slot: 0,
            revenue: 0.0,
            energy_cost: 0.0,
            transfer_cost: 0.0,
            net_profit,
            offered,
            dispatched: completed,
            completed,
            powered_on: vec![],
            class_dc_rate: vec![],
            class_dc_delay: vec![],
            health: None,
        }
    }

    #[test]
    fn solver_stats_land_on_the_counters() {
        let registry = Arc::new(Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));
        let stats = SolverStats {
            nodes_explored: 10,
            warm_attempts: 8,
            warm_hits: 6,
            warm_pivots: 40,
            cold_solves: 4,
            cold_pivots: 100,
            subtrees: 0,
            threads_used: 1,
            ftran_total: 30,
            ftran_nnz_total: 90,
            refactor_total: 2,
            cache_hits: 5,
            cache_misses: 3,
            cache_evictions: 1,
        };
        record_solver_stats(&rec, &stats);
        record_solver_stats(&rec, &stats);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value(names::BB_NODES_TOTAL, &[]), Some(20));
        assert_eq!(snap.counter_value(names::WARM_HITS_TOTAL, &[]), Some(12));
        assert_eq!(snap.counter_value(names::COLD_SOLVES_TOTAL, &[]), Some(8));
        assert_eq!(snap.counter_value(names::COLD_PIVOTS_TOTAL, &[]), Some(200));
        assert_eq!(snap.counter_value(names::LP_FTRAN_TOTAL, &[]), Some(60));
        assert_eq!(
            snap.counter_value(names::LP_FTRAN_NNZ_TOTAL, &[]),
            Some(180)
        );
        assert_eq!(snap.counter_value(names::LP_REFACTOR_TOTAL, &[]), Some(4));
        assert_eq!(
            snap.counter_value(names::EVAL_CACHE_HITS_TOTAL, &[]),
            Some(10)
        );
        assert_eq!(
            snap.counter_value(names::EVAL_CACHE_MISSES_TOTAL, &[]),
            Some(6)
        );
        assert_eq!(
            snap.counter_value(names::EVAL_CACHE_EVICTIONS_TOTAL, &[]),
            Some(2)
        );
    }

    #[test]
    fn dense_solves_leave_sparse_counters_unregistered() {
        // Guard against noisy all-zero families: a dense-engine run (all
        // sparse counters zero) must not register the sparse metric names.
        let registry = Arc::new(Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));
        record_solver_stats(&rec, &SolverStats::default());
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value(names::LP_FTRAN_TOTAL, &[]), None);
        assert_eq!(snap.counter_value(names::LP_REFACTOR_TOTAL, &[]), None);
    }

    #[test]
    fn health_counters_split_by_tier_label() {
        let registry = Arc::new(Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));
        let mut h = SlotHealth {
            tier_used: Some(Tier::Exact),
            ..SlotHealth::default()
        };
        record_health(&rec, &h);
        h.tier_used = Some(Tier::Replay);
        h.retries = 3;
        h.degraded = true;
        record_health(&rec, &h);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(names::TIER_DECISIONS_TOTAL, &[("tier", "exact")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(names::TIER_DECISIONS_TOTAL, &[("tier", "replay")]),
            Some(1)
        );
        assert_eq!(snap.counter_value(names::TIER_RETRIES_TOTAL, &[]), Some(3));
        assert_eq!(
            snap.counter_value(names::DEGRADED_SLOTS_TOTAL, &[]),
            Some(1)
        );
    }

    #[test]
    fn slot_outcome_accumulates_economics() {
        let registry = Arc::new(Registry::new());
        let rec = Recorder::attached(Arc::clone(&registry));
        record_slot_outcome(&rec, &outcome(10.0, 100.0, 90.0));
        record_slot_outcome(&rec, &outcome(-2.0, 50.0, 50.0));
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value(names::SLOTS_TOTAL, &[]), Some(2));
        let profit = snap
            .samples
            .iter()
            .find(|s| &*s.name == names::NET_PROFIT_DOLLARS)
            .unwrap();
        match profit.value {
            palb_obs::SampleValue::Gauge(v) => assert_eq!(v, 8.0),
            ref other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn noop_recorder_short_circuits() {
        let rec = Recorder::noop();
        record_slot_outcome(&rec, &outcome(1.0, 1.0, 1.0));
        record_solver_stats(&rec, &SolverStats::default());
        assert!(rec.registry().is_none());
    }
}
