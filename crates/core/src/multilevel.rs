//! Solvers for multi-level step-downward TUFs.
//!
//! With `n ≥ 2` utility levels the paper's objective is a **MINLP**: each
//! (class, server) VM earns the utility of whichever level its mean delay
//! achieves. The paper reformulates the discontinuity with big-M
//! constraints and ships the result to CPLEX/AIMMS; this module solves the
//! *same* discrete problem exactly by branch-and-bound over the per-VM
//! level choices, using the fixed-level LP of [`crate::formulate`] for
//! node bounds — and provides two cheaper alternatives:
//!
//! * [`solve_uniform_levels`] — restricts every server of a data center to
//!   one level per class (`nᴷᴸ` LPs; polynomial in the server count), and
//! * [`solve_exhaustive`] — brute force over all per-VM choices, usable
//!   only as a test oracle on tiny systems.
//!
//! The per-server tree is what reproduces the paper's Fig. 11: its solve
//! time grows exponentially with the number of servers per data center,
//! while the symmetry-reduced / uniform solvers stay polynomial (our
//! ablation).

use std::time::Instant;

use palb_cluster::{ClassId, DcId, System};
use palb_lp::SolveOptions;

use crate::error::CoreError;
use crate::formulate::{
    ensure_spec_workspace, solve_spec_with, LevelAssignment, LevelSolve, SpecWorkspace,
    WorkspacePool,
};
use crate::model::Dims;
use crate::obs::{record_solver_stats, spans};
use crate::solver::SolverConfig;
use crate::sync::{BudgetCounter, Flag, IncumbentCell, WorkQueue};

/// Historical name of [`SolverConfig`], kept for one release so external
/// callers keep compiling. The determinism contract, budget semantics and
/// exact-search behavior all live on [`SolverConfig`] now; prefer the
/// `SolverConfig::exact().threads(..).budget(..)` builders.
#[deprecated(since = "0.1.0", note = "use palb_core::SolverConfig")]
pub type BbOptions = SolverConfig;

/// External controls a racing coordinator threads into the exact search:
/// a shared incumbent (published to and strictly pruned against), a stop
/// flag, and a wall-clock deadline. `SearchCtl::default()` (all `None`)
/// reproduces the standalone search bit-for-bit.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SearchCtl<'a> {
    /// Shared race incumbent: leaves are offered into it, and nodes whose
    /// bound falls strictly below it are pruned (sound: the cell only
    /// ever holds feasible objectives, so the optimum's ancestors always
    /// survive).
    pub shared: Option<&'a IncumbentCell>,
    /// Raised by the other racer (or the coordinator) to stop this search;
    /// the solve returns its best incumbent flagged not proven optimal.
    pub stop: Option<&'a Flag>,
    /// Wall-clock cutoff, checked once per node.
    pub deadline: Option<Instant>,
}

impl SearchCtl<'_> {
    /// Whether the search must wind down now (external stop or deadline).
    pub(crate) fn interrupted(&self) -> bool {
        // palb:allow(determinism): the SolverBudget wall-clock stop is the audited anytime carve-out — a deadline hit only truncates the search; any result it does publish is still a pure function of the inputs
        self.stop.is_some_and(Flag::is_raised) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// LP-solver telemetry for one multilevel solve: how many node bounds were
/// answered warm versus cold, and the pivots each side spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Nodes (or enumerated LPs) explored.
    pub nodes_explored: usize,
    /// Interior bounds that entered the warm-start path.
    pub warm_attempts: usize,
    /// Warm attempts that succeeded without a cold fallback.
    pub warm_hits: usize,
    /// Simplex pivots spent inside successful warm solves.
    pub warm_pivots: usize,
    /// Solves answered by a cold (from-scratch) path, including fallbacks.
    pub cold_solves: usize,
    /// Simplex pivots spent inside cold solves.
    pub cold_pivots: usize,
    /// Frontier subtrees handed to the parallel search (0 when the
    /// sequential path answered).
    pub subtrees: usize,
    /// Worker threads that participated in the branch-and-bound (1 for the
    /// sequential path; 0 when no tree search ran at all).
    pub threads_used: usize,
    /// Sparse-engine FTRAN-equivalent column extractions (0 on dense).
    pub ftran_total: u64,
    /// Nonzeros touched by those extractions.
    pub ftran_nnz_total: u64,
    /// Sparse-basis refactorizations (eta-file compressions).
    pub refactor_total: u64,
    /// Anytime evaluation-cache lookups answered from the cache (0 for
    /// the exact search, which has no cache).
    pub cache_hits: u64,
    /// Evaluation-cache lookups that missed and paid an LP solve.
    pub cache_misses: u64,
    /// Evaluation-cache entries evicted by the capacity bound.
    pub cache_evictions: u64,
}

impl SolverStats {
    /// Folds another solve's LP counters into this one. All the counter
    /// fields are commutative adds, so per-worker merges produce the same
    /// totals in any order (and a merge over an empty worker set is the
    /// identity). The topology fields (`subtrees`, `threads_used`) are
    /// set by the coordinating solve, never summed.
    pub fn merge(&mut self, other: &SolverStats) {
        self.nodes_explored += other.nodes_explored;
        self.warm_attempts += other.warm_attempts;
        self.warm_hits += other.warm_hits;
        self.warm_pivots += other.warm_pivots;
        self.cold_solves += other.cold_solves;
        self.cold_pivots += other.cold_pivots;
        self.ftran_total += other.ftran_total;
        self.ftran_nnz_total += other.ftran_nnz_total;
        self.refactor_total += other.refactor_total;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
    }

    /// Merges an arbitrary collection of per-worker stats into a fresh
    /// record — total-identity on an empty set (no panic, no sentinel).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a SolverStats>) -> SolverStats {
        let mut out = SolverStats::default();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Fraction of warm attempts that stuck, in `[0, 1]` (0 when none).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.warm_attempts == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.warm_attempts as f64
        }
    }

    /// Estimated pivots the warm path saved versus re-solving its hits
    /// cold, using the observed mean cold pivot count as the baseline.
    /// Negative when warm starting did not pay off.
    pub fn pivots_saved(&self) -> f64 {
        if self.cold_solves == 0 {
            return 0.0;
        }
        let cold_avg = self.cold_pivots as f64 / self.cold_solves as f64;
        self.warm_hits as f64 * cold_avg - self.warm_pivots as f64
    }
}

/// Result of a multilevel solve.
#[derive(Debug, Clone)]
pub struct MultilevelResult {
    /// Best decision found.
    pub solve: LevelSolve,
    /// The level assignment achieving it.
    pub assignment: LevelAssignment,
    /// Branch-and-bound nodes (or LPs, for the enumerative solvers).
    pub nodes: usize,
    /// Whether optimality was proven (node budget not exhausted).
    pub proven_optimal: bool,
    /// LP-solver telemetry for this solve.
    pub stats: SolverStats,
}

/// Builds the relaxation/assignment spec for a partial assignment:
/// assigned VMs use their level's (utility, deadline); unassigned VMs use
/// the optimistic mix (top utility, loosest deadline) that upper-bounds
/// every completion.
fn spec_for(system: &System, dims: &Dims, partial: &[Option<usize>]) -> Vec<Option<(f64, f64)>> {
    (0..dims.phi_len())
        .map(|idx| {
            let k = idx / dims.total_servers;
            let tuf = &system.classes[k].tuf;
            match partial[idx] {
                Some(q) => Some((tuf.utility_of_level(q), tuf.deadline_of_level(q))),
                None => Some((tuf.max_utility(), tuf.final_deadline())),
            }
        })
        .collect()
}

/// [`spec_for`] into a reused dense buffer (every entry is active, so the
/// incremental workspace can express it without `Option` wrapping).
fn spec_for_into(
    system: &System,
    dims: &Dims,
    partial: &[Option<usize>],
    out: &mut Vec<(f64, f64)>,
) {
    out.clear();
    out.extend((0..dims.phi_len()).map(|idx| {
        let k = idx / dims.total_servers;
        let tuf = &system.classes[k].tuf;
        match partial[idx] {
            Some(q) => (tuf.utility_of_level(q), tuf.deadline_of_level(q)),
            None => (tuf.max_utility(), tuf.final_deadline()),
        }
    }));
}

fn assignment_from(dims: &Dims, partial: &[Option<usize>]) -> LevelAssignment {
    let mut a = LevelAssignment::uniform(dims, 1);
    for (k, sv) in dims.class_server_pairs() {
        let idx = dims.phi_idx(k, sv);
        // palb:allow(unwrap): branch-and-bound leaves carry a complete assignment
        a.set(k, sv, Some(partial[idx].expect("complete assignment")));
    }
    a
}

/// Branch-and-bound order: server-major, class-minor, so symmetry breaking
/// can compare whole per-server tuples.
fn position(dims: &Dims, step: usize) -> (ClassId, usize) {
    let sv = step / dims.classes;
    let k = step % dims.classes;
    (ClassId(k), sv)
}

/// A partial assignment on the depth-first stack (levels by phi index).
struct Node {
    partial: Vec<Option<usize>>,
    depth: usize,
}

/// Exact solver: branch-and-bound over per-(class, server) level choices.
/// `opts.threads ≥ 2` parallelizes the search inside this single slot
/// without changing the returned incumbent outside the `gap_tol`
/// near-tie band (see the determinism contract on
/// [`SolverConfig::threads`]). The `kind` field is ignored: this entry
/// point always runs the exact search (the kind-dispatching entry is
/// [`crate::solver::solve_with`]).
// palb:decision-path
pub fn solve_bb(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    opts: &SolverConfig,
) -> Result<MultilevelResult, CoreError> {
    let mut pool = WorkspacePool::default();
    solve_bb_in(&mut pool, system, rates, slot, opts)
}

/// [`solve_bb`] against a caller-owned workspace pool, so repeated solves
/// (per slot, per ladder tier) reuse the assembled LPs and their bases —
/// one pooled workspace for the sequential path, one per worker for the
/// parallel path.
pub(crate) fn solve_bb_in(
    pool: &mut WorkspacePool,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    opts: &SolverConfig,
) -> Result<MultilevelResult, CoreError> {
    let ctl = SearchCtl {
        deadline: opts
            .budget
            .wall_clock_ms
            // palb:allow(determinism): anchoring the SolverBudget wall-clock deadline — the audited anytime carve-out
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
        ..SearchCtl::default()
    };
    solve_bb_ctl(pool, system, rates, slot, opts, ctl)
}

/// [`solve_bb_in`] under external race controls — the portfolio threads
/// its shared incumbent, stop flag and deadline through here. With the
/// default (all-`None`) controls the search is bit-for-bit the
/// standalone solver.
pub(crate) fn solve_bb_ctl(
    pool: &mut WorkspacePool,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    opts: &SolverConfig,
    ctl: SearchCtl<'_>,
) -> Result<MultilevelResult, CoreError> {
    let result = if opts.threads >= 2 {
        solve_bb_parallel(pool, system, rates, slot, opts, ctl)
    } else {
        let dims = Dims::of(system);
        let mut cache = pool.take_matching(&dims);
        let result = solve_bb_seq(&mut cache, system, rates, slot, opts, ctl);
        if let Some(w) = cache {
            pool.release(w);
        }
        result
    };
    // The branch-and-bound owns its stats recording (the uniform-level
    // incumbent seed is already folded in, so it must not record itself).
    if let Ok(r) = &result {
        record_solver_stats(&opts.obs, &r.stats);
    }
    result
}

/// The sequential depth-first search — the reference semantics every other
/// configuration must reproduce.
fn solve_bb_seq(
    cache: &mut Option<SpecWorkspace>,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    opts: &SolverConfig,
    ctl: SearchCtl<'_>,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let total_steps = dims.classes * dims.total_servers;
    let mut stats = SolverStats::default();

    // Incumbent: the always-feasible loosest assignment, improved by the
    // uniform-level heuristic when it succeeds. The assignment is validated
    // here, once, at the root; every node below derives its spec from the
    // same TUFs and is covered by debug asserts only.
    let loosest = LevelAssignment::loosest(system, &dims);
    let mut best_solve =
        crate::formulate::solve_fixed_levels_with(system, rates, slot, &loosest, &opts.lp)?;
    stats.cold_solves += 1;
    stats.cold_pivots += best_solve.pivots;
    let mut best_assignment = loosest;
    if let Ok(u) = solve_uniform_levels_in(cache, system, rates, slot, &opts.lp) {
        stats.cold_solves += u.stats.cold_solves;
        stats.cold_pivots += u.stats.cold_pivots;
        if u.solve.objective > best_solve.objective {
            best_solve = u.solve;
            best_assignment = u.assignment;
        }
    }

    let mut nodes = 0usize;
    let mut truncated = false;

    let root = Node {
        partial: vec![None; dims.phi_len()],
        depth: 0,
    };

    // Dense spec buffer reused across nodes, and the persistent workspace
    // for the incremental mode.
    let mut spec_buf: Vec<(f64, f64)> = Vec::with_capacity(dims.phi_len());
    let mut wsp: Option<&mut SpecWorkspace> = if opts.incremental {
        spec_for_into(system, &dims, &root.partial, &mut spec_buf);
        Some(ensure_spec_workspace(
            cache, system, rates, slot, &dims, &spec_buf, &opts.lp,
        )?)
    } else {
        None
    };

    if let Some(cell) = ctl.shared {
        cell.offer(best_solve.objective);
    }

    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if nodes >= opts.budget.max_nodes || ctl.interrupted() {
            truncated = true;
            break;
        }
        nodes += 1;
        // One span per node, adjacent to the count, so
        // `palb_span_total{span="…/bb_node"}` equals `nodes_explored`.
        let _node_span = opts.obs.span(spans::BB_NODE);

        // Bound: LP over the optimistic spec. Interior nodes may answer
        // warm (the bound only steers pruning); leaves answer through the
        // cold full path so the incumbent is identical to a cold run's.
        let lp_span = opts.obs.span(spans::LP_SOLVE);
        let bound_res = match &mut wsp {
            Some(w) => {
                spec_for_into(system, &dims, &node.partial, &mut spec_buf);
                w.apply_spec(&spec_buf);
                if node.depth == total_steps {
                    w.solve_cold(&opts.lp)
                } else {
                    let before = w.lp_stats();
                    let r = w.solve_warm(&opts.lp);
                    let after = w.lp_stats();
                    stats.warm_attempts += (after.warm_solves + after.fallbacks)
                        - (before.warm_solves + before.fallbacks);
                    stats.warm_hits += after.warm_solves - before.warm_solves;
                    stats.warm_pivots += after.warm_pivots - before.warm_pivots;
                    stats.cold_solves += after.cold_solves - before.cold_solves;
                    stats.cold_pivots += after.cold_pivots - before.cold_pivots;
                    stats.ftran_total += after.ftran_total - before.ftran_total;
                    stats.ftran_nnz_total += after.ftran_nnz_total - before.ftran_nnz_total;
                    stats.refactor_total += after.refactor_total - before.refactor_total;
                    r
                }
            }
            None => {
                let spec = spec_for(system, &dims, &node.partial);
                solve_spec_with(system, rates, slot, &dims, &spec, &opts.lp)
            }
        };
        drop(lp_span);
        let bound = match bound_res {
            Ok(s) => {
                if wsp.is_none() || node.depth == total_steps {
                    stats.cold_solves += 1;
                    stats.cold_pivots += s.pivots;
                }
                s
            }
            Err(CoreError::Infeasible) => continue, // prune
            Err(e) => return Err(e),
        };
        // Race prune: strictly below the shared incumbent can never
        // contain the final optimum (the cell only ever holds feasible
        // objectives, so the optimum's ancestors always survive). Absent
        // outside a portfolio race.
        if let Some(cell) = ctl.shared {
            if bound.objective < cell.get() {
                continue;
            }
        }
        let cutoff = best_solve.objective + opts.gap_tol * (1.0 + best_solve.objective.abs());
        if bound.objective <= cutoff {
            continue; // prune: cannot beat the incumbent
        }

        if node.depth == total_steps {
            // Leaf: the spec *is* the assignment, so the bound is exact.
            if bound.objective > best_solve.objective {
                debug_assert!(assignment_from(&dims, &node.partial)
                    .validate(system)
                    .is_ok());
                best_solve = bound;
                best_assignment = assignment_from(&dims, &node.partial);
                if let Some(cell) = ctl.shared {
                    cell.offer(best_solve.objective);
                }
            }
            continue;
        }

        // Branch on the next position.
        let (k, sv) = position(&dims, node.depth);
        let n_levels = system.classes[k.0].tuf.num_levels();
        let min_q = if opts.symmetry_breaking {
            symmetry_floor(&dims, &node.partial, k, sv)
        } else {
            1
        };
        // Push worst level first so the most promising child (q = 1, or
        // the symmetry floor) is explored first (LIFO stack).
        for q in (min_q..=n_levels).rev() {
            let mut partial = node.partial.clone();
            partial[dims.phi_idx(k, sv)] = Some(q);
            stack.push(Node {
                partial,
                depth: node.depth + 1,
            });
        }
    }

    stats.nodes_explored = nodes;
    stats.threads_used = 1;
    Ok(MultilevelResult {
        solve: best_solve,
        assignment: best_assignment,
        nodes,
        proven_optimal: !truncated,
        stats,
    })
}

/// A subtree's best leaf: the cold-path solve and the complete partial
/// assignment that produced it.
struct SubtreeBest {
    solve: LevelSolve,
    partial: Vec<Option<usize>>,
}

/// Depth-first search of one frontier subtree — the worker-side mirror of
/// the loop in [`solve_bb_seq`]: the same `gap_tol` prune against a
/// subtree-local incumbent seeded from the root heuristic, plus a
/// **strict** prune (no gap) against the shared best objective `g_best`,
/// which only removes work that provably cannot contain the optimum.
///
/// Determinism argument (see also [`SolverConfig::threads`]): on instances
/// where no two candidate objective values fall within `gap_tol` of each
/// other in the decisive window — i.e. the optimum is either isolated by
/// more than the gap band or already matched by the seed — every
/// subtree's gap chain ends at the same value regardless of sibling
/// timing, and the lexicographic reduction returns the sequential
/// answer bit-for-bit. On degenerate near-tie plateaus (e.g. Bland
/// pivoting on perturbed rates) the gap rule makes the accepted leaf a
/// function of visit history, which both the frontier shape and the
/// shared-incumbent timing perturb; there the result may differ from
/// the sequential one — and between thread counts — by at most the gap
/// band. Exploring the plateau exhaustively instead (a noise-margin
/// prune with no gap) was measured 10–500× more node bounds on the
/// reference configs, so the gap rule is kept and the band is the
/// documented contract.
// palb:hot-path
#[allow(clippy::too_many_arguments)]
fn solve_subtree(
    mut wsp: Option<&mut SpecWorkspace>,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    dims: &Dims,
    opts: &SolverConfig,
    ctl: SearchCtl<'_>,
    root: Node,
    seed_objective: f64,
    g_best: &IncumbentCell,
    budget: &BudgetCounter,
    truncated: &Flag,
    spec_buf: &mut Vec<(f64, f64)>,
    stats: &mut SolverStats,
) -> Result<Option<SubtreeBest>, CoreError> {
    let total_steps = dims.classes * dims.total_servers;
    let mut local_best_obj = seed_objective;
    let mut local_best: Option<SubtreeBest> = None;

    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        // The node budget is shared across every subtree (the sequential
        // semantics of `max_nodes`); the counter may overshoot by at most
        // one in-flight node per worker (the BudgetCounter invariant).
        // External stop/deadline interruptions surface the same way the
        // budget does: best incumbent so far, not proven optimal.
        if !budget.charge(opts.budget.max_nodes) || ctl.interrupted() {
            truncated.raise();
            break;
        }
        stats.nodes_explored += 1;
        // Same span-per-node placement as the sequential loop: counter
        // merges across workers are commutative adds, so
        // `palb_span_total{span="…/bb_node"}` equals the summed
        // `nodes_explored` at every thread count.
        let _node_span = opts.obs.span(spans::BB_NODE);

        // Bound: identical to the sequential solver — interior nodes may
        // answer warm, leaves answer through the cold full path.
        let lp_span = opts.obs.span(spans::LP_SOLVE);
        let bound_res = match &mut wsp {
            Some(w) => {
                spec_for_into(system, dims, &node.partial, spec_buf);
                w.apply_spec(spec_buf);
                if node.depth == total_steps {
                    w.solve_cold(&opts.lp)
                } else {
                    let before = w.lp_stats();
                    let r = w.solve_warm(&opts.lp);
                    let after = w.lp_stats();
                    stats.warm_attempts += (after.warm_solves + after.fallbacks)
                        - (before.warm_solves + before.fallbacks);
                    stats.warm_hits += after.warm_solves - before.warm_solves;
                    stats.warm_pivots += after.warm_pivots - before.warm_pivots;
                    stats.cold_solves += after.cold_solves - before.cold_solves;
                    stats.cold_pivots += after.cold_pivots - before.cold_pivots;
                    stats.ftran_total += after.ftran_total - before.ftran_total;
                    stats.ftran_nnz_total += after.ftran_nnz_total - before.ftran_nnz_total;
                    stats.refactor_total += after.refactor_total - before.refactor_total;
                    r
                }
            }
            None => {
                let spec = spec_for(system, dims, &node.partial);
                solve_spec_with(system, rates, slot, dims, &spec, &opts.lp)
            }
        };
        drop(lp_span);
        let bound = match bound_res {
            Ok(s) => {
                if wsp.is_none() || node.depth == total_steps {
                    stats.cold_solves += 1;
                    stats.cold_pivots += s.pivots;
                }
                s
            }
            Err(CoreError::Infeasible) => continue, // prune
            Err(e) => return Err(e),
        };

        // Global prune: strictly below the published incumbent can never
        // contain the final optimum. STRICT comparison, no gap — exact-tie
        // leaves and the optimum's ancestors always survive, whatever the
        // publication timing.
        if bound.objective < g_best.get() {
            continue;
        }
        // Local prune: the sequential gap rule against the subtree-local
        // incumbent (see the function docs for the near-tie caveat).
        let cutoff = local_best_obj + opts.gap_tol * (1.0 + local_best_obj.abs());
        if bound.objective <= cutoff {
            continue;
        }

        if node.depth == total_steps {
            // Leaf: the spec *is* the assignment, so the bound is exact.
            if bound.objective > local_best_obj {
                debug_assert!(assignment_from(dims, &node.partial)
                    .validate(system)
                    .is_ok());
                local_best_obj = bound.objective;
                g_best.offer(bound.objective);
                local_best = Some(SubtreeBest {
                    solve: bound,
                    partial: node.partial,
                });
            }
            continue;
        }

        // Branch on the next position — byte-identical child order to the
        // sequential solver (worst level pushed first, LIFO pops lex-first).
        let (k, sv) = position(dims, node.depth);
        let n_levels = system.classes[k.0].tuf.num_levels();
        let min_q = if opts.symmetry_breaking {
            symmetry_floor(dims, &node.partial, k, sv)
        } else {
            1
        };
        for q in (min_q..=n_levels).rev() {
            let mut partial = node.partial.clone();
            partial[dims.phi_idx(k, sv)] = Some(q);
            stack.push(Node {
                partial,
                depth: node.depth + 1,
            });
        }
    }
    Ok(local_best)
}

/// The deterministic parallel search: same seeds as [`solve_bb_seq`], then
/// a lexicographic frontier of subtree roots solved by scoped worker
/// threads (one warm-start workspace each), finished by a canonical
/// reduction that scans subtree results in lexicographic order.
fn solve_bb_parallel(
    pool: &mut WorkspacePool,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    opts: &SolverConfig,
    ctl: SearchCtl<'_>,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let total_steps = dims.classes * dims.total_servers;
    let mut stats = SolverStats::default();

    // Seed phase: identical to the sequential solver. The loosest
    // assignment is validated once here; the uniform heuristic tightens
    // the incumbent when it succeeds.
    let loosest = LevelAssignment::loosest(system, &dims);
    let mut best_solve =
        crate::formulate::solve_fixed_levels_with(system, rates, slot, &loosest, &opts.lp)?;
    stats.cold_solves += 1;
    stats.cold_pivots += best_solve.pivots;
    let mut best_assignment = loosest;
    let mut seed_cache = pool.take_matching(&dims);
    if let Ok(u) = solve_uniform_levels_in(&mut seed_cache, system, rates, slot, &opts.lp) {
        stats.cold_solves += u.stats.cold_solves;
        stats.cold_pivots += u.stats.cold_pivots;
        if u.solve.objective > best_solve.objective {
            best_solve = u.solve;
            best_assignment = u.assignment;
        }
    }
    if let Some(w) = seed_cache {
        pool.release(w);
    }

    // Frontier: all partials at the smallest uniform depth whose
    // lexicographic enumeration (honoring symmetry floors) yields at least
    // `4·threads` subtree roots — enough oversubscription that the atomic
    // index queue load-balances uneven subtrees. No LP is solved here;
    // workers bound every root.
    let target = 4 * opts.threads;
    let mut frontier: Vec<Vec<Option<usize>>> = vec![vec![None; dims.phi_len()]];
    let mut frontier_depth = 0usize;
    while frontier_depth < total_steps && frontier.len() < target {
        let (k, sv) = position(&dims, frontier_depth);
        let n_levels = system.classes[k.0].tuf.num_levels();
        let mut next = Vec::with_capacity(frontier.len() * n_levels);
        for partial in &frontier {
            let min_q = if opts.symmetry_breaking {
                symmetry_floor(&dims, partial, k, sv)
            } else {
                1
            };
            for q in min_q..=n_levels {
                let mut child = partial.clone();
                child[dims.phi_idx(k, sv)] = Some(q);
                next.push(child);
            }
        }
        frontier = next;
        frontier_depth += 1;
    }
    let n_sub = frontier.len();
    let workers = opts.threads.min(n_sub).max(1);
    stats.subtrees = n_sub;
    stats.threads_used = workers;

    // Per-worker warm-start workspaces, drawn from the pool so a ladder or
    // driver that solves slot after slot reuses the assembled LPs.
    let mut worker_ws: Vec<Option<SpecWorkspace>> = Vec::with_capacity(workers);
    if opts.incremental {
        let root_partial = vec![None; dims.phi_len()];
        let mut root_spec = Vec::with_capacity(dims.phi_len());
        spec_for_into(system, &dims, &root_partial, &mut root_spec);
        for _ in 0..workers {
            worker_ws.push(Some(
                pool.acquire(system, rates, slot, &dims, &root_spec, &opts.lp)?,
            ));
        }
    } else {
        worker_ws.resize_with(workers, || None);
    }

    // Racing coordinators supply the incumbent cell; standalone solves
    // own a local one. Either way the cell is seeded with the root
    // incumbent so the strict global prune is live from the first node.
    let g_best_local = IncumbentCell::new(best_solve.objective);
    let g_best: &IncumbentCell = match ctl.shared {
        Some(cell) => {
            cell.offer(best_solve.objective);
            cell
        }
        None => &g_best_local,
    };
    let queue = WorkQueue::new(frontier.len());
    let budget = BudgetCounter::new();
    let truncated = Flag::new();
    let failed = Flag::new();
    let seed_objective = best_solve.objective;

    type SubtreeOutcome = (usize, Result<Option<SubtreeBest>, CoreError>);
    let worker_returns: Vec<(Vec<SubtreeOutcome>, Option<SpecWorkspace>, SolverStats)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = worker_ws
                .into_iter()
                .map(|ws| {
                    let dims = &dims;
                    let frontier = &frontier;
                    let queue = &queue;
                    let budget = &budget;
                    let truncated = &truncated;
                    let failed = &failed;
                    scope.spawn(move || {
                        let mut ws = ws;
                        let mut spec_buf: Vec<(f64, f64)> = Vec::with_capacity(dims.phi_len());
                        let mut wstats = SolverStats::default();
                        let mut outcomes: Vec<SubtreeOutcome> = Vec::new();
                        while let Some(i) = queue.claim() {
                            if failed.is_raised() {
                                break;
                            }
                            let res = solve_subtree(
                                ws.as_mut(),
                                system,
                                rates,
                                slot,
                                dims,
                                opts,
                                ctl,
                                Node {
                                    partial: frontier[i].clone(),
                                    depth: frontier_depth,
                                },
                                seed_objective,
                                g_best,
                                budget,
                                truncated,
                                &mut spec_buf,
                                &mut wstats,
                            );
                            let hard_error = res.is_err();
                            outcomes.push((i, res));
                            if hard_error {
                                failed.raise();
                                break;
                            }
                        }
                        (outcomes, ws, wstats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| CoreError::WorkerPanic))
                .collect::<Result<Vec<_>, CoreError>>()
        })?;

    // Canonical reduction: merge worker telemetry, then scan subtree
    // results in lexicographic index order accepting strict improvements
    // over the seed — the same (objective, lexicographically-first
    // assignment) the sequential pass computes.
    let mut outcomes: Vec<SubtreeOutcome> = Vec::with_capacity(n_sub);
    for (sub, ws, wstats) in worker_returns {
        if let Some(w) = ws {
            pool.release(w);
        }
        stats.merge(&wstats);
        outcomes.extend(sub);
    }
    outcomes.sort_by_key(|(i, _)| *i);
    for (_, res) in outcomes {
        match res {
            Err(e) => return Err(e),
            Ok(Some(b)) => {
                if b.solve.objective > best_solve.objective {
                    best_assignment = assignment_from(&dims, &b.partial);
                    best_solve = b.solve;
                }
            }
            Ok(None) => {}
        }
    }

    let nodes = stats.nodes_explored;
    Ok(MultilevelResult {
        solve: best_solve,
        assignment: best_assignment,
        nodes,
        proven_optimal: !truncated.is_raised(),
        stats,
    })
}

/// Smallest level index `q` allowed for `(k, sv)` under the lexicographic
/// symmetry-breaking rule: within a data center, each server's level tuple
/// must be ≥ the previous server's tuple. If the tuples are strictly
/// ordered already on an earlier class, any level is allowed.
fn symmetry_floor(dims: &Dims, partial: &[Option<usize>], k: ClassId, sv: usize) -> usize {
    let l = dims.dc_of_server(sv);
    let first_in_dc = dims.server_offset[l.0];
    if sv == first_in_dc {
        return 1;
    }
    let prev = sv - 1;
    // Compare tuple prefixes (classes 0..k) of prev vs current server.
    for kc in 0..k.0 {
        let cur = partial[dims.phi_idx(ClassId(kc), sv)];
        let pre = partial[dims.phi_idx(ClassId(kc), prev)];
        match (pre, cur) {
            (Some(a), Some(b)) if b > a => return 1, // already strictly greater
            (Some(a), Some(b)) if b == a => continue, // equal so far
            _ => return 1,                           // incomparable (shouldn't happen in our order)
        }
    }
    partial[dims.phi_idx(k, prev)].unwrap_or(1)
}

/// Heuristic solver: one level per (class, data center), identical across
/// that data center's servers. Enumerates all `Π_k n_k^L` combinations —
/// polynomial in the server count, exponential only in `K·L` (tiny).
pub fn solve_uniform_levels(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
) -> Result<MultilevelResult, CoreError> {
    solve_uniform_levels_with(system, rates, slot, &SolveOptions::default())
}

/// [`solve_uniform_levels`] with explicit LP solver options.
pub fn solve_uniform_levels_with(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    lp_opts: &SolveOptions,
) -> Result<MultilevelResult, CoreError> {
    let mut cache = None;
    solve_uniform_levels_in(&mut cache, system, rates, slot, lp_opts)
}

/// The uniform-level assignment a level-per-(class, dc) counter describes.
fn uniform_assignment(dims: &Dims, counter: &[usize]) -> LevelAssignment {
    let ll = dims.dcs;
    let mut a = LevelAssignment::uniform(dims, 1);
    for (p, &q) in counter.iter().enumerate() {
        let k = ClassId(p / ll);
        let l = p % ll;
        for i in 0..dims.servers_per_dc[l] {
            a.set(k, dims.server(DcId(l), i), Some(q));
        }
    }
    a
}

/// [`solve_uniform_levels_with`] against a caller-owned workspace cache:
/// every combination is a coefficient patch of one assembled LP rather
/// than a from-scratch model build. Solves stay on the cold full path, so
/// results are identical to the per-call builder's.
pub(crate) fn solve_uniform_levels_in(
    cache: &mut Option<SpecWorkspace>,
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    lp_opts: &SolveOptions,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let kk = dims.classes;
    let ll = dims.dcs;
    let positions = kk * ll;
    let radix: Vec<usize> = (0..positions)
        .map(|p| system.classes[p / ll].tuf.num_levels())
        .collect();

    let mut stats = SolverStats::default();
    let mut best: Option<(LevelSolve, Vec<usize>)> = None;
    let mut counter = vec![1usize; positions]; // levels are 1-based
    let mut spec_buf = vec![(0.0, 0.0); dims.phi_len()];
    let fill = |counter: &[usize], spec: &mut [(f64, f64)]| {
        for (p, &q) in counter.iter().enumerate() {
            let k = p / ll;
            let l = p % ll;
            let tuf = &system.classes[k].tuf;
            let val = (tuf.utility_of_level(q), tuf.deadline_of_level(q));
            for i in 0..dims.servers_per_dc[l] {
                spec[dims.phi_idx(ClassId(k), dims.server(DcId(l), i))] = val;
            }
        }
    };

    fill(&counter, &mut spec_buf);
    ensure_spec_workspace(cache, system, rates, slot, &dims, &spec_buf, lp_opts)?;

    let mut lps = 0usize;
    loop {
        // Patch the workspace to this combination. Levels come straight
        // from the odometer, so they are valid by construction (checked in
        // debug builds only — the per-combo validation this loop used to
        // pay is hoisted out of the hot path).
        fill(&counter, &mut spec_buf);
        debug_assert!(uniform_assignment(&dims, &counter).validate(system).is_ok());
        // palb:allow(unwrap): the workspace was installed by the preceding branch
        let w = cache.as_mut().expect("workspace installed above");
        w.apply_spec(&spec_buf);
        lps += 1;
        match w.solve_cold(lp_opts) {
            Ok(s) => {
                stats.cold_solves += 1;
                stats.cold_pivots += s.pivots;
                if best
                    .as_ref()
                    .map_or(true, |(b, _)| s.objective > b.objective)
                {
                    best = Some((s, counter.clone()));
                }
            }
            Err(CoreError::Infeasible) => {}
            Err(e) => return Err(e),
        }

        // Odometer increment.
        let mut p = 0;
        loop {
            if p == positions {
                let (solve, best_counter) = best.ok_or(CoreError::Infeasible)?;
                stats.nodes_explored = lps;
                return Ok(MultilevelResult {
                    solve,
                    assignment: uniform_assignment(&dims, &best_counter),
                    nodes: lps,
                    proven_optimal: false, // optimal only within the family
                    stats,
                });
            }
            counter[p] += 1;
            if counter[p] <= radix[p] {
                break;
            }
            counter[p] = 1;
            p += 1;
        }
    }
}

/// Brute-force oracle: enumerates *every* per-(class, server) level
/// combination. Exponential; guarded to tiny systems.
pub fn solve_exhaustive(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let positions = dims.phi_len();
    let radix: Vec<usize> = (0..positions)
        .map(|idx| system.classes[idx / dims.total_servers].tuf.num_levels())
        .collect();
    let combos: f64 = radix.iter().map(|&r| r as f64).product();
    if combos > 1e6 {
        return Err(CoreError::Model(format!(
            "exhaustive enumeration over {combos} combinations refused"
        )));
    }

    let mut stats = SolverStats::default();
    let mut best: Option<(LevelSolve, LevelAssignment)> = None;
    let mut counter = vec![1usize; positions];
    let mut lps = 0usize;
    loop {
        let mut a = LevelAssignment::uniform(&dims, 1);
        for (idx, &q) in counter.iter().enumerate() {
            let k = ClassId(idx / dims.total_servers);
            let sv = idx % dims.total_servers;
            a.set(k, sv, Some(q));
        }
        lps += 1;
        match crate::formulate::solve_fixed_levels(system, rates, slot, &a) {
            Ok(s) => {
                stats.cold_solves += 1;
                stats.cold_pivots += s.pivots;
                if best
                    .as_ref()
                    .map_or(true, |(b, _)| s.objective > b.objective)
                {
                    best = Some((s, a));
                }
            }
            Err(CoreError::Infeasible) => {}
            Err(e) => return Err(e),
        }
        let mut p = 0;
        loop {
            if p == positions {
                let (solve, assignment) = best.ok_or(CoreError::Infeasible)?;
                stats.nodes_explored = lps;
                return Ok(MultilevelResult {
                    solve,
                    assignment,
                    nodes: lps,
                    proven_optimal: true,
                    stats,
                });
            }
            counter[p] += 1;
            if counter[p] <= radix[p] {
                break;
            }
            counter[p] = 1;
            p += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::{presets, DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
    use palb_tuf::StepTuf;

    /// A miniature two-level system small enough for the exhaustive oracle:
    /// 1 front-end, 1 class, 1 data center with 2 servers.
    fn tiny(two_servers: bool) -> System {
        System {
            classes: vec![RequestClass {
                name: "r".into(),
                // Level 1: $4.50 within 1/40 (M/M/1 margin 40 req); level
                // 2: $4.00 within 1/5 (margin 5). Full server rate 100.
                // The narrow utility gap vs the wide capacity gap makes the
                // optimal level assignment load-dependent: level 1 pays
                // per-request but caps a server at 60, level 2 caps at 95.
                tuf: StepTuf::two_level(4.5, 1.0 / 40.0, 4.0, 1.0 / 5.0).unwrap(),
                transfer_cost_per_mile: 0.0,
            }],
            front_ends: vec![FrontEnd { name: "fe".into() }],
            data_centers: vec![DataCenter {
                name: "dc".into(),
                servers: if two_servers { 2 } else { 1 },
                capacity: 1.0,
                service_rate: vec![100.0],
                energy_per_request: vec![1.0],
                pue: 1.0,
                prices: PriceSchedule::flat(0.1, 24),
            }],
            distance: vec![vec![0.0]],
            slot_length: 1.0,
        }
    }

    #[test]
    fn bb_matches_exhaustive_on_tiny_system() {
        let sys = tiny(true);
        for offered in [30.0, 90.0, 150.0, 250.0] {
            let rates = vec![vec![offered]];
            let ex = solve_exhaustive(&sys, &rates, 0).unwrap();
            let bb = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
            assert!(bb.proven_optimal);
            assert!(
                (bb.solve.objective - ex.solve.objective).abs()
                    < 1e-5 * (1.0 + ex.solve.objective.abs()),
                "offered {offered}: bb {} vs exhaustive {}",
                bb.solve.objective,
                ex.solve.objective
            );
        }
    }

    #[test]
    fn level_mixing_beats_uniform_when_capacity_is_tight() {
        // At 150 offered: uniform level-1 serves 120 × $4.4 = $528, uniform
        // level-2 serves 150 × $3.9 = $585, but one server at each level
        // serves 60 × $4.4 + 90 × $3.9 = $615 — mixing strictly wins.
        let sys = tiny(true);
        let rates = vec![vec![150.0]];
        let ex = solve_exhaustive(&sys, &rates, 0).unwrap();
        let uni = solve_uniform_levels(&sys, &rates, 0).unwrap();
        // The exhaustive optimum mixes levels across the two servers.
        let q0 = ex.assignment.get(ClassId(0), 0).unwrap();
        let q1 = ex.assignment.get(ClassId(0), 1).unwrap();
        assert_ne!(q0, q1, "expected a mixed-level optimum");
        assert!(
            ex.solve.objective > uni.solve.objective + 1e-6,
            "mixed {} should beat uniform {}",
            ex.solve.objective,
            uni.solve.objective
        );
    }

    #[test]
    fn light_load_prefers_top_level_everywhere() {
        let sys = tiny(true);
        let rates = vec![vec![30.0]];
        let bb = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
        assert_eq!(bb.assignment.get(ClassId(0), 0), Some(1));
        assert_eq!(bb.assignment.get(ClassId(0), 1), Some(1));
        // All 30 requests at $4.5 minus energy 30 × $0.1 = $132.
        assert!((bb.solve.objective - (135.0 - 3.0)).abs() < 1e-4);
    }

    #[test]
    fn symmetry_breaking_preserves_optimality() {
        let sys = tiny(true);
        for offered in [90.0, 150.0] {
            let rates = vec![vec![offered]];
            let with = solve_bb(
                &sys,
                &rates,
                0,
                &SolverConfig::exact().symmetry_breaking(true),
            )
            .unwrap();
            let without = solve_bb(
                &sys,
                &rates,
                0,
                &SolverConfig::exact().symmetry_breaking(false),
            )
            .unwrap();
            assert!(
                (with.solve.objective - without.solve.objective).abs()
                    < 1e-5 * (1.0 + with.solve.objective.abs())
            );
            assert!(
                with.nodes <= without.nodes,
                "{} > {}",
                with.nodes,
                without.nodes
            );
        }
    }

    #[test]
    fn bb_solves_section_vii_slot() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let bb = solve_bb(&sys, &rates, 13, &SolverConfig::exact()).unwrap();
        assert!(bb.proven_optimal, "explored {} nodes", bb.nodes);
        assert!(bb.solve.objective > 0.0);
        // Uniform heuristic can't beat the exact optimum.
        let uni = solve_uniform_levels(&sys, &rates, 13).unwrap();
        assert!(uni.solve.objective <= bb.solve.objective + 1e-6 * bb.solve.objective);
    }

    #[test]
    fn node_budget_truncates_gracefully() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let bb = solve_bb(&sys, &rates, 13, &SolverConfig::exact().max_nodes(3)).unwrap();
        assert!(!bb.proven_optimal);
        // Still returns a valid incumbent.
        assert!(bb.solve.objective.is_finite());
    }

    /// Bitwise comparison of two multilevel results: objective, full
    /// dispatch vector, and assignment.
    fn assert_bitwise_equal(a: &MultilevelResult, b: &MultilevelResult, label: &str) {
        assert_eq!(
            a.solve.objective.to_bits(),
            b.solve.objective.to_bits(),
            "{label}: objective {} vs {}",
            a.solve.objective,
            b.solve.objective
        );
        assert_eq!(
            a.solve.dispatch, b.solve.dispatch,
            "{label}: dispatch differs"
        );
        assert_eq!(a.assignment, b.assignment, "{label}: assignment differs");
    }

    #[test]
    fn incremental_bb_matches_cold_bitwise_on_tiny_grid() {
        // The incremental mode only warm-starts interior bounds; leaves and
        // incumbent seeds take the cold full path, so the incumbent must be
        // bit-for-bit identical, not merely close.
        let sys = tiny(true);
        let cold_opts = SolverConfig::exact().incremental(false);
        for offered in [30.0, 90.0, 150.0, 250.0] {
            let rates = vec![vec![offered]];
            let inc = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
            let cold = solve_bb(&sys, &rates, 0, &cold_opts).unwrap();
            assert_bitwise_equal(&inc, &cold, &format!("offered {offered}"));
            assert_eq!(inc.nodes, cold.nodes, "pruning sequence diverged");
        }
    }

    #[test]
    fn incremental_bb_matches_cold_bitwise_on_section_vii() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let inc = solve_bb(&sys, &rates, 13, &SolverConfig::exact()).unwrap();
        let cold = solve_bb(&sys, &rates, 13, &SolverConfig::exact().incremental(false)).unwrap();
        assert_bitwise_equal(&inc, &cold, "section vii slot 13");
        // The incremental run actually warm-starts (and mostly sticks).
        assert!(inc.stats.warm_attempts > 0, "no warm attempts recorded");
        assert!(inc.stats.warm_hits > 0, "no warm hits recorded");
        assert_eq!(cold.stats.warm_attempts, 0);
        // Every node answered some LP: nodes explored shows up in stats.
        assert_eq!(inc.stats.nodes_explored, inc.nodes);
    }

    #[test]
    fn warm_bounds_mostly_stick_and_save_pivots() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let inc = solve_bb(&sys, &rates, 13, &SolverConfig::exact()).unwrap();
        assert!(
            inc.stats.warm_hit_rate() > 0.5,
            "warm hit rate {:.2} too low",
            inc.stats.warm_hit_rate()
        );
        assert!(
            inc.stats.pivots_saved() > 0.0,
            "warm starting saved no pivots: {:?}",
            inc.stats
        );
    }

    #[test]
    fn exhaustive_refuses_large_systems() {
        let sys = presets::section_vii(); // 2^24 combos
        let rates = vec![vec![1.0, 1.0]];
        assert!(matches!(
            solve_exhaustive(&sys, &rates, 0),
            Err(CoreError::Model(_))
        ));
    }

    #[test]
    fn parallel_bb_matches_sequential_bitwise() {
        // The determinism contract: objective bits, dispatch, assignment,
        // and proven_optimal are identical at every thread count.
        let sys = tiny(true);
        for offered in [30.0, 90.0, 150.0, 250.0] {
            let rates = vec![vec![offered]];
            let seq = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
            for threads in [2, 4] {
                let par =
                    solve_bb(&sys, &rates, 0, &SolverConfig::exact().threads(threads)).unwrap();
                assert_bitwise_equal(&par, &seq, &format!("offered {offered} t{threads}"));
                assert_eq!(par.proven_optimal, seq.proven_optimal);
                assert_eq!(par.stats.threads_used.min(threads), par.stats.threads_used);
                assert!(par.stats.subtrees >= par.stats.threads_used);
            }
        }
    }

    #[test]
    fn parallel_bb_matches_sequential_on_section_vii() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let seq = solve_bb(&sys, &rates, 13, &SolverConfig::exact()).unwrap();
        for threads in [2, 4] {
            let par = solve_bb(&sys, &rates, 13, &SolverConfig::exact().threads(threads)).unwrap();
            assert_bitwise_equal(&par, &seq, &format!("section vii t{threads}"));
            assert!(par.proven_optimal);
        }
    }

    #[test]
    fn parallel_bb_without_incremental_matches_too() {
        let sys = tiny(true);
        let rates = vec![vec![150.0]];
        let opts = SolverConfig::exact().incremental(false);
        let seq = solve_bb(&sys, &rates, 0, &opts).unwrap();
        let par = solve_bb(&sys, &rates, 0, &opts.clone().threads(3)).unwrap();
        assert_bitwise_equal(&par, &seq, "non-incremental t3");
    }

    #[test]
    fn solver_types_cross_threads() {
        // The parallel search moves workspaces into scoped threads and
        // shares the system/rates by reference; keep that statically true.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<SpecWorkspace>();
        assert_send::<CoreError>();
        assert_send::<LevelSolve>();
        assert_sync::<System>();
        assert_sync::<Dims>();
        assert_sync::<SolverConfig>();
    }

    #[test]
    fn one_level_tufs_reduce_to_single_leaf() {
        let sys = presets::section_v();
        let rates = presets::section_v_low_arrivals();
        let bb = solve_bb(&sys, &rates, 0, &SolverConfig::exact()).unwrap();
        assert!(bb.proven_optimal);
        // With n = 1 the tree has exactly one complete assignment; the
        // node count stays tiny (root chain, no real branching).
        let lp = crate::formulate::solve_fixed_levels(
            &sys,
            &rates,
            0,
            &LevelAssignment::uniform(&Dims::of(&sys), 1),
        )
        .unwrap();
        assert!((bb.solve.objective - lp.objective).abs() < 1e-6 * (1.0 + lp.objective.abs()));
    }
}
