//! Solvers for multi-level step-downward TUFs.
//!
//! With `n ≥ 2` utility levels the paper's objective is a **MINLP**: each
//! (class, server) VM earns the utility of whichever level its mean delay
//! achieves. The paper reformulates the discontinuity with big-M
//! constraints and ships the result to CPLEX/AIMMS; this module solves the
//! *same* discrete problem exactly by branch-and-bound over the per-VM
//! level choices, using the fixed-level LP of [`crate::formulate`] for
//! node bounds — and provides two cheaper alternatives:
//!
//! * [`solve_uniform_levels`] — restricts every server of a data center to
//!   one level per class (`nᴷᴸ` LPs; polynomial in the server count), and
//! * [`solve_exhaustive`] — brute force over all per-VM choices, usable
//!   only as a test oracle on tiny systems.
//!
//! The per-server tree is what reproduces the paper's Fig. 11: its solve
//! time grows exponentially with the number of servers per data center,
//! while the symmetry-reduced / uniform solvers stay polynomial (our
//! ablation).

use palb_cluster::{ClassId, System};
use palb_lp::SolveOptions;

use crate::error::CoreError;
use crate::formulate::{solve_spec_with, LevelAssignment, LevelSolve};
use crate::model::Dims;

/// Options for [`solve_bb`].
#[derive(Debug, Clone)]
pub struct BbOptions {
    /// Hard cap on explored nodes (safety valve; the result is still the
    /// best incumbent, flagged not proven optimal).
    pub max_nodes: usize,
    /// Exploit server homogeneity: only explore level assignments whose
    /// per-server level tuples are lexicographically non-decreasing within
    /// each data center. Lossless and usually exponentially cheaper.
    pub symmetry_breaking: bool,
    /// Relative optimality gap below which a node is pruned.
    pub gap_tol: f64,
    /// LP solver options used for every node bound (and for the incumbent
    /// seeds), so callers can impose per-solve iteration budgets.
    pub lp: SolveOptions,
}

impl Default for BbOptions {
    fn default() -> Self {
        BbOptions {
            max_nodes: 200_000,
            symmetry_breaking: true,
            gap_tol: 1e-7,
            lp: SolveOptions::default(),
        }
    }
}

/// Result of a multilevel solve.
#[derive(Debug, Clone)]
pub struct MultilevelResult {
    /// Best decision found.
    pub solve: LevelSolve,
    /// The level assignment achieving it.
    pub assignment: LevelAssignment,
    /// Branch-and-bound nodes (or LPs, for the enumerative solvers).
    pub nodes: usize,
    /// Whether optimality was proven (node budget not exhausted).
    pub proven_optimal: bool,
}

/// Builds the relaxation/assignment spec for a partial assignment:
/// assigned VMs use their level's (utility, deadline); unassigned VMs use
/// the optimistic mix (top utility, loosest deadline) that upper-bounds
/// every completion.
fn spec_for(
    system: &System,
    dims: &Dims,
    partial: &[Option<usize>],
) -> Vec<Option<(f64, f64)>> {
    (0..dims.phi_len())
        .map(|idx| {
            let k = idx / dims.total_servers;
            let tuf = &system.classes[k].tuf;
            match partial[idx] {
                Some(q) => Some((tuf.utility_of_level(q), tuf.deadline_of_level(q))),
                None => Some((tuf.max_utility(), tuf.final_deadline())),
            }
        })
        .collect()
}

fn assignment_from(dims: &Dims, partial: &[Option<usize>]) -> LevelAssignment {
    let mut a = LevelAssignment::uniform(dims, 1);
    for (k, sv) in dims.class_server_pairs() {
        let idx = dims.phi_idx(k, sv);
        a.set(k, sv, Some(partial[idx].expect("complete assignment")));
    }
    a
}

/// Branch-and-bound order: server-major, class-minor, so symmetry breaking
/// can compare whole per-server tuples.
fn position(dims: &Dims, step: usize) -> (ClassId, usize) {
    let sv = step / dims.classes;
    let k = step % dims.classes;
    (ClassId(k), sv)
}

/// Exact solver: branch-and-bound over per-(class, server) level choices.
pub fn solve_bb(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    opts: &BbOptions,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let total_steps = dims.classes * dims.total_servers;

    // Incumbent: the always-feasible loosest assignment, improved by the
    // uniform-level heuristic when it succeeds.
    let loosest = LevelAssignment::loosest(system, &dims);
    let mut best_solve =
        crate::formulate::solve_fixed_levels_with(system, rates, slot, &loosest, &opts.lp)?;
    let mut best_assignment = loosest;
    if let Ok(u) = solve_uniform_levels_with(system, rates, slot, &opts.lp) {
        if u.solve.objective > best_solve.objective {
            best_solve = u.solve;
            best_assignment = u.assignment;
        }
    }

    let mut nodes = 0usize;
    let mut truncated = false;

    // Depth-first stack of partial assignments (levels by phi index).
    struct Node {
        partial: Vec<Option<usize>>,
        depth: usize,
    }
    let mut stack = vec![Node { partial: vec![None; dims.phi_len()], depth: 0 }];

    while let Some(node) = stack.pop() {
        if nodes >= opts.max_nodes {
            truncated = true;
            break;
        }
        nodes += 1;

        // Bound: LP over the optimistic spec.
        let spec = spec_for(system, &dims, &node.partial);
        let bound = match solve_spec_with(system, rates, slot, &dims, &spec, &opts.lp) {
            Ok(s) => s,
            Err(CoreError::Infeasible) => continue, // prune
            Err(e) => return Err(e),
        };
        let cutoff =
            best_solve.objective + opts.gap_tol * (1.0 + best_solve.objective.abs());
        if bound.objective <= cutoff {
            continue; // prune: cannot beat the incumbent
        }

        if node.depth == total_steps {
            // Leaf: the spec *is* the assignment, so the bound is exact.
            if bound.objective > best_solve.objective {
                best_solve = bound;
                best_assignment = assignment_from(&dims, &node.partial);
            }
            continue;
        }

        // Branch on the next position.
        let (k, sv) = position(&dims, node.depth);
        let n_levels = system.classes[k.0].tuf.num_levels();
        let min_q = if opts.symmetry_breaking {
            symmetry_floor(&dims, &node.partial, k, sv)
        } else {
            1
        };
        // Push worst level first so the most promising child (q = 1, or
        // the symmetry floor) is explored first (LIFO stack).
        for q in (min_q..=n_levels).rev() {
            let mut partial = node.partial.clone();
            partial[dims.phi_idx(k, sv)] = Some(q);
            stack.push(Node { partial, depth: node.depth + 1 });
        }
    }

    Ok(MultilevelResult {
        solve: best_solve,
        assignment: best_assignment,
        nodes,
        proven_optimal: !truncated,
    })
}

/// Smallest level index `q` allowed for `(k, sv)` under the lexicographic
/// symmetry-breaking rule: within a data center, each server's level tuple
/// must be ≥ the previous server's tuple. If the tuples are strictly
/// ordered already on an earlier class, any level is allowed.
fn symmetry_floor(dims: &Dims, partial: &[Option<usize>], k: ClassId, sv: usize) -> usize {
    let l = dims.dc_of_server(sv);
    let first_in_dc = dims.server_offset[l.0];
    if sv == first_in_dc {
        return 1;
    }
    let prev = sv - 1;
    // Compare tuple prefixes (classes 0..k) of prev vs current server.
    for kc in 0..k.0 {
        let cur = partial[dims.phi_idx(ClassId(kc), sv)];
        let pre = partial[dims.phi_idx(ClassId(kc), prev)];
        match (pre, cur) {
            (Some(a), Some(b)) if b > a => return 1, // already strictly greater
            (Some(a), Some(b)) if b == a => continue, // equal so far
            _ => return 1, // incomparable (shouldn't happen in our order)
        }
    }
    partial[dims.phi_idx(k, prev)].unwrap_or(1)
}

/// Heuristic solver: one level per (class, data center), identical across
/// that data center's servers. Enumerates all `Π_k n_k^L` combinations —
/// polynomial in the server count, exponential only in `K·L` (tiny).
pub fn solve_uniform_levels(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
) -> Result<MultilevelResult, CoreError> {
    solve_uniform_levels_with(system, rates, slot, &SolveOptions::default())
}

/// [`solve_uniform_levels`] with explicit LP solver options.
pub fn solve_uniform_levels_with(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    lp_opts: &SolveOptions,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let kk = dims.classes;
    let ll = dims.dcs;
    let positions = kk * ll;
    let radix: Vec<usize> = (0..positions)
        .map(|p| system.classes[p / ll].tuf.num_levels())
        .collect();

    let mut best: Option<(LevelSolve, LevelAssignment)> = None;
    let mut counter = vec![1usize; positions]; // levels are 1-based
    let mut lps = 0usize;
    loop {
        // Build the assignment for this combination.
        let mut a = LevelAssignment::uniform(&dims, 1);
        for p in 0..positions {
            let k = ClassId(p / ll);
            let l = p % ll;
            for i in 0..dims.servers_per_dc[l] {
                a.set(k, dims.server(palb_cluster::DcId(l), i), Some(counter[p]));
            }
        }
        lps += 1;
        match crate::formulate::solve_fixed_levels_with(system, rates, slot, &a, lp_opts) {
            Ok(s) => {
                if best.as_ref().map_or(true, |(b, _)| s.objective > b.objective) {
                    best = Some((s, a));
                }
            }
            Err(CoreError::Infeasible) => {}
            Err(e) => return Err(e),
        }

        // Odometer increment.
        let mut p = 0;
        loop {
            if p == positions {
                let (solve, assignment) = best.ok_or(CoreError::Infeasible)?;
                return Ok(MultilevelResult {
                    solve,
                    assignment,
                    nodes: lps,
                    proven_optimal: false, // optimal only within the family
                });
            }
            counter[p] += 1;
            if counter[p] <= radix[p] {
                break;
            }
            counter[p] = 1;
            p += 1;
        }
    }
}

/// Brute-force oracle: enumerates *every* per-(class, server) level
/// combination. Exponential; guarded to tiny systems.
pub fn solve_exhaustive(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
) -> Result<MultilevelResult, CoreError> {
    let dims = Dims::of(system);
    let positions = dims.phi_len();
    let radix: Vec<usize> = (0..positions)
        .map(|idx| system.classes[idx / dims.total_servers].tuf.num_levels())
        .collect();
    let combos: f64 = radix.iter().map(|&r| r as f64).product();
    if combos > 1e6 {
        return Err(CoreError::Model(format!(
            "exhaustive enumeration over {combos} combinations refused"
        )));
    }

    let mut best: Option<(LevelSolve, LevelAssignment)> = None;
    let mut counter = vec![1usize; positions];
    let mut lps = 0usize;
    loop {
        let mut a = LevelAssignment::uniform(&dims, 1);
        for (idx, &q) in counter.iter().enumerate() {
            let k = ClassId(idx / dims.total_servers);
            let sv = idx % dims.total_servers;
            a.set(k, sv, Some(q));
        }
        lps += 1;
        match crate::formulate::solve_fixed_levels(system, rates, slot, &a) {
            Ok(s) => {
                if best.as_ref().map_or(true, |(b, _)| s.objective > b.objective) {
                    best = Some((s, a));
                }
            }
            Err(CoreError::Infeasible) => {}
            Err(e) => return Err(e),
        }
        let mut p = 0;
        loop {
            if p == positions {
                let (solve, assignment) = best.ok_or(CoreError::Infeasible)?;
                return Ok(MultilevelResult {
                    solve,
                    assignment,
                    nodes: lps,
                    proven_optimal: true,
                });
            }
            counter[p] += 1;
            if counter[p] <= radix[p] {
                break;
            }
            counter[p] = 1;
            p += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::{presets, DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
    use palb_tuf::StepTuf;

    /// A miniature two-level system small enough for the exhaustive oracle:
    /// 1 front-end, 1 class, 1 data center with 2 servers.
    fn tiny(two_servers: bool) -> System {
        System {
            classes: vec![RequestClass {
                name: "r".into(),
                // Level 1: $4.50 within 1/40 (M/M/1 margin 40 req); level
                // 2: $4.00 within 1/5 (margin 5). Full server rate 100.
                // The narrow utility gap vs the wide capacity gap makes the
                // optimal level assignment load-dependent: level 1 pays
                // per-request but caps a server at 60, level 2 caps at 95.
                tuf: StepTuf::two_level(4.5, 1.0 / 40.0, 4.0, 1.0 / 5.0).unwrap(),
                transfer_cost_per_mile: 0.0,
            }],
            front_ends: vec![FrontEnd { name: "fe".into() }],
            data_centers: vec![DataCenter {
                name: "dc".into(),
                servers: if two_servers { 2 } else { 1 },
                capacity: 1.0,
                service_rate: vec![100.0],
                energy_per_request: vec![1.0],
                pue: 1.0,
                prices: PriceSchedule::flat(0.1, 24),
            }],
            distance: vec![vec![0.0]],
            slot_length: 1.0,
        }
    }

    #[test]
    fn bb_matches_exhaustive_on_tiny_system() {
        let sys = tiny(true);
        for offered in [30.0, 90.0, 150.0, 250.0] {
            let rates = vec![vec![offered]];
            let ex = solve_exhaustive(&sys, &rates, 0).unwrap();
            let bb = solve_bb(&sys, &rates, 0, &BbOptions::default()).unwrap();
            assert!(bb.proven_optimal);
            assert!(
                (bb.solve.objective - ex.solve.objective).abs()
                    < 1e-5 * (1.0 + ex.solve.objective.abs()),
                "offered {offered}: bb {} vs exhaustive {}",
                bb.solve.objective,
                ex.solve.objective
            );
        }
    }

    #[test]
    fn level_mixing_beats_uniform_when_capacity_is_tight() {
        // At 150 offered: uniform level-1 serves 120 × $4.4 = $528, uniform
        // level-2 serves 150 × $3.9 = $585, but one server at each level
        // serves 60 × $4.4 + 90 × $3.9 = $615 — mixing strictly wins.
        let sys = tiny(true);
        let rates = vec![vec![150.0]];
        let ex = solve_exhaustive(&sys, &rates, 0).unwrap();
        let uni = solve_uniform_levels(&sys, &rates, 0).unwrap();
        // The exhaustive optimum mixes levels across the two servers.
        let q0 = ex.assignment.get(ClassId(0), 0).unwrap();
        let q1 = ex.assignment.get(ClassId(0), 1).unwrap();
        assert_ne!(q0, q1, "expected a mixed-level optimum");
        assert!(
            ex.solve.objective > uni.solve.objective + 1e-6,
            "mixed {} should beat uniform {}",
            ex.solve.objective,
            uni.solve.objective
        );
    }

    #[test]
    fn light_load_prefers_top_level_everywhere() {
        let sys = tiny(true);
        let rates = vec![vec![30.0]];
        let bb = solve_bb(&sys, &rates, 0, &BbOptions::default()).unwrap();
        assert_eq!(bb.assignment.get(ClassId(0), 0), Some(1));
        assert_eq!(bb.assignment.get(ClassId(0), 1), Some(1));
        // All 30 requests at $4.5 minus energy 30 × $0.1 = $132.
        assert!((bb.solve.objective - (135.0 - 3.0)).abs() < 1e-4);
    }

    #[test]
    fn symmetry_breaking_preserves_optimality() {
        let sys = tiny(true);
        for offered in [90.0, 150.0] {
            let rates = vec![vec![offered]];
            let with = solve_bb(
                &sys,
                &rates,
                0,
                &BbOptions { symmetry_breaking: true, ..BbOptions::default() },
            )
            .unwrap();
            let without = solve_bb(
                &sys,
                &rates,
                0,
                &BbOptions { symmetry_breaking: false, ..BbOptions::default() },
            )
            .unwrap();
            assert!(
                (with.solve.objective - without.solve.objective).abs()
                    < 1e-5 * (1.0 + with.solve.objective.abs())
            );
            assert!(with.nodes <= without.nodes, "{} > {}", with.nodes, without.nodes);
        }
    }

    #[test]
    fn bb_solves_section_vii_slot() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let bb = solve_bb(&sys, &rates, 13, &BbOptions::default()).unwrap();
        assert!(bb.proven_optimal, "explored {} nodes", bb.nodes);
        assert!(bb.solve.objective > 0.0);
        // Uniform heuristic can't beat the exact optimum.
        let uni = solve_uniform_levels(&sys, &rates, 13).unwrap();
        assert!(uni.solve.objective <= bb.solve.objective + 1e-6 * bb.solve.objective);
    }

    #[test]
    fn node_budget_truncates_gracefully() {
        let sys = presets::section_vii();
        let rates = vec![vec![40_000.0, 35_000.0]];
        let bb = solve_bb(
            &sys,
            &rates,
            13,
            &BbOptions { max_nodes: 3, ..BbOptions::default() },
        )
        .unwrap();
        assert!(!bb.proven_optimal);
        // Still returns a valid incumbent.
        assert!(bb.solve.objective.is_finite());
    }

    #[test]
    fn exhaustive_refuses_large_systems() {
        let sys = presets::section_vii(); // 2^24 combos
        let rates = vec![vec![1.0, 1.0]];
        assert!(matches!(
            solve_exhaustive(&sys, &rates, 0),
            Err(CoreError::Model(_))
        ));
    }

    #[test]
    fn one_level_tufs_reduce_to_single_leaf() {
        let sys = presets::section_v();
        let rates = presets::section_v_low_arrivals();
        let bb = solve_bb(&sys, &rates, 0, &BbOptions::default()).unwrap();
        assert!(bb.proven_optimal);
        // With n = 1 the tree has exactly one complete assignment; the
        // node count stays tiny (root chain, no real branching).
        let lp = crate::formulate::solve_fixed_levels(
            &sys,
            &rates,
            0,
            &LevelAssignment::uniform(&Dims::of(&sys), 1),
        )
        .unwrap();
        assert!(
            (bb.solve.objective - lp.objective).abs() < 1e-6 * (1.0 + lp.objective.abs())
        );
    }
}
