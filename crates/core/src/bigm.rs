//! The paper-literal continuous path: big-M reformulation + nonlinear
//! solver.
//!
//! The paper does not branch-and-bound; it rewrites the step-TUF objective
//! with an earned-utility variable `U_{k,i,l}` pinned by the big-M
//! constraint series (Eqs. 11–13/17) and hands the resulting *continuous*
//! nonlinear program to CPLEX/AIMMS. This module reproduces that exact
//! pipeline with our own substrate:
//!
//! 1. assemble the NLP — variables `λ`, `φ` and `u` per VM, the bilinear
//!    profit objective, the M/M/1 delay inside the residuals, and the
//!    big-M series from [`palb_tuf::bigm`];
//! 2. solve with the augmented-Lagrangian method from [`palb_nlp`];
//! 3. **snap** each relaxed `u` to its nearest TUF level and re-solve the
//!    fixed-level LP to polish the continuous solution into an exactly
//!    feasible decision (commercial solvers do the analogous rounding
//!    internally).
//!
//! The exact branch-and-bound of [`crate::multilevel`] remains the primary
//! optimizer; benches compare the two paths' quality and runtime.

use palb_cluster::{ClassId, FrontEndId, System};
use palb_nlp::{solve_augmented_lagrangian, BoxBounds, ConstrainedNlp, PenaltyOptions};
use palb_tuf::bigm::{constraint_series, recommended_big_m};

use palb_num::is_zero;

use crate::error::CoreError;
use crate::formulate::{solve_fixed_levels, LevelAssignment, LevelSolve};
use crate::model::Dims;

/// Options for the big-M continuous solve.
#[derive(Debug, Clone)]
pub struct BigMOptions {
    /// The paper's `δ` ("a constant time value which is small enough").
    pub delta: f64,
    /// Penalty/augmented-Lagrangian outer options.
    pub penalty: PenaltyOptions,
}

impl Default for BigMOptions {
    fn default() -> Self {
        let mut penalty = PenaltyOptions::default();
        penalty.inner.max_iters = 600;
        penalty.max_outer = 8;
        BigMOptions {
            delta: 1e-6,
            penalty,
        }
    }
}

/// Result of the big-M path.
#[derive(Debug, Clone)]
pub struct BigMResult {
    /// Objective of the raw continuous solution (before snapping).
    pub raw_objective: f64,
    /// Worst constraint violation of the raw solution.
    pub raw_violation: f64,
    /// The level assignment obtained by snapping each `u` to its nearest
    /// TUF level.
    pub assignment: LevelAssignment,
    /// The polished (LP re-solved) decision under that assignment.
    pub polished: LevelSolve,
}

/// Runs the paper-literal pipeline for one slot.
pub fn solve_bigm(
    system: &System,
    rates: &[Vec<f64>],
    slot: usize,
    opts: &BigMOptions,
) -> Result<BigMResult, CoreError> {
    let dims = Dims::of(system);
    let t = system.slot_length;
    let n_lam = dims.lambda_len();
    let n_phi = dims.phi_len();
    let n = n_lam + n_phi + n_phi; // λ, φ, u

    // --- Bounds ----------------------------------------------------------
    let mut lo = vec![0.0; n];
    let mut hi = vec![f64::INFINITY; n];
    for (k, sv) in dims.class_server_pairs() {
        for s in 0..dims.front_ends {
            let idx = dims.lambda_idx(k, FrontEndId(s), sv);
            hi[idx] = rates[s][k.0];
        }
        let pidx = dims.phi_idx(k, sv);
        hi[n_lam + pidx] = 1.0;
        let tuf = &system.classes[k.0].tuf;
        let levels = tuf.levels();
        // palb:allow(unwrap): StepTuf guarantees at least one level
        lo[n_lam + n_phi + pidx] = levels.last().unwrap().utility;
        hi[n_lam + n_phi + pidx] = levels[0].utility;
    }
    let bounds = BoxBounds::new(lo, hi);

    // --- Shared helpers ---------------------------------------------------
    let dims2 = dims.clone();
    let server_lambda = move |x: &[f64], k: ClassId, sv: usize| -> f64 {
        (0..dims2.front_ends)
            .map(|s| x[dims2.lambda_idx(k, FrontEndId(s), sv)])
            .sum()
    };

    // Per-VM mean delay (Eq. 1) with a guarded denominator.
    let dims3 = dims.clone();
    let sys_rates: Vec<f64> = dims
        .class_server_pairs()
        .map(|(k, sv)| {
            let l = dims.dc_of_server(sv);
            system.data_centers[l.0].full_rate(k)
        })
        .collect();
    let sl = server_lambda.clone();
    let sys_rates_for_delay = sys_rates.clone();
    let delay_of = move |x: &[f64], k: ClassId, sv: usize| -> f64 {
        let idx = dims3.phi_idx(k, sv);
        let service = x[dims3.lambda_len() + idx] * sys_rates_for_delay[idx];
        let lam = sl(x, k, sv);
        let denom = service - lam;
        if denom <= 1e-9 {
            1e9 // effectively +inf: violates every deadline constraint
        } else {
            1.0 / denom
        }
    };

    // --- Objective (minimize −profit) -------------------------------------
    let unit_costs: Vec<f64> = (0..n_lam)
        .map(|idx| {
            let sv = idx % dims.total_servers;
            let s = (idx / dims.total_servers) % dims.front_ends;
            let k = idx / (dims.total_servers * dims.front_ends);
            let l = dims.dc_of_server(sv);
            system.unit_cost(ClassId(k), FrontEndId(s), l, slot)
        })
        .collect();
    let dims4 = dims.clone();
    let objective = Box::new(move |x: &[f64]| -> f64 {
        let mut profit = 0.0;
        for idx in 0..dims4.lambda_len() {
            let lam = x[idx];
            if is_zero(lam) {
                continue;
            }
            let sv = idx % dims4.total_servers;
            let k = idx / (dims4.total_servers * dims4.front_ends);
            let u = x[dims4.lambda_len() + dims4.phi_len() + dims4.phi_idx(ClassId(k), sv)];
            profit += (u - unit_costs[idx]) * lam * t;
        }
        -profit
    });

    // --- Constraints -------------------------------------------------------
    let mut inequalities: Vec<palb_nlp::ScalarFn<'static>> = Vec::new();

    // Final-deadline stability per VM: Σλ + 1/D_n − φ·C·µ ≤ 0.
    for (k, sv) in dims.class_server_pairs() {
        let dims5 = dims.clone();
        let sl = server_lambda.clone();
        let idx = dims.phi_idx(k, sv);
        let full = sys_rates[idx];
        let d_final = system.classes[k.0].tuf.final_deadline();
        inequalities.push(Box::new(move |x: &[f64]| {
            sl(x, k, sv) + 1.0 / d_final - x[dims5.lambda_len() + idx] * full
        }));
    }

    // Big-M level-pinning series per VM (skipped for one-level TUFs).
    for (k, sv) in dims.class_server_pairs() {
        let tuf = &system.classes[k.0].tuf;
        let series = constraint_series(tuf, opts.delta);
        if series.is_empty() {
            continue;
        }
        let big_m = recommended_big_m(tuf, tuf.final_deadline() * 2.0, opts.delta);
        let idx = dims.phi_idx(k, sv);
        for con in series {
            let d = delay_of.clone();
            let dims6 = dims.clone();
            inequalities.push(Box::new(move |x: &[f64]| {
                let r = d(x, k, sv).min(1e6);
                let u = x[dims6.lambda_len() + dims6.phi_len() + idx];
                // Scale down so violations are commensurate with the other
                // residuals despite the large M.
                con.residual(r, u, big_m) / big_m
            }));
        }
    }

    // Supply per (class, front-end): Σ_sv λ ≤ offered.
    for k in 0..dims.classes {
        for s in 0..dims.front_ends {
            let dims7 = dims.clone();
            let offered = rates[s][k];
            inequalities.push(Box::new(move |x: &[f64]| {
                let sent: f64 = (0..dims7.total_servers)
                    .map(|sv| x[dims7.lambda_idx(ClassId(k), FrontEndId(s), sv)])
                    .sum();
                sent - offered
            }));
        }
    }

    // CPU share per server: Σ_k φ ≤ 1.
    for sv in 0..dims.total_servers {
        let dims8 = dims.clone();
        inequalities.push(Box::new(move |x: &[f64]| {
            let share: f64 = (0..dims8.classes)
                .map(|k| x[dims8.lambda_len() + dims8.phi_idx(ClassId(k), sv)])
                .sum();
            share - 1.0
        }));
    }

    // --- Starting point: the loosest-level LP solution --------------------
    let loosest = LevelAssignment::loosest(system, &dims);
    let warm = solve_fixed_levels(system, rates, slot, &loosest)?;
    let mut x0 = vec![0.0; n];
    for (k, sv) in dims.class_server_pairs() {
        for s in 0..dims.front_ends {
            let idx = dims.lambda_idx(k, FrontEndId(s), sv);
            x0[idx] = warm.dispatch.lambda_by_server(k, FrontEndId(s), sv);
        }
        let pidx = dims.phi_idx(k, sv);
        x0[n_lam + pidx] = warm.dispatch.phi_by_server(k, sv);
        let tuf = &system.classes[k.0].tuf;
        // palb:allow(unwrap): StepTuf guarantees at least one level
        x0[n_lam + n_phi + pidx] = tuf.levels().last().unwrap().utility;
    }

    let nlp = ConstrainedNlp {
        objective,
        inequalities,
        equalities: vec![],
        bounds,
    };
    let raw = solve_augmented_lagrangian(&nlp, &x0, &opts.penalty);

    // --- Snap u to levels and polish with the exact LP --------------------
    let mut assignment = LevelAssignment::uniform(&dims, 1);
    for (k, sv) in dims.class_server_pairs() {
        let tuf = &system.classes[k.0].tuf;
        let u = raw.x[n_lam + n_phi + dims.phi_idx(k, sv)];
        // Nearest level by utility value.
        let mut best_q = 1;
        let mut best_gap = f64::INFINITY;
        for q in 1..=tuf.num_levels() {
            let gap = (tuf.utility_of_level(q) - u).abs();
            if gap < best_gap {
                best_gap = gap;
                best_q = q;
            }
        }
        assignment.set(k, sv, Some(best_q));
    }
    let mut polished = match solve_fixed_levels(system, rates, slot, &assignment) {
        Ok(s) => s,
        Err(CoreError::Infeasible) => {
            // Snapped levels over-reserve: fall back to the loosest levels.
            assignment = LevelAssignment::loosest(system, &dims);
            solve_fixed_levels(system, rates, slot, &assignment)?
        }
        Err(e) => return Err(e),
    };

    // Local improvement: single-VM level moves until no move helps — the
    // standard rounding-repair step after a continuous relaxation.
    loop {
        let mut improved = false;
        for (k, sv) in dims.class_server_pairs() {
            // palb:allow(unwrap): the rounding loop assigns every (class, server) pair before this read
            let current = assignment.get(k, sv).expect("complete assignment");
            for q in 1..=system.classes[k.0].tuf.num_levels() {
                if q == current {
                    continue;
                }
                let mut cand = assignment.clone();
                cand.set(k, sv, Some(q));
                if let Ok(s) = solve_fixed_levels(system, rates, slot, &cand) {
                    if s.objective > polished.objective * (1.0 + 1e-9) + 1e-12 {
                        assignment = cand;
                        polished = s;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    Ok(BigMResult {
        raw_objective: -raw.objective,
        raw_violation: raw.max_violation,
        assignment,
        polished,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::solve_exhaustive;
    use palb_cluster::{DataCenter, FrontEnd, PriceSchedule, RequestClass, System};
    use palb_tuf::StepTuf;

    fn tiny() -> System {
        System {
            classes: vec![RequestClass {
                name: "r".into(),
                tuf: StepTuf::two_level(4.5, 1.0 / 40.0, 4.0, 1.0 / 5.0).unwrap(),
                transfer_cost_per_mile: 0.0,
            }],
            front_ends: vec![FrontEnd { name: "fe".into() }],
            data_centers: vec![DataCenter {
                name: "dc".into(),
                servers: 2,
                capacity: 1.0,
                service_rate: vec![100.0],
                energy_per_request: vec![1.0],
                pue: 1.0,
                prices: PriceSchedule::flat(0.1, 24),
            }],
            distance: vec![vec![0.0]],
            slot_length: 1.0,
        }
    }

    #[test]
    fn bigm_path_reaches_near_optimal_after_polish() {
        let sys = tiny();
        let rates = vec![vec![150.0]];
        let exact = solve_exhaustive(&sys, &rates, 0).unwrap();
        let bigm = solve_bigm(&sys, &rates, 0, &BigMOptions::default()).unwrap();
        // The polished solution must be within 10% of the true optimum
        // (the continuous reformulation is approximate; polish makes it
        // feasible and usually near-optimal).
        assert!(
            bigm.polished.objective >= 0.9 * exact.solve.objective,
            "bigm polished {} vs exact {}",
            bigm.polished.objective,
            exact.solve.objective
        );
    }

    #[test]
    fn polished_solution_is_always_feasible() {
        use crate::model::check_feasible;
        let sys = tiny();
        for offered in [40.0, 120.0, 260.0] {
            let rates = vec![vec![offered]];
            let bigm = solve_bigm(&sys, &rates, 0, &BigMOptions::default()).unwrap();
            check_feasible(&sys, &rates, &bigm.polished.dispatch, false, 1e-6).unwrap();
        }
    }

    #[test]
    fn one_level_system_needs_no_series() {
        // With one-level TUFs the big-M path degenerates to the plain LP.
        let mut sys = tiny();
        sys.classes[0].tuf = StepTuf::constant(4.5, 1.0 / 40.0).unwrap();
        let rates = vec![vec![50.0]];
        let bigm = solve_bigm(&sys, &rates, 0, &BigMOptions::default()).unwrap();
        let dims = Dims::of(&sys);
        let lp = solve_fixed_levels(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1)).unwrap();
        assert!((bigm.polished.objective - lp.objective).abs() < 1e-6 * (1.0 + lp.objective.abs()));
    }

    #[test]
    fn raw_solution_nearly_feasible() {
        let sys = tiny();
        let rates = vec![vec![100.0]];
        let bigm = solve_bigm(&sys, &rates, 0, &BigMOptions::default()).unwrap();
        assert!(
            bigm.raw_violation < 1e-2,
            "raw violation {}",
            bigm.raw_violation
        );
    }

    #[test]
    fn section_vii_sized_problem_completes() {
        // Smoke test: the paper's §VII dimensions run end-to-end.
        let sys = palb_cluster::presets::section_vii();
        let rates = vec![vec![30_000.0, 25_000.0]];
        let mut opts = BigMOptions::default();
        opts.penalty.inner.max_iters = 150; // keep the test quick
        opts.penalty.max_outer = 4;
        let bigm = solve_bigm(&sys, &rates, 13, &opts).unwrap();
        assert!(bigm.polished.objective.is_finite());
        // Sanity: not worse than the loosest-level LP by construction.
        let _ = crate::solver::SolverConfig::exact();
    }
}
