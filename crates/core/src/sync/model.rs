//! An exhaustive interleaving explorer for the solver's shared-state
//! protocols.
//!
//! [`explore`] enumerates **every** schedule of a small set of
//! cooperating state machines: at each scheduling point it tries every
//! runnable thread, cloning the whole configuration (shared state plus
//! all thread-local states) and recursing, so every reachable terminal
//! state is visited exactly once per distinct schedule. A checker runs
//! at every terminal state and panics on a violated invariant — the
//! in-tree analogue of a loom model, runnable in the plain test suite
//! with no external tooling.
//!
//! ## Soundness scope
//!
//! Steps execute under sequential consistency. For protocols over a
//! **single** atomic location — the incumbent cell, the ticket queue,
//! the budget counter, the one-way flag — this is faithful even though
//! the real code uses `Relaxed`: C++/Rust atomics guarantee a total
//! modification order *per location*, and read-modify-writes read the
//! latest value in that order, so every real execution of a
//! single-location protocol corresponds to one of the interleavings
//! enumerated here. Protocols whose invariant spans *multiple* locations
//! additionally need the weak-memory exploration that loom performs
//! (`cargo xtask loom`); the models here are the fast, always-on layer
//! of that ladder, not a replacement for it.
//!
//! A mutex-protected critical section may be modeled as one step: mutual
//! exclusion makes the section indivisible to other threads, and the
//! model's scheduler already interleaves it at every position.

/// One cooperating thread of a protocol model: a cloneable state machine
/// advanced one indivisible step at a time against the shared state.
pub trait Program: Clone {
    /// The shared memory the protocol runs against.
    type Shared: Clone;

    /// Whether this thread has finished executing.
    fn done(&self) -> bool;

    /// Executes this thread's next indivisible step (one atomic access,
    /// or one mutex-protected critical section).
    ///
    /// Must only be called while `!self.done()`; a step may leave the
    /// thread runnable (e.g. a failed CAS retry loops) or finish it.
    fn step(&mut self, shared: &mut Self::Shared);
}

/// Exhaustively explores every interleaving of `threads` starting from
/// `shared`, invoking `check(&final_shared, &final_threads)` at every
/// terminal state. Returns the number of distinct complete schedules
/// explored (at least 1 — the empty schedule of zero threads still
/// checks the initial state).
///
/// # Panics
/// Propagates panics from `check` — an invariant violation reports the
/// schedule count reached so far in the panic message of the caller's
/// assert.
pub fn explore<P: Program>(
    shared: P::Shared,
    threads: Vec<P>,
    check: &mut impl FnMut(&P::Shared, &[P]),
) -> u64 {
    let mut schedules = 0;
    explore_rec(&shared, &threads, check, &mut schedules, 0);
    schedules
}

/// Safety valve: protocols modeled here are meant to be tiny. A model
/// that exceeds this many schedules is a test-design bug, not a deeper
/// search.
const MAX_SCHEDULES: u64 = 50_000_000;

fn explore_rec<P: Program>(
    shared: &P::Shared,
    threads: &[P],
    check: &mut impl FnMut(&P::Shared, &[P]),
    schedules: &mut u64,
    depth: usize,
) {
    assert!(
        depth < 10_000,
        "model depth runaway: a Program::step fails to terminate"
    );
    let mut any_runnable = false;
    for (i, t) in threads.iter().enumerate() {
        if t.done() {
            continue;
        }
        any_runnable = true;
        let mut shared2 = shared.clone();
        let mut threads2 = threads.to_vec();
        threads2[i].step(&mut shared2);
        explore_rec(&shared2, &threads2, check, schedules, depth + 1);
    }
    if !any_runnable {
        *schedules += 1;
        assert!(
            *schedules <= MAX_SCHEDULES,
            "model schedule count runaway (> {MAX_SCHEDULES}); shrink the protocol model"
        );
        check(shared, threads);
    }
}

/// State-machine models of the `palb_core::sync` protocols, step-faithful
/// to the real implementations (one model step per atomic access). The
/// unit tests below run [`explore`] over them; the loom suite runs the
/// same scenarios against the real atomics.
pub mod protocols {
    use super::Program;

    /// [`crate::sync::IncumbentCell::offer`] as a state machine over the
    /// cell's raw bits: one load step, then CAS attempts until the cell
    /// holds at least the offered value.
    #[derive(Clone, Debug)]
    pub struct Offer {
        /// The finite objective this thread offers.
        pub val: f64,
        seen: Option<u64>,
        done: bool,
    }

    impl Offer {
        /// A thread that will offer `val` once scheduled.
        pub fn new(val: f64) -> Self {
            Offer {
                val,
                seen: None,
                done: false,
            }
        }
    }

    impl Program for Offer {
        type Shared = u64;

        fn done(&self) -> bool {
            self.done
        }

        fn step(&mut self, shared: &mut u64) {
            match self.seen {
                // Step 1: the initial relaxed load.
                None => self.seen = Some(*shared),
                // Step 2..: one CAS attempt per step. Success publishes
                // and finishes; failure re-reads (CAS returns the seen
                // value) and loops; an already-satisfied cell finishes.
                Some(seen) => {
                    if f64::from_bits(seen) >= self.val {
                        self.done = true;
                    } else if *shared == seen {
                        *shared = self.val.to_bits();
                        self.done = true;
                    } else {
                        self.seen = Some(*shared);
                    }
                }
            }
        }
    }

    /// A worker claiming tickets from [`crate::sync::WorkQueue`] until
    /// exhaustion: each step is one `fetch_add` claim.
    #[derive(Clone, Debug)]
    pub struct Claimer {
        /// Queue length (shared constant).
        pub len: usize,
        /// Tickets this worker claimed.
        pub claimed: Vec<usize>,
        done: bool,
    }

    impl Claimer {
        /// A worker over a queue of `len` tickets.
        pub fn new(len: usize) -> Self {
            Claimer {
                len,
                claimed: Vec::new(),
                done: false,
            }
        }
    }

    impl Program for Claimer {
        type Shared = usize; // the queue's `next` counter

        fn done(&self) -> bool {
            self.done
        }

        fn step(&mut self, shared: &mut usize) {
            let i = *shared;
            *shared += 1; // fetch_add is one indivisible step
            if i < self.len {
                self.claimed.push(i);
            } else {
                self.done = true;
            }
        }
    }

    /// A worker charging [`crate::sync::BudgetCounter`] `attempts` times
    /// against `cap`, recording how many charges were admitted.
    #[derive(Clone, Debug)]
    pub struct Charger {
        /// Budget cap (shared constant).
        pub cap: usize,
        /// Remaining charge attempts.
        pub attempts: usize,
        /// Charges that returned "within budget".
        pub admitted: usize,
    }

    impl Charger {
        /// A worker that will charge `attempts` times against `cap`.
        pub fn new(cap: usize, attempts: usize) -> Self {
            Charger {
                cap,
                attempts,
                admitted: 0,
            }
        }
    }

    impl Program for Charger {
        type Shared = usize; // the spend counter

        fn done(&self) -> bool {
            self.attempts == 0
        }

        fn step(&mut self, shared: &mut usize) {
            let pre = *shared;
            *shared += 1;
            if pre < self.cap {
                self.admitted += 1;
            }
            self.attempts -= 1;
        }
    }

    /// The registry's get-or-create protocol, abstracted: the shared
    /// state is the mutex-protected slot map (here one slot) plus the
    /// per-handle counter total. Each thread performs one locked
    /// get-or-create step (indivisible under the mutex) and then `adds`
    /// lock-free counter increments, one per step.
    #[derive(Clone, Debug)]
    pub struct Registrant {
        /// Counter increments still to perform after registration.
        pub adds: usize,
        /// The handle generation this thread received (None before
        /// registration). Generation 0 is the thread that created the
        /// metric; all threads must observe the same generation.
        pub handle: Option<usize>,
    }

    /// Shared state of the [`Registrant`] model: the slot's create
    /// generation (None = not yet registered, Some(n) = created by the
    /// n-th arriving thread — always 0 if get-or-create is correct) and
    /// the counter value behind the shared handle.
    #[derive(Clone, Debug, Default)]
    pub struct RegistryState {
        /// `Some(creations)` once registered; counts *creations*, which
        /// must saturate at 1.
        pub created: Option<usize>,
        /// Total of all counter adds through the shared handle.
        pub total: u64,
        /// How many threads have registered so far.
        pub arrivals: usize,
    }

    impl Registrant {
        /// A thread that registers, then performs `adds` increments.
        pub fn new(adds: usize) -> Self {
            Registrant { adds, handle: None }
        }
    }

    impl Program for Registrant {
        type Shared = RegistryState;

        fn done(&self) -> bool {
            self.handle.is_some() && self.adds == 0
        }

        fn step(&mut self, shared: &mut RegistryState) {
            match self.handle {
                None => {
                    // The whole locked section is one step (mutual
                    // exclusion makes it indivisible to other threads).
                    // Get-or-create: only the slot's first arrival
                    // creates; everyone receives the creator's handle
                    // (generation 0).
                    if shared.created.is_none() {
                        shared.created = Some(shared.arrivals);
                    }
                    shared.arrivals += 1;
                    self.handle = Some(0);
                }
                Some(_) => {
                    shared.total += 1; // one atomic add per step
                    self.adds -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::protocols::*;
    use super::*;

    #[test]
    fn explorer_counts_interleavings_of_independent_steps() {
        // Two threads of 2 steps each: C(4,2) = 6 schedules.
        let n = explore(
            0usize,
            vec![Charger::new(usize::MAX, 2), Charger::new(usize::MAX, 2)],
            &mut |shared, _| assert_eq!(*shared, 4),
        );
        assert_eq!(n, 6);
    }

    #[test]
    fn incumbent_offers_converge_to_the_maximum_under_every_schedule() {
        // Three concurrent offers over a seeded cell, all interleavings:
        // the cell must end at the bitwise maximum every time, including
        // when a larger offer lands between a smaller offer's load and
        // CAS (the retry path).
        let seed = 1.0f64;
        let offers = [0.5, 2.0, 3.0];
        let max = 3.0f64;
        let n = explore(
            seed.to_bits(),
            offers.iter().map(|&v| Offer::new(v)).collect(),
            &mut |bits, threads| {
                assert!(threads.iter().all(|t| t.done()));
                assert_eq!(
                    *bits,
                    max.to_bits(),
                    "incumbent ended at {} not {max}",
                    f64::from_bits(*bits)
                );
            },
        );
        // Sanity: the exploration is genuinely branching.
        assert!(n > 100, "only {n} schedules explored");
    }

    #[test]
    fn incumbent_ties_and_negatives_stay_exact() {
        // Two equal offers and one below the seed: the cell must end at
        // exactly the tied value's bits (no double-apply artifacts).
        let n = explore(
            (-5.0f64).to_bits(),
            vec![Offer::new(-1.0), Offer::new(-1.0), Offer::new(-7.0)],
            &mut |bits, _| assert_eq!(*bits, (-1.0f64).to_bits()),
        );
        assert!(n > 50);
    }

    #[test]
    fn work_queue_dispenses_exactly_once_under_every_schedule() {
        // Three workers draining a 4-ticket queue: under every schedule
        // each ticket is claimed exactly once and every worker
        // terminates via the None path.
        let len = 4;
        let n = explore(
            0usize,
            vec![Claimer::new(len), Claimer::new(len), Claimer::new(len)],
            &mut |_, threads| {
                let mut all: Vec<usize> = threads.iter().flat_map(|t| t.claimed.clone()).collect();
                all.sort_unstable();
                assert_eq!(
                    all,
                    (0..len).collect::<Vec<_>>(),
                    "lost or duplicated ticket"
                );
                // Per-worker claims arrive in ascending order (the
                // queue's modification order is total).
                for t in threads {
                    assert!(t.claimed.windows(2).all(|w| w[0] < w[1]));
                }
            },
        );
        assert!(n > 100, "only {n} schedules explored");
    }

    #[test]
    fn budget_admits_at_most_cap_plus_inflight_overshoot() {
        // Two workers, three attempts each, cap 3: exactly cap charges
        // are admitted under every schedule (fetch_add serializes the
        // pre-charge reads), and the counter records all 6 attempts.
        let cap = 3;
        let n = explore(
            0usize,
            vec![Charger::new(cap, 3), Charger::new(cap, 3)],
            &mut |spent, threads| {
                let admitted: usize = threads.iter().map(|t| t.admitted).sum();
                assert_eq!(admitted, cap, "admitted {admitted} != cap {cap}");
                assert_eq!(*spent, 6);
            },
        );
        assert_eq!(n, 20); // C(6,3)
    }

    #[test]
    fn registry_get_or_create_is_single_creation_and_lossless() {
        // Three threads race registration then counter adds: exactly one
        // creation, everyone gets the shared handle, and every add lands.
        let n = explore(
            RegistryState::default(),
            vec![Registrant::new(2), Registrant::new(2), Registrant::new(1)],
            &mut |state, threads| {
                assert_eq!(state.created, Some(0), "metric created more than once");
                assert_eq!(state.arrivals, 3);
                assert_eq!(state.total, 5, "lost counter adds");
                assert!(threads.iter().all(|t| t.handle == Some(0)));
            },
        );
        assert!(n > 100, "only {n} schedules explored");
    }
}
