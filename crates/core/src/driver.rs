//! The time-slotted control loop (paper §III): at the beginning of each
//! slot the policy observes the average arrival rates and the current
//! electricity prices, produces a dispatch/allocation decision, and the
//! shared evaluator scores the slot. A [`RunResult`] collects the
//! per-slot outcomes and the aggregates the paper's figures plot.
//!
//! Policies receive everything through a [`SlotContext`]: the system, the
//! sanitized rates, the schedule slot, and the observability recorder.
//! Health telemetry flows back through the same context
//! ([`SlotContext::record_health`]) instead of a separate post-hoc pull
//! method. The single entry point is [`run_with`] with [`RunOptions`]; it
//! is generic over [`SystemSource`], so constant-system runs (pass the
//! [`System`] itself) and per-slot patched runs (pass a
//! `crate::scenario::SlotSystems`) share one signature.

use std::borrow::Cow;
use std::cell::RefCell;
use std::time::Instant;

use palb_cluster::System;
use palb_lp::{EngineKind, SolveOptions};
use palb_workload::Trace;

use crate::balanced::balanced_dispatch;
use crate::error::CoreError;
use crate::evaluate::{evaluate, SlotOutcome};
use crate::formulate::{solve_fixed_levels_with, LevelAssignment};
use crate::model::{Dims, Dispatch};
use crate::multilevel::{solve_uniform_levels, SolverStats};
use crate::obs::{self, names, Recorder};
use crate::resilient::SlotHealth;
use crate::sanitize::{events_per_slot, sanitize_rates};
use crate::solver::{solve_with, SolverBudget, SolverConfig};

/// Everything a policy sees when deciding one slot: the system, the
/// (sanitized) arrival rates, the schedule slot index, and the
/// observability recorder. Health telemetry is pushed back through
/// [`SlotContext::record_health`] and consumed by the driver.
#[derive(Debug)]
pub struct SlotContext<'a> {
    /// The cluster being controlled.
    pub system: &'a System,
    /// `rates[s][k]`: offered arrival rate of class `k` at front-end `s`.
    pub rates: &'a [Vec<f64>],
    /// Schedule slot (drives electricity prices).
    pub slot: usize,
    /// Observability recorder; [`Recorder::noop`] when telemetry is off.
    pub obs: &'a Recorder,
    health: RefCell<Option<SlotHealth>>,
}

impl<'a> SlotContext<'a> {
    /// A context for one slot decision.
    pub fn new(system: &'a System, rates: &'a [Vec<f64>], slot: usize, obs: &'a Recorder) -> Self {
        SlotContext {
            system,
            rates,
            slot,
            obs,
            health: RefCell::new(None),
        }
    }

    /// Attaches the slot's health record (last write wins). Ladder
    /// policies call this once per decision; plain policies never do.
    pub fn record_health(&self, health: SlotHealth) {
        *self.health.borrow_mut() = Some(health);
    }

    /// Consumes the recorded health, if any. Called by the driver after
    /// the decision; also usable by wrapping policies that want to
    /// inspect or forward an inner policy's record.
    pub fn take_health(&self) -> Option<SlotHealth> {
        self.health.take()
    }
}

/// A per-slot decision policy.
pub trait Policy {
    /// Display name used in reports.
    fn name(&self) -> &str;

    /// Produces the slot decision from the context. Health telemetry, if
    /// the policy tracks any, is pushed via [`SlotContext::record_health`]
    /// before returning.
    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError>;
}

/// The paper's **Balanced** baseline (§V-A).
#[derive(Debug, Default, Clone)]
pub struct BalancedPolicy;

impl Policy for BalancedPolicy {
    fn name(&self) -> &str {
        "Balanced"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError> {
        Ok(balanced_dispatch(ctx.system, ctx.rates, ctx.slot))
    }
}

/// Which optimizer backs [`OptimizedPolicy`] for multi-level TUFs.
#[derive(Debug, Clone)]
pub enum SolverSelection {
    /// A configured [`crate::solver`] run — exact branch-and-bound,
    /// anytime population search, or the portfolio race, per
    /// [`SolverConfig::kind`].
    Configured(SolverConfig),
    /// The uniform-level heuristic (`nᴷᴸ` LPs, polynomial in servers).
    UniformLevels,
}

impl Default for SolverSelection {
    fn default() -> Self {
        SolverSelection::Configured(SolverConfig::exact())
    }
}

/// The paper's **Optimized** approach: the constrained-optimization
/// dispatcher of §IV. One-level TUF systems collapse to a single LP
/// (§IV-1); multi-level systems use the configured [`SolverSelection`].
#[derive(Debug, Default, Clone)]
pub struct OptimizedPolicy {
    /// Multi-level solver choice.
    pub solver: SolverSelection,
}

impl OptimizedPolicy {
    /// Exact solver with default options.
    pub fn exact() -> Self {
        Self::with_config(SolverConfig::exact())
    }

    /// Exact solver searching with `threads` worker threads (see
    /// [`SolverConfig::threads`]; the result is independent of the count).
    pub fn exact_threads(threads: usize) -> Self {
        Self::with_config(SolverConfig::exact().threads(threads))
    }

    /// Anytime population search with default budget/quota.
    pub fn anytime() -> Self {
        Self::with_config(SolverConfig::anytime())
    }

    /// Portfolio race (exact vs. anytime) with default budget.
    pub fn portfolio() -> Self {
        Self::with_config(SolverConfig::portfolio())
    }

    /// Uniform-level heuristic.
    pub fn uniform() -> Self {
        OptimizedPolicy {
            solver: SolverSelection::UniformLevels,
        }
    }

    /// A policy running the given solver configuration verbatim.
    pub fn with_config(cfg: SolverConfig) -> Self {
        OptimizedPolicy {
            solver: SolverSelection::Configured(cfg),
        }
    }

    /// Replaces the configured solver's budget (no-op for the
    /// uniform-level heuristic, which has no budget knobs).
    pub fn with_budget(mut self, budget: SolverBudget) -> Self {
        if let SolverSelection::Configured(cfg) = &mut self.solver {
            cfg.budget = budget;
        }
        self
    }

    /// Forces every LP this policy solves onto the given engine (the
    /// default, [`EngineKind::Auto`], picks by problem size). Applies to
    /// the configured solver's LPs and to the one-level direct-LP path;
    /// the uniform-level heuristic keeps `Auto`.
    pub fn with_lp_engine(mut self, engine: EngineKind) -> Self {
        if let SolverSelection::Configured(cfg) = &mut self.solver {
            cfg.lp.engine = engine;
        }
        self
    }

    /// LP options for the one-level direct path: the configured solver's
    /// `lp` budget (so engine/tolerance choices apply uniformly),
    /// defaults for the heuristic.
    fn one_level_lp(&self) -> SolveOptions {
        match &self.solver {
            SolverSelection::Configured(cfg) => cfg.lp.clone(),
            SolverSelection::UniformLevels => SolveOptions::default(),
        }
    }
}

impl Policy for OptimizedPolicy {
    fn name(&self) -> &str {
        "Optimized"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError> {
        let one_level = ctx.system.classes.iter().all(|c| c.tuf.num_levels() == 1);
        if one_level {
            let dims = Dims::of(ctx.system);
            let sol = solve_fixed_levels_with(
                ctx.system,
                ctx.rates,
                ctx.slot,
                &LevelAssignment::uniform(&dims, 1),
                &self.one_level_lp(),
            )?;
            obs::record_solver_stats(
                ctx.obs,
                &SolverStats {
                    nodes_explored: 1,
                    cold_solves: 1,
                    cold_pivots: sol.pivots,
                    ..SolverStats::default()
                },
            );
            return Ok(sol.dispatch);
        }
        match &self.solver {
            SolverSelection::Configured(cfg) => {
                // The solver records its own stats through the recorder
                // carried in its config.
                let cfg = cfg.clone().obs(ctx.obs.clone());
                Ok(solve_with(ctx.system, ctx.rates, ctx.slot, &cfg)?
                    .solve
                    .dispatch)
            }
            SolverSelection::UniformLevels => {
                let r = solve_uniform_levels(ctx.system, ctx.rates, ctx.slot)?;
                obs::record_solver_stats(ctx.obs, &r.stats);
                Ok(r.solve.dispatch)
            }
        }
    }
}

/// Result of driving a policy across a trace.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Policy display name.
    pub policy: String,
    /// Per-slot outcomes, in trace order.
    pub slots: Vec<SlotOutcome>,
    /// The decisions that produced them (for dispatch-series figures).
    pub decisions: Vec<Dispatch>,
}

impl RunResult {
    /// Total net profit over the run, $.
    pub fn total_net_profit(&self) -> f64 {
        self.slots.iter().map(|s| s.net_profit).sum()
    }

    /// Total revenue, $.
    pub fn total_revenue(&self) -> f64 {
        self.slots.iter().map(|s| s.revenue).sum()
    }

    /// Total cost (energy + transfer), $.
    pub fn total_cost(&self) -> f64 {
        self.slots.iter().map(|s| s.total_cost()).sum()
    }

    /// Total requests offered.
    pub fn total_offered(&self) -> f64 {
        self.slots.iter().map(|s| s.offered).sum()
    }

    /// Total requests completed in time.
    pub fn total_completed(&self) -> f64 {
        self.slots.iter().map(|s| s.completed).sum()
    }

    /// Overall completion ratio.
    pub fn completion_ratio(&self) -> f64 {
        let offered = self.total_offered();
        if offered <= 0.0 {
            1.0
        } else {
            self.total_completed() / offered
        }
    }

    /// Cumulative net profit after each slot (the running curves of the
    /// paper's Figs. 4/6/8).
    pub fn cumulative_net_profit(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.slots
            .iter()
            .map(|s| {
                acc += s.net_profit;
                acc
            })
            .collect()
    }
}

/// One slot that could not be decided during a best-effort run.
#[derive(Debug, Clone)]
pub struct SlotFailure {
    /// Trace-local slot index.
    pub index: usize,
    /// Schedule slot (`start_slot + index`).
    pub slot: usize,
    /// The decision error.
    pub error: CoreError,
}

/// Result of a best-effort run: everything that succeeded, plus the slots
/// that did not.
#[derive(Debug, Clone)]
pub struct PartialRun {
    /// Outcomes and decisions of the slots that succeeded, in trace order.
    pub result: RunResult,
    /// Slots whose decision failed, in trace order.
    pub failures: Vec<SlotFailure>,
}

impl PartialRun {
    /// Whether every slot succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// How [`run_with`] drives a policy over a trace.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Schedule slot of the trace's first slot (so §VII can start at
    /// 14:00).
    pub start_slot: usize,
    /// `true`: a failed slot is recorded in [`PartialRun::failures`] and
    /// the loop moves on. `false`: the first failure aborts the run.
    pub collect_failures: bool,
    /// Pass the trace through [`sanitize_rates`] first, so policies always
    /// see finite, non-negative rates; repairs are reported on the
    /// affected slots' [`SlotOutcome::health`]. Disable only for inputs
    /// already known clean (skips a trace copy).
    pub sanitize: bool,
    /// Observability sink shared by the driver and every decision.
    pub obs: Recorder,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            start_slot: 0,
            collect_failures: false,
            sanitize: true,
            obs: Recorder::noop(),
        }
    }
}

impl RunOptions {
    /// Options starting the schedule at `start_slot`, otherwise default.
    pub fn at(start_slot: usize) -> Self {
        RunOptions {
            start_slot,
            ..RunOptions::default()
        }
    }

    /// Same, but collecting failures instead of aborting.
    pub fn best_effort(start_slot: usize) -> Self {
        RunOptions {
            start_slot,
            collect_failures: true,
            ..RunOptions::default()
        }
    }

    /// Attaches an observability recorder.
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }
}

fn check_shapes(system: &System, trace: &Trace) -> Result<(), CoreError> {
    if trace.front_ends() != system.num_front_ends() {
        return Err(CoreError::Model(format!(
            "trace has {} front-ends, system {}",
            trace.front_ends(),
            system.num_front_ends()
        )));
    }
    if trace.classes() != system.num_classes() {
        return Err(CoreError::Model(format!(
            "trace has {} classes, system {}",
            trace.classes(),
            system.num_classes()
        )));
    }
    Ok(())
}

/// Provides the system in effect at each schedule slot. A plain
/// [`System`] is its own (constant) source; the scenario engine
/// (`crate::scenario::SlotSystems`) supplies per-slot patched systems so
/// outage and transfer-cost perturbations reach the system parameters.
///
/// Every slot's system must share the base system's front-end and class
/// counts (server counts and distances may vary — policies rebuild their
/// workspaces when [`Dims`] change).
pub trait SystemSource {
    /// The unperturbed system, used for shape checks.
    fn base(&self) -> &System;

    /// The system in effect at schedule slot `slot`.
    fn system_for(&self, slot: usize) -> &System;
}

impl SystemSource for System {
    fn base(&self) -> &System {
        self
    }

    fn system_for(&self, _slot: usize) -> &System {
        self
    }
}

/// Drives `policy` over `trace` under the given [`RunOptions`],
/// evaluating slot `t` of the trace at schedule slot
/// `opts.start_slot + t`.
///
/// Generic over [`SystemSource`]: pass the [`System`] itself for a
/// constant-system run, or a per-slot source such as
/// [`crate::scenario::SlotSystems`] so scenario perturbations of system
/// parameters (DC outages, transfer-cost spikes) reach each decision and
/// evaluation through `source.system_for(slot)`.
///
/// Structural mismatches between trace and system always fail fast — they
/// would fail every slot identically. With
/// [`RunOptions::collect_failures`] a failed slot is recorded (not
/// evaluated) and the loop moves on, so one bad slot cannot void a whole
/// day's results; otherwise the first failure aborts.
pub fn run_with<S: SystemSource + ?Sized>(
    policy: &mut dyn Policy,
    source: &S,
    trace: &Trace,
    opts: &RunOptions,
) -> Result<PartialRun, CoreError> {
    check_shapes(source.base(), trace)?;
    let (clean, repairs): (Cow<'_, Trace>, Vec<usize>) = if opts.sanitize {
        let (clean, events) = sanitize_rates(trace);
        let repairs = events_per_slot(&events, clean.slots());
        (Cow::Owned(clean), repairs)
    } else {
        (Cow::Borrowed(trace), vec![0; trace.slots()])
    };
    let mut slots = Vec::with_capacity(clean.slots());
    let mut decisions = Vec::with_capacity(clean.slots());
    let mut failures = Vec::new();
    for t in 0..clean.slots() {
        let slot = opts.start_slot + t;
        let system = source.system_for(slot);
        let rates = clean.slot(t);
        let ctx = SlotContext::new(system, rates, slot, &opts.obs);
        // No clock read on the no-op recorder.
        let started = opts.obs.is_enabled().then(Instant::now);
        let decided = policy.decide(&ctx);
        if let Some(start) = started {
            opts.obs.observe(
                names::SLOT_DECIDE_SECONDS,
                &[],
                start.elapsed().as_secs_f64(),
            );
        }
        match decided {
            Ok(dispatch) => {
                let mut outcome = evaluate(system, rates, slot, &dispatch);
                outcome.health = SlotHealth::merge_sanitization(ctx.take_health(), repairs[t]);
                obs::record_slot_outcome(&opts.obs, &outcome);
                slots.push(outcome);
                decisions.push(dispatch);
            }
            Err(error) => {
                opts.obs.counter_add(names::SLOT_FAILURES_TOTAL, &[], 1);
                if !opts.collect_failures {
                    return Err(error);
                }
                failures.push(SlotFailure {
                    index: t,
                    slot,
                    error,
                });
            }
        }
    }
    Ok(PartialRun {
        result: RunResult {
            policy: policy.name().to_owned(),
            slots,
            decisions,
        },
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use palb_cluster::presets;
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn optimized_beats_balanced_on_section_v_light() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        let opt = run_with(
            &mut OptimizedPolicy::exact(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let bal = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert!(
            opt.total_net_profit() > bal.total_net_profit(),
            "optimized {} vs balanced {}",
            opt.total_net_profit(),
            bal.total_net_profit()
        );
    }

    #[test]
    fn optimized_beats_balanced_on_section_v_heavy() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_high_arrivals(), 1);
        let opt = run_with(
            &mut OptimizedPolicy::exact(),
            &sys,
            &trace,
            &RunOptions::at(0),
        )
        .unwrap()
        .result;
        let bal = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert!(opt.total_net_profit() > bal.total_net_profit());
        // The paper reports ~16% more requests processed under heavy load.
        assert!(
            opt.total_completed() > bal.total_completed(),
            "optimized completed {} vs balanced {}",
            opt.total_completed(),
            bal.total_completed()
        );
    }

    #[test]
    fn run_length_and_cumulative_profit() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 3);
        let r = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert_eq!(r.slots.len(), 3);
        assert_eq!(r.decisions.len(), 3);
        let cum = r.cumulative_net_profit();
        assert_eq!(cum.len(), 3);
        assert!((cum[2] - r.total_net_profit()).abs() < 1e-9);
        assert!(cum[1] > cum[0]); // profitable every slot
    }

    #[test]
    fn mismatched_trace_is_rejected() {
        let sys = presets::section_v();
        let trace = constant_trace(vec![vec![1.0, 1.0]], 1); // 1 fe, 2 classes
        let err = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0)).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn start_slot_shifts_prices() {
        // Same trace, different start slots: Balanced picks different DCs,
        // so the decisions (and usually profits) differ.
        let sys = presets::section_vi();
        let mut rates = vec![vec![0.0; 3]; 4];
        rates[0][0] = 1_000.0;
        let trace = constant_trace(rates, 1);
        let night = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(3))
            .unwrap()
            .result;
        let peak = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(15))
            .unwrap()
            .result;
        assert_ne!(night.decisions[0], peak.decisions[0]);
    }

    #[test]
    fn corrupted_rates_are_sanitized_and_reported() {
        use palb_workload::Trace;
        let sys = presets::section_v();
        let clean = constant_trace(presets::section_v_low_arrivals(), 2);
        let mut raw = clean.slot(0).to_vec();
        let corrupted = Trace::new_unchecked(vec![raw.clone(), {
            raw[0][0] = f64::NAN; // slot 1, fe 0, class 0 corrupted
            raw
        }]);
        let ok = run_with(&mut BalancedPolicy, &sys, &clean, &RunOptions::at(0))
            .unwrap()
            .result;
        let repaired = run_with(&mut BalancedPolicy, &sys, &corrupted, &RunOptions::at(0))
            .unwrap()
            .result;
        // Slot 1's NaN imputes the slot-0 value, so the runs coincide.
        assert_eq!(ok.decisions, repaired.decisions);
        assert!(ok.slots[1].health.is_none());
        let h = repaired.slots[1].health.as_ref().unwrap();
        assert_eq!(h.sanitization_events, 1);
        assert!(h.degraded);
        assert_eq!(h.tier_used, None); // BalancedPolicy is not a ladder
        assert!(repaired.slots[0].health.is_none());
    }

    #[test]
    fn partial_run_collects_failures_and_keeps_good_slots() {
        use crate::resilient::ChaosPolicy;
        use palb_workload::fault::SolverFaultSchedule;
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 8);
        let schedule = SolverFaultSchedule::new(0.5, 21);
        let mut chaos = ChaosPolicy::new(BalancedPolicy, schedule.clone());
        let p = run_with(&mut chaos, &sys, &trace, &RunOptions::best_effort(0)).unwrap();
        let failed: usize = (0..8).filter(|&t| schedule.fails(t, 0)).count();
        assert!(failed > 0, "seed should fail at least one of 8 slots");
        assert_eq!(p.failures.len(), failed);
        assert_eq!(p.result.slots.len(), 8 - failed);
        assert!(!p.is_complete());
        for f in &p.failures {
            assert_eq!(f.slot, f.index); // start_slot = 0
            assert!(matches!(f.error, CoreError::Solver { .. }));
        }
        // The strict driver aborts on the first such failure.
        let mut chaos2 = ChaosPolicy::new(BalancedPolicy, schedule);
        assert!(run_with(&mut chaos2, &sys, &trace, &RunOptions::at(0)).is_err());
    }

    #[test]
    fn optimized_policy_is_feasible_on_section_vii() {
        use crate::model::check_feasible;
        let sys = presets::section_vii();
        let trace = constant_trace(vec![vec![30_000.0, 25_000.0]], 1);
        let r = run_with(
            &mut OptimizedPolicy::exact(),
            &sys,
            &trace,
            &RunOptions::at(13),
        )
        .unwrap()
        .result;
        check_feasible(&sys, trace.slot(0), &r.decisions[0], false, 1e-6).unwrap();
        assert!(r.total_net_profit() > 0.0);
    }

    #[test]
    fn sanitize_can_be_disabled() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 2);
        let raw = run_with(
            &mut BalancedPolicy,
            &sys,
            &trace,
            &RunOptions {
                sanitize: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let clean = run_with(&mut BalancedPolicy, &sys, &trace, &RunOptions::at(0))
            .unwrap()
            .result;
        assert_eq!(raw.result.decisions, clean.decisions);
        assert!(raw.result.slots.iter().all(|s| s.health.is_none()));
    }

    #[test]
    fn run_with_records_slot_metrics() {
        use std::sync::Arc;
        let registry = Arc::new(crate::obs::Registry::new());
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 3);
        let opts = RunOptions::at(0).with_obs(Recorder::attached(Arc::clone(&registry)));
        run_with(&mut BalancedPolicy, &sys, &trace, &opts).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value(names::SLOTS_TOTAL, &[]), Some(3));
        assert!(snap.contains_family(names::SLOT_DECIDE_SECONDS));
        assert!(snap.contains_family(names::NET_PROFIT_DOLLARS));
        assert_eq!(snap.counter_value(names::SLOT_FAILURES_TOTAL, &[]), None);
    }
}
