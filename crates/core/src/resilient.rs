//! Degraded-mode control loop: a [`Policy`] wrapper that never aborts a
//! slot.
//!
//! The paper's controller re-optimizes at every slot boundary (§III); an
//! aborted slot means no dispatch decision and zero revenue for a whole
//! hour. This module trades optimality for availability with a fallback
//! ladder, attempted in order until one rung produces a decision:
//!
//! 1. **Exact** — the §IV optimizer under the caller's iteration/node
//!    budgets ([`ResilientOptions::bb`]).
//! 2. **Bland retry** — on a *transient* failure (iteration limit,
//!    numerical trouble) only: one retry with Bland's anti-cycling rule
//!    from the first pivot and deterministically perturbed (slightly
//!    shrunk) arrival rates, the classic degeneracy escape.
//! 3. **Uniform levels** — the polynomial heuristic of
//!    [`crate::multilevel::solve_uniform_levels`] with default budgets.
//! 4. **Balanced** — the paper's §V-A baseline; price-greedy, solver-free.
//! 5. **Replay** — the last successful dispatch scaled down to the current
//!    offered rates. Per `(class, front-end)` the replayed group is scaled
//!    by `min(1, offered_now / dispatched_then)`, so Eq. 7 (dispatch ≤
//!    offered) holds and server loads can only shrink, preserving the
//!    Eq. 6 delay bounds; φ is kept, so Eq. 8 holds and servers unused by
//!    the last-good decision stay powered off. With no last-good decision
//!    it dispatches nothing (all servers off) — the tier is infallible,
//!    which is what makes the ladder abort-free.
//!
//! Each decision pushes a [`SlotHealth`] record through
//! [`crate::SlotContext::record_health`], which the driver surfaces on the
//! [`crate::SlotOutcome`]; tier transitions and fault counts additionally
//! land on the slot context's observability recorder.
//!
//! The module also hosts [`ChaosPolicy`], the fault-injection wrapper used
//! by the robustness experiments. It lives here rather than in
//! `palb_workload::fault` (where the data-level injectors live) because it
//! wraps the [`Policy`] trait and the workload crate sits *below* this one
//! in the dependency order.

use palb_cluster::{ClassId, FrontEndId, System};
use palb_lp::{LpError, PivotRule, SolveOptions};
use palb_workload::fault::SolverFaultSchedule;

use crate::balanced::balanced_dispatch;
use crate::driver::{Policy, SlotContext};
use crate::error::CoreError;
use crate::formulate::{LevelAssignment, WorkspacePool};
use crate::model::{Dims, Dispatch};
use crate::multilevel::{solve_bb_in, solve_uniform_levels, BbOptions, SolverStats};
use crate::obs::{names, record_solver_stats, spans, Recorder};

/// A rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The exact §IV optimizer under the configured budget.
    Exact,
    /// Retry of the exact solve with Bland's rule and perturbed rates.
    BlandRetry,
    /// The uniform-level heuristic.
    UniformLevels,
    /// The paper's Balanced baseline.
    Balanced,
    /// Replay of the last good dispatch, scaled to current rates.
    Replay,
}

impl Tier {
    /// All tiers in ladder order (for histograms).
    pub const ALL: [Tier; 5] = [
        Tier::Exact,
        Tier::BlandRetry,
        Tier::UniformLevels,
        Tier::Balanced,
        Tier::Replay,
    ];

    /// Stable lowercase label used in reports and metric labels
    /// (`tier="exact"`).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::BlandRetry => "bland-retry",
            Tier::UniformLevels => "uniform-levels",
            Tier::Balanced => "balanced",
            Tier::Replay => "replay",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// Per-slot health telemetry attached to a decision.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlotHealth {
    /// Ladder rung that produced the decision; `None` for policies that
    /// are not degradation ladders (plain Optimized/Balanced).
    pub tier_used: Option<Tier>,
    /// Failed solve attempts before the decision was produced.
    pub retries: usize,
    /// Input repairs made by the driver's sanitization pass for this slot.
    pub sanitization_events: usize,
    /// Simplex pivots spent by the successful solve (0 for the solver-free
    /// tiers).
    pub solve_iterations: usize,
    /// Whether anything non-nominal happened: a fallback tier decided the
    /// slot, or the inputs needed repair.
    pub degraded: bool,
    /// LP-solver telemetry of the successful tier (all-zero for the
    /// solver-free tiers).
    pub solver: SolverStats,
}

impl SlotHealth {
    /// Folds a driver-side sanitization repair count into a slot's
    /// (possibly absent) health record. Zero repairs is the identity;
    /// any repair materializes a record and marks the slot degraded, so
    /// repaired inputs are never silent. Shared by the sequential driver
    /// and the rayon slot runner so both paths report identically.
    pub fn merge_sanitization(health: Option<SlotHealth>, repairs: usize) -> Option<SlotHealth> {
        let mut health = health;
        if repairs > 0 {
            let h = health.get_or_insert_with(SlotHealth::default);
            h.sanitization_events = repairs;
            h.degraded = true;
        }
        health
    }
}

/// Tuning knobs for [`ResilientPolicy`].
#[derive(Debug, Clone)]
pub struct ResilientOptions {
    /// Budgeted options for the exact tier (its `lp` field budgets every
    /// LP the exact tier solves; `max_nodes` budgets the tree).
    pub bb: BbOptions,
    /// LP options for the Bland-retry tier. Defaults to Bland's rule from
    /// the very first pivot with otherwise default budgets.
    pub retry_lp: SolveOptions,
    /// Relative shrink applied to arrival rates on the retry tier (breaks
    /// the exact degeneracy pattern that stalled the first attempt while
    /// staying within the true offered rates). Must be small and
    /// non-negative.
    pub perturbation: f64,
}

impl Default for ResilientOptions {
    fn default() -> Self {
        ResilientOptions {
            bb: BbOptions::default(),
            retry_lp: SolveOptions {
                rule: PivotRule::Bland,
                bland_after: Some(0),
                ..SolveOptions::default()
            },
            perturbation: 1e-6,
        }
    }
}

/// The degraded-mode wrapper policy (see the module docs for the ladder).
#[derive(Default)]
pub struct ResilientPolicy {
    /// Ladder configuration.
    pub opts: ResilientOptions,
    chaos: Option<SolverFaultSchedule>,
    last_good: Option<Dispatch>,
    /// Persistent LP workspaces reused across slots and ladder tiers (the
    /// dispatch LP's structure is slot-invariant, so each slot is a
    /// coefficient patch); the parallel exact tier checks one out per
    /// worker. Pure solver cache: rebuilt on demand, never cloned, and
    /// invisible to results.
    wsp: WorkspacePool,
}

impl Clone for ResilientPolicy {
    fn clone(&self) -> Self {
        ResilientPolicy {
            opts: self.opts.clone(),
            chaos: self.chaos.clone(),
            last_good: self.last_good.clone(),
            wsp: WorkspacePool::default(), // cache: the clone rebuilds its own
        }
    }
}

impl std::fmt::Debug for ResilientPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientPolicy")
            .field("opts", &self.opts)
            .field("chaos", &self.chaos)
            .field("last_good", &self.last_good)
            .field("workspace_ready", &!self.wsp.is_empty())
            .finish()
    }
}

impl ResilientPolicy {
    /// A ladder with explicit options.
    pub fn new(opts: ResilientOptions) -> Self {
        ResilientPolicy {
            opts,
            ..ResilientPolicy::default()
        }
    }

    /// Attaches a deterministic solver-fault schedule: before each solver
    /// tier attempt, `schedule.fails(slot, attempt)` decides whether the
    /// attempt is forced to fail (used by the fault-tolerance
    /// experiments).
    pub fn with_chaos(mut self, schedule: SolverFaultSchedule) -> Self {
        self.chaos = Some(schedule);
        self
    }

    /// The last successful (non-replay) dispatch, if any.
    pub fn last_good(&self) -> Option<&Dispatch> {
        self.last_good.as_ref()
    }

    fn injected(&self, slot: usize, attempt: usize, tier: Tier) -> Option<CoreError> {
        match &self.chaos {
            Some(c) if c.fails(slot, attempt) => Some(CoreError::Solver {
                slot,
                tier,
                source: LpError::Numeric("injected solver fault".into()),
            }),
            _ => None,
        }
    }

    /// The exact tier: same structure as [`crate::OptimizedPolicy`], but
    /// under `opts.bb` budgets and against the policy's persistent LP
    /// workspace. Decisions always come off the cold full-solver path, so
    /// reuse changes wall-clock, never results.
    fn solve_exact(
        &mut self,
        system: &System,
        rates: &[Vec<f64>],
        slot: usize,
        lp: &SolveOptions,
        rec: &Recorder,
    ) -> Result<(Dispatch, usize, SolverStats), CoreError> {
        let one_level = system.classes.iter().all(|c| c.tuf.num_levels() == 1);
        if one_level {
            let dims = Dims::of(system);
            let assignment = LevelAssignment::uniform(&dims, 1);
            assignment.validate(system)?;
            let spec: Vec<(f64, f64)> = (0..dims.phi_len())
                .map(|idx| {
                    let tuf = &system.classes[idx / dims.total_servers].tuf;
                    (tuf.utility_of_level(1), tuf.deadline_of_level(1))
                })
                .collect();
            let mut wsp = self.wsp.acquire(system, rates, slot, &dims, &spec, lp)?;
            let s = wsp.solve_cold(lp);
            self.wsp.release(wsp);
            let s = s?;
            let stats = SolverStats {
                nodes_explored: 1,
                cold_solves: 1,
                cold_pivots: s.pivots,
                ..SolverStats::default()
            };
            // Standalone LP caller: nothing below records, so we do.
            record_solver_stats(rec, &stats);
            return Ok((s.dispatch, s.pivots, stats));
        }
        // The branch-and-bound self-records through its options.
        let bb = BbOptions {
            lp: lp.clone(),
            obs: rec.clone(),
            ..self.opts.bb.clone()
        };
        let r = solve_bb_in(&mut self.wsp, system, rates, slot, &bb)?;
        Ok((r.solve.dispatch, r.solve.pivots, r.stats))
    }

    /// Deterministically shrinks every rate by up to `perturbation`
    /// (relative). Shrinking (never growing) keeps any dispatch feasible
    /// against the true offered rates.
    fn perturbed(&self, rates: &[Vec<f64>], slot: usize) -> Vec<Vec<f64>> {
        let eps = self.opts.perturbation;
        rates
            .iter()
            .enumerate()
            .map(|(s, row)| {
                row.iter()
                    .enumerate()
                    .map(|(k, &r)| {
                        // splitmix64-style hash of (slot, s, k) -> [0, 1).
                        let mut z = (slot as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(((s as u64) << 32) | k as u64);
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        let u = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        r * (1.0 - eps * u)
                    })
                    .collect()
            })
            .collect()
    }

    /// The replay tier (infallible): the last good dispatch scaled down to
    /// the current offered rates, or the all-off zero dispatch.
    fn replay(&self, system: &System, rates: &[Vec<f64>]) -> Dispatch {
        let Some(last) = &self.last_good else {
            return Dispatch::zero(Dims::of(system));
        };
        let dims = last.dims().clone();
        let mut d = last.clone();
        let mut scales = vec![1.0; dims.classes * dims.front_ends];
        for k in 0..dims.classes {
            for s in 0..dims.front_ends {
                let then = last.front_end_class_rate(ClassId(k), FrontEndId(s));
                if then > 0.0 {
                    scales[k * dims.front_ends + s] = (rates[s][k] / then).min(1.0);
                }
            }
        }
        let (lambda, _phi) = d.raw_mut();
        for k in 0..dims.classes {
            for s in 0..dims.front_ends {
                let scale = scales[k * dims.front_ends + s];
                if scale < 1.0 {
                    for sv in 0..dims.total_servers {
                        lambda[dims.lambda_idx(ClassId(k), FrontEndId(s), sv)] *= scale;
                    }
                }
            }
        }
        d
    }

    fn finish(
        &mut self,
        ctx: &SlotContext<'_>,
        tier: Tier,
        retries: usize,
        solve_iterations: usize,
        solver: SolverStats,
        dispatch: Dispatch,
    ) -> Result<Dispatch, CoreError> {
        if tier != Tier::Replay {
            self.last_good = Some(dispatch.clone());
        }
        ctx.record_health(SlotHealth {
            tier_used: Some(tier),
            retries,
            sanitization_events: 0, // merged in by the driver
            solve_iterations,
            degraded: tier != Tier::Exact,
            solver,
        });
        Ok(dispatch)
    }
}

/// Whether a retry with different pivoting/perturbation could plausibly
/// succeed (maps [`LpError::is_transient`] through the core error type).
fn is_transient(e: &CoreError) -> bool {
    match e {
        CoreError::Lp(l) => l.is_transient(),
        CoreError::Solver { source, .. } => source.is_transient(),
        // A contained worker panic is worth a descent: the sequential and
        // heuristic tiers don't run the code path that panicked.
        CoreError::WorkerPanic => true,
        CoreError::Infeasible | CoreError::Model(_) => false,
    }
}

impl Policy for ResilientPolicy {
    fn name(&self) -> &str {
        "Resilient"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError> {
        let (system, rates, slot) = (ctx.system, ctx.rates, ctx.slot);
        // Tier 1: exact under budget.
        let lp = self.opts.bb.lp.clone();
        let exact = match self.injected(slot, 0, Tier::Exact) {
            Some(e) => Err(e),
            None => {
                let _tier = ctx.obs.span(spans::TIER);
                self.solve_exact(system, rates, slot, &lp, ctx.obs)
            }
        };
        let first_err = match exact {
            Ok((d, pivots, stats)) => return self.finish(ctx, Tier::Exact, 0, pivots, stats, d),
            Err(e) => e,
        };
        ctx.obs.counter_add(
            names::SOLVER_FAULTS_TOTAL,
            &[("tier", Tier::Exact.label())],
            1,
        );
        let mut retries = 1;

        // Tier 2: Bland + perturbation, only for transient failures.
        if is_transient(&first_err) {
            let retry = match self.injected(slot, 1, Tier::BlandRetry) {
                Some(e) => Err(e),
                None => {
                    let _tier = ctx.obs.span(spans::TIER);
                    let retry_lp = self.opts.retry_lp.clone();
                    let shrunk = self.perturbed(rates, slot);
                    self.solve_exact(system, &shrunk, slot, &retry_lp, ctx.obs)
                }
            };
            match retry {
                Ok((d, pivots, stats)) => {
                    return self.finish(ctx, Tier::BlandRetry, retries, pivots, stats, d)
                }
                Err(_) => {
                    ctx.obs.counter_add(
                        names::SOLVER_FAULTS_TOTAL,
                        &[("tier", Tier::BlandRetry.label())],
                        1,
                    );
                    retries += 1;
                }
            }
        }

        // Tier 3: uniform-level heuristic with default budgets.
        let uniform = match self.injected(slot, 2, Tier::UniformLevels) {
            Some(e) => Err(e),
            None => {
                let _tier = ctx.obs.span(spans::TIER);
                solve_uniform_levels(system, rates, slot)
            }
        };
        match uniform {
            Ok(r) => {
                // Standalone heuristic caller: records its own stats.
                record_solver_stats(ctx.obs, &r.stats);
                return self.finish(
                    ctx,
                    Tier::UniformLevels,
                    retries,
                    r.solve.pivots,
                    r.stats,
                    r.solve.dispatch,
                );
            }
            Err(_) => {
                ctx.obs.counter_add(
                    names::SOLVER_FAULTS_TOTAL,
                    &[("tier", Tier::UniformLevels.label())],
                    1,
                );
                retries += 1;
            }
        }

        // Tier 4: the solver-free Balanced baseline.
        match self.injected(slot, 3, Tier::Balanced) {
            Some(_) => {
                ctx.obs.counter_add(
                    names::SOLVER_FAULTS_TOTAL,
                    &[("tier", Tier::Balanced.label())],
                    1,
                );
                retries += 1;
            }
            None => {
                let d = balanced_dispatch(system, rates, slot);
                return self.finish(ctx, Tier::Balanced, retries, 0, SolverStats::default(), d);
            }
        }

        // Tier 5: replay — infallible by construction.
        let d = self.replay(system, rates);
        self.finish(ctx, Tier::Replay, retries, 0, SolverStats::default(), d)
    }
}

/// Fault-injection wrapper: forces the wrapped policy's `decide` to fail
/// according to a [`SolverFaultSchedule`]. Wrapping the *un-resilient*
/// [`crate::OptimizedPolicy`] with this is how the experiments demonstrate
/// that a bare controller hard-aborts where [`ResilientPolicy`] degrades.
#[derive(Debug, Clone)]
pub struct ChaosPolicy<P> {
    inner: P,
    schedule: SolverFaultSchedule,
    name: String,
}

impl<P: Policy> ChaosPolicy<P> {
    /// Wraps `inner`, failing its decisions per `schedule`.
    pub fn new(inner: P, schedule: SolverFaultSchedule) -> Self {
        let name = format!("Chaos({})", inner.name());
        ChaosPolicy {
            inner,
            schedule,
            name,
        }
    }
}

impl<P: Policy> Policy for ChaosPolicy<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Result<Dispatch, CoreError> {
        if self.schedule.fails(ctx.slot, 0) {
            return Err(CoreError::Solver {
                slot: ctx.slot,
                tier: Tier::Exact,
                source: LpError::Numeric("injected solver fault".into()),
            });
        }
        self.inner.decide(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, OptimizedPolicy};
    use crate::evaluate::evaluate;
    use crate::formulate::solve_fixed_levels_with;
    use crate::model::check_feasible;
    use palb_cluster::presets;
    use palb_workload::synthetic::constant_trace;

    #[test]
    fn healthy_inputs_use_the_exact_tier_and_match_optimized() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 2);
        let res = run(&mut ResilientPolicy::default(), &sys, &trace, 0).unwrap();
        let opt = run(&mut OptimizedPolicy::exact(), &sys, &trace, 0).unwrap();
        assert!(
            (res.total_net_profit() - opt.total_net_profit()).abs()
                < 1e-9 * (1.0 + opt.total_net_profit().abs())
        );
        for s in &res.slots {
            let h = s.health.as_ref().expect("resilient slots carry health");
            assert_eq!(h.tier_used, Some(Tier::Exact));
            assert_eq!(h.retries, 0);
            assert!(!h.degraded);
            assert!(h.solve_iterations > 0);
        }
    }

    #[test]
    fn iteration_limit_falls_through_to_uniform_levels() {
        // Cripple both the exact budget and the retry budget: 1 pivot is
        // never enough for the §V LP, so tier 3 (default budgets) decides.
        let tiny_budget = SolveOptions {
            max_iters: Some(1),
            ..SolveOptions::default()
        };
        let opts = ResilientOptions {
            bb: BbOptions {
                lp: tiny_budget.clone(),
                ..BbOptions::default()
            },
            retry_lp: SolveOptions {
                rule: PivotRule::Bland,
                bland_after: Some(0),
                max_iters: Some(1),
                ..SolveOptions::default()
            },
            ..ResilientOptions::default()
        };
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        let mut policy = ResilientPolicy::new(opts);
        let r = run(&mut policy, &sys, &trace, 0).unwrap();
        let h = r.slots[0].health.as_ref().unwrap();
        assert_eq!(h.tier_used, Some(Tier::UniformLevels));
        assert_eq!(h.retries, 2, "exact and retry should both have failed");
        assert!(h.degraded);
        assert!(r.total_net_profit() > 0.0);
    }

    #[test]
    fn crippled_exact_surfaces_iteration_limit_without_the_ladder() {
        // The same tiny budget makes the *bare* solver abort, which is
        // exactly what the ladder protects against.
        let sys = presets::section_v();
        let dims = Dims::of(&sys);
        let rates = presets::section_v_low_arrivals();
        let tiny = SolveOptions {
            max_iters: Some(1),
            ..SolveOptions::default()
        };
        let err =
            solve_fixed_levels_with(&sys, &rates, 0, &LevelAssignment::uniform(&dims, 1), &tiny)
                .unwrap_err();
        assert!(
            matches!(&err, CoreError::Lp(LpError::IterationLimit { .. })),
            "got {err:?}"
        );
        assert!(is_transient(&err));
    }

    #[test]
    fn chaos_on_all_solver_tiers_lands_on_balanced() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 1);
        // Probability 1: every solver attempt fails; balanced also draws a
        // coin... with p = 1.0 even balanced is vetoed, so replay decides.
        let mut policy = ResilientPolicy::default().with_chaos(SolverFaultSchedule::new(1.0, 7));
        let r = run(&mut policy, &sys, &trace, 0).unwrap();
        let h = r.slots[0].health.as_ref().unwrap();
        assert_eq!(h.tier_used, Some(Tier::Replay));
        // No last-good decision: the replay dispatches nothing.
        assert_eq!(r.slots[0].dispatched, 0.0);
        assert_eq!(r.slots[0].powered_on, vec![0, 0, 0]);
    }

    #[test]
    fn replay_scales_last_good_to_current_rates() {
        let sys = presets::section_v();
        let low = presets::section_v_low_arrivals();
        // Slot 0 decides normally; slot 1's solver attempts all fail but
        // balanced is only vetoed on slot 1 by the handcrafted schedule.
        // Easier: drive decide() by hand.
        let mut policy = ResilientPolicy::default();
        let rec = Recorder::noop();
        let ctx0 = SlotContext::new(&sys, &low, 0, &rec);
        let d0 = policy.decide(&ctx0).unwrap();
        assert!(ctx0.take_health().is_some());
        assert!(policy.last_good().is_some());

        // Halve the offered rates and force replay via total chaos.
        policy.chaos = Some(SolverFaultSchedule::new(1.0, 3));
        let halved: Vec<Vec<f64>> = low
            .iter()
            .map(|row| row.iter().map(|r| r * 0.5).collect())
            .collect();
        let ctx1 = SlotContext::new(&sys, &halved, 1, &rec);
        let d1 = policy.decide(&ctx1).unwrap();
        let h = ctx1.take_health().unwrap();
        assert_eq!(h.tier_used, Some(Tier::Replay));
        // Eq. 7: replayed dispatch within the halved offered rates.
        check_feasible(&sys, &halved, &d1, false, 1e-6).unwrap();
        assert!(d1.total_dispatched() <= 0.5 * d0.total_dispatched() + 1e-9);
        assert!(d1.total_dispatched() > 0.0);
        // Still economically evaluable.
        let out = evaluate(&sys, &halved, 1, &d1);
        assert!(out.net_profit.is_finite());
    }

    #[test]
    fn chaos_policy_fails_bare_optimized_runs() {
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 10);
        let schedule = SolverFaultSchedule::new(0.5, 11);
        let mut bare = ChaosPolicy::new(OptimizedPolicy::exact(), schedule.clone());
        let err = run(&mut bare, &sys, &trace, 0).unwrap_err();
        assert!(matches!(err, CoreError::Solver { .. }));
        // The same chaos stream cannot abort the resilient ladder.
        let mut guarded = ResilientPolicy::default().with_chaos(schedule);
        let r = run(&mut guarded, &sys, &trace, 0).unwrap();
        assert_eq!(r.slots.len(), 10);
    }

    #[test]
    fn persistent_workspace_is_bitwise_invisible_across_slots() {
        // One policy reuses its workspace across three slots with moving
        // rates and prices; each slot is compared against a fresh policy in
        // non-incremental mode. Decisions must match bit-for-bit: the
        // workspace only re-routes where the arithmetic happens, never what
        // it computes.
        let sys = presets::section_vii();
        let cold_opts = ResilientOptions {
            bb: BbOptions {
                incremental: false,
                ..BbOptions::default()
            },
            ..ResilientOptions::default()
        };
        let mut inc = ResilientPolicy::default();
        let rec = Recorder::noop();
        for (i, slot) in [13usize, 14, 15].into_iter().enumerate() {
            let scale = 1.0 - 0.2 * i as f64;
            let rates = vec![vec![30_000.0 * scale, 25_000.0 * scale]];
            let ctx = SlotContext::new(&sys, &rates, slot, &rec);
            let d_inc = inc.decide(&ctx).unwrap();
            let h = ctx.take_health().unwrap();
            let mut cold = ResilientPolicy::new(cold_opts.clone());
            let d_cold = cold.decide(&ctx).unwrap();
            assert_eq!(d_inc, d_cold, "slot {slot}: dispatch diverged");
            assert_eq!(h.tier_used, Some(Tier::Exact));
            assert!(
                h.solver.warm_attempts > 0,
                "slot {slot}: never warm-started"
            );
        }
    }

    #[test]
    fn incremental_and_cold_ladders_agree_under_chaos() {
        // The same injected-fault stream must walk both ladders through the
        // same tiers with bit-identical per-slot outcomes, so the warm
        // machinery cannot leak into results even while tiers are failing.
        let sys = presets::section_v();
        let trace = constant_trace(presets::section_v_low_arrivals(), 8);
        let schedule = SolverFaultSchedule::new(0.5, 11);
        let mut inc = ResilientPolicy::default().with_chaos(schedule.clone());
        let mut cold = ResilientPolicy::new(ResilientOptions {
            bb: BbOptions {
                incremental: false,
                ..BbOptions::default()
            },
            ..ResilientOptions::default()
        })
        .with_chaos(schedule);
        let a = run(&mut inc, &sys, &trace, 0).unwrap();
        let b = run(&mut cold, &sys, &trace, 0).unwrap();
        assert_eq!(a.slots.len(), b.slots.len());
        let mut saw_fallback = false;
        for (x, y) in a.slots.iter().zip(&b.slots) {
            assert_eq!(
                x.net_profit.to_bits(),
                y.net_profit.to_bits(),
                "slot {}: profit {} vs {}",
                x.slot,
                x.net_profit,
                y.net_profit
            );
            assert_eq!(x.dispatched.to_bits(), y.dispatched.to_bits());
            let (hx, hy) = (x.health.as_ref().unwrap(), y.health.as_ref().unwrap());
            assert_eq!(hx.tier_used, hy.tier_used, "slot {}: tier diverged", x.slot);
            saw_fallback |= hx.tier_used != Some(Tier::Exact);
        }
        assert!(
            saw_fallback,
            "chaos at p = 0.5 should trip at least one fallback"
        );
    }

    #[test]
    fn multilevel_systems_walk_the_ladder_too() {
        let sys = presets::section_vii();
        let trace = constant_trace(vec![vec![30_000.0, 25_000.0]], 1);
        let mut policy = ResilientPolicy::default();
        let r = run(&mut policy, &sys, &trace, 13).unwrap();
        let h = r.slots[0].health.as_ref().unwrap();
        assert_eq!(h.tier_used, Some(Tier::Exact));
        assert!(r.total_net_profit() > 0.0);
    }
}
